"""Fixtures for the serve battery: an in-process server on an
ephemeral port, shared per test module."""

import pytest

from repro.serve import create_server

from tests.serve.bundles import Client


@pytest.fixture(scope="module")
def server():
    srv = create_server(workers=2)
    srv.run_forever_in_thread()
    yield srv
    srv.close()


@pytest.fixture(scope="module")
def client(server):
    return Client(server.url)

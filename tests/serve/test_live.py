"""The ``--live`` shared-graph mode and the snapshot opened-graph
cache: live jobs pin immutable MVCC versions, refresh commits new
versions without disturbing pinned readers, cache keys are
version-aware, and snapshot jobs share (and LRU-retire) one opened
graph per file version.
"""

import os

import pytest

from repro.core import Tabby
from repro.serve.app import create_server
from repro.serve.jobs import JobManager, normalize_submission
from repro.serve.store import ResultStore

from tests.serve.bundles import Client, gadget_classes


@pytest.fixture(scope="module")
def cpg_path(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("live")
    path = str(tmp / "live.cpg")
    Tabby(workers=1).add_classes(gadget_classes("live")).save_cpg(path)
    return path


@pytest.fixture(scope="module")
def snapshot_dir(tmp_path_factory, cpg_path):
    tmp = tmp_path_factory.mktemp("snaps")
    Tabby(workers=1).add_classes(gadget_classes("snap")).save_cpg(
        str(tmp / "prog.cpg")
    )
    return str(tmp)


@pytest.fixture()
def server(cpg_path, snapshot_dir):
    srv = create_server(
        workers=2, snapshot_dir=snapshot_dir, live=cpg_path,
        store_capacity=4,
    )
    srv.run_forever_in_thread()
    yield srv
    srv.close()


@pytest.fixture()
def client(server):
    return Client(server.url)


def submit_live(client, options=None):
    body = {"live": True}
    if options is not None:
        body["options"] = options
    return client.request("POST", "/jobs", body)


class TestLiveJobs:
    def test_live_job_finds_chains_over_shared_graph(self, client):
        code, doc, _ = submit_live(client)
        assert code == 202 and doc["status"] == "new", doc
        done = client.poll_done(doc["id"])
        assert done["state"] == "done", done
        code, chains, _ = client.request("GET", f"/jobs/{doc['id']}/chains")
        assert code == 200 and chains["chains"], chains
        # the pinned version is queryable through the job
        code, rows, _ = client.query(
            doc["id"], "MATCH (n:Class) RETURN count(n) AS c"
        )
        assert code == 200 and rows["rows"][0]["c"] > 0

    def test_identical_submission_same_version_is_cached(self, client):
        code, first, _ = submit_live(client)
        client.poll_done(first["id"])
        code, second, _ = submit_live(client)
        assert second["status"] in ("cached", "attached"), second
        assert second["key"] == first["key"]

    def test_refresh_noop_when_file_unchanged(self, client):
        code, outcome, _ = client.request("POST", "/live/refresh")
        assert code == 200
        assert outcome == {"refreshed": False, "version": 0}

    def test_refresh_commits_new_version_and_rekeys(
        self, client, server, cpg_path
    ):
        code, first, _ = submit_live(client)
        client.poll_done(first["id"])
        fp_before = server.manager.live.stats()["fingerprint"]
        os.utime(cpg_path)  # same bytes, new stat identity
        code, outcome, _ = client.request("POST", "/live/refresh")
        assert code == 200 and outcome["refreshed"] is True
        version = outcome["version"]
        assert version == server.manager.live.versioned.version
        # a new submission keys on the new version: recompute, same chains
        code, second, _ = submit_live(client)
        assert second["status"] == "new", second
        assert second["key"] != first["key"]
        client.poll_done(second["id"])
        code, a, _ = client.request("GET", f"/jobs/{first['id']}/chains")
        code, b, _ = client.request("GET", f"/jobs/{second['id']}/chains")
        assert a["chains"] == b["chains"]
        # identical content -> identical (memoised) fingerprint
        assert server.manager.live.stats()["fingerprint"] == fp_before

    def test_force_refresh(self, client):
        code, outcome, _ = client.request(
            "POST", "/live/refresh", {"force": True}
        )
        assert code == 200 and outcome["refreshed"] is True

    def test_stats_exposes_live_block(self, client, cpg_path):
        code, stats, _ = client.request("GET", "/stats")
        assert code == 200
        live = stats["live"]
        assert live["path"] == cpg_path
        assert live["version"] >= 0
        assert live["nodes"] > 0
        assert len(live["fingerprint"]) == 64

    def test_live_rejects_refinement_and_bad_shapes(self, client):
        code, err, _ = client.request(
            "POST", "/jobs", {"live": True, "options": {"refine": "rta"}}
        )
        assert code == 400 and "refine" in err["error"]
        code, err, _ = client.request("POST", "/jobs", {"live": "yes"})
        assert code == 400
        code, err, _ = client.request(
            "POST", "/jobs", {"live": True, "classes": "x"}
        )
        assert code == 400

    def test_refresh_disabled_without_live(self, snapshot_dir):
        srv = create_server(workers=1, snapshot_dir=snapshot_dir)
        srv.run_forever_in_thread()
        try:
            client = Client(srv.url)
            code, err, _ = client.request("POST", "/live/refresh")
            assert code == 409 and "--live" in err["error"]
            code, err, _ = client.request("POST", "/jobs", {"live": True})
            assert code == 400 and "--live" in err["error"]
        finally:
            srv.close()


class TestPinnedVersionIsolation:
    def test_inflight_pin_survives_refresh(self, server, client, cpg_path):
        """A submission pins its version before a refresh commits; the
        job computes against the pinned version, bit-identically."""
        manager = server.manager
        sub = normalize_submission({"live": True}, live=manager.live)
        pinned = sub.pinned
        from repro.graphdb.snapshot import fingerprint_digest

        fp = fingerprint_digest(pinned)
        os.utime(cpg_path)
        manager.live.refresh()
        # the refresh committed a newer version...
        assert manager.live.versioned.begin_snapshot() is not pinned
        # ...but the pinned snapshot is untouched
        assert fingerprint_digest(pinned) == fp
        job, status = manager.submit(submission=sub)
        assert status == "new"
        job.wait(30)
        assert job.state == "done", job.error
        assert job.result.graph is pinned
        assert job.result.fingerprint == fp


class TestSnapshotGraphCache:
    def test_repeat_snapshot_jobs_share_one_opened_graph(self, client, server):
        code, a, _ = client.request("POST", "/jobs", {"snapshot": "prog.cpg"})
        client.poll_done(a["id"])
        code, b, _ = client.request(
            "POST", "/jobs",
            {"snapshot": "prog.cpg", "options": {"max_depth": 11}},
        )
        client.poll_done(b["id"])
        stats = server.manager.stats()["snapshot_graphs"]
        assert stats["opens"] == 1
        assert stats["hits"] == 1
        assert stats["entries"] == 1
        # both results hold the same physical graph object
        job_a = server.manager.get(a["id"])
        job_b = server.manager.get(b["id"])
        assert job_a.result.graph is job_b.result.graph

    def test_purge_of_last_result_retires_opened_graph(self, client, server):
        code, a, _ = client.request("POST", "/jobs", {"snapshot": "prog.cpg"})
        client.poll_done(a["id"])
        assert server.manager.stats()["snapshot_graphs"]["entries"] == 1
        code, _doc, _ = client.request(
            "DELETE", f"/jobs/{a['id']}?purge=1"
        )
        assert code == 200
        assert server.manager.stats()["snapshot_graphs"]["entries"] == 0

    def test_lru_eviction_retires_opened_graph(self, snapshot_dir):
        """When the result store's LRU drops the last snapshot result,
        the opened graph goes with it."""
        manager = JobManager(
            workers=1, inline=True, store=ResultStore(capacity=1),
            snapshot_dir=snapshot_dir,
        )
        try:
            job, status = manager.submit({"snapshot": "prog.cpg"})
            assert status == "new"
            assert job.state == "done", job.error
            assert manager.stats()["snapshot_graphs"]["entries"] == 1
            # an unrelated result pushes the snapshot result out of the
            # capacity-1 store -> the opened graph is retired too
            from tests.serve.bundles import gadget_bundle

            job2, status = manager.submit({"classes": gadget_bundle("ev")})
            assert status == "new" and job2.state == "done", job2.error
            assert manager.stats()["snapshot_graphs"]["entries"] == 0
        finally:
            manager.shutdown()

    def test_changed_file_is_a_cache_miss(self, client, server, snapshot_dir):
        code, a, _ = client.request("POST", "/jobs", {"snapshot": "prog.cpg"})
        client.poll_done(a["id"])
        opens_before = server.manager.stats()["snapshot_graphs"]["opens"]
        os.utime(os.path.join(snapshot_dir, "prog.cpg"))
        code, b, _ = client.request("POST", "/jobs", {"snapshot": "prog.cpg"})
        assert b["status"] == "new", b  # stat token changed the job key
        client.poll_done(b["id"])
        stats = server.manager.stats()["snapshot_graphs"]
        assert stats["opens"] == opens_before + 1

"""Hypothesis property tests for the content-hash result store.

Two contracts, pinned over random submit/poll/evict/delete
interleavings (run against an *inline* manager so every interleaving
is deterministic):

* a completed job never loses its result — store eviction (explicit or
  LRU) only ever forgets *cached* work, so polling any non-deleted
  done job keeps returning the full result;
* every result a client can observe — fresh compute, warm-cache hit,
  or post-evict recompute — is fingerprint-identical to a direct
  recompute of the same bundle (``graph_fingerprint`` digest and chain
  records both).
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.serve import JobManager, ResultStore
from repro.serve.jobs import JobState, fingerprint_digest, normalize_submission

from tests.serve.bundles import gadget_bundle

#: three distinct bundles against a capacity-2 store, so LRU eviction
#: genuinely happens inside the interleavings
TAGS = ("pa", "pb", "pc")
BODIES = {tag: {"classes": gadget_bundle(tag), "options": {"sources": "native"}}
          for tag in TAGS}
KEYS = {tag: normalize_submission(BODIES[tag]).key for tag in TAGS}

_canonical_cache = {}


def canonical(tag):
    """Digest + chain records from a dedicated single-use manager —
    the recompute baseline every observed result must match."""
    if tag not in _canonical_cache:
        manager = JobManager(workers=1, inline=True)
        job, status = manager.submit(BODIES[tag])
        assert status == "new" and job.state == JobState.DONE
        _canonical_cache[tag] = (
            job.result.fingerprint,
            job.result.chain_records,
            fingerprint_digest(job.result.graph),
        )
    return _canonical_cache[tag]


ops = st.lists(
    st.one_of(
        st.tuples(st.just("submit"), st.sampled_from(TAGS)),
        st.tuples(st.just("evict"), st.sampled_from(TAGS)),
        st.tuples(st.just("delete"), st.integers(min_value=0, max_value=9)),
        st.tuples(st.just("poll"), st.integers(min_value=0, max_value=9)),
    ),
    min_size=1,
    max_size=12,
)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=ops)
def test_interleavings_never_lose_completed_results(ops):
    manager = JobManager(workers=1, inline=True, store=ResultStore(capacity=2))
    live = []  # (tag, job) pairs not yet deleted
    new_computes = 0
    for op, arg in ops:
        if op == "submit":
            job, status = manager.submit(BODIES[arg])
            assert status in ("new", "cached", "attached")
            # inline execution: nothing is ever in flight to attach to
            assert status != "attached"
            if status == "new":
                new_computes += 1
            assert job.state == JobState.DONE
            live.append((arg, job))
        elif op == "evict":
            manager.store.evict(KEYS[arg])
        elif op == "delete":
            if live:
                tag, job = live.pop(arg % len(live))
                assert manager.delete(job.id) == "deleted"
                assert manager.get(job.id) is None
        else:  # poll
            if live:
                tag, job = live[arg % len(live)]
                polled = manager.get(job.id)
                assert polled is job

        # the invariants hold after *every* op, not just at the end
        assert manager.computed == new_computes
        assert len(manager.store) <= 2
        for tag, job in live:
            # completed results are never lost, whatever the store did
            assert job.state == JobState.DONE
            assert job.result is not None
            digest, records, graph_digest = canonical(tag)
            # cache hits and recomputes are fingerprint-identical
            assert job.result.fingerprint == digest
            assert job.result.chain_records == records
            # the retained graph itself still hashes to the same identity
            assert fingerprint_digest(job.result.graph) == graph_digest


@settings(max_examples=50, deadline=None)
@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("put"), st.integers(0, 5)),
            st.tuples(st.just("get"), st.integers(0, 5)),
            st.tuples(st.just("evict"), st.integers(0, 5)),
        ),
        max_size=40,
    ),
    capacity=st.integers(min_value=1, max_value=4),
)
def test_store_is_a_faithful_lru_map(ops, capacity):
    """Model-based check of ResultStore against a dict + recency list."""
    from repro.serve.store import JobResult

    store = ResultStore(capacity=capacity)
    model = {}
    recency = []  # least-recent first
    for op, k in ops:
        key = f"k{k}"
        if op == "put":
            store.put(key, JobResult(key=key, fingerprint=f"f{k}"))
            model[key] = f"f{k}"
            if key in recency:
                recency.remove(key)
            recency.append(key)
            while len(model) > capacity:
                oldest = recency.pop(0)
                del model[oldest]
        elif op == "get":
            result = store.get(key)
            if key in model:
                assert result is not None and result.fingerprint == model[key]
                recency.remove(key)
                recency.append(key)
            else:
                assert result is None
        else:
            assert store.evict(key) == (key in model)
            model.pop(key, None)
            if key in recency:
                recency.remove(key)
        assert len(store) == len(model)
        assert set(store.keys()) == set(model)

"""Concurrency battery for the job queue: exactly one computation per
distinct content hash, bit-identical chain lists vs the direct library
call, no deadlock at pool saturation, and clean drain on shutdown.

Most tests drive :class:`JobManager` directly (deterministic, no
sockets); the HTTP-level dedup test goes through the live server.
A gated manager — workers blocked on an Event — makes the in-flight
windows deterministic instead of racing the (fast) pipeline.
"""

import threading

from repro.core import SourceCatalog, Tabby
from repro.serve import JobManager, create_server
from repro.serve.jobs import JobState

from tests.serve.bundles import Client, gadget_bundle, gadget_classes

NATIVE_BODY = {"options": {"sources": "native"}}


def body_for(tag):
    return {"classes": gadget_bundle(tag), "options": {"sources": "native"}}


def direct_records(tag):
    chains = (
        Tabby(sources=SourceCatalog.native())
        .add_classes(gadget_classes(tag))
        .find_gadget_chains()
    )
    return [
        {
            "steps": [s.qualified for s in chain.steps],
            "sink_category": chain.sink_category,
        }
        for chain in chains
    ]


class GatedManager(JobManager):
    """A manager whose workers block on ``gate`` before computing."""

    def __init__(self, **kwargs):
        self.gate = threading.Event()
        super().__init__(**kwargs)

    def _compute(self, job):
        assert self.gate.wait(timeout=60), "test gate never opened"
        return super()._compute(job)


class TestSingleComputationPerHash:
    def test_mixed_identical_and_distinct_submissions(self):
        """8 threads x 12 submissions over 4 distinct bundles: exactly
        4 computations, every job done, chains bit-identical to the
        direct API per bundle."""
        tags = ["alpha", "beta", "gamma", "delta"]
        bodies = {tag: body_for(tag) for tag in tags}
        manager = JobManager(workers=4)
        jobs = []
        jobs_lock = threading.Lock()

        def client(seed):
            for i in range(12):
                tag = tags[(seed + i) % len(tags)]
                job, status = manager.submit(bodies[tag])
                assert status in ("new", "attached", "cached")
                with jobs_lock:
                    jobs.append((tag, job))

        threads = [threading.Thread(target=client, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
            assert not t.is_alive()
        try:
            expected = {tag: direct_records(tag) for tag in tags}
            assert len(jobs) == 96
            for tag, job in jobs:
                assert job.wait(timeout=60), f"job {job.id} never finished"
                assert job.state == JobState.DONE
                assert job.result.chain_records == expected[tag]
            # the hard invariant: one computation per distinct hash
            assert manager.computed == len(tags)
            assert manager.submitted == 96
            assert manager.attached_total + manager.cache_hits == 96 - len(tags)
        finally:
            manager.shutdown()

    def test_inflight_submissions_attach_to_same_job(self):
        manager = GatedManager(workers=1)
        try:
            first, status = manager.submit(body_for("attach"))
            assert status == "new"
            second, status = manager.submit(body_for("attach"))
            assert status == "attached"
            assert second is first
            assert first.attached == 1
            manager.gate.set()
            assert first.wait(timeout=60)
            assert first.state == JobState.DONE
            assert manager.computed == 1
        finally:
            manager.gate.set()
            manager.shutdown()

    def test_http_concurrent_identical_submissions_compute_once(self):
        server = create_server(workers=2)
        server.run_forever_in_thread()
        try:
            client = Client(server.url)
            bundle = gadget_bundle("httpdedup")
            results = []
            results_lock = threading.Lock()

            def submit():
                code, doc, _ = client.submit(bundle)
                assert code in (200, 202)
                final = client.poll_done(doc["id"])
                code, chains, _ = client.request(
                    "GET", f"/jobs/{doc['id']}/chains"
                )
                with results_lock:
                    results.append((final["state"], chains["chains"]))

            threads = [threading.Thread(target=submit) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
                assert not t.is_alive()
            expected = direct_records("httpdedup")
            assert len(results) == 8
            for state, chains in results:
                assert state == "done"
                assert chains == expected
            assert server.manager.computed == 1
        finally:
            server.close()


class TestPoolSaturation:
    def test_no_deadlock_with_more_jobs_than_workers(self):
        manager = JobManager(workers=2)
        try:
            jobs = [
                manager.submit(body_for(f"sat{i}"))[0] for i in range(20)
            ]
            for job in jobs:
                assert job.wait(timeout=120), f"job {job.id} stuck"
                assert job.state == JobState.DONE
            assert manager.computed == 20
            assert manager.stats()["queue_depth"] == 0
        finally:
            manager.shutdown()

    def test_bounded_queue_rejects_overflow(self):
        manager = GatedManager(workers=1, max_queue=2)
        try:
            accepted = [manager.submit(body_for(f"bq{i}")) for i in range(5)]
            statuses = [status for _, status in accepted]
            assert statuses.count("new") < 5
            assert "overloaded" in statuses
            manager.gate.set()
        finally:
            manager.gate.set()
            manager.shutdown()


class TestShutdown:
    def test_drain_completes_queued_jobs(self):
        manager = GatedManager(workers=1)
        jobs = [manager.submit(body_for(f"drain{i}"))[0] for i in range(5)]
        finisher = threading.Thread(target=manager.shutdown, kwargs={"drain": True})
        finisher.start()
        # with the gate closed nothing can finish: drain must still be waiting
        finisher.join(timeout=0.3)
        assert finisher.is_alive()
        manager.gate.set()
        finisher.join(timeout=120)
        assert not finisher.is_alive()
        for job in jobs:
            assert job.state == JobState.DONE, job.id
        assert manager.computed == 5

    def test_no_drain_cancels_queued_jobs(self):
        manager = GatedManager(workers=1)
        jobs = [manager.submit(body_for(f"nodrain{i}"))[0] for i in range(4)]
        # worker holds job 0 at the gate; 1..3 are queued
        canceller = threading.Thread(
            target=manager.shutdown, kwargs={"drain": False}
        )
        canceller.start()
        for job in jobs[1:]:
            assert job.wait(timeout=60)
            assert job.state == JobState.CANCELLED
        manager.gate.set()
        canceller.join(timeout=60)
        assert not canceller.is_alive()
        assert jobs[0].state == JobState.DONE  # running jobs always finish
        assert manager.cancelled == 3

    def test_submit_after_shutdown_is_refused(self):
        manager = JobManager(workers=1)
        manager.shutdown()
        job, status = manager.submit(body_for("late"))
        assert job is None and status == "closed"

    def test_shutdown_is_idempotent(self):
        manager = JobManager(workers=1)
        manager.shutdown()
        manager.shutdown(drain=False)  # second call is a no-op


class TestDeleteSemantics:
    def test_delete_running_job_refused(self):
        manager = GatedManager(workers=1)
        try:
            job, _ = manager.submit(body_for("delrun"))
            # wait until the worker picks it up
            for _ in range(500):
                if job.state == JobState.RUNNING:
                    break
                threading.Event().wait(0.01)
            assert job.state == JobState.RUNNING
            assert manager.delete(job.id) == "running"
            manager.gate.set()
            assert job.wait(timeout=60)
            assert manager.delete(job.id) == "deleted"
        finally:
            manager.gate.set()
            manager.shutdown()

    def test_cancelled_queued_job_recomputes_on_resubmit(self):
        manager = GatedManager(workers=1)
        try:
            blocker, _ = manager.submit(body_for("delblock"))
            queued, status = manager.submit(body_for("delqueued"))
            assert status == "new" and queued.state == JobState.QUEUED
            assert manager.delete(queued.id) == "deleted"
            assert queued.state == JobState.CANCELLED
            # identical resubmission is a fresh job, not an attach
            again, status = manager.submit(body_for("delqueued"))
            assert status == "new" and again.id != queued.id
            manager.gate.set()
            assert again.wait(timeout=60)
            assert again.state == JobState.DONE
        finally:
            manager.gate.set()
            manager.shutdown()

"""The ``diff`` job kind end to end: submit two program versions, poll,
fetch the tabby-diff/v1 document, and compare against the direct
library call.  Also the error contract (400 malformed bodies, 409 on a
non-diff job) and content-hash caching of identical diff submissions."""

from repro.core import SourceCatalog, Tabby
from repro.core.incremental import DIFF_SCHEMA_VERSION, diff_to_dict
from repro.corpus.patterns import plant_guard_decoy
from repro.jvm import jasm
from repro.jvm.builder import ProgramBuilder
from repro.jvm.model import SERIALIZABLE

from tests.serve.bundles import NATIVE, gadget_bundle, gadget_classes


def versioned_classes(tag, with_sink):
    """The Figure-1 gadget with the sink call toggled — the canonical
    one-method edit between two submitted versions."""
    pb = ProgramBuilder(jar=f"{tag}.jar")
    obj = pb.cls("java.lang.Object", extends=None)
    obj.abstract_method("toString", returns="java.lang.String")
    obj.finish()
    with pb.cls(f"{tag}.EvilObjectB", implements=[SERIALIZABLE]) as c:
        c.field("val2", "java.lang.Object")
        with c.method("toString", returns="java.lang.String") as m:
            v = m.get_field(m.this, "val2")
            cmd = m.invoke(
                v, "java.lang.Object", "toString", returns="java.lang.String"
            )
            if with_sink:
                rt = m.invoke_static(
                    "java.lang.Runtime", "getRuntime",
                    returns="java.lang.Runtime",
                )
                m.invoke(rt, "java.lang.Runtime", "exec", [cmd])
            m.ret(cmd)
    with pb.cls(f"{tag}.EvilObjectA", implements=[SERIALIZABLE]) as c:
        c.field("val1", "java.lang.Object")
        with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
            v = m.get_field(m.this, "val1")
            m.invoke(v, "java.lang.Object", "toString",
                     returns="java.lang.String")
            m.ret()
    return pb.build()


def submit_diff(client, old, new, options=NATIVE):
    return client.request(
        "POST", "/jobs", body={"diff": {"old": old, "new": new},
                               "options": options}
    )


def direct_diff(old_classes, new_classes, **kwargs):
    tabby = Tabby(sources=SourceCatalog.native())
    return diff_to_dict(tabby.diff_versions(old_classes, new_classes, **kwargs))


class TestDiffJob:
    def test_round_trip_matches_direct_call(self, client):
        old = jasm.dumps(versioned_classes("sd", with_sink=False))
        new = jasm.dumps(versioned_classes("sd", with_sink=True))
        code, doc, _ = submit_diff(client, old, new)
        assert code == 202
        final = client.poll_done(doc["id"])
        assert final["state"] == "done"

        code, payload, _ = client.request("GET", f"/jobs/{doc['id']}/diff")
        assert code == 200
        document = payload["diff"]
        assert document["schema"] == DIFF_SCHEMA_VERSION
        direct = direct_diff(
            versioned_classes("sd", with_sink=False),
            versioned_classes("sd", with_sink=True),
        )
        assert document["summary"] == direct["summary"]
        assert document["appeared"] == direct["appeared"]
        assert document["disappeared"] == direct["disappeared"]
        assert document["summary"]["appeared"] == 1
        assert document["summary"]["disappeared"] == 0

        # the chains endpoint serves the NEW version's chain set
        code, chains, _ = client.request("GET", f"/jobs/{doc['id']}/chains")
        assert code == 200
        assert chains["chains"] == document["survived"] + document["appeared"]

        # and the job's CPG is the new version's, queryable as usual
        code, rows, _ = client.request(
            "GET",
            f"/jobs/{doc['id']}/query?q="
            "MATCH%20(m:Method%20%7BIS_SINK:%20true%7D)%20RETURN%20m.NAME",
        )
        assert code == 200
        assert rows["rows"]

    def test_identical_resubmission_is_cached(self, client):
        old = jasm.dumps(versioned_classes("sc", with_sink=False))
        new = jasm.dumps(versioned_classes("sc", with_sink=True))
        code, first, _ = submit_diff(client, old, new)
        assert code == 202
        client.poll_done(first["id"])
        code, second, _ = submit_diff(client, old, new)
        assert code == 200
        assert second["status"] == "cached"
        _, d1, _ = client.request("GET", f"/jobs/{first['id']}/diff")
        _, d2, _ = client.request("GET", f"/jobs/{second['id']}/diff")
        assert d1["diff"] == d2["diff"]
        assert d2["cached"] is True

    def test_swapped_sides_are_distinct_submissions(self, client):
        old = jasm.dumps(versioned_classes("ss", with_sink=False))
        new = jasm.dumps(versioned_classes("ss", with_sink=True))
        code, forward, _ = submit_diff(client, old, new)
        assert code == 202
        code, backward, _ = submit_diff(client, new, old)
        assert code == 202, "reversed diff must not hit the forward cache"
        f = client.poll_done(forward["id"])
        b = client.poll_done(backward["id"])
        assert f["state"] == b["state"] == "done"
        _, fd, _ = client.request("GET", f"/jobs/{forward['id']}/diff")
        _, bd, _ = client.request("GET", f"/jobs/{backward['id']}/diff")
        assert fd["diff"]["summary"]["appeared"] == 1
        assert bd["diff"]["summary"]["disappeared"] == 1

    def test_decoy_activation_with_refinement(self, client):
        def build(with_decoy):
            pb = ProgramBuilder(jar="sdecoy.jar")
            obj = pb.cls("java.lang.Object", extends=None)
            obj.abstract_method("toString", returns="java.lang.String")
            obj.finish()
            with pb.cls("sdecoy.Entry", implements=[SERIALIZABLE]) as c:
                c.field("delegate", "java.lang.Object")
                with c.method(
                    "readObject", params=["java.io.ObjectInputStream"]
                ) as m:
                    v = m.get_field(m.this, "delegate")
                    m.invoke(v, "java.lang.Object", "toString",
                             returns="java.lang.String")
                    m.ret()
            if with_decoy:
                plant_guard_decoy(pb, "sdecoy.Sleeper", "sdecoy.Config")
            return pb.build()

        options = dict(NATIVE)
        options["refine_guards"] = True
        code, doc, _ = submit_diff(
            client,
            jasm.dumps(build(False)),
            jasm.dumps(build(True)),
            options=options,
        )
        assert code == 202
        client.poll_done(doc["id"])
        _, payload, _ = client.request("GET", f"/jobs/{doc['id']}/diff")
        appeared = payload["diff"]["appeared"]
        decoys = [
            r for r in appeared
            if any(step.startswith("sdecoy.Sleeper.") for step in r["steps"])
        ]
        assert decoys, "the planted decoy must surface as appeared"
        assert all(r["status"] == "refuted" for r in decoys)
        assert all(
            r["refutation"]["kind"] == "constant-guard" for r in decoys
        )


class TestDiffErrors:
    def test_missing_side_is_400(self, client):
        code, doc, _ = client.request(
            "POST", "/jobs", body={"diff": {"old": "x"}}
        )
        assert code == 400
        assert "diff" in doc["error"]

    def test_non_object_diff_is_400(self, client):
        code, doc, _ = client.request("POST", "/jobs", body={"diff": "x"})
        assert code == 400

    def test_empty_side_is_400(self, client):
        code, doc, _ = client.request(
            "POST", "/jobs", body={"diff": {"old": [], "new": "x"}}
        )
        assert code == 400
        assert "old" in doc["error"]

    def test_diff_plus_classes_is_400(self, client):
        code, doc, _ = client.request(
            "POST",
            "/jobs",
            body={"diff": {"old": "a", "new": "b"},
                  "classes": gadget_bundle("dx")},
        )
        assert code == 400

    def test_diff_endpoint_on_classes_job_is_409(self, client):
        code, doc, _ = client.submit(gadget_bundle("notdiff"))
        assert code in (200, 202)
        client.poll_done(doc["id"])
        code, payload, _ = client.request("GET", f"/jobs/{doc['id']}/diff")
        assert code == 409
        assert "not a diff job" in payload["error"]

    def test_unparseable_side_fails_job(self, client):
        code, doc, _ = submit_diff(client, "not jasm at all", "also not")
        assert code == 202
        final = client.poll_done(doc["id"])
        assert final["state"] == "failed"
        assert final["error"]

"""Endpoint contract tests against an in-process server on an
ephemeral port: job lifecycle, error paths (400/404/405/409/429), and
the JSON shape of progress payloads."""

import json

import pytest

from repro.core import SourceCatalog, Tabby
from repro.serve import create_server

from tests.serve.bundles import NATIVE, Client, gadget_bundle, gadget_classes


def direct_records(classes, **kwargs):
    """The chain records a plain library call produces for ``classes``."""
    chains = (
        Tabby(sources=SourceCatalog.native())
        .add_classes(classes)
        .find_gadget_chains(**kwargs)
    )
    return [
        {
            "steps": [s.qualified for s in chain.steps],
            "sink_category": chain.sink_category,
        }
        for chain in chains
    ]


class TestJobLifecycle:
    def test_submit_poll_fetch(self, client):
        code, doc, _ = client.submit(gadget_bundle("life"))
        assert code == 202
        assert doc["status"] == "new"
        assert doc["state"] in ("queued", "running", "done")
        final = client.poll_done(doc["id"])
        assert final["state"] == "done"
        assert final["chain_count"] == 1
        assert final["fingerprint"]

        code, chains, _ = client.request("GET", f"/jobs/{doc['id']}/chains")
        assert code == 200
        assert chains["chains"] == direct_records(gadget_classes("life"))

    def test_cached_resubmission_serves_same_result(self, client):
        bundle = gadget_bundle("cachehit")
        code, first, _ = client.submit(bundle)
        assert code == 202
        client.poll_done(first["id"])
        code, second, _ = client.submit(bundle)
        assert code == 200
        assert second["status"] == "cached"
        assert second["cached"] is True
        assert second["state"] == "done"
        assert second["id"] != first["id"]
        _, c1, _ = client.request("GET", f"/jobs/{first['id']}/chains")
        _, c2, _ = client.request("GET", f"/jobs/{second['id']}/chains")
        assert c1["chains"] == c2["chains"]
        assert c2["cached"] is True

    def test_lint_endpoint(self, client):
        code, doc, _ = client.submit(gadget_bundle("linty"))
        client.poll_done(doc["id"])
        code, lint, _ = client.request("GET", f"/jobs/{doc['id']}/lint")
        assert code == 200
        assert lint["issues"] == []  # the gadget program is lint-clean

    def test_query_endpoint(self, client):
        code, doc, _ = client.submit(gadget_bundle("queried"))
        client.poll_done(doc["id"])
        code, result, _ = client.query(
            doc["id"], "MATCH (m:Method {IS_SINK: true}) RETURN m.NAME AS n"
        )
        assert code == 200
        assert result["columns"] == ["n"]
        assert result["rows"] == [{"n": "exec"}]

    def test_delete_done_job(self, client):
        code, doc, _ = client.submit(gadget_bundle("gone"))
        client.poll_done(doc["id"])
        code, deleted, _ = client.request("DELETE", f"/jobs/{doc['id']}")
        assert code == 200 and deleted["deleted"] == doc["id"]
        code, _, _ = client.request("GET", f"/jobs/{doc['id']}")
        assert code == 404

    def test_delete_with_purge_forces_recompute(self, server, client):
        bundle = gadget_bundle("purged")
        _, doc, _ = client.submit(bundle)
        client.poll_done(doc["id"])
        computed_before = server.manager.computed
        _, _, _ = client.request("DELETE", f"/jobs/{doc['id']}?purge=1")
        code, again, _ = client.submit(bundle)
        assert code == 202 and again["status"] == "new"  # not "cached"
        client.poll_done(again["id"])
        assert server.manager.computed == computed_before + 1

    def test_components_submission_matches_direct_run(self, client):
        code, doc, _ = client.submit(
            components=["CommonsBeanutils1"], options={"sources": "extended"}
        )
        assert code == 202
        final = client.poll_done(doc["id"], timeout=120)
        assert final["state"] == "done"
        from repro.corpus import build_component, build_lang_base

        classes = build_lang_base() + build_component("CommonsBeanutils1").classes
        expected = [
            {
                "steps": [s.qualified for s in chain.steps],
                "sink_category": chain.sink_category,
            }
            for chain in Tabby().add_classes(classes).find_gadget_chains()
        ]
        _, chains, _ = client.request("GET", f"/jobs/{doc['id']}/chains")
        assert chains["chains"] == expected

    def test_job_listing_contains_submitted_job(self, client):
        _, doc, _ = client.submit(gadget_bundle("listed"))
        client.poll_done(doc["id"])
        code, listing, _ = client.request("GET", "/jobs")
        assert code == 200
        assert doc["id"] in {j["id"] for j in listing["jobs"]}


#: the progress payload contract: key -> required type (None = nullable)
_JOB_DOC_SCHEMA = {
    "id": str,
    "key": str,
    "state": str,
    "phase": str,
    "cached": bool,
    "attached": int,
    "kind": str,
    "options": dict,
    "created": float,
    "progress": dict,
}

_CPG_ROW_SCHEMA = {
    "jar_count": int,
    "class_nodes": int,
    "method_nodes": int,
    "relationship_edges": int,
    "pruned_call_sites": int,
    "build_seconds": float,
    "phase_seconds": dict,
    "analyzed_methods": int,
    "cached_methods": int,
}

_SEARCH_ROW_SCHEMA = {
    "sinks_searched": int,
    "paths_visited": int,
    "call_edges_followed": int,
    "call_edges_rejected": int,
    "depth_pruned": int,
    "chains_found": int,
    "reachability_pruned": int,
    "negative_cache_hits": int,
    "phase_seconds": dict,
    "search_seconds": float,
}


def _assert_schema(doc, schema, where):
    for key, expected in schema.items():
        assert key in doc, f"{where}: missing {key!r} in {sorted(doc)}"
        value = doc[key]
        if expected is float:
            assert isinstance(value, (int, float)) and not isinstance(value, bool), \
                f"{where}.{key}: {value!r} is not numeric"
        else:
            assert isinstance(value, expected), \
                f"{where}.{key}: {value!r} is not {expected.__name__}"


class TestProgressPayloadShape:
    def test_done_job_document(self, client):
        _, doc, _ = client.submit(gadget_bundle("shaped"))
        final = client.poll_done(doc["id"])
        _assert_schema(final, _JOB_DOC_SCHEMA, "job")
        assert final["state"] == "done"
        assert final["kind"] == "classes"
        assert final["options"]["sources"] == "native"
        # the per-phase counters are the existing statistics rows
        _assert_schema(final["progress"]["cpg"], _CPG_ROW_SCHEMA, "progress.cpg")
        _assert_schema(
            final["progress"]["search"], _SEARCH_ROW_SCHEMA, "progress.search"
        )
        assert final["progress"]["search"]["chains_found"] == 1
        # the whole document round-trips as JSON (no stray objects)
        json.dumps(final)

    def test_phase_vocabulary(self, client):
        _, doc, _ = client.submit(gadget_bundle("phases"))
        seen = {doc["phase"]}
        final = client.poll_done(doc["id"])
        seen.add(final["phase"])
        allowed = {
            "queued", "parse", "build_cpg", "search", "lint", "fingerprint",
            "done", "failed", "cancelled",
        }
        assert seen <= allowed


class TestErrorPaths:
    def test_malformed_json_body_400(self, client):
        code, err, _ = client.request(
            "POST", "/jobs", raw_body=b"{not json at all"
        )
        assert code == 400
        assert "malformed JSON" in err["error"]

    @pytest.mark.parametrize(
        "body, fragment",
        [
            ({}, "exactly one of"),
            ({"classes": "x", "components": ["CommonsBeanutils1"]}, "exactly one of"),
            ({"bundle": "x"}, "unknown field"),
            ({"classes": ""}, "non-empty"),
            ({"classes": []}, "non-empty"),
            ({"classes": [42]}, "non-empty"),
            ({"components": []}, "non-empty"),
            ({"components": ["NoSuchComponent"]}, "unknown component"),
            ({"classes": "x", "options": 7}, "JSON object"),
            ({"classes": "x", "options": {"bogus": 1}}, "unknown option"),
            ({"classes": "x", "options": {"max_depth": 0}}, "max_depth"),
            ({"classes": "x", "options": {"max_depth": True}}, "max_depth"),
            ({"classes": "x", "options": {"sources": "all"}}, "sources"),
            ({"classes": "x", "options": {"source_filter": 3}}, "source_filter"),
            ({"classes": "x", "options": {"refine_guards": "yes"}}, "refine_guards"),
            ([1, 2], "JSON object"),
        ],
    )
    def test_invalid_submission_400(self, client, body, fragment):
        code, err, _ = client.request("POST", "/jobs", body)
        assert code == 400
        assert fragment in err["error"]

    def test_bad_jasm_fails_the_job_not_the_request(self, client):
        code, doc, _ = client.submit("class this is ! not jasm {{{")
        assert code == 202  # shape-valid; parsing happens in the worker
        final = client.poll_done(doc["id"])
        assert final["state"] == "failed"
        assert final["error"]
        code, err, _ = client.request("GET", f"/jobs/{doc['id']}/chains")
        assert code == 409
        assert err["state"] == "failed"

    def test_unknown_job_404(self, client):
        for path in ("/jobs/zzz", "/jobs/zzz/chains", "/jobs/zzz/lint"):
            code, err, _ = client.request("GET", path)
            assert code == 404, path
        code, _, _ = client.request("DELETE", "/jobs/zzz")
        assert code == 404

    def test_unknown_route_404(self, client):
        for method, path in (
            ("GET", "/"),
            ("GET", "/jobs/a/b/c"),
            ("GET", "/jobs/a/payload"),
            ("POST", "/chains"),
            ("DELETE", "/stats"),
        ):
            code, _, _ = client.request(method, path)
            assert code == 404, (method, path)

    def test_method_not_allowed_405(self, client):
        code, _, _ = client.request("PUT", "/jobs")
        assert code == 405

    def test_query_error_400(self, client):
        _, doc, _ = client.submit(gadget_bundle("queryerr"))
        client.poll_done(doc["id"])
        code, err, _ = client.request("GET", f"/jobs/{doc['id']}/query")
        assert code == 400 and "missing query parameter" in err["error"]
        code, err, _ = client.query(doc["id"], "MATCH (((")
        assert code == 400 and "query failed" in err["error"]

    def test_healthz_and_stats(self, client):
        code, health, _ = client.request("GET", "/healthz")
        assert code == 200 and health["ok"] is True
        code, stats, _ = client.request("GET", "/stats")
        assert code == 200
        assert {"jobs", "store", "ratelimit"} <= set(stats)
        assert stats["jobs"]["computed"] >= 1


class TestRateLimiting:
    def test_429_with_retry_after(self):
        srv = create_server(workers=1, rate=0.001, burst=1)
        srv.run_forever_in_thread()
        try:
            client = Client(srv.url, client_id="impatient")
            bundle = gadget_bundle("limited")
            code, doc, _ = client.submit(bundle)
            assert code == 202
            code, err, headers = client.submit(bundle)
            assert code == 429
            assert "rate limited" in err["error"]
            assert float(headers["Retry-After"]) > 0
            # a different client has its own bucket
            other = Client(srv.url, client_id="patient")
            code, _, _ = other.submit(bundle)
            assert code in (200, 202)
            # reads are never limited
            code, _, _ = client.request("GET", "/healthz")
            assert code == 200
        finally:
            srv.close()


class TestRefinementEndpoint:
    def test_refine_option_bad_mode_400(self, client):
        code, err, _ = client.request(
            "POST", "/jobs",
            {"classes": "x", "options": {"refine": "rta,cha"}},
        )
        assert code == 400
        assert "refine" in err["error"]

    def test_refine_option_wrong_type_400(self, client):
        code, err, _ = client.request(
            "POST", "/jobs",
            {"classes": "x", "options": {"refine": ["rta"]}},
        )
        assert code == 400
        assert "comma-separated" in err["error"]

    def test_verdicts_empty_without_refinement(self, client):
        _, doc, _ = client.submit(gadget_bundle("noverdicts"))
        client.poll_done(doc["id"])
        code, body, _ = client.request("GET", f"/jobs/{doc['id']}/verdicts")
        assert code == 200
        assert body["verdicts"] == []
        assert body["refinement"] == {}

    def test_verdicts_present_with_refinement(self, client):
        options = dict(NATIVE, refine="rta,taint")
        _, doc, _ = client.submit(gadget_bundle("verdicty"), options=options)
        final = client.poll_done(doc["id"])
        assert final["state"] == "done"
        code, body, _ = client.request("GET", f"/jobs/{doc['id']}/verdicts")
        assert code == 200
        assert body["refinement"]["modes"] == ["rta", "taint"]
        statuses = {v["status"] for v in body["verdicts"]}
        assert statuses <= {"kept", "refuted", "unknown"}
        # the Figure-1 gadget is a true chain: nothing may be refuted
        assert final["chain_count"] == 1
        assert "refuted" not in statuses

    def test_verdicts_409_before_result(self, client):
        _, doc, _ = client.submit("class nope {{{ not jasm")
        final = client.poll_done(doc["id"])
        assert final["state"] == "failed"
        code, err, _ = client.request("GET", f"/jobs/{doc['id']}/verdicts")
        assert code == 409

    def test_refine_mode_order_is_cache_canonical(self, client):
        bundle = gadget_bundle("canonical")
        first_opts = dict(NATIVE, refine="taint,rta")
        code, first, _ = client.submit(bundle, options=first_opts)
        assert code == 202
        client.poll_done(first["id"])
        second_opts = dict(NATIVE, refine="rta,taint")
        code, second, _ = client.submit(bundle, options=second_opts)
        assert code == 200
        assert second["cached"] is True

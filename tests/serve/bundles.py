"""Helpers for the serve battery: tiny gadget bundles and a JSON HTTP
client.  Kept outside conftest.py so tests can import them directly."""

import json
import time
import urllib.error
import urllib.parse
import urllib.request

from repro.jvm import jasm
from repro.jvm.builder import ProgramBuilder
from repro.jvm.model import SERIALIZABLE

#: every submission in the battery pins the native source catalog so
#: direct-API comparisons are one-liner reproducible
NATIVE = {"sources": "native"}


def gadget_classes(tag="demo"):
    """The Figure-1 three-class gadget program, parameterised by package
    so distinct ``tag`` values yield distinct content hashes while the
    chain shape stays identical."""
    pb = ProgramBuilder(jar=f"{tag}.jar")
    obj = pb.cls("java.lang.Object", extends=None)
    obj.abstract_method("toString", returns="java.lang.String")
    obj.finish()
    with pb.cls(f"{tag}.EvilObjectB", implements=[SERIALIZABLE]) as c:
        c.field("val2", "java.lang.Object")
        with c.method("toString", returns="java.lang.String") as m:
            v = m.get_field(m.this, "val2")
            cmd = m.invoke(
                v, "java.lang.Object", "toString", returns="java.lang.String"
            )
            rt = m.invoke_static(
                "java.lang.Runtime", "getRuntime", returns="java.lang.Runtime"
            )
            m.invoke(rt, "java.lang.Runtime", "exec", [cmd])
            m.ret(cmd)
    with pb.cls(f"{tag}.EvilObjectA", implements=[SERIALIZABLE]) as c:
        c.field("val1", "java.lang.Object")
        with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
            v = m.get_field(m.this, "val1")
            m.invoke(v, "java.lang.Object", "toString", returns="java.lang.String")
            m.ret()
    return pb.build()


def gadget_bundle(tag="demo"):
    """The jasm text of :func:`gadget_classes` — a POST /jobs payload."""
    return jasm.dumps(gadget_classes(tag))


class Client:
    """A minimal JSON-over-HTTP client for one server."""

    def __init__(self, base_url, client_id=None):
        self.base_url = base_url
        self.client_id = client_id

    def request(self, method, path, body=None, raw_body=None):
        data = raw_body
        if body is not None:
            data = json.dumps(body).encode()
        headers = {}
        if self.client_id is not None:
            headers["X-Client-Id"] = self.client_id
        req = urllib.request.Request(
            self.base_url + path, data=data, method=method, headers=headers
        )
        try:
            with urllib.request.urlopen(req, timeout=30) as resp:
                return resp.status, json.loads(resp.read()), dict(resp.headers)
        except urllib.error.HTTPError as exc:
            return exc.code, json.loads(exc.read()), dict(exc.headers)

    def submit(self, bundle=None, components=None, options=NATIVE):
        body = {"options": options}
        if bundle is not None:
            body["classes"] = bundle
        if components is not None:
            body["components"] = components
        return self.request("POST", "/jobs", body)

    def poll_done(self, job_id, timeout=30.0):
        """Poll until the job leaves the queue; returns the final doc."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            code, doc, _ = self.request("GET", f"/jobs/{job_id}")
            assert code == 200, doc
            if doc["state"] in ("done", "failed", "cancelled"):
                return doc
            time.sleep(0.01)
        raise AssertionError(f"job {job_id} did not finish within {timeout}s")

    def query(self, job_id, cypher):
        encoded = urllib.parse.quote(cypher)
        return self.request("GET", f"/jobs/{job_id}/query?q={encoded}")

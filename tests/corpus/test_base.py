"""Tests for the corpus data model (ComponentSpec / KnownChainSpec)."""

import pytest

from repro.core.chains import ChainStep, GadgetChain
from repro.corpus.base import ComponentSpec, KnownChainSpec


def chain(src, snk):
    return GadgetChain([ChainStep(*src, 1), ChainStep(*snk, 1)])


class TestKnownChainSpec:
    def test_string_rendering(self):
        spec = KnownChainSpec(("a.S", "readObject"), ("b.K", "exec"))
        assert "a.S.readObject()" in str(spec)
        proxy = KnownChainSpec(("a.S", "readObject"), ("b.K", "exec"), via_proxy=True)
        assert "(proxy)" in str(proxy)

    def test_frozen(self):
        spec = KnownChainSpec(("a", "b"), ("c", "d"))
        with pytest.raises(AttributeError):
            spec.via_proxy = True

    def test_matching_is_endpoint_based(self):
        spec = KnownChainSpec(("a.S", "readObject"), ("b.K", "exec"))
        long_chain = GadgetChain([
            ChainStep("a.S", "readObject", 1),
            ChainStep("mid.M", "hop", 0),
            ChainStep("b.K", "exec", 1),
        ])
        assert spec.matches(long_chain)
        assert not spec.matches(chain(("a.S", "readObject"), ("other.K", "exec")))


class TestComponentSpec:
    def test_known_count_and_match(self):
        specs = [
            KnownChainSpec(("a.S", "readObject"), ("b.K", "exec")),
            KnownChainSpec(("c.S", "hashCode"), ("b.K", "exec"), via_proxy=True),
        ]
        comp = ComponentSpec("X", [], known_chains=specs, package="a")
        assert comp.known_count == 2
        assert comp.match_known(chain(("a.S", "readObject"), ("b.K", "exec"))) is specs[0]
        assert comp.match_known(chain(("z.S", "readObject"), ("b.K", "exec"))) is None

    def test_repr(self):
        comp = ComponentSpec("X", [], package="a")
        assert "X" in repr(comp)

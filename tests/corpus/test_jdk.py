"""Tests for the synthetic JDK corpus."""

import pytest

from repro.core import Tabby
from repro.corpus.jdk import (
    URLDNS_SINK,
    URLDNS_SOURCE,
    build_jdk8_extras,
    build_lang_base,
)
from repro.jvm.hierarchy import ClassHierarchy


class TestLangBase:
    def test_object_is_root(self):
        h = ClassHierarchy(build_lang_base())
        assert h.require("java.lang.Object").super_name is None

    def test_serialization_interfaces_defined(self):
        h = ClassHierarchy(build_lang_base())
        assert h.get("java.io.Serializable").is_interface
        assert h.is_subtype_of("java.io.Externalizable", "java.io.Serializable")

    def test_collections_serializable(self):
        h = ClassHierarchy(build_lang_base())
        for name in ("java.util.HashMap", "java.util.PriorityQueue", "java.util.Hashtable"):
            assert h.is_serializable(name)

    def test_base_is_chain_free(self):
        """The base alone must yield no gadget chains — it provides
        only chain *prefixes*."""
        chains = Tabby().add_classes(build_lang_base()).find_gadget_chains()
        assert chains == []

    def test_fresh_copies_per_call(self):
        a, b = build_lang_base(), build_lang_base()
        assert all(x is not y for x, y in zip(a, b))


class TestURLDNS:
    @pytest.fixture(scope="class")
    def chains(self):
        classes = build_lang_base() + build_jdk8_extras()
        return Tabby().add_classes(classes).find_gadget_chains()

    def test_urldns_endpoints(self, chains):
        assert any(c.endpoint_key == (URLDNS_SOURCE, URLDNS_SINK) for c in chains)

    def test_transient_handler_field(self):
        h = ClassHierarchy(build_jdk8_extras())
        field = h.require("java.net.URL").field("handler")
        assert field.is_transient

    def test_enummap_decoy_present_but_harmless(self, chains):
        classes = build_jdk8_extras()
        assert any(c.name == "java.util.EnumMap" for c in classes)
        for chain in chains:
            assert all(s.class_name != "java.util.EnumMap" for s in chain.steps)

"""Tests over the 26 dataset components and their ground truth."""

import pytest

from repro.core import Tabby
from repro.corpus import (
    COMPONENT_NAMES,
    build_component,
    build_lang_base,
)
from repro.jvm.hierarchy import ClassHierarchy


class TestRegistry:
    def test_26_components(self):
        assert len(COMPONENT_NAMES) == 26

    def test_unknown_component_rejected(self):
        with pytest.raises(KeyError):
            build_component("log4shell")

    def test_known_in_dataset_totals_38(self):
        total = sum(build_component(n).known_count for n in COMPONENT_NAMES)
        assert total == 38

    def test_twelve_proxy_chains(self):
        proxies = sum(
            sum(1 for k in build_component(n).known_chains if k.via_proxy)
            for n in COMPONENT_NAMES
        )
        assert proxies == 12  # = paper's 38 - 26 found

    def test_gi_findable_chains(self):
        gi = sum(
            sum(1 for k in build_component(n).known_chains if k.gi_findable)
            for n in COMPONENT_NAMES
        )
        assert gi == 5  # matches GI's Known column total


@pytest.mark.parametrize("name", COMPONENT_NAMES)
class TestEveryComponent:
    def test_builds_valid_hierarchy(self, name):
        spec = build_component(name)
        hierarchy = ClassHierarchy(build_lang_base() + spec.classes)
        assert len(hierarchy) > 10

    def test_builds_fresh_classes_each_time(self, name):
        a = build_component(name)
        b = build_component(name)
        assert {c.name for c in a.classes} == {c.name for c in b.classes}
        assert all(x is not y for x, y in zip(a.classes, b.classes))

    def test_package_set(self, name):
        spec = build_component(name)
        assert spec.package
        assert any(c.name.startswith(spec.package) for c in spec.classes)

    def test_tabby_recovers_exactly_the_non_proxy_knowns(self, name):
        spec = build_component(name)
        classes = build_lang_base() + spec.classes
        chains = Tabby().add_classes(classes).find_gadget_chains()
        for known in spec.known_chains:
            found = any(known.matches(c) for c in chains)
            if known.via_proxy:
                assert not found, f"{known} should be invisible to Tabby"
            else:
                assert found, f"{known} should be found by Tabby"


class TestKnownChainSpec:
    def test_matches_by_endpoints(self):
        from repro.core.chains import ChainStep, GadgetChain
        from repro.corpus.base import KnownChainSpec

        spec = KnownChainSpec(("a.Src", "readObject"), ("b.Snk", "run"))
        chain = GadgetChain(
            [ChainStep("a.Src", "readObject", 1), ChainStep("b.Snk", "run", 0)]
        )
        assert spec.matches(chain)
        other = GadgetChain(
            [ChainStep("a.Other", "readObject", 1), ChainStep("b.Snk", "run", 0)]
        )
        assert not spec.matches(other)

    def test_component_match_known(self):
        spec = build_component("CommonsBeanutils1")
        from repro.core.chains import ChainStep, GadgetChain

        chain = GadgetChain(
            [
                ChainStep("java.util.PriorityQueue", "readObject", 1),
                ChainStep("java.lang.reflect.Method", "invoke", 2),
            ]
        )
        assert spec.match_known(chain) is not None


@pytest.mark.parametrize("name", COMPONENT_NAMES)
def test_component_validates_error_free(name):
    """Every component passes Soot-style body/linkage validation."""
    from repro.jvm.validate import validate_classes

    spec = build_component(name)
    issues = validate_classes(build_lang_base() + spec.classes)
    assert [i for i in issues if i.severity == "error"] == []

"""Tests for the Table X development scenes."""

import pytest

from repro.bench import run_scene
from repro.corpus import SCENE_BUILDERS, build_scene
from repro.corpus.scenes import TABLE_XI_TARGET_SOURCES


class TestSceneRegistry:
    def test_five_scenes(self):
        assert sorted(SCENE_BUILDERS) == sorted(
            ["Spring", "JDK8", "Tomcat", "Jetty", "Apache Dubbo"]
        )

    def test_unknown_scene_rejected(self):
        with pytest.raises(KeyError):
            build_scene("WebSphere")

    @pytest.mark.parametrize("name", sorted(SCENE_BUILDERS))
    def test_scene_shape(self, name):
        scene = build_scene(name)
        assert scene.jar_count >= 2
        assert scene.code_size_bytes() > 1000
        assert scene.expected_effective > 0


@pytest.mark.parametrize(
    "name,result,effective",
    [
        ("Spring", 10, 7),
        ("JDK8", 13, 10),
        ("Tomcat", 4, 3),
        ("Jetty", 6, 4),
        ("Apache Dubbo", 5, 3),
    ],
)
def test_scene_reproduces_table_x_row(name, result, effective):
    row = run_scene(name)
    assert row.result_count == result
    assert row.effective_count == effective


def test_spring_scene_contains_table_xi_chains():
    row = run_scene("Spring")
    heads = {
        step.class_name
        for chain in row.effective_chains
        for step in chain.steps
        if step.class_name in TABLE_XI_TARGET_SOURCES
    }
    assert heads == set(TABLE_XI_TARGET_SOURCES)


def test_jdk8_scene_has_xstream_bypass_family():
    scene = build_scene("JDK8")
    xstream_classes = [c for c in scene.classes if c.jar_name == "xstream-1.4.15.jar"]
    sources = [c for c in xstream_classes if c.declares_serializable and
               any(m.name in ("readObject", "readResolve") for m in c.methods.values())]
    assert len(sources) >= 5  # 1 known + the 4 CVE chains


@pytest.mark.parametrize("name", sorted(SCENE_BUILDERS))
def test_scene_validates_error_free(name):
    from repro.jvm.validate import validate_classes

    scene = build_scene(name)
    issues = validate_classes(scene.classes)
    assert [i for i in issues if i.severity == "error"] == []

"""Tests for the chain-pattern generators: each pattern must have its
designed visibility profile per tool (the table in the module docstring)."""

import pytest

from repro.baselines import GadgetInspector, Serianalyzer
from repro.core import Tabby
from repro.corpus.jdk import build_lang_base
from repro.corpus.patterns import (
    SINK_SHAPES,
    plant_extends_chain,
    plant_gi_bait_fan,
    plant_guard_decoy,
    plant_interface_chain,
    plant_proxy_chain,
    plant_sl_bomb,
    plant_sl_crowders,
    plant_sl_flood,
)
from repro.errors import CorpusError
from repro.jvm.builder import ProgramBuilder
from repro.verify import ChainVerifier


def run_all(pb):
    classes = build_lang_base() + pb.build()
    tabby = Tabby().add_classes(classes).find_gadget_chains()
    gi = GadgetInspector(classes).run()
    sl = Serianalyzer(classes, step_budget=40_000).run()
    return classes, tabby, gi, sl


class TestSinkShapes:
    def test_all_shapes_are_catalog_sinks(self):
        from repro.core.sinks import SinkCatalog

        catalog = SinkCatalog()
        for shape in SINK_SHAPES.values():
            assert catalog.lookup(shape.class_name, shape.method_name) is not None

    def test_unknown_shape_rejected(self):
        from repro.corpus.patterns import emit_sink

        pb = ProgramBuilder()
        with pb.cls("t.C") as c:
            with c.method("m") as m:
                with pytest.raises(CorpusError):
                    emit_sink(m, "nuke_from_orbit", None)
                m.ret()


class TestInterfaceChain:
    @pytest.fixture(scope="class")
    def outcome(self):
        pb = ProgramBuilder(jar="x.jar")
        spec = plant_interface_chain(
            pb, iface="t.Handler", impl="t.HandlerImpl", source="t.Source",
            sink_key="exec",
        )
        return spec, run_all(pb)

    def test_tabby_finds_it(self, outcome):
        spec, (classes, tabby, gi, sl) = outcome
        assert any(spec.matches(c) for c in tabby)

    def test_gi_misses_it(self, outcome):
        spec, (classes, tabby, gi, sl) = outcome
        assert not any(spec.matches(c) for c in gi.chains)

    def test_sl_finds_it(self, outcome):
        spec, (classes, tabby, gi, sl) = outcome
        assert any(spec.matches(c) for c in sl.chains)

    def test_it_verifies_effective(self, outcome):
        spec, (classes, tabby, gi, sl) = outcome
        chain = next(c for c in tabby if spec.matches(c))
        assert ChainVerifier(classes).verify(chain).effective


class TestExtendsChain:
    @pytest.fixture(scope="class")
    def outcome(self):
        pb = ProgramBuilder(jar="x.jar")
        spec = plant_extends_chain(
            pb, base="t.Base", sub="t.Sub", source="t.Source", sink_key="exec",
        )
        return spec, run_all(pb)

    def test_spec_flags_gi_findable(self, outcome):
        spec, _ = outcome
        assert spec.gi_findable and not spec.via_proxy

    def test_all_three_tools_find_it(self, outcome):
        spec, (classes, tabby, gi, sl) = outcome
        assert any(spec.matches(c) for c in tabby)
        assert any(spec.matches(c) for c in gi.chains)
        assert any(spec.matches(c) for c in sl.chains)


class TestProxyChain:
    @pytest.fixture(scope="class")
    def outcome(self):
        pb = ProgramBuilder(jar="x.jar")
        spec = plant_proxy_chain(
            pb, source="t.ProxySource", handler="t.Handler", sink_key="exec",
        )
        return spec, run_all(pb)

    def test_every_static_tool_misses_it(self, outcome):
        spec, (classes, tabby, gi, sl) = outcome
        assert not any(spec.matches(c) for c in tabby)
        assert not any(spec.matches(c) for c in gi.chains)
        assert not any(spec.matches(c) for c in sl.chains)

    def test_but_it_is_actually_effective(self, outcome):
        """The §V-B limitation: the chain exists, tools just can't see it."""
        from repro.core.chains import ChainStep, GadgetChain

        spec, (classes, _, _, _) = outcome
        witness = GadgetChain(
            [
                ChainStep("t.ProxySource", "readObject", 1),
                ChainStep("t.Handler", "invokeImpl", 1),
                ChainStep("java.lang.Runtime", "exec", 1),
            ]
        )
        assert ChainVerifier(classes).verify(witness).effective


class TestGuardDecoy:
    def test_reported_by_tabby_but_fake(self):
        pb = ProgramBuilder(jar="x.jar")
        plant_guard_decoy(pb, "t.Decoy", "t.Config")
        classes, tabby, gi, sl = run_all(pb)
        assert len(tabby) == 1
        verifier = ChainVerifier(classes)
        assert not verifier.verify(tabby[0]).effective

    def test_interface_variant_hides_from_gi(self):
        pb = ProgramBuilder(jar="x.jar")
        plant_guard_decoy(pb, "t.Decoy", "t.Config", through_interface="t.Guard")
        classes, tabby, gi, sl = run_all(pb)
        assert len(tabby) == 1
        assert gi.result_count == 0

    def test_direct_variant_visible_to_gi(self):
        pb = ProgramBuilder(jar="x.jar")
        plant_guard_decoy(pb, "t.Decoy", "t.Config")
        classes, tabby, gi, sl = run_all(pb)
        assert gi.result_count == 1


class TestGIBaitFan:
    def test_gi_reports_leaves_tabby_prunes(self):
        pb = ProgramBuilder(jar="x.jar")
        plant_gi_bait_fan(pb, "t.BaitSource", "t.BaitHelper", leaves=5)
        classes, tabby, gi, sl = run_all(pb)
        assert tabby == []
        assert gi.result_count == 5

    def test_zero_leaves_is_noop(self):
        pb = ProgramBuilder(jar="x.jar")
        plant_gi_bait_fan(pb, "t.BaitSource", "t.BaitHelper", leaves=0)
        assert pb.build() == []


class TestSLFlood:
    @pytest.mark.parametrize("count", [1, 3, 7, 20])
    def test_flood_produces_exact_count(self, count):
        pb = ProgramBuilder(jar="x.jar")
        plant_sl_flood(pb, "t.flood", count)
        classes, tabby, gi, sl = run_all(pb)
        assert sl.result_count == count
        assert tabby == []
        assert gi.result_count == 0

    def test_flood_chains_are_fake(self):
        pb = ProgramBuilder(jar="x.jar")
        plant_sl_flood(pb, "t.flood", 3)
        classes, tabby, gi, sl = run_all(pb)
        verifier = ChainVerifier(classes)
        assert all(not verifier.verify(c).effective for c in sl.chains)


class TestSLCrowders:
    def test_crowders_hide_later_chains_from_sl(self):
        pb = ProgramBuilder(jar="x.jar")
        plant_sl_crowders(pb, "t.crowd", ["exec"])
        spec = plant_interface_chain(
            pb, iface="t.Handler", impl="t.HandlerImpl", source="t.Source",
            sink_key="exec",
        )
        classes, tabby, gi, sl = run_all(pb)
        assert any(spec.matches(c) for c in tabby)  # Tabby unaffected
        assert not any(spec.matches(c) for c in sl.chains)  # SL's cap loss

    def test_chains_before_crowders_survive(self):
        pb = ProgramBuilder(jar="x.jar")
        spec = plant_interface_chain(
            pb, iface="t.Handler", impl="t.HandlerImpl", source="t.Source",
            sink_key="exec",
        )
        plant_sl_crowders(pb, "t.crowd", ["exec"])
        classes, tabby, gi, sl = run_all(pb)
        assert any(spec.matches(c) for c in sl.chains)


class TestSLBomb:
    def test_bomb_explodes_sl_only(self):
        pb = ProgramBuilder(jar="x.jar")
        plant_sl_bomb(pb, "t.bomb")
        classes, tabby, gi, sl = run_all(pb)
        assert not sl.terminated
        assert gi.terminated
        assert tabby == []

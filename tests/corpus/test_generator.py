"""Tests for the random corpus generator (Table VIII input)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.corpus.generator import generate_corpus
from repro.core import Tabby
from repro.jvm.cfg import build_cfg
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm import jasm


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        a = generate_corpus(20, seed=3)
        b = generate_corpus(20, seed=3)
        assert jasm.dumps([c for j in a for c in j.classes]) == jasm.dumps(
            [c for j in b for c in j.classes]
        )

    def test_different_seed_differs(self):
        a = generate_corpus(20, seed=3)
        b = generate_corpus(20, seed=4)
        assert jasm.dumps([c for j in a for c in j.classes]) != jasm.dumps(
            [c for j in b for c in j.classes]
        )


class TestScaling:
    def test_larger_target_more_classes(self):
        small = sum(len(j) for j in generate_corpus(10))
        large = sum(len(j) for j in generate_corpus(80))
        assert large > small * 4

    def test_size_approximates_target(self):
        jars = generate_corpus(100)
        actual_kb = sum(j.code_size_bytes() for j in jars) / 1024
        assert 30 < actual_kb < 300


@settings(max_examples=10, deadline=None)
@given(kb=st.integers(min_value=5, max_value=60), seed=st.integers(0, 50))
def test_property_generated_corpus_is_analysable(kb, seed):
    """Every generated corpus parses, builds CFGs, and survives a full
    Tabby analysis without errors."""
    jars = generate_corpus(kb, seed=seed)
    classes = [c for j in jars for c in j.classes]
    # round-trips through the textual format
    assert jasm.loads(jasm.dumps(classes))
    # all method bodies yield CFGs
    for cls in classes:
        for method in cls.methods.values():
            if method.has_body:
                build_cfg(method)
    # full pipeline never crashes
    cpg = Tabby().add_classes(classes).build_cpg()
    assert cpg.statistics.method_node_count > 0

"""Rendering coverage for the table formatters."""

import pytest

from repro.bench.metrics import ToolScore
from repro.bench.tables import (
    ComponentResult,
    SceneResult,
    TableVIIIRow,
    format_table_ix,
    format_table_viii,
    format_table_x,
    format_table_xi,
)
from repro.core.chains import ChainStep, GadgetChain


def test_table_viii_columns_align():
    rows = [TableVIIIRow(10, 11.0, 2, 5, 20, 60, 0.0123)]
    text = format_table_viii(rows)
    header, sep, row = text.splitlines()
    assert len(sep) == len(header)
    assert "0.012" in row


def test_table_ix_unterminated_renders_x():
    score = lambda t, **kw: ToolScore(t, "C", known_in_dataset=1, **kw)
    result = ComponentResult(
        "C", 1,
        tabby=score("tabby", result_count=2, known_found=1),
        gadgetinspector=score("gadgetinspector", result_count=3, fake_count=3),
        serianalyzer=ToolScore("serianalyzer", "C", known_in_dataset=1, terminated=False),
    )
    text = format_table_ix([result])
    assert "/    X" in text or "/X" in text.replace(" ", "/")


def test_table_x_rendering():
    row = SceneResult("S", "1.0", 3, 12.5, 10, 7, 30.0, 0.5)
    text = format_table_x([row])
    assert "30.0%" in text and "12.5" in text


def test_table_xi_starts_at_target_source():
    chain = GadgetChain([
        ChainStep("x.Source", "readObject", 1),
        ChainStep("org.springframework.aop.target.LazyInitTargetSource", "getTarget", 0),
        ChainStep("javax.naming.Context", "lookup", 1),
    ])
    text = format_table_xi([chain])
    lines = text.splitlines()
    assert lines[0] == "#1"
    assert "LazyInitTargetSource" in lines[1]
    assert "x.Source" not in text  # presentation starts at the getTarget hop

"""Tests for the evaluation metrics (Formulas 5 and 6, classification)."""

import pytest

from repro.bench.metrics import ToolScore, classify_chains, fnr, fpr
from repro.core.chains import ChainStep, GadgetChain
from repro.corpus import build_component, build_lang_base
from repro.verify import ChainVerifier


class TestFormulas:
    def test_fpr_formula_5(self):
        assert fpr(26, 79) == pytest.approx(32.9, abs=0.05)
        assert fpr(0, 10) == 0.0
        assert fpr(0, 0) == 0.0

    def test_fnr_formula_6(self):
        assert fnr(26, 38) == pytest.approx(31.6, abs=0.05)
        assert fnr(38, 38) == 0.0
        assert fnr(0, 0) == 0.0

    def test_toolscore_percentages(self):
        score = ToolScore("t", "c", result_count=10, fake_count=3,
                          known_found=1, known_in_dataset=2)
        assert score.fpr_percent == 30.0
        assert score.fnr_percent == 50.0

    def test_unterminated_has_no_percentages(self):
        score = ToolScore("t", "c", terminated=False, known_in_dataset=2)
        assert score.fpr_percent is None
        assert score.fnr_percent is None


class TestClassification:
    @pytest.fixture(scope="class")
    def setup(self):
        spec = build_component("CommonsBeanutils1")
        classes = build_lang_base() + spec.classes
        return spec, ChainVerifier(classes)

    def test_known_chain_classified(self, setup):
        spec, verifier = setup
        chain = GadgetChain([
            ChainStep("java.util.PriorityQueue", "readObject", 1),
            ChainStep("java.lang.reflect.Method", "invoke", 2),
        ])
        score = classify_chains("t", spec, [chain], verifier)
        assert score.known_found == 1
        assert score.fake_count == 0 and score.unknown_count == 0

    def test_duplicate_known_counted_once(self, setup):
        spec, verifier = setup
        chain1 = GadgetChain([
            ChainStep("java.util.PriorityQueue", "readObject", 1),
            ChainStep("java.lang.reflect.Method", "invoke", 2),
        ])
        chain2 = GadgetChain([
            ChainStep("java.util.PriorityQueue", "readObject", 1),
            ChainStep("x.Middle", "hop", 0),
            ChainStep("java.lang.reflect.Method", "invoke", 2),
        ])
        score = classify_chains("t", spec, [chain1, chain2], verifier)
        assert score.result_count == 2
        assert score.known_found == 1

    def test_unmatched_ineffective_is_fake(self, setup):
        spec, verifier = setup
        bogus = GadgetChain([
            ChainStep("no.Such", "readObject", 1),
            ChainStep("java.lang.Runtime", "exec", 1),
        ])
        score = classify_chains("t", spec, [bogus], verifier)
        assert score.fake_count == 1

    def test_unterminated_short_circuits(self, setup):
        spec, verifier = setup
        score = classify_chains("t", spec, [], verifier, terminated=False)
        assert not score.terminated
        assert score.result_count == 0

"""Smoke tests for the table harness (full runs live in benchmarks/)."""

import pytest

from repro.bench import (
    format_table_ix,
    format_table_viii,
    format_table_x,
    format_table_xi,
    run_scene,
    run_table_ix,
    run_table_viii,
    run_table_xi,
    table_ix_totals,
)


class TestTableVIII:
    def test_rows_and_formatting(self):
        rows = run_table_viii(sizes_kb=(10, 20), repetitions=3)
        assert len(rows) == 2
        assert rows[1].method_nodes > rows[0].method_nodes
        text = format_table_viii(rows)
        assert "Time(s)" in text and "10" in text


class TestTableIX:
    @pytest.fixture(scope="class")
    def results(self):
        return run_table_ix(components=["CommonsBeanutils1", "Myface"])

    def test_subset_run(self, results):
        assert [r.component for r in results] == ["CommonsBeanutils1", "Myface"]
        cb = results[0]
        assert cb.tabby.known_found == 1
        assert cb.gadgetinspector.known_found == 0

    def test_totals(self, results):
        totals = table_ix_totals(results)
        assert totals["known_in_dataset"] == 2
        assert totals["tabby_known"] == 2

    def test_formatting(self, results):
        text = format_table_ix(results)
        assert "CommonsBeanutils1" in text
        assert "FPR%" in text and "FNR%" in text


class TestTableX:
    def test_single_scene(self):
        row = run_scene("Tomcat")
        assert row.result_count == 4
        assert row.effective_count == 3
        text = format_table_x([row])
        assert "Tomcat" in text


class TestTableXI:
    def test_chains_and_formatting(self):
        chains = run_table_xi()
        assert len(chains) == 3
        text = format_table_xi(chains)
        assert "LazyInitTargetSource" in text
        assert "javax.naming.Context.lookup()" in text

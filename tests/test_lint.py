"""Tests for the dataflow-based linter (repro.lint)."""

from repro.corpus import COMPONENT_NAMES, build_component, build_lang_base
from repro.jvm import jasm
from repro.jvm.builder import ProgramBuilder
from repro.lint import LINT_RULES, lint_classes


def _rules(issues, suppressed=None):
    out = []
    for i in issues:
        if suppressed is None or i.suppressed == suppressed:
            out.append(i.rule)
    return out


def _single_method(build):
    pb = ProgramBuilder()
    with pb.cls("t.T") as c:
        with c.method("m") as m:
            build(m)
    return pb.build()


class TestRules:
    def test_unreachable_code(self):
        def build(m):
            m.goto("end")
            m.assign(m.local("x"), 1)
            m.label("end")
            m.ret()

        issues = lint_classes(_single_method(build))
        assert "unreachable-code" in _rules(issues)

    def test_use_before_init_partial(self):
        pb = ProgramBuilder()
        with pb.cls("t.T") as c:
            with c.method("m", params=["int"], param_names=["p"]) as m:
                m.if_ne(m.param(1), 0, "set")
                m.goto("end")
                m.label("set")
                m.assign(m.local("v"), 1)
                m.label("end")
                m.assign(m.local("u"), m.local("v"))
        issues = lint_classes(pb.build())
        msgs = [i.message for i in issues if i.rule == "use-before-init"]
        assert any("`v`" in msg and "some path" in msg for msg in msgs)

    def test_use_before_init_never_assigned(self):
        def build(m):
            m.assign(m.local("u"), m.local("ghost"))

        issues = lint_classes(_single_method(build))
        msgs = [i.message for i in issues if i.rule == "use-before-init"]
        assert any("`ghost`" in msg and "any path" in msg for msg in msgs)

    def test_dead_store(self):
        def build(m):
            m.assign(m.local("d"), 5)
            m.ret()

        issues = lint_classes(_single_method(build))
        assert "dead-store" in _rules(issues)

    def test_call_rhs_is_not_a_dead_store(self):
        # the invoke's side effect keeps the store alive
        def build(m):
            m.invoke_static("t.T", "m", returns="int")
            m.ret()

        issues = lint_classes(_single_method(build))
        assert "dead-store" not in _rules(issues)

    def test_guard_always_false(self):
        def build(m):
            c = m.binop("!=", 0, 0)
            m.iff(c, "fire")
            m.goto("end")
            m.label("fire")
            m.nop()
            m.label("end")
            m.ret()

        issues = lint_classes(_single_method(build))
        assert "guard-always-false" in _rules(issues)

    def test_guard_always_true(self):
        def build(m):
            c = m.binop("==", 1, 1)
            m.iff(c, "end")
            m.nop()
            m.label("end")
            m.ret()

        issues = lint_classes(_single_method(build))
        assert "guard-always-true" in _rules(issues)

    def test_param_dependent_guard_is_clean(self):
        pb = ProgramBuilder()
        with pb.cls("t.T") as c:
            with c.method("m", params=["int"], param_names=["p"]) as m:
                m.if_ne(m.param(1), 0, "end")
                m.nop()
                m.label("end")
                m.ret()
        issues = lint_classes(pb.build())
        assert not [i for i in issues if i.rule.startswith("guard-")]

    def test_arity_mismatch(self):
        pb = ProgramBuilder()
        with pb.cls("t.A") as c:
            with c.method("foo", params=["int"]) as m:
                m.ret()
        with pb.cls("t.T") as c:
            with c.method("m") as m:
                a = m.new("t.A")
                m.invoke(a, "t.A", "foo")  # zero args, foo wants one
        issues = lint_classes(pb.build())
        assert "arity-mismatch" in _rules(issues)

    def test_call_into_undefined_class_is_not_flagged(self):
        def build(m):
            o = m.new("ext.Unknown")
            m.invoke(o, "ext.Unknown", "anything")

        issues = lint_classes(_single_method(build))
        assert "arity-mismatch" not in _rules(issues)

    def test_bad_static_field_ref(self):
        pb = ProgramBuilder()
        with pb.cls("t.A") as c:
            c.field("REAL", "int", static=True)
        with pb.cls("t.T") as c:
            with c.method("m") as m:
                m.get_static("t.A", "MISSING")
                m.ret()
        issues = lint_classes(pb.build())
        assert "bad-static-field-ref" in _rules(issues)

    def test_duplicate_switch_case(self):
        def build(m):
            m.assign(m.local("k"), 1)
            m.switch(m.local("k"), [(1, "a"), (1, "b")], "d")
            m.label("a")
            m.goto("d")
            m.label("b")
            m.goto("d")
            m.label("d")
            m.ret()

        issues = lint_classes(_single_method(build))
        assert "duplicate-switch-case" in _rules(issues)

    def test_severities_match_registry(self):
        def build(m):
            m.assign(m.local("d"), 5)
            m.ret()

        for issue in lint_classes(_single_method(build)):
            assert issue.severity == LINT_RULES[issue.rule][0]


class TestSuppression:
    def _decoy_classes(self):
        pb = ProgramBuilder()
        with pb.cls("t.T") as c:
            with c.method("m") as m:
                m.lint_ignore("dead-store")
                m.assign(m.local("d"), 5)
                m.ret()
        return pb.build()

    def test_builder_lint_ignore(self):
        issues = lint_classes(self._decoy_classes())
        dead = [i for i in issues if i.rule == "dead-store"]
        assert dead and all(i.suppressed for i in dead)
        assert "(suppressed)" in str(dead[0])

    def test_class_level_suppression(self):
        pb = ProgramBuilder()
        with pb.cls("t.T") as c:
            c.lint_ignore("dead-store")
            with c.method("m") as m:
                m.assign(m.local("d"), 5)
                m.ret()
        issues = lint_classes(pb.build())
        assert all(i.suppressed for i in issues if i.rule == "dead-store")

    def test_jasm_pragma_round_trip(self):
        # a builder-side suppression survives dump -> parse as an
        # inline `# lint: ignore[...]` pragma
        text = jasm.dumps(self._decoy_classes())
        assert "# lint: ignore[dead-store]" in text
        issues = lint_classes(jasm.loads(text))
        dead = [i for i in issues if i.rule == "dead-store"]
        assert dead and all(i.suppressed for i in dead)

    def test_hand_written_pragma(self):
        text = """
class t.T {
  # lint: ignore[guard-always-true]
  method void m() {
    # lint: ignore[dead-store]
    d = 5;
    return;
  }
}
"""
        classes = jasm.loads(text)
        cls = classes[0]
        assert cls.lint_suppressions == {"guard-always-true"}
        assert cls.find_method("m").lint_suppressions == {"dead-store"}
        issues = lint_classes(classes)
        assert all(i.suppressed for i in issues if i.rule == "dead-store")

    def test_other_rules_stay_unsuppressed(self):
        pb = ProgramBuilder()
        with pb.cls("t.T") as c:
            with c.method("m") as m:
                m.lint_ignore("dead-store")
                m.assign(m.local("u"), m.local("ghost"))
        issues = lint_classes(pb.build())
        ubi = [i for i in issues if i.rule == "use-before-init"]
        assert ubi and not any(i.suppressed for i in ubi)


class TestCorpus:
    def test_lang_base_is_clean(self):
        issues = lint_classes(build_lang_base())
        assert [str(i) for i in issues if not i.suppressed] == []

    def test_component_sample_has_no_unsuppressed_errors(self):
        base = build_lang_base()
        for name in ("commons-collections(3.2.1)", "BeanShell1", "Spring"):
            spec = build_component(name)
            only = {cls.name for cls in spec.classes}
            issues = lint_classes(base + spec.classes, only_classes=only)
            errors = [
                str(i) for i in issues
                if i.severity == "error" and not i.suppressed
            ]
            assert errors == [], f"{name}: {errors}"

    def test_guard_decoys_are_suppressed(self):
        base = build_lang_base()
        spec = build_component("BeanShell1")
        only = {cls.name for cls in spec.classes}
        issues = lint_classes(base + spec.classes, only_classes=only)
        decoys = [i for i in issues if i.rule == "guard-always-false"]
        assert decoys and all(i.suppressed for i in decoys)

    def test_full_corpus_has_no_unsuppressed_errors(self):
        base = build_lang_base()
        for name in COMPONENT_NAMES:
            spec = build_component(name)
            only = {cls.name for cls in spec.classes}
            issues = lint_classes(base + spec.classes, only_classes=only)
            errors = [
                str(i) for i in issues
                if i.severity == "error" and not i.suppressed
            ]
            assert errors == [], f"{name}: {errors}"

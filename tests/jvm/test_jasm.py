"""Unit tests for the jasm textual format (lexer, parser, printer)."""

import pytest

from repro.errors import JasmSyntaxError
from repro.jvm import ir, jasm
from repro.jvm.builder import ProgramBuilder
from repro.jvm.model import SERIALIZABLE


def round_trip(source: str) -> str:
    return jasm.dumps(jasm.loads(source))


class TestLexer:
    def test_basic_tokens(self):
        toks = jasm.Lexer('a = "hi" ; // comment\n b := @param-1 ;').tokens()
        kinds = [t.kind for t in toks]
        assert "string" in kinds
        assert "assign_id" in kinds
        assert "atref" in kinds
        assert kinds[-1] == "eof"

    def test_qname_vs_name(self):
        toks = jasm.Lexer("java.lang.Object foo").tokens()
        assert toks[0].kind == "qname"
        assert toks[1].kind == "name"

    def test_line_tracking(self):
        toks = jasm.Lexer("a\nb").tokens()
        assert toks[0].line == 1
        assert toks[1].line == 2

    def test_unexpected_character(self):
        with pytest.raises(JasmSyntaxError):
            jasm.Lexer("a ~ b").tokens()

    def test_keywords_recognised(self):
        toks = jasm.Lexer("class interface return").tokens()
        assert all(t.kind == "kw" for t in toks[:-1])


class TestParserBasics:
    def test_empty_class(self):
        (cls,) = jasm.loads("class a.B { }")
        assert cls.name == "a.B"
        assert cls.super_name == "java.lang.Object"

    def test_extends_implements(self):
        (cls,) = jasm.loads(
            "class a.B extends a.A implements x.I, java.io.Serializable { }"
        )
        assert cls.super_name == "a.A"
        assert cls.interface_names == ("x.I", "java.io.Serializable")

    def test_interface(self):
        (cls,) = jasm.loads("interface a.I { method java.lang.Object get(); }")
        assert cls.is_interface
        assert not cls.find_method("get").has_body

    def test_field(self):
        (cls,) = jasm.loads("class a.B { field static int count; field a.B next; }")
        assert cls.field("count").is_static
        assert cls.field("next").type.name == "a.B"

    def test_method_params(self):
        (cls,) = jasm.loads(
            "class a.B { method int f(int x, java.lang.String s) { return 0; } }"
        )
        m = cls.find_method("f")
        assert m.param_names == ("x", "s")
        assert [t.name for t in m.param_types] == ["int", "java.lang.String"]

    def test_array_types(self):
        (cls,) = jasm.loads("class a.B { field java.lang.Object[] items; }")
        assert cls.field("items").type.name == "java.lang.Object[]"

    def test_syntax_error_position(self):
        with pytest.raises(JasmSyntaxError) as exc:
            jasm.loads("class a.B {\n  field ; \n}")
        assert exc.value.line == 2


class TestStatements:
    def parse_body(self, stmts: str):
        (cls,) = jasm.loads(
            "class a.B { method void m(java.lang.Object p) { %s } }" % stmts
        )
        return cls.find_method("m").body

    def test_identity(self):
        body = self.parse_body("this := @this; p := @param-1;")
        assert isinstance(body[0], ir.IdentityStmt)
        assert isinstance(body[0].ref, ir.ThisRef)
        assert isinstance(body[1].ref, ir.ParamRef)
        assert body[1].ref.index == 1

    def test_field_access(self):
        body = self.parse_body("a = b.f; b.f = a;")
        load, store = body
        assert isinstance(load.rhs, ir.InstanceFieldRef)
        assert isinstance(store.target, ir.InstanceFieldRef)

    def test_static_field_access(self):
        body = self.parse_body(
            "a = static java.lang.System.out; static a.B.flag = a;"
        )
        load, store = body
        assert isinstance(load.rhs, ir.StaticFieldRef)
        assert load.rhs.class_name == "java.lang.System"
        assert load.rhs.field_name == "out"
        assert isinstance(store.target, ir.StaticFieldRef)

    def test_array_access(self):
        body = self.parse_body("a = b[0]; b[i] = a;")
        assert isinstance(body[0].rhs, ir.ArrayRef)
        assert isinstance(body[1].target, ir.ArrayRef)

    def test_new_and_newarray(self):
        body = self.parse_body("a = new x.Y; b = newarray int[10];")
        assert isinstance(body[0].rhs, ir.NewExpr)
        assert isinstance(body[1].rhs, ir.NewArrayExpr)

    def test_cast_and_instanceof(self):
        body = self.parse_body("a = (x.Y) b; c = b instanceof x.Y;")
        assert isinstance(body[0].rhs, ir.CastExpr)
        assert isinstance(body[1].rhs, ir.InstanceOfExpr)

    def test_binop(self):
        body = self.parse_body("a = b == c; d = b + c;")
        assert isinstance(body[0].rhs, ir.BinOpExpr)
        assert body[0].rhs.op == "=="
        assert body[1].rhs.op == "+"

    def test_virtual_invoke(self):
        body = self.parse_body("virtual b java.lang.Runtime.exec(a);")
        call = body[0].invoke_expr()
        assert call.kind == "virtual"
        assert call.class_name == "java.lang.Runtime"
        assert call.method_name == "exec"
        assert call.args == (ir.Local("a"),)

    def test_static_invoke_vs_static_field(self):
        body = self.parse_body(
            "r = static java.lang.Runtime.getRuntime(); s = static a.B.flag;"
        )
        assert isinstance(body[0].rhs, ir.InvokeExpr)
        assert isinstance(body[1].rhs, ir.StaticFieldRef)

    def test_constructor_invoke(self):
        body = self.parse_body("a = new x.Y; special a x.Y.<init>(p);")
        call = body[1].invoke_expr()
        assert call.method_name == "<init>"

    def test_control_flow(self):
        body = self.parse_body(
            "if a goto end; goto end; end: return; "
        )
        assert isinstance(body[0], ir.IfStmt)
        assert isinstance(body[1], ir.GotoStmt)
        assert body[2].label == "end"

    def test_switch(self):
        body = self.parse_body(
            "switch p { case 1: goto a, case 2: goto b, default: goto c }; "
            "a: nop; b: nop; c: return;"
        )
        sw = body[0]
        assert isinstance(sw, ir.SwitchStmt)
        assert sw.cases == ((1, "a"), (2, "b"))
        assert sw.default == "c"

    def test_throw_and_nop(self):
        body = self.parse_body("nop; throw p;")
        assert isinstance(body[0], ir.NopStmt)
        assert isinstance(body[1], ir.ThrowStmt)

    def test_string_constants(self):
        body = self.parse_body('a = "hello \\"world\\"";')
        assert body[0].rhs == ir.StringConst('hello "world"')

    def test_class_constant(self):
        body = self.parse_body("a = class java.lang.Runtime;")
        assert body[0].rhs == ir.ClassConst("java.lang.Runtime")

    def test_null_and_int(self):
        body = self.parse_body("a = null; b = -5;")
        assert isinstance(body[0].rhs, ir.NullConst)
        assert body[1].rhs == ir.IntConst(-5)

    def test_deep_dotted_ref_rejected(self):
        with pytest.raises(JasmSyntaxError):
            self.parse_body("a = b.c.d;")


class TestRoundTrip:
    def test_idempotent_on_builder_output(self):
        pb = ProgramBuilder()
        with pb.cls("demo.Chain", implements=[SERIALIZABLE]) as c:
            c.field("next", "java.lang.Object")
            c.field("flag", "int", static=True)
            with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
                v = m.get_field(m.this, "next")
                m.if_eq(v, None, "skip")
                m.invoke(v, "java.lang.Object", "toString", returns="java.lang.String")
                m.label("skip")
                arr = m.new_array("int", 3)
                m.array_set(arr, 0, 1)
                m.set_static("demo.Chain", "flag", 1)
                g = m.get_static("demo.Chain", "flag")
                m.switch(g, [(1, "one")], "skip2")
                m.label("one")
                m.cast(v, "java.lang.String")
                m.label("skip2")
                m.ret()
        text = jasm.dumps(pb.build())
        assert round_trip(text) == text

    def test_two_classes(self):
        source = "class a.B { }\n\nclass a.C extends a.B { }"
        classes = jasm.loads(source)
        assert [c.name for c in classes] == ["a.B", "a.C"]

    def test_comments_ignored(self):
        (cls,) = jasm.loads("// a comment\nclass a.B { # another\n }")
        assert cls.name == "a.B"

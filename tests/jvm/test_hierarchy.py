"""Unit tests for class-hierarchy analysis."""

import pytest

from repro.errors import HierarchyError
from repro.jvm.builder import ProgramBuilder
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.model import SERIALIZABLE


def sample_hierarchy():
    """Object <- Animal (Comparable) <- Dog; interface Comparable;
    Cat extends Animal; Dog overrides speak/compareTo."""
    pb = ProgramBuilder()
    obj = pb.cls("java.lang.Object")
    with obj:
        with obj.method("hashCode", returns="int") as m:
            m.ret(0)
        with obj.method("toString", returns="java.lang.String") as m:
            m.ret("obj")
    iface = pb.interface("t.Comparable")
    iface.abstract_method("compareTo", params=["java.lang.Object"], returns="int")
    iface.finish()
    with pb.cls("t.Animal", implements=["t.Comparable"]) as c:
        with c.method("speak", returns="java.lang.String") as m:
            m.ret("...")
        with c.method("compareTo", params=["java.lang.Object"], returns="int") as m:
            m.ret(0)
    with pb.cls("t.Dog", extends="t.Animal", implements=[SERIALIZABLE]) as c:
        with c.method("speak", returns="java.lang.String") as m:
            m.ret("woof")
        with c.method("compareTo", params=["java.lang.Object"], returns="int") as m:
            m.ret(1)
    pb.cls("t.Cat", extends="t.Animal").finish()
    return ClassHierarchy(pb.build())


class TestSupertypes:
    def test_transitive_supertypes(self):
        h = sample_hierarchy()
        supers = h.supertypes("t.Dog")
        assert "t.Animal" in supers
        assert "java.lang.Object" in supers
        assert "t.Comparable" in supers
        assert SERIALIZABLE in supers  # phantom interface

    def test_is_subtype_of(self):
        h = sample_hierarchy()
        assert h.is_subtype_of("t.Dog", "t.Animal")
        assert h.is_subtype_of("t.Dog", "t.Comparable")
        assert h.is_subtype_of("t.Dog", "t.Dog")
        assert h.is_subtype_of("t.Dog", "java.lang.Object")
        assert not h.is_subtype_of("t.Animal", "t.Dog")

    def test_subtypes(self):
        h = sample_hierarchy()
        assert set(h.subtypes("t.Animal")) == {"t.Dog", "t.Cat"}
        assert set(h.subtypes("t.Comparable")) == {"t.Animal", "t.Dog", "t.Cat"}

    def test_phantom_classes_tracked(self):
        h = sample_hierarchy()
        assert SERIALIZABLE in h.phantom_names
        assert "t.Animal" not in h.phantom_names

    def test_duplicate_class_rejected(self):
        pb = ProgramBuilder()
        pb.cls("t.A").finish()
        classes = pb.build()
        with pytest.raises(HierarchyError):
            ClassHierarchy(classes + classes)


class TestSerializability:
    def test_direct(self):
        h = sample_hierarchy()
        assert h.is_serializable("t.Dog")

    def test_not_serializable(self):
        h = sample_hierarchy()
        assert not h.is_serializable("t.Animal")
        assert not h.is_serializable("t.Cat")

    def test_inherited_through_superclass(self):
        pb = ProgramBuilder()
        pb.cls("t.Base", implements=[SERIALIZABLE]).finish()
        pb.cls("t.Derived", extends="t.Base").finish()
        h = ClassHierarchy(pb.build())
        assert h.is_serializable("t.Derived")

    def test_unknown_class_not_serializable(self):
        h = sample_hierarchy()
        assert not h.is_serializable("no.such.Class")


class TestResolution:
    def test_resolve_in_class(self):
        h = sample_hierarchy()
        m = h.resolve_method("t.Dog", "speak", 0)
        assert m.owner.name == "t.Dog"

    def test_resolve_up_the_chain(self):
        h = sample_hierarchy()
        m = h.resolve_method("t.Cat", "speak", 0)
        assert m.owner.name == "t.Animal"
        m2 = h.resolve_method("t.Cat", "hashCode", 0)
        assert m2.owner.name == "java.lang.Object"

    def test_resolve_missing(self):
        h = sample_hierarchy()
        assert h.resolve_method("t.Dog", "fly", 0) is None

    def test_dispatch_targets_include_overrides(self):
        h = sample_hierarchy()
        targets = h.dispatch_targets("t.Animal", "speak", 0)
        owners = {m.owner.name for m in targets}
        assert owners == {"t.Animal", "t.Dog"}

    def test_dispatch_on_interface(self):
        h = sample_hierarchy()
        targets = h.dispatch_targets("t.Comparable", "compareTo", 1)
        owners = {m.owner.name for m in targets}
        assert {"t.Animal", "t.Dog"} <= owners


class TestAliasEdges:
    def test_alias_parents_follow_formula_1(self):
        h = sample_hierarchy()
        dog_speak = h.require("t.Dog").find_method("speak")
        parents = h.alias_parents(dog_speak)
        assert [m.owner.name for m in parents] == ["t.Animal"]

    def test_alias_parent_through_interface(self):
        h = sample_hierarchy()
        animal_cmp = h.require("t.Animal").find_method("compareTo")
        parents = h.alias_parents(animal_cmp)
        assert "t.Comparable" in [m.owner.name for m in parents]

    def test_alias_requires_same_arity(self):
        pb = ProgramBuilder()
        with pb.cls("t.Base") as c:
            with c.method("f", params=["int", "int"]) as m:
                m.ret()
        with pb.cls("t.Sub", extends="t.Base") as c:
            with c.method("f", params=["int"]) as m:
                m.ret()
        h = ClassHierarchy(pb.build())
        sub_f = h.require("t.Sub").find_method("f")
        assert h.alias_parents(sub_f) == []

    def test_overriding_methods_inverse(self):
        h = sample_hierarchy()
        animal_speak = h.require("t.Animal").find_method("speak")
        overrides = h.overriding_methods(animal_speak)
        assert [m.owner.name for m in overrides] == ["t.Dog"]

    def test_object_hashcode_aliases_everywhere(self):
        """Every class is a subclass of Object, so an override of
        hashCode in any class alias-links to Object.hashCode (the URLDNS
        scenario)."""
        pb = ProgramBuilder()
        obj = pb.cls("java.lang.Object")
        with obj:
            with obj.method("hashCode", returns="int") as m:
                m.ret(0)
        with pb.cls("u.URL") as c:
            with c.method("hashCode", returns="int") as m:
                m.ret(1)
        h = ClassHierarchy(pb.build())
        url_hash = h.require("u.URL").find_method("hashCode")
        assert [m.owner.name for m in h.alias_parents(url_hash)] == [
            "java.lang.Object"
        ]

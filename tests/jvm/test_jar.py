"""Unit tests for jar archives."""

import os

import pytest

from repro.errors import JarError
from repro.jvm.builder import ProgramBuilder
from repro.jvm.jar import JarArchive, load_classpath, read_jar, write_jar


def make_classes(prefix="a", count=3):
    pb = ProgramBuilder()
    for i in range(count):
        with pb.cls(f"{prefix}.C{i}") as c:
            with c.method("run") as m:
                m.ret()
    return pb.build()


class TestJarArchive:
    def test_add_and_lookup(self):
        jar = JarArchive("x", make_classes())
        assert len(jar) == 3
        assert "a.C0" in jar
        assert jar.get("a.C1") is not None
        assert jar.get("a.Missing") is None

    def test_duplicate_class_rejected(self):
        classes = make_classes()
        jar = JarArchive("x", classes)
        with pytest.raises(JarError):
            jar.add(classes[0])

    def test_jar_name_stamped_on_classes(self):
        jar = JarArchive("stamped", make_classes())
        assert all(c.jar_name == "stamped" for c in jar.classes)

    def test_empty_name_rejected(self):
        with pytest.raises(JarError):
            JarArchive("")

    def test_code_size_positive(self):
        jar = JarArchive("x", make_classes())
        assert jar.code_size_bytes() > 0


class TestDiskRoundTrip:
    def test_write_read(self, tmp_path):
        jar = JarArchive("mylib", make_classes(count=5))
        path = str(tmp_path / "mylib.jar")
        write_jar(jar, path)
        back = read_jar(path)
        assert back.name == "mylib"
        assert sorted(back.class_names) == sorted(jar.class_names)

    def test_method_bodies_survive(self, tmp_path):
        jar = JarArchive("lib", make_classes())
        path = str(tmp_path / "lib.jar")
        write_jar(jar, path)
        back = read_jar(path)
        method = back.get("a.C0").find_method("run")
        assert method.has_body

    def test_read_missing_file(self, tmp_path):
        with pytest.raises(JarError):
            read_jar(str(tmp_path / "nope.jar"))

    def test_read_garbage_file(self, tmp_path):
        path = tmp_path / "bad.jar"
        path.write_bytes(b"not a zip")
        with pytest.raises(JarError):
            read_jar(str(path))


class TestClasspath:
    def test_directory_of_jars(self, tmp_path):
        for name in ("one", "two"):
            write_jar(
                JarArchive(name, make_classes(prefix=name)),
                str(tmp_path / f"{name}.jar"),
            )
        archives = load_classpath([str(tmp_path)])
        assert sorted(a.name for a in archives) == ["one", "two"]

    def test_mixed_files_and_dirs(self, tmp_path):
        sub = tmp_path / "deps"
        sub.mkdir()
        write_jar(JarArchive("dep", make_classes(prefix="d")), str(sub / "dep.jar"))
        top = str(tmp_path / "app.jar")
        write_jar(JarArchive("app", make_classes(prefix="app")), top)
        archives = load_classpath([top, str(sub)])
        assert len(archives) == 2

    def test_missing_entry_rejected(self):
        with pytest.raises(JarError):
            load_classpath(["/no/such/path"])

"""Tests for the program validator."""

import pytest

from repro.jvm import ir
from repro.jvm.builder import ProgramBuilder
from repro.jvm.model import JavaClass, JavaMethod, Modifier
from repro.jvm.validate import validate_classes
from repro.jvm import types as jt


def errors(issues):
    return [i for i in issues if i.severity == "error"]


def warnings(issues):
    return [i for i in issues if i.severity == "warning"]


class TestCleanPrograms:
    def test_builder_output_is_clean(self):
        pb = ProgramBuilder()
        with pb.cls("t.C") as c:
            c.field("f", "java.lang.Object")
            with c.method("m", params=["java.lang.Object"], returns="java.lang.Object") as m:
                v = m.get_field(m.this, "f")
                m.ret(v)
        assert validate_classes(pb.build()) == []

    def test_whole_corpus_component_is_clean_of_errors(self):
        from repro.corpus import build_component, build_lang_base

        spec = build_component("commons-collections(3.2.1)")
        issues = validate_classes(build_lang_base() + spec.classes)
        assert errors(issues) == []


class TestHierarchyChecks:
    def test_inheritance_cycle_detected(self):
        a = JavaClass("t.A", super_name="t.B")
        b = JavaClass("t.B", super_name="t.A")
        issues = validate_classes([a, b])
        assert any("cycle" in i.message for i in errors(issues))

    def test_extending_an_interface_detected(self):
        pb = ProgramBuilder()
        pb.interface("t.I").finish()
        pb.cls("t.C", extends="t.I").finish()
        issues = validate_classes(pb.build())
        assert any("must use implements" in i.message for i in errors(issues))

    def test_implementing_a_class_detected(self):
        pb = ProgramBuilder()
        pb.cls("t.NotAnInterface").finish()
        pb.cls("t.C", implements=["t.NotAnInterface"]).finish()
        issues = validate_classes(pb.build())
        assert any("not an interface" in i.message for i in errors(issues))


class TestBodyChecks:
    def _method(self, body, params=(), static=False, returns=jt.VOID):
        cls = JavaClass("t.C")
        method = JavaMethod(
            "m", list(params), returns,
            Modifier.PUBLIC | (Modifier.STATIC if static else Modifier(0)),
        )
        cls.add_method(method)
        method.body = body
        return cls

    def test_branch_to_missing_label(self):
        cls = self._method([
            ir.IdentityStmt(ir.Local("this"), ir.ThisRef()),
            ir.GotoStmt("nowhere"),
        ])
        issues = validate_classes([cls])
        assert any("undefined label" in i.message for i in errors(issues))

    def test_duplicate_label(self):
        cls = self._method([
            ir.IdentityStmt(ir.Local("this"), ir.ThisRef()),
            ir.NopStmt(label="x"),
            ir.NopStmt(label="x"),
            ir.ReturnStmt(None),
        ])
        issues = validate_classes([cls])
        assert any("duplicate label" in i.message for i in errors(issues))

    def test_fall_off_the_end(self):
        cls = self._method([
            ir.IdentityStmt(ir.Local("this"), ir.ThisRef()),
            ir.NopStmt(),
        ])
        issues = validate_classes([cls])
        assert any("fall off the end" in i.message for i in errors(issues))

    def test_this_in_static_method(self):
        cls = self._method(
            [ir.IdentityStmt(ir.Local("this"), ir.ThisRef()), ir.ReturnStmt(None)],
            static=True,
        )
        issues = validate_classes([cls])
        assert any("@this in a static" in i.message for i in errors(issues))

    def test_identity_outside_prologue(self):
        cls = self._method([
            ir.IdentityStmt(ir.Local("this"), ir.ThisRef()),
            ir.NopStmt(),
            ir.IdentityStmt(ir.Local("p"), ir.ParamRef(1)),
            ir.ReturnStmt(None),
        ], params=[jt.INT])
        issues = validate_classes([cls])
        assert any("outside the prologue" in i.message for i in errors(issues))

    def test_param_index_out_of_range(self):
        cls = self._method([
            ir.IdentityStmt(ir.Local("this"), ir.ThisRef()),
            ir.IdentityStmt(ir.Local("p"), ir.ParamRef(3)),
            ir.ReturnStmt(None),
        ], params=[jt.INT])
        issues = validate_classes([cls])
        assert any("exceeds arity" in i.message for i in errors(issues))

    def test_unbound_parameter_warns(self):
        cls = self._method([
            ir.IdentityStmt(ir.Local("this"), ir.ThisRef()),
            ir.ReturnStmt(None),
        ], params=[jt.INT])
        issues = validate_classes([cls])
        assert any("never bound" in i.message for i in warnings(issues))


class TestLinkageChecks:
    def test_arity_mismatch_on_defined_class(self):
        pb = ProgramBuilder()
        with pb.cls("t.Callee") as c:
            with c.method("f", params=["int", "int"]) as m:
                m.ret()
        with pb.cls("t.Caller") as c:
            with c.method("m") as m:
                obj = m.new("t.Callee")
                m.invoke(obj, "t.Callee", "f", [1])  # wrong arity
        issues = validate_classes(pb.build())
        assert any("does not match any" in i.message for i in errors(issues))

    def test_unknown_method_on_defined_class_warns(self):
        pb = ProgramBuilder()
        pb.cls("t.Callee").finish()
        with pb.cls("t.Caller") as c:
            with c.method("m") as m:
                obj = m.new("t.Callee")
                m.invoke(obj, "t.Callee", "ghost")
        issues = validate_classes(pb.build())
        assert any("not found in the defined hierarchy" in i.message
                   for i in warnings(issues))

    def test_phantom_classes_exempt(self):
        pb = ProgramBuilder()
        with pb.cls("t.Caller") as c:
            with c.method("m") as m:
                rt = m.invoke_static("java.lang.Runtime", "getRuntime",
                                     returns="java.lang.Runtime")
                m.invoke(rt, "java.lang.Runtime", "exec", ["x"])
        assert validate_classes(pb.build()) == []

    def test_undeclared_static_field_warns(self):
        pb = ProgramBuilder()
        pb.cls("t.Config").finish()
        with pb.cls("t.C") as c:
            with c.method("m") as m:
                m.get_static("t.Config", "GHOST")
        issues = validate_classes(pb.build())
        assert any("not declared" in i.message for i in warnings(issues))

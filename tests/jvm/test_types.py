"""Unit tests for the Java type model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import TypeModelError
from repro.jvm import types as jt


class TestPrimitives:
    def test_all_eight_primitives_exist(self):
        for name in ("boolean", "byte", "char", "short", "int", "long", "float", "double"):
            t = jt.primitive(name)
            assert t.name == name
            assert t.is_primitive
            assert not t.is_reference

    def test_primitives_are_interned(self):
        assert jt.primitive("int") is jt.INT

    def test_unknown_primitive_rejected(self):
        with pytest.raises(TypeModelError):
            jt.PrimitiveType("string")

    def test_void_is_not_reference(self):
        assert jt.VOID.is_void
        assert not jt.VOID.is_reference


class TestClassTypes:
    def test_name_and_descriptor(self):
        t = jt.class_type("java.util.HashMap")
        assert t.name == "java.util.HashMap"
        assert t.descriptor == "Ljava/util/HashMap;"

    def test_package_and_simple_name(self):
        t = jt.class_type("java.util.HashMap")
        assert t.package == "java.util"
        assert t.simple_name == "HashMap"

    def test_default_package(self):
        t = jt.class_type("Standalone")
        assert t.package == ""
        assert t.simple_name == "Standalone"

    def test_interning(self):
        assert jt.class_type("a.B") is jt.class_type("a.B")

    def test_rejects_descriptor_like_names(self):
        with pytest.raises(TypeModelError):
            jt.ClassType("java/util/Map")
        with pytest.raises(TypeModelError):
            jt.ClassType("")


class TestArrayTypes:
    def test_single_dimension(self):
        t = jt.array_of(jt.INT)
        assert t.name == "int[]"
        assert t.descriptor == "[I"
        assert t.dimensions == 1
        assert t.element is jt.INT

    def test_multi_dimension(self):
        t = jt.array_of(jt.OBJECT, 3)
        assert t.name == "java.lang.Object[][][]"
        assert t.dimensions == 3
        assert t.base_element is jt.OBJECT

    def test_void_array_rejected(self):
        with pytest.raises(TypeModelError):
            jt.array_of(jt.VOID)

    def test_zero_dimensions_rejected(self):
        with pytest.raises(TypeModelError):
            jt.array_of(jt.INT, 0)


class TestDescriptorParsing:
    @pytest.mark.parametrize(
        "desc,name",
        [
            ("I", "int"),
            ("Z", "boolean"),
            ("Ljava/lang/String;", "java.lang.String"),
            ("[I", "int[]"),
            ("[[Ljava/util/Map;", "java.util.Map[][]"),
            ("V", "void"),
        ],
    )
    def test_parse(self, desc, name):
        assert jt.parse_descriptor(desc).name == name

    @pytest.mark.parametrize("desc", ["", "X", "L", "Lfoo", "II", "[;"])
    def test_malformed_rejected(self, desc):
        with pytest.raises(TypeModelError):
            jt.parse_descriptor(desc)

    def test_method_descriptor(self):
        params, ret = jt.parse_method_descriptor("(ILjava/lang/String;)V")
        assert [p.name for p in params] == ["int", "java.lang.String"]
        assert ret is jt.VOID

    def test_method_descriptor_no_params(self):
        params, ret = jt.parse_method_descriptor("()Ljava/lang/Object;")
        assert params == ()
        assert ret.name == "java.lang.Object"

    def test_void_parameter_rejected(self):
        with pytest.raises(TypeModelError):
            jt.parse_method_descriptor("(V)V")

    def test_descriptor_round_trip(self):
        for desc in ("I", "[J", "Ljava/lang/Object;", "[[Z"):
            assert jt.parse_descriptor(desc).descriptor == desc


class TestTypeFromName:
    @pytest.mark.parametrize(
        "name,expected_desc",
        [
            ("int", "I"),
            ("void", "V"),
            ("java.lang.String", "Ljava/lang/String;"),
            ("int[]", "[I"),
            ("java.util.Map[][]", "[[Ljava/util/Map;"),
        ],
    )
    def test_parse(self, name, expected_desc):
        assert jt.type_from_name(name).descriptor == expected_desc

    def test_empty_rejected(self):
        with pytest.raises(TypeModelError):
            jt.type_from_name("  ")


class TestErasedMatch:
    def test_references_always_match(self):
        assert jt.erased_match(jt.OBJECT, jt.STRING)
        assert jt.erased_match(jt.array_of(jt.INT), jt.OBJECT)

    def test_primitives_exact(self):
        assert jt.erased_match(jt.INT, jt.INT)
        assert not jt.erased_match(jt.INT, jt.LONG)
        assert not jt.erased_match(jt.INT, jt.OBJECT)


_IDENT = st.from_regex(r"[A-Za-z][A-Za-z0-9]{0,8}", fullmatch=True)


@given(st.lists(_IDENT, min_size=1, max_size=4), st.integers(min_value=0, max_value=3))
def test_property_name_descriptor_round_trip(segments, dims):
    """Any dotted class name (optionally arrayed) survives
    name -> type -> descriptor -> type -> name."""
    name = ".".join(segments) + "[]" * dims
    t = jt.type_from_name(name)
    assert jt.parse_descriptor(t.descriptor) == t
    assert t.name == name

"""Unit tests for the builder DSL."""

import pytest

from repro.errors import ClassModelError, IRError
from repro.jvm import ir
from repro.jvm.builder import ProgramBuilder
from repro.jvm.model import SERIALIZABLE


def build_single(body_fn, params=(), returns="void", static=False):
    pb = ProgramBuilder()
    with pb.cls("t.C") as c:
        with c.method("m", params=params, returns=returns, static=static) as m:
            body_fn(m)
    (cls,) = pb.build()
    return cls.method(
        f"{'void' if returns == 'void' else returns} m"
        f"({','.join(p for p in params)})"
    ) or cls.find_method("m")


class TestMethodBuilder:
    def test_identity_statements_emitted(self):
        method = build_single(lambda m: m.ret(), params=["int", "int"])
        kinds = [type(s).__name__ for s in method.body[:3]]
        assert kinds == ["IdentityStmt", "IdentityStmt", "IdentityStmt"]

    def test_static_method_has_no_this(self):
        pb = ProgramBuilder()
        with pb.cls("t.C") as c:
            with c.method("m", static=True) as m:
                assert m.this is None
                m.ret()
        pb.build()

    def test_param_access_bounds(self):
        pb = ProgramBuilder()
        with pb.cls("t.C") as c:
            with c.method("m", params=["int"]) as m:
                m.param(1)
                with pytest.raises(IRError):
                    m.param(2)
                m.ret()
        pb.build()

    def test_implicit_void_return(self):
        method = build_single(lambda m: None)
        assert isinstance(method.body[-1], ir.ReturnStmt)
        assert method.body[-1].value is None

    def test_implicit_null_return_for_reference(self):
        method = build_single(lambda m: None, returns="java.lang.Object")
        assert isinstance(method.body[-1], ir.ReturnStmt)
        assert isinstance(method.body[-1].value, ir.NullConst)

    def test_expressions_are_spilled_to_temporaries(self):
        def body(m):
            obj = m.new("t.D")
            m.set_field(m.this, "f", obj)
            m.ret()

        method = build_single(body)
        stores = [
            s
            for s in method.body
            if isinstance(s, ir.AssignStmt)
            and isinstance(s.target, ir.InstanceFieldRef)
        ]
        assert len(stores) == 1
        assert isinstance(stores[0].rhs, ir.Local)

    def test_python_literals_coerced(self):
        def body(m):
            m.invoke_static("t.D", "f", args=[1, "s", None, True])
            m.ret()

        method = build_single(body)
        call = ir.iter_invoke_exprs(method.body)[0]
        assert isinstance(call.args[0], ir.IntConst)
        assert isinstance(call.args[1], ir.StringConst)
        assert isinstance(call.args[2], ir.NullConst)
        assert isinstance(call.args[3], ir.IntConst)

    def test_invoke_returns_temporary(self):
        def body(m):
            out = m.invoke_static("t.D", "f", returns="java.lang.Object")
            assert isinstance(out, ir.Local)
            m.ret()

        build_single(body)

    def test_construct_emits_new_and_init(self):
        method = build_single(lambda m: (m.construct("t.D", [1]), m.ret()))
        news = [
            s
            for s in method.body
            if isinstance(s, ir.AssignStmt) and isinstance(s.rhs, ir.NewExpr)
        ]
        inits = [
            e for e in ir.iter_invoke_exprs(method.body) if e.method_name == "<init>"
        ]
        assert len(news) == 1 and len(inits) == 1
        assert inits[0].kind == ir.InvokeKind.SPECIAL

    def test_label_attaches_to_next_statement(self):
        def body(m):
            m.goto("end")
            m.label("end")
            m.ret()

        method = build_single(body)
        labelled = [s for s in method.body if s.label == "end"]
        assert len(labelled) == 1
        assert isinstance(labelled[0], ir.ReturnStmt)

    def test_trailing_label_gets_nop(self):
        pb = ProgramBuilder()
        with pb.cls("t.C") as c:
            with c.method("m") as m:
                m.label("tail")
        (cls,) = pb.build()
        method = cls.find_method("m")
        assert any(s.label == "tail" for s in method.body)

    def test_dynamic_invoke_marks_unresolved(self):
        def body(m):
            m.invoke_dynamic(m.this, "anything")
            m.ret()

        method = build_single(body)
        call = ir.iter_invoke_exprs(method.body)[0]
        assert call.kind == ir.InvokeKind.DYNAMIC
        assert call.class_name == "<unresolved>"


class TestClassBuilder:
    def test_interface_methods_are_abstract(self):
        pb = ProgramBuilder()
        cb = pb.interface("t.I")
        cb.abstract_method("run", returns="java.lang.Object")
        cb.finish()
        (cls,) = pb.build()
        assert cls.is_interface
        method = cls.find_method("run")
        assert method.is_abstract and not method.has_body

    def test_field_flags(self):
        pb = ProgramBuilder()
        with pb.cls("t.C") as c:
            f = c.field("cache", "java.lang.Object", static=True, transient=True)
        pb.build()
        assert f.is_static and f.is_transient


class TestProgramBuilder:
    def test_duplicate_class_rejected(self):
        pb = ProgramBuilder()
        pb.cls("t.C").finish()
        with pytest.raises(ClassModelError):
            pb.cls("t.C")

    def test_jar_name_propagates(self):
        pb = ProgramBuilder(jar="x.jar")
        pb.cls("t.C").finish()
        (cls,) = pb.build()
        assert cls.jar_name == "x.jar"

    def test_serializable_marker(self):
        pb = ProgramBuilder()
        pb.cls("t.C", implements=[SERIALIZABLE]).finish()
        (cls,) = pb.build()
        assert cls.declares_serializable

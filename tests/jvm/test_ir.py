"""Unit tests for the IR value/statement layer."""

import pytest

from repro.errors import IRError
from repro.jvm import ir
from repro.jvm import types as jt


class TestValues:
    def test_local_equality(self):
        assert ir.Local("a") == ir.Local("a")
        assert ir.Local("a") != ir.Local("b")
        assert hash(ir.Local("a")) == hash(ir.Local("a"))

    def test_empty_local_rejected(self):
        with pytest.raises(IRError):
            ir.Local("")

    def test_param_ref_one_based(self):
        assert str(ir.ParamRef(1)) == "@param-1"
        with pytest.raises(IRError):
            ir.ParamRef(0)

    def test_string_const_escaping(self):
        s = ir.StringConst('he said "hi"')
        assert '\\"' in str(s)

    def test_field_ref_requires_local_base(self):
        with pytest.raises(IRError):
            ir.InstanceFieldRef(ir.IntConst(1), "f")  # type: ignore[arg-type]

    def test_array_ref_index_kinds(self):
        ir.ArrayRef(ir.Local("a"), ir.IntConst(0))
        ir.ArrayRef(ir.Local("a"), ir.Local("i"))
        with pytest.raises(IRError):
            ir.ArrayRef(ir.Local("a"), ir.StringConst("x"))

    def test_locals_used_composition(self):
        ref = ir.ArrayRef(ir.Local("a"), ir.Local("i"))
        assert set(ref.locals_used()) == {ir.Local("a"), ir.Local("i")}


class TestInvokeExpr:
    def test_static_rejects_base(self):
        with pytest.raises(IRError):
            ir.InvokeExpr(ir.InvokeKind.STATIC, ir.Local("x"), "C", "m")

    def test_virtual_requires_local_base(self):
        with pytest.raises(IRError):
            ir.InvokeExpr(ir.InvokeKind.VIRTUAL, None, "C", "m")

    def test_args_must_be_simple(self):
        with pytest.raises(IRError):
            ir.InvokeExpr(
                ir.InvokeKind.STATIC, None, "C", "m", [ir.NewExpr("D")]
            )

    def test_arity(self):
        e = ir.InvokeExpr(
            ir.InvokeKind.STATIC, None, "C", "m", [ir.IntConst(1), ir.NullConst()]
        )
        assert e.arity == 2

    def test_locals_used_includes_base_and_args(self):
        e = ir.InvokeExpr(
            ir.InvokeKind.VIRTUAL, ir.Local("b"), "C", "m", [ir.Local("x")]
        )
        assert set(e.locals_used()) == {ir.Local("b"), ir.Local("x")}

    def test_unknown_kind_rejected(self):
        with pytest.raises(IRError):
            ir.InvokeExpr("super", ir.Local("b"), "C", "m")


class TestStatements:
    def test_identity_requires_at_ref(self):
        with pytest.raises(IRError):
            ir.IdentityStmt(ir.Local("a"), ir.Local("b"))

    def test_assign_target_kinds(self):
        ir.AssignStmt(ir.Local("a"), ir.IntConst(1))
        ir.AssignStmt(ir.InstanceFieldRef(ir.Local("a"), "f"), ir.Local("b"))
        with pytest.raises(IRError):
            ir.AssignStmt(ir.IntConst(1), ir.Local("a"))

    def test_field_store_requires_simple_rhs(self):
        target = ir.InstanceFieldRef(ir.Local("a"), "f")
        with pytest.raises(IRError):
            ir.AssignStmt(target, ir.NewExpr("C"))

    def test_return_falls_through_false(self):
        assert not ir.ReturnStmt(None).falls_through
        assert not ir.GotoStmt("L").falls_through
        assert not ir.ThrowStmt(ir.Local("e")).falls_through

    def test_if_falls_through_true(self):
        stmt = ir.IfStmt(ir.Local("c"), "L")
        assert stmt.falls_through
        assert stmt.branch_targets() == ("L",)

    def test_switch_targets_include_default(self):
        stmt = ir.SwitchStmt(ir.Local("k"), [(1, "A"), (2, "B")], "D")
        assert stmt.branch_targets() == ("A", "B", "D")
        assert not stmt.falls_through

    def test_invoke_expr_accessor(self):
        call = ir.InvokeExpr(ir.InvokeKind.STATIC, None, "C", "m")
        assert ir.InvokeStmt(call).invoke_expr() is call
        assert ir.AssignStmt(ir.Local("a"), call).invoke_expr() is call
        assert ir.AssignStmt(ir.Local("a"), ir.IntConst(1)).invoke_expr() is None

    def test_iter_invoke_exprs_order(self):
        c1 = ir.InvokeExpr(ir.InvokeKind.STATIC, None, "C", "m1")
        c2 = ir.InvokeExpr(ir.InvokeKind.STATIC, None, "C", "m2")
        stmts = [
            ir.InvokeStmt(c1),
            ir.ReturnStmt(None),
            ir.AssignStmt(ir.Local("a"), c2),
        ]
        assert ir.iter_invoke_exprs(stmts) == [c1, c2]

    def test_label_prefix_in_str(self):
        stmt = ir.NopStmt(label="join")
        assert str(stmt) == "join: nop"

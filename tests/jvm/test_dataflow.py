"""Tests for the generic dataflow engine and its four analyses.

Every fixpoint asserted here was computed by hand on the corresponding
small CFG; see each test's comment for the derivation.
"""

import pytest

from repro.jvm import dataflow as df
from repro.jvm import ir
from repro.jvm.builder import ProgramBuilder
from repro.jvm.cfg import build_cfg


def _method(name, build, params=(), returns="void", static=True, param_names=None):
    pb = ProgramBuilder()
    with pb.cls("t.T") as c:
        with c.method(
            name, params=params, returns=returns, static=static,
            param_names=param_names,
        ) as m:
            build(m)
    cls = pb.build()[0]
    return cls.find_method(name)


def _block(cfg, label):
    """The basic block whose leader carries ``label``."""
    for block in cfg.blocks:
        if block.statements and block.statements[0].label == label:
            return block
    raise AssertionError(f"no block labelled {label}")


class TestUseDefHelpers:
    def test_statement_def(self):
        assert df.statement_def(ir.AssignStmt(ir.Local("x"), ir.IntConst(1))) == "x"
        assert df.statement_def(ir.IdentityStmt(ir.Local("p"), ir.ParamRef(1))) == "p"
        # a field store defines no local
        ref = ir.InstanceFieldRef(ir.Local("o"), "f")
        assert df.statement_def(ir.AssignStmt(ref, ir.Local("x"))) is None

    def test_statement_uses(self):
        ref = ir.InstanceFieldRef(ir.Local("o"), "f")
        stmt = ir.AssignStmt(ref, ir.Local("x"))
        assert df.statement_uses(stmt) == ("o", "x")
        assert df.statement_uses(ir.ReturnStmt(ir.Local("r"))) == ("r",)
        assert df.statement_uses(ir.GotoStmt("l")) == ()


class TestReachingDefinitions:
    def test_branch_join_merges_both_definitions(self):
        # x = 1; if (p != 0) x = 2; return x
        # At the join block both definitions of x reach.
        def build(m):
            m.assign(m.local("x"), 1)
            m.if_ne(m.param(1), 0, "redef")
            m.goto("end")
            m.label("redef")
            m.assign(m.local("x"), 2)
            m.label("end")
            m.ret(m.local("x"))

        method = _method("f", build, params=["int"], returns="int",
                         param_names=["p"])
        cfg = build_cfg(method)
        result = df.run_analysis(cfg, df.ReachingDefinitions())
        end = _block(cfg, "end")
        x_defs = {d for d in result.block_in[end.index] if d[0] == "x"}
        assert len(x_defs) == 2

    def test_redefinition_kills(self):
        # straight-line x = 1; x = 2; return x — only the second def
        # reaches the return.
        def build(m):
            m.assign(m.local("x"), 1)
            m.assign(m.local("x"), 2)
            m.ret(m.local("x"))

        method = _method("f", build, returns="int")
        cfg = build_cfg(method)
        result = df.run_analysis(cfg, df.ReachingDefinitions())
        (block,) = cfg.blocks
        triples = result.statement_states(block)
        ret_stmt, before, _ = triples[-1]
        assert isinstance(ret_stmt, ir.ReturnStmt)
        x_defs = {d for d in before if d[0] == "x"}
        assert len(x_defs) == 1


class TestLiveness:
    def test_loop_fixpoint(self):
        # s = 0; while (n > 0) { s = s + n; n = n - 1 } return s
        # At the loop head both s and n are live (s flows to the return,
        # n to the condition and the body).
        def build(m):
            m.assign(m.local("s"), 0)
            m.label("head")
            c = m.binop(">", m.param(1), 0)
            m.iff(c, "body")
            m.goto("end")
            m.label("body")
            m.assign(m.local("s"), ir.BinOpExpr("+", m.local("s"), m.param(1)))
            m.assign(m.param(1), ir.BinOpExpr("-", m.param(1), ir.IntConst(1)))
            m.goto("head")
            m.label("end")
            m.ret(m.local("s"))

        method = _method("f", build, params=["int"], returns="int",
                         param_names=["n"])
        cfg = build_cfg(method)
        result = df.run_analysis(cfg, df.Liveness())
        head = _block(cfg, "head")
        assert {"s", "n"} <= result.block_in[head.index]
        end = _block(cfg, "end")
        assert result.block_in[end.index] == frozenset({"s"})

    def test_infinite_goto_loop_regression(self):
        # spin: y = x + 1; goto spin — the CFG has *no* exit blocks, the
        # historical blind spot of exit-seeded backward analyses.  The
        # virtual-exit convention still visits every block: x is live at
        # the loop head (read each iteration), y is not (never read).
        def build(m):
            m.label("spin")
            m.assign(m.local("y"), ir.BinOpExpr("+", m.param(1), ir.IntConst(1)))
            m.goto("spin")

        method = _method("f", build, params=["int"], param_names=["x"])
        cfg = build_cfg(method)
        assert cfg.exit_blocks == []  # the blind spot exists
        result = df.run_analysis(cfg, df.Liveness())
        spin = _block(cfg, "spin")
        assert "x" in result.block_in[spin.index]
        assert "y" not in result.block_in[spin.index]


class TestNullness:
    def test_partial_assignment_at_join(self):
        # v assigned only on the taken branch: at the join it is present
        # but not definite.  w assigned before the branch stays definite.
        def build(m):
            m.assign(m.local("w"), 7)
            m.if_ne(m.param(1), 0, "set")
            m.goto("end")
            m.label("set")
            m.assign(m.local("v"), 42)
            m.label("end")
            m.ret()

        method = _method("f", build, params=["int"], param_names=["p"])
        cfg = build_cfg(method)
        result = df.run_analysis(cfg, df.Nullness())
        end = _block(cfg, "end")
        state = result.block_in[end.index]
        assert state["w"].definite
        assert not state["v"].definite

    def test_nullness_tags(self):
        # a = null (null), b = new (nonnull), c = a (copies null),
        # joined with c = b on the other branch -> maybe.
        def build(m):
            m.assign(m.local("a"), ir.NullConst())
            b = m.new("java.lang.Object")
            m.if_ne(m.param(1), 0, "other")
            m.assign(m.local("c"), m.local("a"))
            m.goto("end")
            m.label("other")
            m.assign(m.local("c"), b)
            m.label("end")
            m.ret()

        method = _method("f", build, params=["int"], param_names=["p"])
        cfg = build_cfg(method)
        result = df.run_analysis(cfg, df.Nullness())
        end = _block(cfg, "end")
        state = result.block_in[end.index]
        assert state["a"].nullness == df.NullnessFact.NULL
        assert state["c"].nullness == df.NullnessFact.MAYBE
        assert state["c"].definite  # assigned on both paths


class TestConstantPropagation:
    def test_fold_binop(self):
        one, zero = df.const_int(1), df.const_int(0)
        assert df._fold_binop("+", df.const_int(2), df.const_int(3)) == df.const_int(5)
        # Java division truncates toward zero
        assert df._fold_binop("/", df.const_int(-7), df.const_int(2)) == df.const_int(-3)
        assert df._fold_binop("/", one, zero) is df.NONCONST
        assert df._fold_binop("==", df.const_str("a"), df.const_str("a")) == one
        assert df._fold_binop("!=", df.const_null(), df.const_str("a")) == one
        # UNDEF propagates unless the other side is NONCONST
        assert df._fold_binop("+", None, one) is None
        assert df._fold_binop("+", None, df.NONCONST) is df.NONCONST

    def test_switch_constant_key_prunes_arms(self):
        # k = 2 -> only the case-2 arm is feasible; r is exactly 2 at
        # the join since the other arms contribute nothing.
        def build(m):
            m.assign(m.local("k"), 2)
            m.switch(m.local("k"), [(1, "one"), (2, "two")], "dft")
            m.label("one")
            m.assign(m.local("r"), 1)
            m.goto("end")
            m.label("two")
            m.assign(m.local("r"), 2)
            m.goto("end")
            m.label("dft")
            m.assign(m.local("r"), 0)
            m.label("end")
            m.ret(m.local("r"))

        method = _method("f", build, returns="int")
        cfg = build_cfg(method)
        result = df.run_analysis(cfg, df.ConstantPropagation())
        assert _block(cfg, "one").index not in result.reached
        assert _block(cfg, "dft").index not in result.reached
        end = _block(cfg, "end")
        assert result.block_in[end.index]["r"] == df.const_int(2)

    def test_guard_always_false_with_static_oracle(self):
        # Config.ENABLED is never written and Config has no <clinit>, so
        # the oracle pins it to 0 and `if (ENABLED != 0)` folds false:
        # the guarded block is unreached.
        pb = ProgramBuilder()
        with pb.cls("t.Config") as c:
            c.field("ENABLED", "int", static=True)
        with pb.cls("t.T") as c:
            with c.method("m") as m:
                g = m.get_static("t.Config", "ENABLED")
                cmp = m.binop("!=", g, 0)
                m.iff(cmp, "fire")
                m.goto("end")
                m.label("fire")
                m.assign(m.local("x"), 1)
                m.label("end")
                m.ret()
        classes = pb.build()
        oracle = df.constant_static_fields(classes)
        assert oracle[("t.Config", "ENABLED")] == df.const_int(0)
        method = next(c for c in classes if c.name == "t.T").find_method("m")
        cfg = build_cfg(method)
        analysis = df.ConstantPropagation(static_oracle=oracle)
        result = df.run_analysis(cfg, analysis)
        assert "always-false" in analysis.branch_verdicts.values()
        assert _block(cfg, "fire").index not in result.reached

    def test_guard_always_true(self):
        def build(m):
            c = m.binop("==", 1, 1)
            m.iff(c, "yes")
            m.assign(m.local("dead"), 0)
            m.label("yes")
            m.ret()

        method = _method("f", build)
        cfg = build_cfg(method)
        analysis = df.ConstantPropagation()
        result = df.run_analysis(cfg, analysis)
        assert "always-true" in analysis.branch_verdicts.values()
        # the fall-through block holding the dead store is unreached
        dead = next(
            b for b in cfg.blocks
            if any(df.statement_def(s) == "dead" for s in b.statements)
        )
        assert dead.index not in result.reached

    def test_oracle_excludes_written_and_clinit_fields(self):
        pb = ProgramBuilder()
        with pb.cls("t.Written") as c:
            c.field("F", "int", static=True)
            with c.method("w", static=True) as m:
                m.set_static("t.Written", "F", 5)
        with pb.cls("t.Clinit") as c:
            c.field("G", "int", static=True)
            with c.method("<clinit>", static=True) as m:
                m.ret()
        classes = pb.build()
        oracle = df.constant_static_fields(classes)
        assert ("t.Written", "F") not in oracle
        assert ("t.Clinit", "G") not in oracle


class TestDeterminism:
    def _loop_method(self):
        def build(m):
            m.assign(m.local("s"), 0)
            m.label("head")
            c = m.binop(">", m.param(1), 0)
            m.iff(c, "body")
            m.goto("end")
            m.label("body")
            m.assign(m.local("s"), ir.BinOpExpr("+", m.local("s"), m.param(1)))
            m.assign(m.param(1), ir.BinOpExpr("-", m.param(1), ir.IntConst(1)))
            m.goto("head")
            m.label("end")
            m.ret(m.local("s"))

        return _method("f", build, params=["int"], returns="int",
                       param_names=["n"])

    @pytest.mark.parametrize(
        "make", [df.ReachingDefinitions, df.Liveness, df.Nullness,
                 df.ConstantPropagation],
        ids=["rd", "live", "null", "const"],
    )
    def test_two_runs_identical(self, make):
        method = self._loop_method()
        cfg = build_cfg(method)
        r1 = df.run_analysis(cfg, make())
        r2 = df.run_analysis(cfg, make())
        assert r1.block_in == r2.block_in
        assert r1.block_out == r2.block_out
        assert r1.reached == r2.reached


class TestEngineEdgeCases:
    def test_empty_body_method(self):
        pb = ProgramBuilder()
        with pb.cls("t.I", interface=True) as c:
            c.abstract_method("m")
        cls = pb.build()[0]
        method = cls.find_method("m")
        cfg = build_cfg(method)
        result = df.run_analysis(cfg, df.Liveness())
        assert result.reached == frozenset()

    def test_statement_states_backward_program_order(self):
        def build(m):
            m.assign(m.local("a"), 1)
            m.ret(m.local("a"))

        method = _method("f", build, returns="int")
        cfg = build_cfg(method)
        result = df.run_analysis(cfg, df.Liveness())
        (block,) = cfg.blocks
        triples = result.statement_states(block)
        assert [type(s).__name__ for s, _, _ in triples] == [
            "AssignStmt", "ReturnStmt",
        ]
        assign_stmt, before, after = triples[0]
        # a is live *after* the assignment (the return reads it), not
        # before it.
        assert "a" in after and "a" not in before

"""Property-based round-trip tests for the jasm format, driven by
hypothesis over randomly composed IR programs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jvm import jasm
from repro.jvm.builder import ProgramBuilder

_ident = st.from_regex(r"[a-z][a-zA-Z0-9]{0,6}", fullmatch=True)
_class_name = st.builds(lambda a, b: f"pkg{a}.C{b}", _ident, _ident)


@st.composite
def _program(draw):
    pb = ProgramBuilder(jar="fuzz.jar")
    n_classes = draw(st.integers(1, 3))
    made = []
    for ci in range(n_classes):
        name = f"fuzz.pkg.C{ci}"
        with pb.cls(name, implements=(["java.io.Serializable"] if draw(st.booleans()) else [])) as c:
            if draw(st.booleans()):
                c.field(draw(_ident), "java.lang.Object")
            n_methods = draw(st.integers(1, 3))
            for mi in range(n_methods):
                params = ["java.lang.Object"] * draw(st.integers(0, 2))
                with c.method(f"m{mi}", params=params, returns="java.lang.Object") as m:
                    pool = [m.param(i) for i in range(1, len(params) + 1)]
                    for si in range(draw(st.integers(0, 6))):
                        kind = draw(st.integers(0, 7))
                        if kind == 0:
                            pool.append(m.new(draw(_class_name)))
                        elif kind == 1 and pool:
                            pool.append(m.get_field(draw(st.sampled_from(pool)), draw(_ident)))
                        elif kind == 2 and pool:
                            m.set_field(m.this, draw(_ident), draw(st.sampled_from(pool)))
                        elif kind == 3 and pool:
                            out = m.invoke(
                                draw(st.sampled_from(pool)), draw(_class_name),
                                draw(_ident), [], returns="java.lang.Object",
                            )
                            pool.append(out)
                        elif kind == 4:
                            pool.append(m.binop("+", draw(st.integers(-9, 9)), 1))
                        elif kind == 5 and pool:
                            label = f"L{ci}{mi}{si}"
                            m.if_eq(draw(st.sampled_from(pool)), 0, label)
                            m.nop()
                            m.label(label)
                        elif kind == 6:
                            pool.append(m.cast(draw(st.text(alphabet="abc", min_size=1, max_size=4)), "java.lang.String"))
                        else:
                            arr = m.new_array("java.lang.Object", draw(st.integers(0, 4)))
                            m.array_set(arr, 0, draw(st.sampled_from(pool)) if pool else 1)
                            pool.append(m.array_get(arr, 0))
                    m.ret(draw(st.sampled_from(pool)) if pool else None)
        made.append(name)
    return pb.build()


@settings(max_examples=40, deadline=None)
@given(_program())
def test_property_jasm_round_trip_is_fixed_point(classes):
    """dump -> parse -> dump is a fixed point for any built program."""
    once = jasm.dumps(classes)
    twice = jasm.dumps(jasm.loads(once))
    assert once == twice


@settings(max_examples=20, deadline=None)
@given(_program())
def test_property_parsed_program_analyses_cleanly(classes):
    """Parsed programs behave identically under the full analysis."""
    from repro.core import Tabby

    reparsed = jasm.loads(jasm.dumps(classes))
    a = Tabby().add_classes(classes).build_cpg()
    b = Tabby().add_classes(reparsed).build_cpg()
    assert a.statistics.method_node_count == b.statistics.method_node_count
    assert a.statistics.relationship_edge_count == b.statistics.relationship_edge_count

"""Property-based round-trip tests for the jasm format, driven by
hypothesis over randomly composed IR programs, plus determinism
regression seeds (analysis results must not depend on visit order)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.jvm import jasm
from repro.jvm.builder import ProgramBuilder

_ident = st.from_regex(r"[a-z][a-zA-Z0-9]{0,6}", fullmatch=True)
_class_name = st.builds(lambda a, b: f"pkg{a}.C{b}", _ident, _ident)


@st.composite
def _program(draw):
    pb = ProgramBuilder(jar="fuzz.jar")
    n_classes = draw(st.integers(1, 3))
    made = []
    for ci in range(n_classes):
        name = f"fuzz.pkg.C{ci}"
        with pb.cls(name, implements=(["java.io.Serializable"] if draw(st.booleans()) else [])) as c:
            if draw(st.booleans()):
                c.field(draw(_ident), "java.lang.Object")
            n_methods = draw(st.integers(1, 3))
            for mi in range(n_methods):
                params = ["java.lang.Object"] * draw(st.integers(0, 2))
                with c.method(f"m{mi}", params=params, returns="java.lang.Object") as m:
                    pool = [m.param(i) for i in range(1, len(params) + 1)]
                    for si in range(draw(st.integers(0, 6))):
                        kind = draw(st.integers(0, 7))
                        if kind == 0:
                            pool.append(m.new(draw(_class_name)))
                        elif kind == 1 and pool:
                            pool.append(m.get_field(draw(st.sampled_from(pool)), draw(_ident)))
                        elif kind == 2 and pool:
                            m.set_field(m.this, draw(_ident), draw(st.sampled_from(pool)))
                        elif kind == 3 and pool:
                            out = m.invoke(
                                draw(st.sampled_from(pool)), draw(_class_name),
                                draw(_ident), [], returns="java.lang.Object",
                            )
                            pool.append(out)
                        elif kind == 4:
                            pool.append(m.binop("+", draw(st.integers(-9, 9)), 1))
                        elif kind == 5 and pool:
                            label = f"L{ci}{mi}{si}"
                            m.if_eq(draw(st.sampled_from(pool)), 0, label)
                            m.nop()
                            m.label(label)
                        elif kind == 6:
                            pool.append(m.cast(draw(st.text(alphabet="abc", min_size=1, max_size=4)), "java.lang.String"))
                        else:
                            arr = m.new_array("java.lang.Object", draw(st.integers(0, 4)))
                            m.array_set(arr, 0, draw(st.sampled_from(pool)) if pool else 1)
                            pool.append(m.array_get(arr, 0))
                    m.ret(draw(st.sampled_from(pool)) if pool else None)
        made.append(name)
    return pb.build()


@settings(max_examples=40, deadline=None)
@given(_program())
def test_property_jasm_round_trip_is_fixed_point(classes):
    """dump -> parse -> dump is a fixed point for any built program."""
    once = jasm.dumps(classes)
    twice = jasm.dumps(jasm.loads(once))
    assert once == twice


@settings(max_examples=20, deadline=None)
@given(_program())
def test_property_parsed_program_analyses_cleanly(classes):
    """Parsed programs behave identically under the full analysis."""
    from repro.core import Tabby

    reparsed = jasm.loads(jasm.dumps(classes))
    a = Tabby().add_classes(classes).build_cpg()
    b = Tabby().add_classes(reparsed).build_cpg()
    assert a.statistics.method_node_count == b.statistics.method_node_count
    assert a.statistics.relationship_edge_count == b.statistics.relationship_edge_count


# ---------------------------------------------------------------------------
# Determinism regression seeds
# ---------------------------------------------------------------------------


def _mutual_recursion_program():
    """A minimal A <-> B recursion cycle whose call sites stay live
    (param-derived receivers), so the analysis must break the cycle."""
    pb = ProgramBuilder(jar="seed.jar")
    for name, other in (("det.A", "det.B"), ("det.B", "det.A")):
        with pb.cls(name) as c:
            c.field("next", "java.lang.Object")
            with c.method("step", params=["java.lang.Object"],
                          returns="java.lang.Object") as m:
                out = m.invoke(m.param(1), other, "step", [m.param(1)],
                               returns="java.lang.Object")
                m.set_field(m.this, "next", out)
                m.ret(out)
    return pb.build()


def _summary_view(summary):
    return (
        summary.action.to_property(),
        [(s.callee_class, s.callee_name, tuple(s.polluted_position), s.pruned)
         for s in summary.call_sites],
    )


def test_seed_mutual_recursion_is_visit_order_independent():
    """Regression seed: under memoise-everything semantics, whichever
    cycle member was visited first kept a summary computed against the
    other's provisional identity — so A-first and B-first runs diverged.
    Root-final memoisation makes both orders identical."""
    from repro.core.controllability import ControllabilityAnalysis
    from repro.jvm.hierarchy import ClassHierarchy

    classes = _mutual_recursion_program()
    views = []
    for order in (("det.A", "det.B"), ("det.B", "det.A")):
        analysis = ControllabilityAnalysis(ClassHierarchy(classes))
        for class_name in order:
            cls = analysis.hierarchy.get(class_name)
            for method in cls.methods.values():
                if method.has_body:
                    analysis.summary_for(method)
        summaries = analysis.analyze_all()
        views.append({k: _summary_view(s) for k, s in summaries.items()})
        assert analysis.cycle_tainted, "seed must actually contain a cycle"
    assert views[0] == views[1]


def test_seed_shuffled_class_order_builds_identical_cpg():
    """Shuffling the classpath order must not change the built graph —
    node IDs included (summary/edge iteration is explicitly sorted)."""
    from repro.core.cpg import CPGBuilder
    from repro.jvm.hierarchy import ClassHierarchy

    classes = _mutual_recursion_program()

    def fingerprint(ordered):
        cpg = CPGBuilder(ClassHierarchy(ordered)).build()
        nodes = [(n.id, tuple(sorted(n.labels)),
                  tuple(sorted((k, repr(v)) for k, v in n.properties.items())))
                 for n in cpg.graph.nodes()]
        edges = [(r.type, r.start_id, r.end_id,
                  tuple(sorted((k, repr(v)) for k, v in r.properties.items())))
                 for r in cpg.graph.relationships()]
        return nodes, edges

    baseline = fingerprint(sorted(classes, key=lambda c: c.name))
    rng = random.Random(7)
    for _ in range(4):
        shuffled = list(classes)
        rng.shuffle(shuffled)
        assert fingerprint(shuffled) == baseline

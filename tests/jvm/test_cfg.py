"""Unit tests for control-flow graph construction."""

import pytest

from repro.errors import CFGError
from repro.jvm import ir
from repro.jvm.builder import ProgramBuilder
from repro.jvm.cfg import build_cfg


def method_with(body_fn, params=("int",)):
    pb = ProgramBuilder()
    with pb.cls("t.C") as c:
        with c.method("m", params=list(params)) as m:
            body_fn(m)
    (cls,) = pb.build()
    return cls.find_method("m")


class TestStraightLine:
    def test_single_block(self):
        method = method_with(lambda m: m.ret())
        cfg = build_cfg(method)
        assert len(cfg.blocks) == 1
        assert cfg.entry.successors == []

    def test_statements_preserved_in_order(self):
        method = method_with(lambda m: m.ret())
        cfg = build_cfg(method)
        assert list(cfg.statements()) == method.body

    def test_empty_body_empty_graph(self):
        pb = ProgramBuilder()
        cb = pb.cls("t.C")
        cb.abstract_method("m")
        cb.finish()
        (cls,) = pb.build()
        cfg = build_cfg(cls.find_method("m"))
        assert cfg.blocks == [] and cfg.entry is None


class TestBranching:
    def _diamond(self, m):
        cond = m.binop("==", m.param(1), 0)
        m.iff(cond, "then")
        m.invoke_static("t.C", "onFalse")
        m.goto("join")
        m.label("then")
        m.invoke_static("t.C", "onTrue")
        m.label("join")
        m.ret()

    def test_diamond_block_count(self):
        cfg = build_cfg(method_with(self._diamond))
        # entry (cond), false arm, true arm, join
        assert len(cfg.blocks) == 4

    def test_diamond_edges(self):
        cfg = build_cfg(method_with(self._diamond))
        entry = cfg.entry
        assert len(entry.successors) == 2
        join = [b for b in cfg.blocks if isinstance(b.last, ir.ReturnStmt)][0]
        assert len(join.predecessors) == 2

    def test_loop_back_edge(self):
        def body(m):
            m.label("head")
            cond = m.binop("==", m.param(1), 0)
            m.iff(cond, "exit")
            m.invoke_static("t.C", "work")
            m.goto("head")
            m.label("exit")
            m.ret()

        cfg = build_cfg(method_with(body))
        head = next(b for b in cfg.blocks if b.first.label == "head")
        assert any(head in b.successors for b in cfg.blocks)

    def test_switch_successors(self):
        def body(m):
            m.switch(m.param(1), [(1, "a"), (2, "b")], "d")
            m.label("a")
            m.ret()
            m.label("b")
            m.ret()
            m.label("d")
            m.ret()

        cfg = build_cfg(method_with(body))
        entry = cfg.entry
        assert len(entry.successors) == 3

    def test_undefined_label_rejected(self):
        def body(m):
            m.goto("nowhere")

        with pytest.raises(CFGError):
            build_cfg(method_with(body))

    def test_duplicate_label_rejected(self):
        def body(m):
            m.label("x")
            m.nop()
            m.label("x")
            m.ret()

        with pytest.raises(CFGError):
            build_cfg(method_with(body))


class TestOrders:
    def _diamond(self, m):
        cond = m.binop("==", m.param(1), 0)
        m.iff(cond, "then")
        m.invoke_static("t.C", "onFalse")
        m.goto("join")
        m.label("then")
        m.invoke_static("t.C", "onTrue")
        m.label("join")
        m.ret()

    def test_rpo_starts_at_entry(self):
        cfg = build_cfg(method_with(self._diamond))
        order = cfg.reverse_post_order()
        assert order[0] is cfg.entry
        assert len(order) == len(cfg.blocks)

    def test_rpo_join_after_both_arms(self):
        cfg = build_cfg(method_with(self._diamond))
        order = cfg.reverse_post_order()
        join_pos = max(
            i for i, b in enumerate(order) if isinstance(b.last, ir.ReturnStmt)
        )
        assert join_pos == len(order) - 1

    def test_linearized_contains_all_statements(self):
        method = method_with(self._diamond)
        cfg = build_cfg(method)
        linear = cfg.linearized_statements()
        assert sorted(map(id, linear)) == sorted(map(id, method.body))

    def test_unreachable_code_still_linearized(self):
        def body(m):
            m.ret()
            m.label("dead")
            m.invoke_static("t.C", "never")
            m.ret()

        method = method_with(body)
        cfg = build_cfg(method)
        assert len(cfg.linearized_statements()) == len(method.body)

    def test_branch_count(self):
        cfg = build_cfg(method_with(self._diamond))
        assert cfg.branch_count() == 1

    def test_exit_blocks(self):
        cfg = build_cfg(method_with(self._diamond))
        assert len(cfg.exit_blocks) == 1

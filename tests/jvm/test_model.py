"""Unit tests for the class/method/field model."""

import pytest

from repro.errors import ClassModelError
from repro.jvm import types as jt
from repro.jvm.model import (
    SERIALIZABLE,
    JavaClass,
    JavaField,
    JavaMethod,
    MethodSignature,
    Modifier,
)


class TestModifier:
    def test_from_names(self):
        m = Modifier.from_names(["public", "static"])
        assert m & Modifier.PUBLIC
        assert m & Modifier.STATIC

    def test_unknown_name_rejected(self):
        with pytest.raises(ClassModelError):
            Modifier.from_names(["bogus"])

    def test_names_round_trip(self):
        m = Modifier.PUBLIC | Modifier.FINAL
        assert set(m.names()) == {"public", "final"}


class TestMethodSignature:
    def test_signature_string(self):
        sig = MethodSignature("a.B", "run", [jt.INT, jt.STRING], jt.VOID)
        assert sig.signature == "<a.B: void run(int,java.lang.String)>"
        assert sig.sub_signature == "void run(int,java.lang.String)"

    def test_alias_key_ignores_types(self):
        s1 = MethodSignature("a.B", "run", [jt.INT], jt.VOID)
        s2 = MethodSignature("c.D", "run", [jt.STRING], jt.OBJECT)
        assert s1.alias_key == s2.alias_key == ("run", 1)

    def test_equality_and_hash(self):
        s1 = MethodSignature("a.B", "run", [jt.INT], jt.VOID)
        s2 = MethodSignature("a.B", "run", [jt.INT], jt.VOID)
        assert s1 == s2
        assert hash(s1) == hash(s2)

    def test_empty_name_rejected(self):
        with pytest.raises(ClassModelError):
            MethodSignature("a.B", "", [], jt.VOID)


class TestJavaMethod:
    def test_default_param_names(self):
        m = JavaMethod("f", [jt.INT, jt.INT])
        assert m.param_names == ("p1", "p2")

    def test_param_name_count_mismatch_rejected(self):
        with pytest.raises(ClassModelError):
            JavaMethod("f", [jt.INT], param_names=["a", "b"])

    def test_predicates(self):
        init = JavaMethod("<init>")
        clinit = JavaMethod("<clinit>", modifiers=Modifier.STATIC)
        assert init.is_constructor
        assert clinit.is_static_initializer
        assert clinit.is_static

    def test_unattached_method_has_no_class(self):
        m = JavaMethod("f")
        with pytest.raises(ClassModelError):
            _ = m.class_name

    def test_signature_after_attach(self):
        cls = JavaClass("a.B")
        m = cls.add_method(JavaMethod("f", [jt.INT], jt.VOID))
        assert m.signature.signature == "<a.B: void f(int)>"


class TestJavaClass:
    def test_object_has_no_super(self):
        obj = JavaClass("java.lang.Object")
        assert obj.super_name is None

    def test_default_super(self):
        cls = JavaClass("a.B")
        assert cls.super_name == "java.lang.Object"

    def test_duplicate_field_rejected(self):
        cls = JavaClass("a.B")
        cls.add_field(JavaField("x", jt.INT))
        with pytest.raises(ClassModelError):
            cls.add_field(JavaField("x", jt.LONG))

    def test_duplicate_method_rejected(self):
        cls = JavaClass("a.B")
        cls.add_method(JavaMethod("f", [jt.INT]))
        with pytest.raises(ClassModelError):
            cls.add_method(JavaMethod("f", [jt.INT]))

    def test_overloads_allowed(self):
        cls = JavaClass("a.B")
        cls.add_method(JavaMethod("f", [jt.INT]))
        cls.add_method(JavaMethod("f", [jt.STRING]))
        assert len(cls.methods_named("f")) == 2

    def test_find_method_by_arity(self):
        cls = JavaClass("a.B")
        one = cls.add_method(JavaMethod("f", [jt.INT]))
        two = cls.add_method(JavaMethod("f", [jt.INT, jt.INT]))
        assert cls.find_method("f", 2) is two
        assert cls.find_method("f", 1) is one
        assert cls.find_method("g") is None

    def test_declares_serializable(self):
        cls = JavaClass("a.B", interface_names=[SERIALIZABLE])
        assert cls.declares_serializable
        assert not JavaClass("a.C").declares_serializable

    def test_interface_predicate(self):
        iface = JavaClass("a.I", modifiers=Modifier.PUBLIC | Modifier.INTERFACE)
        assert iface.is_interface

    def test_transient_field(self):
        f = JavaField("cache", jt.OBJECT, Modifier.PUBLIC | Modifier.TRANSIENT)
        assert f.is_transient

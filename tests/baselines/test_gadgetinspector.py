"""Tests for the GadgetInspector baseline and its designed weaknesses."""

import pytest

from repro.baselines import GadgetInspector
from repro.corpus.jdk import build_lang_base
from repro.corpus.patterns import (
    plant_extends_chain,
    plant_guard_decoy,
    plant_interface_chain,
    plant_proxy_chain,
)
from repro.jvm.builder import ProgramBuilder
from repro.jvm.model import SERIALIZABLE


def classes_with(plant):
    pb = ProgramBuilder(jar="x.jar")
    spec = plant(pb)
    return build_lang_base() + pb.build(), spec


class TestDispatchWeakness:
    def test_follows_extension_dispatch(self):
        classes, spec = classes_with(
            lambda pb: plant_extends_chain(
                pb, base="t.Base", sub="t.Sub", source="t.Src", sink_key="exec"
            )
        )
        result = GadgetInspector(classes).run()
        assert any(spec.matches(c) for c in result.chains)

    def test_misses_interface_dispatch(self):
        classes, spec = classes_with(
            lambda pb: plant_interface_chain(
                pb, iface="t.I", impl="t.Impl", source="t.Src", sink_key="exec"
            )
        )
        result = GadgetInspector(classes).run()
        assert not any(spec.matches(c) for c in result.chains)

    def test_misses_dynamic_proxy(self):
        classes, spec = classes_with(
            lambda pb: plant_proxy_chain(
                pb, source="t.Src", handler="t.H", sink_key="exec"
            )
        )
        result = GadgetInspector(classes).run()
        assert result.chains == []


class TestTaintWeakness:
    def test_reports_uncontrollable_sink_args(self):
        """GI's optimistic taint: constant-argument sink calls reachable
        from a source are reported (its FPR driver)."""
        pb = ProgramBuilder(jar="x.jar")
        with pb.cls("t.Src", implements=[SERIALIZABLE]) as c:
            with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
                rt = m.invoke_static(
                    "java.lang.Runtime", "getRuntime", returns="java.lang.Runtime"
                )
                m.invoke(rt, "java.lang.Runtime", "exec", ["rm -rf /tmp/cache"])
        classes = build_lang_base() + pb.build()
        result = GadgetInspector(classes).run()
        assert result.result_count == 1

    def test_reports_guard_decoys(self):
        classes, _ = classes_with(
            lambda pb: plant_guard_decoy(pb, "t.Decoy", "t.Config")
        )
        result = GadgetInspector(classes).run()
        assert result.result_count == 1


class TestVisitedSetWeakness:
    def test_second_route_through_shared_node_lost(self):
        """Two sources sharing a helper: the helper is visited once per
        source, so both chains are found; but two routes from ONE source
        through a shared helper yield only the first."""
        pb = ProgramBuilder(jar="x.jar")
        with pb.cls("t.Helper") as c:
            with c.method("sinkCall", params=["java.lang.Object"]) as m:
                rt = m.invoke_static(
                    "java.lang.Runtime", "getRuntime", returns="java.lang.Runtime"
                )
                m.invoke(rt, "java.lang.Runtime", "exec", [m.param(1)])
        with pb.cls("t.Mid") as c:
            with c.method("route", params=["java.lang.Object"]) as m:
                h = m.new("t.Helper")
                m.invoke(h, "t.Helper", "sinkCall", [m.param(1)])
        with pb.cls("t.Src", implements=[SERIALIZABLE]) as c:
            c.field("v", "java.lang.Object")
            with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
                v = m.get_field(m.this, "v")
                h = m.new("t.Helper")
                m.invoke(h, "t.Helper", "sinkCall", [v])  # direct route
                mid = m.new("t.Mid")
                m.invoke(mid, "t.Mid", "route", [v])  # route via Mid
        classes = build_lang_base() + pb.build()
        result = GadgetInspector(classes).run()
        # whichever route reaches t.Helper.sinkCall first wins; the
        # other requires revisiting the node and is lost
        routes = {tuple(s.class_name for s in c.steps) for c in result.chains}
        through_helper = {r for r in routes if "t.Helper" in r}
        assert len(through_helper) == 1


class TestBudget:
    def test_step_budget_marks_unterminated(self):
        classes, _ = classes_with(
            lambda pb: plant_extends_chain(
                pb, base="t.Base", sub="t.Sub", source="t.Src", sink_key="exec"
            )
        )
        result = GadgetInspector(classes, step_budget=1).run()
        assert not result.terminated

    def test_result_repr(self):
        classes, _ = classes_with(
            lambda pb: plant_guard_decoy(pb, "t.D", "t.C")
        )
        result = GadgetInspector(classes).run()
        assert "gadgetinspector" in repr(result)
        assert result.elapsed_seconds >= 0

"""Tests for the Serianalyzer baseline and its designed weaknesses."""

import pytest

from repro.baselines import Serianalyzer
from repro.core.chains import filter_by_package
from repro.corpus.jdk import build_lang_base
from repro.corpus.patterns import (
    plant_interface_chain,
    plant_sl_bomb,
    plant_sl_crowders,
    plant_sl_flood,
)
from repro.jvm.builder import ProgramBuilder
from repro.jvm.model import SERIALIZABLE


class TestOverApproximation:
    def test_name_only_source_check(self):
        """A toString on a NON-serializable class heads an SL chain."""
        pb = ProgramBuilder(jar="x.jar")
        with pb.cls("t.NotSerializable") as c:
            with c.method("toString", returns="java.lang.String") as m:
                rt = m.invoke_static(
                    "java.lang.Runtime", "getRuntime", returns="java.lang.Runtime"
                )
                m.invoke(rt, "java.lang.Runtime", "exec", ["id"])
                m.ret("x")
        classes = build_lang_base() + pb.build()
        result = Serianalyzer(classes).run()
        assert result.result_count == 1

    def test_finds_interface_chains(self):
        pb = ProgramBuilder(jar="x.jar")
        spec = plant_interface_chain(
            pb, iface="t.I", impl="t.Impl", source="t.Src", sink_key="exec"
        )
        classes = build_lang_base() + pb.build()
        result = Serianalyzer(classes).run()
        assert any(spec.matches(c) for c in result.chains)

    def test_flood_reported_in_full(self):
        pb = ProgramBuilder(jar="x.jar")
        plant_sl_flood(pb, "t.flood", 12)
        classes = build_lang_base() + pb.build()
        result = Serianalyzer(classes).run()
        assert result.result_count == 12


class TestCallerCap:
    def test_cap_loses_chains(self):
        pb = ProgramBuilder(jar="x.jar")
        plant_sl_crowders(pb, "t.crowd", ["exec"], count=3)
        spec = plant_interface_chain(
            pb, iface="t.I", impl="t.Impl", source="t.Src", sink_key="exec"
        )
        classes = build_lang_base() + pb.build()
        result = Serianalyzer(classes).run()
        assert not any(spec.matches(c) for c in result.chains)

    def test_wider_cap_recovers_chains(self):
        pb = ProgramBuilder(jar="x.jar")
        plant_sl_crowders(pb, "t.crowd", ["exec"], count=3)
        spec = plant_interface_chain(
            pb, iface="t.I", impl="t.Impl", source="t.Src", sink_key="exec"
        )
        classes = build_lang_base() + pb.build()
        result = Serianalyzer(classes, caller_cap=10).run()
        assert any(spec.matches(c) for c in result.chains)


class TestTermination:
    def test_bomb_exceeds_budget(self):
        pb = ProgramBuilder(jar="x.jar")
        plant_sl_bomb(pb, "t.bomb")
        classes = build_lang_base() + pb.build()
        result = Serianalyzer(classes, step_budget=40_000).run()
        assert not result.terminated

    def test_generous_budget_terminates(self):
        pb = ProgramBuilder(jar="x.jar")
        plant_sl_flood(pb, "t.flood", 5)
        classes = build_lang_base() + pb.build()
        result = Serianalyzer(classes, step_budget=10_000_000).run()
        assert result.terminated


class TestPackageFilter:
    def test_paper_post_filter(self):
        """§IV-C: SL output is post-filtered to chains touching the
        component's package."""
        pb = ProgramBuilder(jar="x.jar")
        plant_sl_flood(pb, "com.target.flood", 4)
        plant_sl_flood(pb, "org.elsewhere.flood", 3)
        classes = build_lang_base() + pb.build()
        result = Serianalyzer(classes).run()
        assert result.result_count == 7
        filtered = filter_by_package(result.chains, "com.target")
        assert len(filtered) == 4

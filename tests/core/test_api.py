"""Integration tests for the Tabby facade (the Figure 1 program)."""

import pytest

from repro.core import SinkMethod, SourceCatalog, Tabby
from repro.errors import AnalysisError
from repro.graphdb.storage import load_graph
from repro.jvm.builder import ProgramBuilder
from repro.jvm.jar import JarArchive
from repro.jvm.model import SERIALIZABLE


def figure1_classes():
    pb = ProgramBuilder(jar="demo.jar")
    obj = pb.cls("java.lang.Object", extends=None)
    obj.abstract_method("toString", returns="java.lang.String")
    obj.finish()
    with pb.cls("demo.EvilObjectB", implements=[SERIALIZABLE]) as c:
        c.field("val2", "java.lang.Object")
        with c.method("toString", returns="java.lang.String") as m:
            v = m.get_field(m.this, "val2")
            cmd = m.invoke(v, "java.lang.Object", "toString", returns="java.lang.String")
            rt = m.invoke_static(
                "java.lang.Runtime", "getRuntime", returns="java.lang.Runtime"
            )
            m.invoke(rt, "java.lang.Runtime", "exec", [cmd])
            m.ret(cmd)
    with pb.cls("demo.EvilObjectA", implements=[SERIALIZABLE]) as c:
        c.field("val1", "java.lang.Object")
        with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
            v = m.get_field(m.this, "val1")
            m.invoke(v, "java.lang.Object", "toString", returns="java.lang.String")
            m.ret()
    return pb.build()


@pytest.fixture
def tabby():
    return Tabby(sources=SourceCatalog.native()).add_classes(figure1_classes())


class TestEndToEnd:
    def test_no_classes_error(self):
        with pytest.raises(AnalysisError):
            Tabby().build_cpg()

    def test_figure1_chain_found(self, tabby):
        chains = tabby.find_gadget_chains()
        assert len(chains) == 1
        (chain,) = chains
        names = [s.qualified for s in chain.steps]
        assert names == [
            "demo.EvilObjectA.readObject",
            "java.lang.Object.toString",
            "demo.EvilObjectB.toString",
            "java.lang.Runtime.exec",
        ]
        assert chain.sink_category == "EXEC"

    def test_render_matches_table_i_style(self, tabby):
        (chain,) = tabby.find_gadget_chains()
        text = chain.render()
        assert "(source)demo.EvilObjectA.readObject()" in text
        assert "(sink)java.lang.Runtime.exec()" in text

    def test_cpg_cached_until_input_changes(self, tabby):
        first = tabby.build_cpg()
        assert tabby.build_cpg() is first
        tabby.add_classes([])
        # adding (even zero) classes invalidates the cache
        assert tabby.build_cpg() is not first

    def test_add_jar(self):
        jar = JarArchive("demo", figure1_classes())
        t = Tabby(sources=SourceCatalog.native()).add_jar(jar)
        assert t.class_count == 3
        assert len(t.find_gadget_chains()) == 1

    def test_load_classpath(self, tmp_path):
        from repro.jvm.jar import write_jar

        write_jar(JarArchive("demo", figure1_classes()), str(tmp_path / "demo.jar"))
        t = Tabby(sources=SourceCatalog.native()).load_classpath([str(tmp_path)])
        assert len(t.find_gadget_chains()) == 1

    def test_custom_sink(self):
        pb = ProgramBuilder()
        with pb.cls("t.C", implements=[SERIALIZABLE]) as c:
            c.field("payload", "java.lang.String")
            with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
                v = m.get_field(m.this, "payload")
                lg = m.new("com.corp.Audit")
                m.invoke(lg, "com.corp.Audit", "logRaw", [v])
        t = Tabby(sources=SourceCatalog.native()).add_classes(pb.build())
        assert t.find_gadget_chains() == []
        t2 = (
            Tabby(sources=SourceCatalog.native())
            .add_classes(pb.build())
            .add_sinks([SinkMethod("com.corp.Audit", "logRaw", "CUSTOM", (1,))])
        )
        chains = t2.find_gadget_chains()
        assert len(chains) == 1
        assert chains[0].sink_category == "CUSTOM"

    def test_save_and_requery(self, tabby, tmp_path):
        path = str(tmp_path / "cpg.json")
        tabby.save_cpg(path)
        graph = load_graph(path)
        assert graph.node_count == tabby.cpg.graph.node_count

    def test_query_over_cpg(self, tabby):
        res = tabby.query(
            "MATCH (m:Method {IS_SINK: true}) RETURN m.CLASSNAME AS c, m.NAME AS n"
        )
        assert res.single() == {"c": "java.lang.Runtime", "n": "exec"}

    def test_query_chain_via_cypher(self, tabby):
        """RQ4 workflow: the chain is re-derivable with a plain query."""
        res = tabby.query(
            "MATCH (src:Method {IS_SOURCE: true})-[:CALL|ALIAS*1..6]-(snk:Method {IS_SINK: true}) "
            "RETURN DISTINCT src.CLASSNAME AS c"
        )
        assert "demo.EvilObjectA" in res.values("c")

    def test_max_depth_limits_results(self, tabby):
        assert tabby.find_gadget_chains(max_depth=2) == []
        assert len(tabby.find_gadget_chains(max_depth=3)) == 1


class TestPersistenceFormats:
    """save_cpg format plumbing and the Tabby.load_cpg warm start."""

    def chain_steps(self, chains):
        return [[s.qualified for s in c.steps] for c in chains]

    @pytest.mark.parametrize("format", ["binary", "json"])
    def test_load_cpg_reproduces_chains(self, tabby, tmp_path, format):
        path = str(tmp_path / "saved.cpg")
        cold = tabby.find_gadget_chains()
        tabby.save_cpg(path, format=format)
        warm = Tabby.load_cpg(path, sources=SourceCatalog.native())
        assert self.chain_steps(warm.find_gadget_chains()) == self.chain_steps(cold)

    def test_load_cpg_reproduces_queries(self, tabby, tmp_path):
        path = str(tmp_path / "saved.cpg")
        cold = tabby.query(
            "MATCH (m:Method {IS_SINK: true}) RETURN m.CLASSNAME AS c, m.NAME AS n"
        )
        tabby.save_cpg(path)
        warm = Tabby.load_cpg(path)
        assert warm.query(
            "MATCH (m:Method {IS_SINK: true}) RETURN m.CLASSNAME AS c, m.NAME AS n"
        ).rows == cold.rows

    def test_load_cpg_graph_fingerprint_identical(self, tabby, tmp_path):
        from repro.graphdb.snapshot import graph_fingerprint

        path = str(tmp_path / "saved.cpg")
        tabby.save_cpg(path, format="binary")
        warm = Tabby.load_cpg(path)
        assert graph_fingerprint(warm.cpg.graph) == graph_fingerprint(
            tabby.cpg.graph
        )

    def test_load_cpg_statistics_populated(self, tabby, tmp_path):
        path = str(tmp_path / "saved.cpg")
        tabby.save_cpg(path)
        warm = Tabby.load_cpg(path)
        stats = warm.cpg.statistics
        assert stats.method_node_count > 0
        assert stats.relationship_edge_count == tabby.cpg.graph.relationship_count

    def test_default_format_by_suffix(self, tabby, tmp_path):
        from repro.graphdb.snapshot import SNAPSHOT_MAGIC

        binary = tmp_path / "saved.cpg"
        jsonish = tmp_path / "saved.cpg.json"
        tabby.save_cpg(str(binary))
        tabby.save_cpg(str(jsonish))
        assert binary.read_bytes()[:8] == SNAPSHOT_MAGIC
        assert jsonish.read_bytes()[:1] == b"{"

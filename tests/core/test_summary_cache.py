"""Unit tests for the persistent summary cache.

Covers the safety claims of ``repro.core.summary_cache``: content-hash
keying (a change to a class *or anything in its dependency closure or
catalogs* invalidates the entry), corruption tolerance (any broken
entry degrades to a miss, never an error), and the cycle-taint
persistence ban.
"""

import json
import os
import sys

import pytest

from repro.core import SourceCatalog, Tabby
from repro.core.cpg import CPGBuilder
from repro.core.sinks import SinkCatalog, SinkMethod
from repro.core.summary_cache import (
    CACHE_FORMAT_VERSION,
    SummaryCache,
    _intern_tree,
    catalog_token,
    decode_summary,
    dependency_closures,
    encode_summary,
)
from repro.corpus import build_component, build_lang_base
from repro.jvm.builder import ProgramBuilder
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.model import SERIALIZABLE


def make_classes(leaf_body="toString"):
    """t.Caller calls t.Leaf.run; the leaf body is configurable so tests
    can change a *dependency* without touching the caller."""
    pb = ProgramBuilder()
    with pb.cls("t.Leaf") as c:
        with c.method("run", params=["java.lang.Object"]) as m:
            m.invoke(m.param(1), "java.lang.Object", leaf_body,
                     returns="java.lang.String")
    with pb.cls("t.Caller") as c:
        with c.method("call", params=["java.lang.Object"]) as m:
            leaf = m.new("t.Leaf")
            m.invoke(leaf, "t.Leaf", "run", [m.param(1)])
    return pb.build()


def build(classes, cache):
    hierarchy = ClassHierarchy(classes)
    builder = CPGBuilder(hierarchy, cache=cache)
    return builder.build()


class TestHitMiss:
    def test_cold_build_misses_then_stores(self, tmp_path):
        cache = SummaryCache(str(tmp_path))
        build(make_classes(), cache)
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2
        assert cache.stats.stored == 2

    def test_warm_build_hits_every_class(self, tmp_path):
        classes = make_classes()
        build(classes, SummaryCache(str(tmp_path)))
        warm = SummaryCache(str(tmp_path))
        cpg = build(classes, warm)
        assert warm.stats.hits == 2
        assert warm.stats.misses == 0
        assert cpg.statistics.cached_method_count == 2
        assert cpg.statistics.analyzed_method_count == 0

    def test_partial_cache_analyzes_only_missing_classes(self, tmp_path):
        classes = make_classes()
        first = SummaryCache(str(tmp_path))
        build(classes, first)
        # evict one entry; the next build must hit one and re-analyse one
        entries = [p for p in os.listdir(str(tmp_path)) if p.endswith(".json")]
        os.unlink(os.path.join(str(tmp_path), entries[0]))
        partial = SummaryCache(str(tmp_path))
        cpg = build(classes, partial)
        assert partial.stats.hits == 1
        assert partial.stats.misses == 1
        assert cpg.statistics.analyzed_method_count == 1


class TestInvalidation:
    def test_changed_class_bytes_invalidate_its_entry(self, tmp_path):
        build(make_classes(leaf_body="toString"), SummaryCache(str(tmp_path)))
        cache = SummaryCache(str(tmp_path))
        build(make_classes(leaf_body="hashCode"), cache)
        # the leaf changed, and the caller's closure includes the leaf:
        # both entries must be recomputed
        assert cache.stats.hits == 0
        assert cache.stats.misses == 2

    def test_dependency_closure_covers_callers(self):
        hierarchy = ClassHierarchy(make_classes())
        closures = dependency_closures(hierarchy)
        assert "t.Leaf" in closures["t.Caller"]
        assert closures["t.Leaf"] == ["t.Leaf"]

    def test_sink_catalog_change_invalidates(self, tmp_path):
        classes = make_classes()
        base_sinks = SinkCatalog()
        cache = SummaryCache(str(tmp_path), catalog_token(base_sinks))
        build(classes, cache)
        extended = base_sinks.with_extra(
            [SinkMethod("t.Leaf", "run", "CUSTOM", (0,))]
        )
        cache2 = SummaryCache(str(tmp_path), catalog_token(extended))
        build(classes, cache2)
        assert cache2.stats.hits == 0

    def test_catalog_token_is_stable(self):
        assert catalog_token(SinkCatalog()) == catalog_token(SinkCatalog())
        assert catalog_token(SinkCatalog()) != catalog_token(None)


class TestCorruptionTolerance:
    def entries(self, tmp_path):
        return [
            os.path.join(str(tmp_path), p)
            for p in sorted(os.listdir(str(tmp_path)))
            if p.endswith(".json")
        ]

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda path: open(path, "w").write("{truncated"),
            lambda path: open(path, "w").write("[]"),
            lambda path: open(path, "w").write(
                json.dumps({"version": -1, "class": "x", "records": []})
            ),
            lambda path: open(path, "w").write(
                json.dumps({
                    "version": CACHE_FORMAT_VERSION,
                    "class": "something.Else",
                    "records": [],
                })
            ),
            lambda path: open(path, "w").write(
                json.dumps({
                    "version": CACHE_FORMAT_VERSION,
                    "class": "t.Caller",
                    "records": [{"nonsense": True}],
                })
            ),
        ],
        ids=["truncated-json", "wrong-shape", "old-version", "wrong-class",
             "malformed-record"],
    )
    def test_corrupt_entry_degrades_to_miss(self, tmp_path, mutate):
        classes = make_classes()
        reference = build(classes, SummaryCache(str(tmp_path))).summaries
        for path in self.entries(tmp_path):
            mutate(path)
        cache = SummaryCache(str(tmp_path))
        cpg = build(classes, cache)
        assert cache.stats.hits == 0
        assert cache.stats.corrupt >= 1
        assert set(cpg.summaries) == set(reference)

    def test_stale_method_reference_degrades_to_miss(self, tmp_path):
        """An entry whose records mention methods the hierarchy no
        longer has must fall back to analysis, not crash."""
        classes = make_classes()
        build(classes, SummaryCache(str(tmp_path)))
        for path in self.entries(tmp_path):
            payload = json.load(open(path))
            for record in payload["records"]:
                record["subsig"] = "java.lang.String vanished()"
            json.dump(payload, open(path, "w"))
        # same key, decodable JSON, but the records cannot be rehydrated
        cache = SummaryCache(str(tmp_path))
        cpg = build(classes, cache)
        assert len(cpg.summaries) == 2
        assert cpg.statistics.analyzed_method_count == 2


class TestCodec:
    def test_round_trip_preserves_summary(self):
        hierarchy = ClassHierarchy(make_classes())
        builder = CPGBuilder(hierarchy)
        cpg = builder.build()
        for key, summary in cpg.summaries.items():
            clone = decode_summary(encode_summary(summary), hierarchy)
            assert clone.method is summary.method
            assert clone.action.to_property() == summary.action.to_property()
            assert len(clone.call_sites) == len(summary.call_sites)
            for a, b in zip(clone.call_sites, summary.call_sites):
                assert a.polluted_position == b.polluted_position
                assert a.pruned == b.pruned
                assert a.resolved is b.resolved


class TestReadBackInterning:
    """Warm loads return one shared object per distinct string."""

    def test_intern_tree_shares_strings(self):
        # json.loads allocates a fresh string per *value* occurrence
        record = json.loads(
            '{"callee_class": "com.example.Widget",'
            ' "nested": {"tags": ["com.example.Widget"]}, "pp": [0, 1]}'
        )
        out = _intern_tree(record)
        assert out["callee_class"] is sys.intern("com.example.Widget")
        assert out["nested"]["tags"][0] is out["callee_class"]
        assert out["pp"] == [0, 1]

    def test_long_strings_left_alone(self):
        long = "x" * 600
        assert _intern_tree([long])[0] is long

    def test_load_interns_record_strings(self, tmp_path):
        cache = SummaryCache(str(tmp_path))
        cache.store(
            "deadbeef", "t.C", [{"subsig": "void run()", "callee": "com.ex.Widget"}]
        )
        (record,) = SummaryCache(str(tmp_path)).load("deadbeef", "t.C")
        assert record["callee"] is sys.intern("com.ex.Widget")
        assert record["subsig"] is sys.intern("void run()")


class TestWarmRunIdentity:
    """A warm ``--cache-dir`` run after a binary save/load cycle must be
    bit-identical to a cold run: same rendered chains, same graph."""

    def gadget_classes(self):
        pb = ProgramBuilder()
        obj = pb.cls("java.lang.Object", extends=None)
        obj.abstract_method("toString", returns="java.lang.String")
        obj.finish()
        with pb.cls("demo.EvilObjectB", implements=[SERIALIZABLE]) as c:
            c.field("val2", "java.lang.Object")
            with c.method("toString", returns="java.lang.String") as m:
                v = m.get_field(m.this, "val2")
                cmd = m.invoke(
                    v, "java.lang.Object", "toString", returns="java.lang.String"
                )
                rt = m.invoke_static(
                    "java.lang.Runtime", "getRuntime", returns="java.lang.Runtime"
                )
                m.invoke(rt, "java.lang.Runtime", "exec", [cmd])
                m.ret(cmd)
        with pb.cls("demo.EvilObjectA", implements=[SERIALIZABLE]) as c:
            c.field("val1", "java.lang.Object")
            with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
                v = m.get_field(m.this, "val1")
                m.invoke(v, "java.lang.Object", "toString", returns="java.lang.String")
                m.ret()
        return pb.build()

    def test_warm_run_bit_identical_after_binary_cycle(self, tmp_path):
        from repro.graphdb.snapshot import graph_fingerprint

        cache_dir = str(tmp_path / "cache")
        cold = Tabby(
            sources=SourceCatalog.native(), cache_dir=cache_dir
        ).add_classes(self.gadget_classes())
        cold_chains = [c.render() for c in cold.find_gadget_chains()]
        assert cold_chains  # the regression only means something with a chain
        assert cold.cpg.statistics.cached_method_count == 0

        # binary save/load cycle in between the two cache runs
        path = str(tmp_path / "saved.cpg")
        cold.save_cpg(path, format="binary")
        reloaded = Tabby.load_cpg(path, sources=SourceCatalog.native())
        assert graph_fingerprint(reloaded.cpg.graph) == graph_fingerprint(
            cold.cpg.graph
        )

        warm = Tabby(
            sources=SourceCatalog.native(), cache_dir=cache_dir
        ).add_classes(self.gadget_classes())
        warm_chains = [c.render() for c in warm.find_gadget_chains()]
        assert warm.cpg.statistics.cached_method_count > 0  # really warm
        assert warm_chains == cold_chains
        assert graph_fingerprint(warm.cpg.graph) == graph_fingerprint(
            cold.cpg.graph
        )


class TestCycleTaint:
    def test_cycle_tainted_classes_never_persisted(self, tmp_path):
        """The bomb component's recursion clusters must be re-analysed
        every build — persisting them could perturb cycle partners."""
        classes = build_lang_base() + build_component("Clojure").classes
        cold = SummaryCache(str(tmp_path))
        build(classes, cold)
        assert cold.stats.skipped_tainted > 0
        warm = SummaryCache(str(tmp_path))
        cpg = build(classes, warm)
        assert warm.stats.hits > 0
        # the cluster classes miss by design and are re-analysed
        assert warm.stats.misses == cold.stats.skipped_tainted
        assert cpg.statistics.analyzed_method_count > 0


class TestInvalidate:
    def test_invalidate_removes_entries(self, tmp_path):
        cache = SummaryCache(str(tmp_path))
        cache.store("k1", "t.A", [])
        cache.store("k2", "t.B", [])
        assert cache.invalidate(["k1", "missing"]) == 1
        assert cache.stats.invalidated == 1
        assert cache.load("k1", "t.A") is None
        assert cache.load("k2", "t.B") is not None
        # the failed load above counted as a plain miss, not corruption
        assert cache.stats.corrupt == 0

    def test_invalidate_is_idempotent(self, tmp_path):
        cache = SummaryCache(str(tmp_path))
        cache.store("k1", "t.A", [])
        assert cache.invalidate(["k1"]) == 1
        assert cache.invalidate(["k1"]) == 0
        assert cache.stats.invalidated == 1

    def test_taint_engine_invalidate_classes(self, tmp_path):
        """The taint engine's per-class invalidation drops both the
        on-disk entry and the in-memory memo, forcing re-probe."""
        from repro.analysis.taint import TaintSummaryEngine

        classes = make_classes()
        hierarchy = ClassHierarchy(classes)
        engine = TaintSummaryEngine(hierarchy, cache_dir=str(tmp_path))
        for cls in hierarchy.classes:
            for method in cls.methods.values():
                engine.summary_for(method)
        assert engine.cache.stats.stored > 0
        removed = engine.invalidate_classes(["t.Caller", "t.Ghost"])
        assert removed >= 1
        assert engine.cache.stats.invalidated == removed
        # the memoised summaries for the class are gone too
        caller = hierarchy.get("t.Caller")
        warm = TaintSummaryEngine(hierarchy, cache_dir=str(tmp_path))
        for method in caller.methods.values():
            assert warm.summary_for(method) is not None


class TestSizeCap:
    def fill(self, cache, count, size=4096):
        pad = "x" * size
        for i in range(count):
            cache.store(f"k{i:03d}", f"t.C{i}", [{"subsig": pad}])

    def test_rejects_nonpositive_cap(self, tmp_path):
        with pytest.raises(ValueError):
            SummaryCache(str(tmp_path), max_mb=0)
        with pytest.raises(ValueError):
            SummaryCache(str(tmp_path), max_mb=-1)

    def test_unbounded_by_default(self, tmp_path):
        cache = SummaryCache(str(tmp_path))
        self.fill(cache, 30)
        assert cache.stats.evicted == 0
        assert len(os.listdir(str(tmp_path))) == 30

    def test_cap_evicts_oldest_first(self, tmp_path):
        # ~4KB per entry, 16KB cap -> at most ~4 entries survive
        cache = SummaryCache(str(tmp_path), max_mb=16 / 1024)
        self.fill(cache, 12)
        assert cache.stats.evicted > 0
        survivors = sorted(
            p for p in os.listdir(str(tmp_path)) if p.endswith(".json")
        )
        # LRU by mtime: the oldest writes go first, the newest survive
        assert survivors == [f"k{i:03d}.json" for i in range(12 - len(survivors), 12)]
        # the just-written key is never the eviction victim
        assert "k011.json" in survivors

    def test_hit_refreshes_lru_position(self, tmp_path):
        cache = SummaryCache(str(tmp_path), max_mb=16 / 1024)
        self.fill(cache, 3)
        # make k000 strictly the oldest, then touch it via a hit
        past = os.path.getmtime(cache._path("k001")) - 100
        os.utime(cache._path("k000"), (past, past))
        assert cache.load("k000", "t.C0") is not None
        self.fill_one_more = None
        cache.store("k900", "t.C900", [{"subsig": "y" * 4096}])
        cache.store("k901", "t.C901", [{"subsig": "y" * 4096}])
        remaining = {p for p in os.listdir(str(tmp_path)) if p.endswith(".json")}
        assert "k000.json" in remaining  # refreshed, so not the victim

    def test_evicted_entry_is_a_plain_miss(self, tmp_path):
        cache = SummaryCache(str(tmp_path), max_mb=16 / 1024)
        self.fill(cache, 12)
        assert cache.load("k000", "t.C0") is None
        assert cache.stats.corrupt == 0


class TestStructuredWarning:
    def test_corrupt_entry_logs_structured_warning(self, tmp_path, caplog):
        import logging

        cache = SummaryCache(str(tmp_path))
        cache.store("bad", "t.A", [])
        with open(cache._path("bad"), "w") as handle:
            handle.write("{nope")
        with caplog.at_level(logging.WARNING, logger="repro.core.summary_cache"):
            assert cache.load("bad", "t.A") is None
        records = [
            r for r in caplog.records
            if r.name == "repro.core.summary_cache"
        ]
        assert len(records) == 1
        message = records[0].getMessage()
        assert message.startswith(
            "unreadable summary cache entry treated as miss:"
        )
        assert "class=t.A" in message and "key=bad" in message
        assert cache.stats.corrupt == 1

    def test_clean_miss_does_not_warn(self, tmp_path, caplog):
        import logging

        cache = SummaryCache(str(tmp_path))
        with caplog.at_level(logging.WARNING, logger="repro.core.summary_cache"):
            assert cache.load("absent", "t.A") is None
        assert not caplog.records

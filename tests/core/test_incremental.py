"""The incremental-analysis differential battery.

Every edit script asserts the one contract that makes
``repro.core.incremental`` trustworthy: the patched session's output —
the chain list AND the graph fingerprint after the canonical renumber —
is **bit-identical** to a cold rebuild of the new version.  On top of
that: the ``tabby diff`` partitioning, the versioned JSON schema, the
refinement verdict layer over appeared chains, the snapshot warm
start, and the sound full-rebuild fallback.
"""

import copy
import json

import pytest

from repro.core import Tabby
from repro.core.chains import dedupe_chains
from repro.core.cpg import CPGBuilder
from repro.core.incremental import (
    DIFF_SCHEMA_VERSION,
    ChainSearchConfig,
    IncrementalAnalyzer,
    apply_refinement_verdicts,
    diff_chains,
    diff_to_dict,
)
from repro.core.pathfinder import GadgetChainFinder
from repro.core.sources import SourceCatalog
from repro.corpus import build_component, build_lang_base
from repro.corpus.patterns import plant_guard_decoy
from repro.errors import IncrementalError
from repro.graphdb.snapshot import graph_fingerprint
from repro.graphdb.storage import save_graph
from repro.graphdb.traversal import Uniqueness
from repro.jvm.builder import ProgramBuilder
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.jasm import dumps, loads
from repro.jvm.model import SERIALIZABLE


def gadget_program(
    sink_in_b=True, with_extra=False, define_util=False, jar="demo.jar"
):
    """A parameterisable Figure-1-style program.

    ``sink_in_b`` toggles the Runtime.exec call inside EvilObjectB
    (the "modify one method body" edit); ``with_extra`` adds an
    unrelated class; ``define_util`` turns ``ext.Util`` — called by
    EvilObjectB, a phantom otherwise — into a defined class (the
    phantom-to-defined transition edit).
    """
    pb = ProgramBuilder(jar=jar)
    obj = pb.cls("java.lang.Object", extends=None)
    obj.abstract_method("toString", returns="java.lang.String")
    obj.finish()
    if define_util:
        with pb.cls("ext.Util") as c:
            with c.method("log", params=["java.lang.Object"]) as m:
                m.invoke(m.param(1), "java.lang.Object", "toString",
                         returns="java.lang.String")
                m.ret()
    with pb.cls("d.EvilObjectB", implements=[SERIALIZABLE]) as c:
        c.field("val2", "java.lang.Object")
        with c.method("toString", returns="java.lang.String") as m:
            v = m.get_field(m.this, "val2")
            cmd = m.invoke(
                v, "java.lang.Object", "toString", returns="java.lang.String"
            )
            util = m.new("ext.Util")
            m.invoke(util, "ext.Util", "log", [cmd])
            if sink_in_b:
                rt = m.invoke_static(
                    "java.lang.Runtime", "getRuntime",
                    returns="java.lang.Runtime",
                )
                m.invoke(rt, "java.lang.Runtime", "exec", [cmd])
            m.ret(cmd)
    with pb.cls("d.EvilObjectA", implements=[SERIALIZABLE]) as c:
        c.field("val1", "java.lang.Object")
        with c.method("toString", returns="java.lang.String") as m:
            v = m.get_field(m.this, "val1")
            s = m.invoke(
                v, "java.lang.Object", "toString", returns="java.lang.String"
            )
            m.ret(s)
    with pb.cls("d.Source", implements=[SERIALIZABLE]) as c:
        c.field("payload", "java.lang.Object")
        with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
            v = m.get_field(m.this, "payload")
            m.invoke(v, "java.lang.Object", "toString",
                     returns="java.lang.String")
            m.ret()
    if with_extra:
        with pb.cls("d.Bystander", implements=[SERIALIZABLE]) as c:
            c.field("data", "java.lang.Object")
            with c.method("toString", returns="java.lang.String") as m:
                v = m.get_field(m.this, "data")
                s = m.invoke(v, "java.lang.Object", "toString",
                             returns="java.lang.String")
                m.ret(s)
    return pb.build()


def cold_reference(classes, cfg: ChainSearchConfig):
    """The cold pipeline the incremental session must be bit-identical
    to: CPGBuilder + per-sink search + first-seen dedupe."""
    cpg = CPGBuilder(ClassHierarchy(classes)).build()
    finder = GadgetChainFinder(
        cpg,
        max_depth=cfg.max_depth,
        follow_alias=cfg.follow_alias,
        max_results_per_sink=cfg.max_results_per_sink,
        uniqueness=cfg.uniqueness,
        optimize=cfg.optimize,
        workers=cfg.workers,
    )
    per_sink = finder.find_chains_per_sink(
        cpg.sink_nodes(), source_filter=cfg.source_filter
    )
    chains = dedupe_chains([c for bucket in per_sink for c in bucket])
    return cpg, chains


def assert_equivalent(session, classes, label):
    """update() then compare chain keys and the full graph fingerprint
    against a cold rebuild."""
    result = session.update([copy.deepcopy(c) for c in classes])
    cpg_cold, chains_cold = cold_reference(
        [copy.deepcopy(c) for c in classes], session.search
    )
    assert [c.key for c in result.chains] == [c.key for c in chains_cold], label
    assert repr(graph_fingerprint(session.cpg.graph)) == repr(
        graph_fingerprint(cpg_cold.graph)
    ), f"{label}: graph fingerprint diverged from cold rebuild"
    return result


def reparse(classes):
    """Fresh model objects for the same program text (the update path
    must not depend on object identity across versions)."""
    return loads(dumps(classes))


class TestColdBuild:
    def test_matches_cold_pipeline(self):
        classes = gadget_program()
        session = IncrementalAnalyzer(classes)
        cpg_cold, chains_cold = cold_reference(
            gadget_program(), session.search
        )
        assert [c.key for c in session.chains] == [c.key for c in chains_cold]
        assert repr(graph_fingerprint(session.cpg.graph)) == repr(
            graph_fingerprint(cpg_cold.graph)
        )
        assert session.chains, "the gadget program must yield chains"

    def test_session_tracks_node_ids(self):
        session = IncrementalAnalyzer(gadget_program())
        graph = session.cpg.graph
        for name, node_id in session._class_node_ids.items():
            assert graph.node(node_id).get("NAME") == name
        for (cls, name, arity), node_id in session._method_node_ids.items():
            node = graph.node(node_id)
            assert (node.get("CLASSNAME"), node.get("NAME"),
                    node.get("ARITY")) == (cls, name, arity)


class TestEditScripts:
    def test_modify_method_body(self):
        session = IncrementalAnalyzer(gadget_program())
        before = [c.key for c in session.chains]
        result = assert_equivalent(
            session, gadget_program(sink_in_b=False), "drop sink call"
        )
        assert [c.key for c in result.chains] != before
        assert not session.last_statistics.full_rebuild
        assert_equivalent(session, gadget_program(), "restore sink call")

    def test_add_and_remove_class(self):
        session = IncrementalAnalyzer(gadget_program())
        assert_equivalent(session, gadget_program(with_extra=True), "add")
        stats = session.last_statistics
        assert stats.classes_added == 1 and not stats.full_rebuild
        assert_equivalent(session, gadget_program(), "remove")
        assert session.last_statistics.classes_removed == 1

    def test_phantom_to_defined_transition(self):
        # ext.Util is a phantom callee in v0 and a defined class in v1;
        # the transition dirties its callers (their closures change)
        session = IncrementalAnalyzer(gadget_program())
        phantom = session.cpg.graph.node(
            session._class_node_ids["ext.Util"]
        )
        assert phantom.get("IS_PHANTOM") is True
        assert_equivalent(
            session, gadget_program(define_util=True), "phantom->defined"
        )
        defined = session.cpg.graph.node(
            session._class_node_ids["ext.Util"]
        )
        assert defined.get("IS_PHANTOM") is False
        assert_equivalent(session, gadget_program(), "defined->phantom")

    def test_jar_move_only(self):
        session = IncrementalAnalyzer(gadget_program())
        moved = gadget_program(jar="relocated.jar")
        result = assert_equivalent(session, moved, "jar move")
        stats = session.last_statistics
        assert stats.classes_changed == 0
        assert stats.classes_jar_moved > 0
        assert stats.sinks_researched == 0
        assert result.chains

    def test_noop_update_reuses_everything(self):
        session = IncrementalAnalyzer(gadget_program())
        assert_equivalent(session, gadget_program(), "noop")
        stats = session.last_statistics
        assert stats.classes_changed == 0
        assert stats.sinks_researched == 0
        assert stats.nodes_deleted == 0 and stats.nodes_created == 0

    def test_reparsed_identical_text_is_clean(self):
        classes = gadget_program()
        session = IncrementalAnalyzer(classes)
        assert_equivalent(session, reparse(classes), "reparse noop")
        assert session.last_statistics.classes_changed == 0

    @pytest.mark.parametrize("uniqueness", list(Uniqueness))
    def test_uniqueness_modes(self, uniqueness):
        cfg = ChainSearchConfig(uniqueness=uniqueness)
        session = IncrementalAnalyzer(gadget_program(), search=cfg)
        assert_equivalent(
            session,
            gadget_program(sink_in_b=False),
            f"uniqueness={uniqueness}",
        )
        assert_equivalent(
            session, gadget_program(with_extra=True), f"u2={uniqueness}"
        )

    def test_source_filter_and_depth_config(self):
        cfg = ChainSearchConfig(max_depth=6, source_filter="d.")
        session = IncrementalAnalyzer(gadget_program(), search=cfg)
        assert_equivalent(
            session, gadget_program(with_extra=True), "filtered search"
        )


class TestCorpusDifferential:
    """One heavier script over the real synthetic corpus component."""

    def test_single_class_edit_over_commons_collections(self):
        classes = build_lang_base() + list(
            build_component("commons-collections(3.2.1)").classes
        )
        session = IncrementalAnalyzer(classes)
        assert len(session.chains) > 0
        edited = [copy.deepcopy(c) for c in reparse(classes)]
        target = next(
            c for c in edited
            if c.name == "org.apache.commons.collections.map.TransformedMap"
        )
        victim = [k for k, m in target.methods.items() if m.has_body][-1]
        del target.methods[victim]
        assert_equivalent(session, edited, "corpus 1-class edit")
        stats = session.last_statistics
        assert not stats.full_rebuild
        assert stats.classes_changed == 1
        # the dirty cone must spare sinks untouched by the edit
        assert stats.sinks_reused > 0
        assert_equivalent(session, reparse(classes), "corpus revert")

    def test_cycle_tainted_summaries_are_reused_not_reanalyzed(self):
        """The Clojure component's recursion clusters are cycle-tainted
        (never cached); a clean update must still reuse their root-final
        summaries instead of re-deriving the whole cluster, and stay
        bit-identical to a cold rebuild."""
        classes = build_lang_base() + list(build_component("Clojure").classes)
        session = IncrementalAnalyzer(classes)
        assert session.tainted_classes, "Clojure must produce cycle taint"
        tainted_before = set(session.tainted_sigs)

        edited = [copy.deepcopy(c) for c in reparse(classes)]
        target = next(
            c for c in edited
            if c.name not in session.tainted_classes
            and c.name != "java.lang.Object"
            and sum(m.has_body for m in c.methods.values()) > 1
        )
        victim = [k for k, m in target.methods.items() if m.has_body][-1]
        del target.methods[victim]
        assert_equivalent(session, edited, "edit outside the cycle")
        stats = session.last_statistics
        # the edit dirties only its closure dependents — the tainted
        # clusters ride along as seeded summaries instead of being
        # re-derived wholesale
        assert 0 < stats.classes_reanalyzed < len(classes) // 2
        assert session.tainted_sigs == tainted_before


class TestFallback:
    def test_patch_failure_falls_back_to_cold_rebuild(self, monkeypatch):
        session = IncrementalAnalyzer(gadget_program())

        def boom(*args, **kwargs):
            raise IncrementalError("injected patch failure")

        monkeypatch.setattr(session, "_patch_graph", boom)
        result = session.update(gadget_program(sink_in_b=False))
        stats = result.statistics
        assert stats.full_rebuild
        assert "injected patch failure" in stats.full_rebuild_reason
        _, chains_cold = cold_reference(
            gadget_program(sink_in_b=False), session.search
        )
        assert [c.key for c in result.chains] == [c.key for c in chains_cold]
        # the session stays usable afterwards (fresh state from the
        # rebuild), and in-place patching resumes
        monkeypatch.undo()
        assert_equivalent(session, gadget_program(), "post-fallback update")
        assert not session.last_statistics.full_rebuild


class TestSnapshotWarmStart:
    def test_from_snapshot_equivalent_to_cold_session(self, tmp_path):
        classes = gadget_program()
        cold = IncrementalAnalyzer(classes)
        path = str(tmp_path / "demo.cpg")
        save_graph(cold.cpg.graph, path)
        warm = IncrementalAnalyzer.from_snapshot(path, gadget_program())
        assert [c.key for c in warm.chains] == [c.key for c in cold.chains]
        assert repr(graph_fingerprint(warm.cpg.graph)) == repr(
            graph_fingerprint(cold.cpg.graph)
        )
        assert_equivalent(
            warm, gadget_program(sink_in_b=False), "update after warm start"
        )

    def test_from_snapshot_rejects_mismatched_classes(self, tmp_path):
        cold = IncrementalAnalyzer(gadget_program())
        path = str(tmp_path / "demo.cpg")
        save_graph(cold.cpg.graph, path)
        with pytest.raises(IncrementalError):
            IncrementalAnalyzer.from_snapshot(
                path, gadget_program(with_extra=True)
            )


class TestChainDiff:
    def test_partition_by_fate(self):
        old = cold_reference(gadget_program(), ChainSearchConfig())[1]
        new = cold_reference(
            gadget_program(sink_in_b=False), ChainSearchConfig()
        )[1]
        diff = diff_chains(old, new)
        assert diff.old_total == len(old)
        assert diff.new_total == len(new)
        old_keys = {c.key for c in old}
        new_keys = {c.key for c in new}
        assert all(c.key not in old_keys for c in diff.appeared)
        assert all(c.key not in new_keys for c in diff.disappeared)
        assert all(c.key in old_keys for c in diff.survived)
        assert len(diff.appeared) + len(diff.survived) == len(new)
        assert len(diff.disappeared) + len(diff.survived) == len(old)

    def test_schema_document_is_pinned(self):
        """The tabby-diff/v1 document shape is a published contract."""
        assert DIFF_SCHEMA_VERSION == "tabby-diff/v1"
        tabby = Tabby(sources=SourceCatalog.native())
        diff = tabby.diff_versions(
            gadget_program(sink_in_b=False), gadget_program()
        )
        document = diff_to_dict(diff)
        assert sorted(document) == [
            "appeared", "disappeared", "incremental", "schema", "summary",
            "survived",
        ]
        assert "incremental" not in diff_to_dict(diff_chains([], []))
        assert document["schema"] == "tabby-diff/v1"
        assert sorted(document["summary"]) == [
            "appeared", "disappeared", "new_total", "old_total", "survived",
        ]
        for record in document["appeared"]:
            assert sorted(record) == ["key", "sink_category", "steps"]
            assert all(
                isinstance(step, list) and len(step) == 3
                for step in record["key"]
            )
        json.dumps(document)  # must be JSON-serialisable as-is

    def test_diff_versions_reports_activated_chain(self):
        tabby = Tabby(sources=SourceCatalog.native())
        diff = tabby.diff_versions(
            gadget_program(sink_in_b=False), gadget_program()
        )
        assert diff.appeared and not diff.disappeared
        assert any(
            step.qualified == "java.lang.Runtime.exec"
            for chain in diff.appeared
            for step in chain.steps
        )
        # the facade now holds the NEW version's CPG
        rows = tabby.query(
            "MATCH (m:Method {IS_SINK: true}) RETURN m.NAME"
        ).rows
        assert rows


class TestDecoyRegression:
    """Sleeping-Giants-style regression: a guard decoy planted only in
    the edited version must surface as an *appeared* chain, and the
    verdict layer must refute it."""

    def build(self, with_decoy):
        pb = ProgramBuilder(jar="decoy.jar")
        obj = pb.cls("java.lang.Object", extends=None)
        obj.abstract_method("toString", returns="java.lang.String")
        obj.finish()
        with pb.cls("app.Entry", implements=[SERIALIZABLE]) as c:
            c.field("delegate", "java.lang.Object")
            with c.method(
                "readObject", params=["java.io.ObjectInputStream"]
            ) as m:
                v = m.get_field(m.this, "delegate")
                m.invoke(v, "java.lang.Object", "toString",
                         returns="java.lang.String")
                m.ret()
        if with_decoy:
            plant_guard_decoy(pb, "app.Sleeper", "app.Config")
        return pb.build()

    def test_decoy_appears_and_is_refuted(self):
        tabby = Tabby(sources=SourceCatalog.native())
        diff = tabby.diff_versions(
            self.build(with_decoy=False),
            self.build(with_decoy=True),
            refine_guards=True,
        )
        assert not diff.disappeared
        decoys = [
            (chain, verdict)
            for chain, verdict in zip(diff.appeared, diff.appeared_verdicts)
            if any(s.class_name == "app.Sleeper" for s in chain.steps)
        ]
        assert decoys, "the planted decoy chain must appear in the diff"
        assert all(
            verdict is not None and verdict["status"] == "refuted"
            for _, verdict in decoys
        )
        assert all(
            verdict["refutation"]["kind"] == "constant-guard"
            for _, verdict in decoys
        )
        document = diff_to_dict(diff)
        refuted = [
            r for r in document["appeared"] if r.get("status") == "refuted"
        ]
        assert refuted and all("refutation" in r for r in refuted)

    def test_without_refinement_no_verdicts(self):
        tabby = Tabby(sources=SourceCatalog.native())
        diff = tabby.diff_versions(
            self.build(with_decoy=False), self.build(with_decoy=True)
        )
        assert diff.appeared_verdicts is None
        assert all(
            "status" not in r for r in diff_to_dict(diff)["appeared"]
        )

    def test_apply_refinement_verdicts_alignment(self):
        tabby = Tabby(sources=SourceCatalog.native())
        diff = tabby.diff_versions(
            self.build(with_decoy=False), self.build(with_decoy=True)
        )
        hierarchy = ClassHierarchy(self.build(with_decoy=True))
        apply_refinement_verdicts(diff, hierarchy, refine_guards=True)
        assert len(diff.appeared_verdicts) == len(diff.appeared)


class TestSummaryCacheIntegration:
    def test_update_invalidates_superseded_keys(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        session = IncrementalAnalyzer(
            gadget_program(), cache_dir=cache_dir
        )
        old_key = session.class_keys["d.EvilObjectB"]
        assert session.cache.load(old_key, "d.EvilObjectB") is not None
        session.update(gadget_program(sink_in_b=False))
        # the superseded entry is gone; the new version's entry exists
        assert session.cache.load(old_key, "d.EvilObjectB") is None
        new_key = session.class_keys["d.EvilObjectB"]
        assert new_key != old_key
        assert session.cache.load(new_key, "d.EvilObjectB") is not None

    def test_cached_session_still_bit_identical(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        warmup = IncrementalAnalyzer(gadget_program(), cache_dir=cache_dir)
        assert warmup.chains
        session = IncrementalAnalyzer(gadget_program(), cache_dir=cache_dir)
        assert_equivalent(
            session, gadget_program(with_extra=True), "cache-warm update"
        )

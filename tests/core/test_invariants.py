"""Property-based invariants of the core analysis, driven by the
random corpus generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Tabby
from repro.core.actions import UNCONTROLLABLE_WEIGHT
from repro.core.controllability import ControllabilityAnalysis
from repro.core.cpg import ALIAS, CALL
from repro.corpus.generator import generate_corpus
from repro.jvm.hierarchy import ClassHierarchy


def corpus_classes(kb, seed):
    return [c for jar in generate_corpus(kb, seed=seed) for c in jar.classes]


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 100))
def test_property_pp_weights_are_well_formed(seed):
    """Every Polluted_Position entry is ∞ (-1) or a frame position
    0..arity, and its length is 1 + call arity."""
    classes = corpus_classes(15, seed)
    analysis = ControllabilityAnalysis(ClassHierarchy(classes))
    for summary in analysis.analyze_all().values():
        for site in summary.call_sites:
            pp = site.polluted_position
            assert len(pp) == site.arity + 1
            max_weight = summary.method.arity
            for weight in pp:
                assert weight == UNCONTROLLABLE_WEIGHT or 0 <= weight <= max_weight


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 100))
def test_property_pruned_iff_all_uncontrollable(seed):
    classes = corpus_classes(15, seed)
    analysis = ControllabilityAnalysis(ClassHierarchy(classes))
    for summary in analysis.analyze_all().values():
        for site in summary.call_sites:
            assert site.pruned == all(
                w == UNCONTROLLABLE_WEIGHT for w in site.polluted_position
            )


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 100))
def test_property_action_values_parse(seed):
    """Every Action entry is a valid Table III value string."""
    from repro.core.actions import Origin

    classes = corpus_classes(15, seed)
    analysis = ControllabilityAnalysis(ClassHierarchy(classes))
    for summary in analysis.analyze_all().values():
        for key, value in summary.action.mapping.items():
            assert key == "return" or key == "this" or key.startswith(
                ("this.", "final-param-")
            )
            Origin.from_action_value(value)  # must not raise


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 100))
def test_property_cpg_edges_reference_live_nodes(seed):
    classes = corpus_classes(12, seed)
    cpg = Tabby().add_classes(classes).build_cpg()
    g = cpg.graph
    for rel in g.relationships():
        assert g.has_node(rel.start_id) and g.has_node(rel.end_id)
    # live (non-pruned) CALL edges keep a PP of matching shape
    for rel in g.relationships(CALL):
        assert isinstance(rel["POLLUTED_POSITION"], list)


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 100))
def test_property_alias_edges_satisfy_formula_1(seed):
    """ALIAS edges only connect same-name/same-arity methods whose
    classes are subtype-related."""
    classes = corpus_classes(12, seed)
    cpg = Tabby().add_classes(classes).build_cpg()
    g = cpg.graph
    for rel in g.relationships(ALIAS):
        sub = g.node(rel.start_id)
        sup = g.node(rel.end_id)
        assert sub["NAME"] == sup["NAME"]
        assert sub["ARITY"] == sup["ARITY"]
        assert cpg.hierarchy.is_subtype_of(sub["CLASSNAME"], sup["CLASSNAME"])


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 100))
def test_property_chains_end_at_sinks_and_start_at_sources(seed):
    classes = corpus_classes(12, seed)
    tabby = Tabby().add_classes(classes)
    cpg = tabby.build_cpg()
    for chain in tabby.find_gadget_chains():
        src = cpg.method_node(chain.source.class_name, chain.source.method_name)
        snk = cpg.method_node(chain.sink.class_name, chain.sink.method_name)
        assert src is not None and src.get("IS_SOURCE")
        assert snk is not None and snk.get("IS_SINK")
        assert chain.length >= 1


@settings(max_examples=5, deadline=None)
@given(seed=st.integers(0, 100))
def test_property_deterministic_analysis(seed):
    """Re-running the whole pipeline on the same input yields the same
    chains (order included)."""
    classes = corpus_classes(10, seed)
    first = [c.key for c in Tabby().add_classes(classes).find_gadget_chains()]
    second = [c.key for c in Tabby().add_classes(classes).find_gadget_chains()]
    assert first == second

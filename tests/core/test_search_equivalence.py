"""Differential harness: every search engine mode reproduces baseline.

The optimized gadget-chain search (typed adjacency + source-reachability
pruning + negative state caching + per-sink process fan-out) promises a
chain list *bit-identical* to the baseline engine — same chains, same
steps, same order — under every Uniqueness mode, filter, and budget.
These tests assert exactly that on real corpus CPGs; the ``slow`` sweep
covers every Table IX component plus the merged corpus.

The baseline here is ``optimize=False``: the generic
:func:`repro.graphdb.traversal.traverse` enumeration with no pruning and
no caching — the pre-optimization engine.
"""

import pytest

from repro.core.cpg import CPGBuilder
from repro.core.pathfinder import GadgetChainFinder
from repro.corpus import COMPONENT_NAMES, build_component, build_lang_base
from repro.graphdb.traversal import Uniqueness
from repro.jvm.hierarchy import ClassHierarchy

QUICK_COMPONENTS = ("Clojure", "CommonsBeanutils1")

ALL_MODES = list(Uniqueness)


def component_classes(name):
    return build_lang_base() + build_component(name).classes


def build_cpg(classes):
    return CPGBuilder(ClassHierarchy(classes)).build()


def chain_fingerprint(chains):
    """Every step, in order — equality means identical chain lists."""
    return [
        (
            tuple(step.qualified for step in chain.steps),
            chain.sink_category,
            tuple(chain.trigger_condition),
        )
        for chain in chains
    ]


def find(cpg, **kwargs):
    finder = GadgetChainFinder(cpg, **kwargs)
    source_filter = kwargs.pop("_source_filter", None)
    return chain_fingerprint(finder.find_chains(source_filter=source_filter))


@pytest.fixture(scope="module", params=QUICK_COMPONENTS)
def corpus_cpg(request):
    return build_cpg(component_classes(request.param))


@pytest.mark.parametrize("mode", ALL_MODES, ids=[m.name for m in ALL_MODES])
def test_optimized_matches_baseline(corpus_cpg, mode):
    baseline = find(corpus_cpg, uniqueness=mode, optimize=False)
    optimized = find(corpus_cpg, uniqueness=mode, optimize=True)
    assert optimized == baseline


@pytest.mark.parametrize("mode", ALL_MODES, ids=[m.name for m in ALL_MODES])
def test_parallel_matches_baseline(corpus_cpg, mode):
    baseline = find(corpus_cpg, uniqueness=mode, optimize=False)
    fanned = find(corpus_cpg, uniqueness=mode, optimize=True, workers=2)
    assert fanned == baseline


def test_each_layer_alone_matches_baseline(corpus_cpg):
    baseline = find(corpus_cpg, optimize=False)
    prune_only = find(
        corpus_cpg, optimize=True, negative_cache=False
    )
    cache_only = find(
        corpus_cpg, optimize=True, prune_unreachable=False
    )
    assert prune_only == baseline
    assert cache_only == baseline


def test_source_filter_matches_baseline(corpus_cpg):
    for prefix in ("java.util", "org.clojure", "com"):
        base = GadgetChainFinder(corpus_cpg, optimize=False)
        opt = GadgetChainFinder(corpus_cpg, optimize=True, workers=2)
        assert chain_fingerprint(
            opt.find_chains(source_filter=prefix)
        ) == chain_fingerprint(base.find_chains(source_filter=prefix))


def test_tight_budget_and_depth_match_baseline(corpus_cpg):
    """max_results truncation happens at the same enumeration point —
    the negative cache must not reorder or skip accepted paths."""
    for max_depth, budget in ((6, 3), (12, 1), (4, None)):
        base = GadgetChainFinder(
            corpus_cpg, max_depth=max_depth,
            max_results_per_sink=budget, optimize=False,
        )
        opt = GadgetChainFinder(
            corpus_cpg, max_depth=max_depth,
            max_results_per_sink=budget, optimize=True,
        )
        assert chain_fingerprint(opt.find_chains()) == chain_fingerprint(
            base.find_chains()
        )


def test_no_alias_matches_baseline(corpus_cpg):
    baseline = find(corpus_cpg, follow_alias=False, optimize=False)
    optimized = find(corpus_cpg, follow_alias=False, optimize=True)
    assert optimized == baseline


@pytest.mark.slow
@pytest.mark.parametrize("name", COMPONENT_NAMES)
def test_full_component_sweep(name):
    """Every Table IX component, every Uniqueness mode, serial and
    fanned out — one barrier of truth for the optimized engine."""
    cpg = build_cpg(component_classes(name))
    for mode in ALL_MODES:
        baseline = find(cpg, uniqueness=mode, optimize=False)
        for label, candidate in [
            ("optimized", find(cpg, uniqueness=mode, optimize=True)),
            (
                "optimized+workers=2",
                find(cpg, uniqueness=mode, optimize=True, workers=2),
            ),
        ]:
            assert candidate == baseline, f"{name}: {label} ({mode.name})"


@pytest.mark.slow
def test_merged_corpus_sweep():
    """The full 26-component classpath in one CPG."""
    classes = build_lang_base()
    for name in COMPONENT_NAMES:
        classes += build_component(name).classes
    cpg = build_cpg(classes)
    for mode in ALL_MODES:
        baseline = find(cpg, uniqueness=mode, optimize=False)
        assert find(cpg, uniqueness=mode, optimize=True) == baseline
        assert (
            find(cpg, uniqueness=mode, optimize=True, workers=4) == baseline
        )

"""Unit tests for CPG construction (ORG + PCG + MAG)."""

import pytest

from repro.core.cpg import ALIAS, CALL, CPGBuilder, EXTEND, HAS, INTERFACE
from repro.core.sources import SourceCatalog
from repro.jvm.builder import ProgramBuilder
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.model import SERIALIZABLE


def build_cpg(build_fn, **kw):
    pb = ProgramBuilder(jar="test.jar")
    build_fn(pb)
    return CPGBuilder(ClassHierarchy(pb.build()), **kw).build()


def demo_program(pb):
    obj = pb.cls("java.lang.Object", extends=None)
    obj.abstract_method("toString", returns="java.lang.String")
    obj.finish()
    iface = pb.interface("t.Handler")
    iface.abstract_method("handle", params=["java.lang.Object"])
    iface.finish()
    with pb.cls("t.Impl", implements=["t.Handler", SERIALIZABLE]) as c:
        c.field("target", "java.lang.Object")
        with c.method("handle", params=["java.lang.Object"]) as m:
            m.invoke(m.param(1), "java.lang.Object", "toString", returns="java.lang.String")
        with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
            t = m.get_field(m.this, "target")
            m.invoke(t, "t.Handler", "handle", [t], kind="interface")


class TestORG:
    def test_class_nodes_created(self):
        cpg = build_cpg(demo_program)
        assert cpg.class_node("t.Impl") is not None
        assert cpg.class_node("t.Handler")["IS_INTERFACE"]

    def test_extend_and_interface_edges(self):
        cpg = build_cpg(demo_program)
        impl = cpg.class_node("t.Impl")
        extends = cpg.graph.out_relationships(impl, EXTEND)
        interfaces = cpg.graph.out_relationships(impl, INTERFACE)
        assert len(extends) == 1
        assert cpg.graph.node(extends[0].end_id)["NAME"] == "java.lang.Object"
        iface_names = {cpg.graph.node(r.end_id)["NAME"] for r in interfaces}
        assert iface_names == {"t.Handler", SERIALIZABLE}

    def test_phantom_class_node_for_serializable(self):
        cpg = build_cpg(demo_program)
        node = cpg.class_node(SERIALIZABLE)
        assert node is not None and node["IS_PHANTOM"]

    def test_has_edges(self):
        cpg = build_cpg(demo_program)
        impl = cpg.class_node("t.Impl")
        methods = {
            cpg.graph.node(r.end_id)["NAME"]
            for r in cpg.graph.out_relationships(impl, HAS)
        }
        assert methods == {"handle", "readObject"}

    def test_serializable_flag(self):
        cpg = build_cpg(demo_program)
        assert cpg.class_node("t.Impl")["IS_SERIALIZABLE"]
        assert not cpg.class_node("t.Handler")["IS_SERIALIZABLE"]

    def test_jar_counted(self):
        cpg = build_cpg(demo_program)
        assert cpg.statistics.jar_count == 1


class TestPCG:
    def test_call_edge_carries_pp(self):
        cpg = build_cpg(demo_program)
        handle = cpg.method_node("t.Impl", "handle")
        calls = cpg.graph.out_relationships(handle, CALL)
        assert len(calls) == 1
        assert calls[0]["POLLUTED_POSITION"] == [1, 1][: len(calls[0]["POLLUTED_POSITION"])]

    def test_call_edge_to_resolved_method(self):
        cpg = build_cpg(demo_program)
        ro = cpg.method_node("t.Impl", "readObject")
        calls = cpg.graph.out_relationships(ro, CALL)
        targets = {cpg.graph.node(r.end_id)["CLASSNAME"] for r in calls}
        # t.Handler.handle is abstract but defined -> resolved node
        assert "t.Handler" in targets

    def test_uncontrollable_call_pruned(self):
        def program(pb):
            with pb.cls("t.C") as c:
                with c.method("m") as m:
                    obj = m.new("t.C")
                    m.invoke(obj, "java.lang.Object", "toString", returns="java.lang.String")

        cpg = build_cpg(program)
        node = cpg.method_node("t.C", "m")
        assert cpg.graph.out_relationships(node, CALL) == []
        assert cpg.statistics.pruned_call_sites == 1

    def test_pruning_can_be_disabled(self):
        def program(pb):
            with pb.cls("t.C") as c:
                with c.method("m") as m:
                    obj = m.new("t.C")
                    m.invoke(obj, "java.lang.Object", "toString", returns="java.lang.String")

        cpg = build_cpg(program, prune_uncontrollable_calls=False)
        node = cpg.method_node("t.C", "m")
        assert len(cpg.graph.out_relationships(node, CALL)) == 1

    def test_phantom_method_node_for_jdk_callee(self):
        cpg = build_cpg(demo_program)
        phantom = cpg.method_node("java.lang.Runtime", "exec")
        assert phantom is None  # not referenced by this program
        toString = cpg.method_node("java.lang.Object", "toString")
        assert toString is not None and not toString["IS_PHANTOM"]

    def test_action_stored_on_method_node(self):
        cpg = build_cpg(demo_program)
        node = cpg.method_node("t.Impl", "handle")
        assert "final-param-1" in node["ACTION"]

    def test_dynamic_call_sites_have_no_edge(self):
        def program(pb):
            with pb.cls("t.C") as c:
                with c.method("m", params=["java.lang.Object"]) as m:
                    m.invoke_dynamic(m.param(1), "x")

        cpg = build_cpg(program)
        node = cpg.method_node("t.C", "m")
        assert cpg.graph.out_relationships(node, CALL) == []


class TestMAG:
    def test_alias_edge_to_interface_method(self):
        cpg = build_cpg(demo_program)
        impl_handle = cpg.method_node("t.Impl", "handle")
        aliases = cpg.graph.out_relationships(impl_handle, ALIAS)
        assert len(aliases) == 1
        target = cpg.graph.node(aliases[0].end_id)
        assert target["CLASSNAME"] == "t.Handler"

    def test_alias_edge_to_phantom_parent(self):
        """URLDNS shape: java.lang.Object is NOT defined, but a call to
        Object.toString creates a phantom node; overrides must alias it."""

        def program(pb):
            with pb.cls("t.Caller") as c:
                with c.method("m", params=["java.lang.Object"]) as m:
                    m.invoke(m.param(1), "java.lang.Object", "toString", returns="java.lang.String")
            with pb.cls("t.Custom") as c:
                with c.method("toString", returns="java.lang.String") as m:
                    m.ret("x")

        cpg = build_cpg(program)
        custom = cpg.method_node("t.Custom", "toString")
        aliases = cpg.graph.out_relationships(custom, ALIAS)
        assert len(aliases) == 1
        phantom = cpg.graph.node(aliases[0].end_id)
        assert phantom["IS_PHANTOM"] and phantom["CLASSNAME"] == "java.lang.Object"

    def test_no_alias_for_different_arity(self):
        def program(pb):
            with pb.cls("t.Base") as c:
                with c.method("f", params=["int"]) as m:
                    m.ret()
            with pb.cls("t.Sub", extends="t.Base") as c:
                with c.method("f", params=["int", "int"]) as m:
                    m.ret()

        cpg = build_cpg(program)
        sub_f = cpg.method_node("t.Sub", "f")
        assert cpg.graph.out_relationships(sub_f, ALIAS) == []


class TestMarkers:
    def test_source_marked(self):
        cpg = build_cpg(demo_program)
        sources = {(n["CLASSNAME"], n["NAME"]) for n in cpg.source_nodes()}
        assert ("t.Impl", "readObject") in sources

    def test_native_profile_excludes_tostring(self):
        def program(pb):
            with pb.cls("t.C", implements=[SERIALIZABLE]) as c:
                with c.method("toString", returns="java.lang.String") as m:
                    m.ret("x")

        cpg = build_cpg(program, sources=SourceCatalog.native())
        assert cpg.source_nodes() == []

    def test_sink_marked_with_tc(self):
        def program(pb):
            with pb.cls("t.C") as c:
                with c.method("m", params=["java.lang.String"]) as m:
                    rt = m.invoke_static("java.lang.Runtime", "getRuntime", returns="java.lang.Runtime")
                    m.invoke(rt, "java.lang.Runtime", "exec", [m.param(1)])

        cpg = build_cpg(program)
        (sink,) = cpg.sink_nodes()
        assert sink["CLASSNAME"] == "java.lang.Runtime"
        assert sink["TRIGGER_CONDITION"] == [1]
        assert sink["SINK_TYPE"] == "EXEC"

    def test_statistics_counts(self):
        cpg = build_cpg(demo_program)
        s = cpg.statistics
        assert s.class_node_count >= 4
        assert s.method_node_count >= 4
        assert s.relationship_edge_count == cpg.graph.relationship_count
        assert s.build_seconds >= 0

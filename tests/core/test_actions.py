"""Unit tests for the controllability lattice (Origins, Action, Formulas 2/4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.actions import (
    UNCONTROLLABLE_WEIGHT,
    Action,
    Origin,
    THIS,
    UNCTRL,
    calc,
    join,
    param,
    param_field,
    this_field,
    traverse_tc,
)


class TestOrigin:
    def test_weights_follow_table_v(self):
        assert UNCTRL.weight == UNCONTROLLABLE_WEIGHT
        assert THIS.weight == 0
        assert this_field("x").weight == 0
        assert param(1).weight == 1
        assert param_field(3, "f").weight == 3

    def test_action_value_strings_follow_table_iii(self):
        assert UNCTRL.action_value() == "null"
        assert THIS.action_value() == "this"
        assert this_field("b").action_value() == "this.b"
        assert param(2).action_value() == "init-param-2"
        assert param_field(2, "b").action_value() == "init-param-2.b"

    def test_round_trip_action_values(self):
        for origin in (UNCTRL, THIS, this_field("x"), param(4), param_field(1, "y")):
            assert Origin.from_action_value(origin.action_value()) == origin

    def test_bad_action_value_rejected(self):
        with pytest.raises(ValueError):
            Origin.from_action_value("final-param-1")

    def test_with_field_depth_one(self):
        assert param(1).with_field("b") == param_field(1, "b")
        # depth-1 sensitivity: a field of a field keeps the outer origin
        assert param_field(1, "b").with_field("c") == param_field(1, "b")
        assert UNCTRL.with_field("b") == UNCTRL

    def test_zero_param_rejected(self):
        with pytest.raises(ValueError):
            param(0)

    def test_join_prefers_controllable(self):
        assert join(UNCTRL, param(2)) == param(2)
        assert join(param(2), UNCTRL) == param(2)
        assert join(THIS, param(2)) == THIS
        assert join(UNCTRL, UNCTRL) == UNCTRL


class TestAction:
    def test_identity_summary(self):
        a = Action.identity(2, has_this=True)
        assert a.mapping == {
            "this": "this",
            "final-param-1": "init-param-1",
            "final-param-2": "init-param-2",
            "return": "null",
        }

    def test_static_identity_has_no_this(self):
        a = Action.identity(1, has_this=False)
        assert "this" not in a.mapping

    def test_get_origin_default_unctrl(self):
        assert Action().get_origin("return") == UNCTRL

    def test_set_and_property_round_trip(self):
        a = Action()
        a.set("return", param(1))
        assert Action(a.to_property()) == a


class TestCalc:
    def test_figure_5_composition(self):
        """out = calc(B.Action, in) exactly as Figure 5(d)."""
        action = Action(
            {
                "final-param-1": "init-param-1",
                "final-param-1.b": "init-param-2",
                "final-param-2": "null",
                "return": "init-param-2",
                "this": "null",
            }
        )
        inputs = {"this": UNCTRL, "init-param-1": UNCTRL, "init-param-2": param(2)}
        out = calc(action, inputs)
        assert out["this"] == UNCTRL
        assert out["final-param-1"] == UNCTRL
        assert out["final-param-1.b"] == param(2)
        assert out["final-param-2"] == UNCTRL
        assert out["return"] == param(2)

    def test_missing_input_defaults_uncontrollable(self):
        action = Action({"return": "init-param-3"})
        assert calc(action, {})["return"] == UNCTRL

    def test_field_suffix_derivation(self):
        action = Action({"return": "init-param-1.x"})
        out = calc(action, {"init-param-1": this_field("y")})
        assert out["return"] == this_field("y")  # depth-1 collapse

    def test_exact_field_entry_preferred(self):
        action = Action({"return": "init-param-1.x"})
        out = calc(action, {"init-param-1": UNCTRL, "init-param-1.x": param(2)})
        assert out["return"] == param(2)


class TestTraverseTC:
    def test_formula_4(self):
        # TC [1] through PP [∞, 0] -> caller position 0
        assert traverse_tc([1], [UNCONTROLLABLE_WEIGHT, 0]) == [0]

    def test_uncontrollable_position_rejects(self):
        assert traverse_tc([1], [0, UNCONTROLLABLE_WEIGHT]) is None

    def test_out_of_range_rejects(self):
        assert traverse_tc([2], [0, 1]) is None

    def test_multi_position(self):
        assert traverse_tc([0, 1], [2, 1]) == [2, 1]

    def test_duplicate_weights_collapse(self):
        assert traverse_tc([0, 1], [1, 1]) == [1]

    def test_empty_tc_always_passes(self):
        assert traverse_tc([], [UNCONTROLLABLE_WEIGHT]) == []


@given(
    tc=st.lists(st.integers(min_value=0, max_value=5), max_size=4),
    pp=st.lists(st.integers(min_value=-1, max_value=5), max_size=6),
)
def test_property_traverse_tc_never_emits_uncontrollable(tc, pp):
    """Formula 4 either rejects or yields only controllable weights."""
    out = traverse_tc(tc, pp)
    if out is not None:
        assert all(w != UNCONTROLLABLE_WEIGHT for w in out)
        assert len(set(out)) == len(out)

"""Tests for the opt-in guard-feasibility chain refinement.

The acceptance property: with refinement OFF the chain list is
bit-identical to the baseline pipeline; with it ON, planted
constant-guard decoys are refuted (FPR strictly drops) while every true
chain — known or unknown-but-effective — survives (FNR unchanged).
"""

from repro.bench.tables import run_table_ix_component
from repro.core import Tabby
from repro.core.chains import ChainStep, GadgetChain
from repro.core.refine import GuardFeasibilityRefiner, refine_chains
from repro.corpus import build_component, build_lang_base
from repro.jvm.builder import ProgramBuilder
from repro.jvm.hierarchy import ClassHierarchy


def _guarded_program():
    """A.m calls B.hit behind `if (Config.ENABLED != 0)`, which the
    static-field oracle pins to false; A.open calls B.hit behind a
    parameter-dependent guard."""
    pb = ProgramBuilder()
    with pb.cls("t.Config") as c:
        c.field("ENABLED", "int", static=True)
    with pb.cls("t.B") as c:
        with c.method("hit") as m:
            m.ret()
    with pb.cls("t.A") as c:
        with c.method("m") as m:
            g = m.get_static("t.Config", "ENABLED")
            cmp = m.binop("!=", g, 0)
            m.iff(cmp, "fire")
            m.goto("end")
            m.label("fire")
            b = m.new("t.B")
            m.invoke(b, "t.B", "hit")
            m.label("end")
            m.ret()
        with c.method("open", params=["int"], param_names=["p"]) as m:
            m.if_ne(m.param(1), 0, "fire")
            m.goto("end")
            m.label("fire")
            b = m.new("t.B")
            m.invoke(b, "t.B", "hit")
            m.label("end")
            m.ret()
    return pb.build()


def _chain(caller_method):
    return GadgetChain(
        [
            ChainStep("t.A", caller_method, 1 if caller_method == "open" else 0,
                      "CALL"),
            ChainStep("t.B", "hit", 0, ""),
        ],
        sink_category="CODE",
    )


class TestRefinerUnit:
    def test_constant_guard_hop_is_refuted(self):
        refiner = GuardFeasibilityRefiner(ClassHierarchy(_guarded_program()))
        assert refiner.chain_is_refuted(_chain("m"))

    def test_param_guard_hop_is_kept(self):
        refiner = GuardFeasibilityRefiner(ClassHierarchy(_guarded_program()))
        assert not refiner.chain_is_refuted(_chain("open"))

    def test_alias_hop_is_never_refuted(self):
        refiner = GuardFeasibilityRefiner(ClassHierarchy(_guarded_program()))
        chain = GadgetChain(
            [ChainStep("t.A", "m", 0, "ALIAS"), ChainStep("t.B", "hit", 0, "")],
        )
        assert not refiner.chain_is_refuted(chain)

    def test_missing_caller_is_kept(self):
        refiner = GuardFeasibilityRefiner(ClassHierarchy(_guarded_program()))
        chain = GadgetChain(
            [ChainStep("x.Nope", "m", 0, "CALL"), ChainStep("t.B", "hit", 0, "")],
        )
        assert not refiner.chain_is_refuted(chain)

    def test_no_matching_site_is_kept(self):
        # hop names a callee A's body never invokes — conservatively kept
        refiner = GuardFeasibilityRefiner(ClassHierarchy(_guarded_program()))
        chain = GadgetChain(
            [ChainStep("t.A", "m", 0, "CALL"),
             ChainStep("t.B", "other", 0, "")],
        )
        assert not refiner.chain_is_refuted(chain)

    def test_refine_partition_preserves_order(self):
        classes = _guarded_program()
        chains = [_chain("open"), _chain("m"), _chain("open")]
        kept, refuted = refine_chains(chains, ClassHierarchy(classes))
        assert kept == [chains[0], chains[2]]
        assert refuted == [chains[1]]


class TestComponentRefinement:
    COMPONENT = "commons-collections(3.2.1)"

    def test_off_is_bit_identical(self):
        spec = build_component(self.COMPONENT)
        classes = build_lang_base() + spec.classes
        baseline = Tabby().add_classes(classes).find_gadget_chains()
        again = Tabby().add_classes(classes).find_gadget_chains(
            refine_guards=False
        )
        assert [c.key for c in baseline] == [c.key for c in again]

    def test_on_refutes_decoys_and_loses_no_true_chain(self):
        spec = build_component(self.COMPONENT)
        classes = build_lang_base() + spec.classes
        tabby = Tabby().add_classes(classes)
        baseline = tabby.find_gadget_chains()
        refined = tabby.find_gadget_chains(refine_guards=True)
        refuted = tabby.last_refuted
        assert len(refuted) >= 1
        assert len(refined) + len(refuted) == len(baseline)
        # every known (true) chain survives refinement
        known_base = {spec.match_known(c) for c in baseline} - {None}
        known_refined = {spec.match_known(c) for c in refined} - {None}
        assert known_base == known_refined

    def test_table_ix_fpr_drops_fnr_unchanged(self):
        result = run_table_ix_component(self.COMPONENT, refine_guards=True)
        base, refined = result.tabby, result.tabby_refined
        assert refined is not None
        assert refined.fake_count < base.fake_count       # FPR strictly drops
        assert refined.known_found == base.known_found    # FNR unchanged
        assert refined.unknown_count == base.unknown_count  # no effective lost
        assert refined.result_count < base.result_count

    def test_table_ix_baseline_columns_unchanged(self):
        plain = run_table_ix_component(self.COMPONENT)
        with_flag = run_table_ix_component(self.COMPONENT, refine_guards=True)
        assert plain.tabby_refined is None
        for attr in ("result_count", "fake_count", "known_found",
                     "unknown_count"):
            assert getattr(plain.tabby, attr) == getattr(with_flag.tabby, attr)


class TestRefutationReasons:
    """Refuted chains carry an explainable reason: which hop died, on
    which guard, and what constant value pins it shut."""

    def test_constant_guard_reason_names_the_hop(self):
        refiner = GuardFeasibilityRefiner(ClassHierarchy(_guarded_program()))
        reason = refiner.chain_refutation(_chain("m"))
        assert reason is not None
        assert reason.kind == "constant-guard"
        assert reason.step_index == 0
        assert reason.caller.startswith("t.A.m")
        assert reason.callee.startswith("t.B.hit")
        # the guard location and the pinned constant are both reported
        assert "ENABLED" in reason.detail
        assert "0" in reason.detail

    def test_kept_chain_has_no_reason(self):
        refiner = GuardFeasibilityRefiner(ClassHierarchy(_guarded_program()))
        assert refiner.chain_refutation(_chain("open")) is None

    def test_reason_serializes(self):
        refiner = GuardFeasibilityRefiner(ClassHierarchy(_guarded_program()))
        doc = refiner.chain_refutation(_chain("m")).as_dict()
        assert doc["kind"] == "constant-guard"
        assert doc["step_index"] == 0
        assert set(doc) == {"kind", "step_index", "caller", "callee", "detail"}

    def test_refine_with_reasons_matches_legacy_partition(self):
        refiner = GuardFeasibilityRefiner(ClassHierarchy(_guarded_program()))
        chains = [_chain("open"), _chain("m"), _chain("open")]
        kept, refuted_pairs = refiner.refine_with_reasons(chains)
        legacy_kept, legacy_refuted = refiner.refine(chains)
        assert kept == legacy_kept
        assert [c for c, _r in refuted_pairs] == legacy_refuted
        assert all(r.kind == "constant-guard" for _c, r in refuted_pairs)

    def test_api_exposes_refutation_pairs(self):
        spec = build_component("commons-collections(3.2.1)")
        classes = build_lang_base() + spec.classes
        tabby = Tabby().add_classes(classes)
        tabby.find_gadget_chains(refine_guards=True)
        assert tabby.last_refutations
        assert tabby.last_refuted == [c for c, _r in tabby.last_refutations]
        for _chain_obj, reason in tabby.last_refutations:
            assert reason.kind == "constant-guard"

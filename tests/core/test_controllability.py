"""Unit tests for Algorithm 1 beyond the Figure 5 walkthrough."""

import pytest

from repro.core.actions import UNCONTROLLABLE_WEIGHT
from repro.core.controllability import ControllabilityAnalysis
from repro.jvm.builder import ProgramBuilder
from repro.jvm.hierarchy import ClassHierarchy


def analyze(build_fn):
    pb = ProgramBuilder()
    build_fn(pb)
    hierarchy = ClassHierarchy(pb.build())
    return ControllabilityAnalysis(hierarchy).analyze_all()


def summary(summaries, cls, name):
    return next(
        s
        for s in summaries.values()
        if s.method.class_name == cls and s.method.name == name
    )


class TestIntraprocedural:
    def test_this_field_load_weight_zero(self):
        def build(pb):
            with pb.cls("t.C") as c:
                c.field("f", "java.lang.Object")
                with c.method("m") as m:
                    v = m.get_field(m.this, "f")
                    m.invoke(v, "java.lang.Object", "toString", returns="java.lang.String")

        s = summary(analyze(build), "t.C", "m")
        (site,) = [c for c in s.call_sites if c.callee_name == "toString"]
        assert site.polluted_position[0] == 0

    def test_param_weight_is_index(self):
        def build(pb):
            with pb.cls("t.C") as c:
                with c.method("m", params=["int", "java.lang.Object"]) as m:
                    m.invoke(m.param(2), "java.lang.Object", "toString", returns="java.lang.String")

        s = summary(analyze(build), "t.C", "m")
        assert s.call_sites[0].polluted_position[0] == 2

    def test_new_destroys_controllability(self):
        def build(pb):
            with pb.cls("t.C") as c:
                with c.method("m", params=["java.lang.Object"]) as m:
                    p = m.param(1)
                    m.assign(p, m.new("t.C"))
                    m.invoke(p, "java.lang.Object", "toString", returns="java.lang.String")

        s = summary(analyze(build), "t.C", "m")
        assert s.call_sites[0].polluted_position[0] == UNCONTROLLABLE_WEIGHT

    def test_cast_passes_through(self):
        def build(pb):
            with pb.cls("t.C") as c:
                with c.method("m", params=["java.lang.Object"]) as m:
                    v = m.cast(m.param(1), "java.lang.String")
                    m.invoke(v, "java.lang.String", "trim", returns="java.lang.String")

        s = summary(analyze(build), "t.C", "m")
        assert s.call_sites[0].polluted_position[0] == 1

    def test_string_constants_uncontrollable(self):
        def build(pb):
            with pb.cls("t.C") as c:
                with c.method("m") as m:
                    rt = m.invoke_static("java.lang.Runtime", "getRuntime", returns="java.lang.Runtime")
                    m.invoke(rt, "java.lang.Runtime", "exec", ["fixed command"])

        s = summary(analyze(build), "t.C", "m")
        exec_site = [c for c in s.call_sites if c.callee_name == "exec"][0]
        assert exec_site.polluted_position == [
            UNCONTROLLABLE_WEIGHT,
            UNCONTROLLABLE_WEIGHT,
        ]
        assert exec_site.pruned

    def test_array_element_tracking(self):
        def build(pb):
            with pb.cls("t.C") as c:
                with c.method("m", params=["java.lang.Object"]) as m:
                    arr = m.new_array("java.lang.Object", 1)
                    m.array_set(arr, 0, m.param(1))
                    v = m.array_get(arr, 0)
                    m.invoke(v, "java.lang.Object", "toString", returns="java.lang.String")

        s = summary(analyze(build), "t.C", "m")
        assert s.call_sites[0].polluted_position[0] == 1

    def test_param_array_element_controllable(self):
        def build(pb):
            with pb.cls("t.C") as c:
                with c.method("m", params=["java.lang.Object[]"]) as m:
                    v = m.array_get(m.param(1), 0)
                    m.invoke(v, "java.lang.Object", "toString", returns="java.lang.String")

        s = summary(analyze(build), "t.C", "m")
        assert s.call_sites[0].polluted_position[0] == 1

    def test_static_field_within_body(self):
        def build(pb):
            with pb.cls("t.C") as c:
                c.field("shared", "java.lang.Object", static=True)
                with c.method("m", params=["java.lang.Object"]) as m:
                    m.set_static("t.C", "shared", m.param(1))
                    v = m.get_static("t.C", "shared")
                    m.invoke(v, "java.lang.Object", "toString", returns="java.lang.String")

        s = summary(analyze(build), "t.C", "m")
        assert s.call_sites[0].polluted_position[0] == 1

    def test_static_field_default_uncontrollable(self):
        def build(pb):
            with pb.cls("t.C") as c:
                c.field("shared", "java.lang.Object", static=True)
                with c.method("m") as m:
                    v = m.get_static("t.C", "shared")
                    m.invoke(v, "java.lang.Object", "toString", returns="java.lang.String")

        s = summary(analyze(build), "t.C", "m")
        assert s.call_sites[0].pruned

    def test_branches_join_controllably(self):
        """A value controllable on one branch stays flagged (this is the
        source of Tabby's conditional false positives, §IV-E)."""

        def build(pb):
            with pb.cls("t.C") as c:
                with c.method("m", params=["java.lang.Object", "int"]) as m:
                    v = m.local("v")
                    m.assign(v, m.new("t.C"))
                    m.if_eq(m.param(2), 0, "keep")
                    m.assign(v, m.param(1))
                    m.label("keep")
                    m.invoke(v, "java.lang.Object", "toString", returns="java.lang.String")

        s = summary(analyze(build), "t.C", "m")
        assert s.call_sites[0].polluted_position[0] == 1


class TestInterprocedural:
    def test_taint_through_callee_return(self):
        def build(pb):
            with pb.cls("t.C") as c:
                with c.method("helper", params=["java.lang.Object"], returns="java.lang.Object") as m:
                    m.ret(m.param(1))
                with c.method("m", params=["java.lang.Object"]) as m:
                    v = m.invoke(m.this, "t.C", "helper", [m.param(1)], returns="java.lang.Object")
                    m.invoke(v, "java.lang.Object", "toString", returns="java.lang.String")

        s = summary(analyze(build), "t.C", "m")
        toString = [c for c in s.call_sites if c.callee_name == "toString"][0]
        assert toString.polluted_position[0] == 1

    def test_taint_destroyed_by_callee(self):
        """The precision win over GadgetInspector/Serianalyzer (§III-C):
        a callee that replaces its parameter's content must not leave the
        caller believing the value is still controllable."""

        def build(pb):
            with pb.cls("t.C") as c:
                with c.method("scrub", params=["java.lang.Object"], returns="java.lang.Object") as m:
                    fresh = m.new("t.C")
                    m.ret(fresh)
                with c.method("m", params=["java.lang.Object"]) as m:
                    v = m.invoke(m.this, "t.C", "scrub", [m.param(1)], returns="java.lang.Object")
                    m.invoke(v, "java.lang.Object", "toString", returns="java.lang.String")

        s = summary(analyze(build), "t.C", "m")
        toString = [c for c in s.call_sites if c.callee_name == "toString"][0]
        assert toString.polluted_position[0] == UNCONTROLLABLE_WEIGHT
        assert toString.pruned

    def test_callee_field_write_visible_in_caller(self):
        def build(pb):
            with pb.cls("t.Holder") as c:
                c.field("v", "java.lang.Object")
            with pb.cls("t.C") as c:
                with c.method(
                    "store", params=["t.Holder", "java.lang.Object"]
                ) as m:
                    m.set_field(m.param(1), "v", m.param(2))
                with c.method("m", params=["java.lang.Object"]) as m:
                    h = m.construct("t.Holder")
                    m.invoke(m.this, "t.C", "store", [h, m.param(1)])
                    v = m.get_field(h, "v")
                    m.invoke(v, "java.lang.Object", "toString", returns="java.lang.String")

        s = summary(analyze(build), "t.C", "m")
        toString = [c for c in s.call_sites if c.callee_name == "toString"][0]
        assert toString.polluted_position[0] == 1

    def test_recursion_terminates_with_identity_summary(self):
        def build(pb):
            with pb.cls("t.C") as c:
                with c.method("loop", params=["java.lang.Object"], returns="java.lang.Object") as m:
                    v = m.invoke(m.this, "t.C", "loop", [m.param(1)], returns="java.lang.Object")
                    m.ret(v)

        summaries = analyze(build)
        s = summary(summaries, "t.C", "loop")
        assert s.action.mapping["return"] == "null"

    def test_mutual_recursion_terminates(self):
        def build(pb):
            with pb.cls("t.C") as c:
                with c.method("ping", params=["java.lang.Object"], returns="java.lang.Object") as m:
                    v = m.invoke(m.this, "t.C", "pong", [m.param(1)], returns="java.lang.Object")
                    m.ret(v)
                with c.method("pong", params=["java.lang.Object"], returns="java.lang.Object") as m:
                    v = m.invoke(m.this, "t.C", "ping", [m.param(1)], returns="java.lang.Object")
                    m.ret(v)

        summaries = analyze(build)
        assert summary(summaries, "t.C", "ping") is not None

    def test_phantom_callee_passes_taint_through_receiver(self):
        def build(pb):
            with pb.cls("t.C") as c:
                with c.method("m", params=["java.lang.Object"]) as m:
                    v = m.invoke(m.param(1), "java.lang.Object", "toString", returns="java.lang.String")
                    rt = m.invoke_static("java.lang.Runtime", "getRuntime", returns="java.lang.Runtime")
                    m.invoke(rt, "java.lang.Runtime", "exec", [v])

        s = summary(analyze(build), "t.C", "m")
        exec_site = [c for c in s.call_sites if c.callee_name == "exec"][0]
        assert exec_site.polluted_position == [UNCONTROLLABLE_WEIGHT, 1]

    def test_pruned_sites_counted(self):
        def build(pb):
            with pb.cls("t.C") as c:
                with c.method("m") as m:
                    obj = m.new("t.C")
                    m.invoke(obj, "java.lang.Object", "toString", returns="java.lang.String")

        s = summary(analyze(build), "t.C", "m")
        assert all(c.pruned for c in s.call_sites)
        assert s.live_call_sites == []

    def test_dynamic_call_recorded_but_unresolved(self):
        def build(pb):
            with pb.cls("t.C") as c:
                with c.method("m", params=["java.lang.Object"]) as m:
                    m.invoke_dynamic(m.param(1), "anything")

        s = summary(analyze(build), "t.C", "m")
        assert s.call_sites[0].kind == "dynamic"
        assert s.call_sites[0].resolved is None

"""Deeper interprocedural controllability coverage: this.x Action keys
and receiver-field effects across calls (§III-C design details)."""

import pytest

from repro.core.actions import UNCONTROLLABLE_WEIGHT
from repro.core.controllability import ControllabilityAnalysis
from repro.jvm.builder import ProgramBuilder
from repro.jvm.hierarchy import ClassHierarchy


def analyze(build_fn):
    pb = ProgramBuilder()
    build_fn(pb)
    return ControllabilityAnalysis(ClassHierarchy(pb.build())).analyze_all()


def summary(summaries, cls, name):
    return next(
        s for s in summaries.values()
        if s.method.class_name == cls and s.method.name == name
    )


class TestThisFieldActions:
    def test_setter_records_this_field_key(self):
        def build(pb):
            with pb.cls("t.C") as c:
                c.field("value", "java.lang.Object")
                with c.method("setValue", params=["java.lang.Object"]) as m:
                    m.set_field(m.this, "value", m.param(1))

        action = summary(analyze(build), "t.C", "setValue").action
        assert action.mapping["this.value"] == "init-param-1"

    def test_getter_returns_this_field(self):
        def build(pb):
            with pb.cls("t.C") as c:
                c.field("value", "java.lang.Object")
                with c.method("getValue", returns="java.lang.Object") as m:
                    v = m.get_field(m.this, "value")
                    m.ret(v)

        action = summary(analyze(build), "t.C", "getValue").action
        assert action.mapping["return"] == "this.value"

    def test_clearing_field_records_null(self):
        def build(pb):
            with pb.cls("t.C") as c:
                c.field("value", "java.lang.Object")
                with c.method("clear") as m:
                    fresh = m.new("t.C")
                    m.set_field(m.this, "value", fresh)

        action = summary(analyze(build), "t.C", "clear").action
        assert action.mapping["this.value"] == "null"


class TestReceiverFieldEffectsAcrossCalls:
    def test_setter_call_taints_receiver_field(self):
        """obj.setValue(param); obj.getValue() must be controllable:
        the setter's this.value Action entry flows back via correct()."""

        def build(pb):
            with pb.cls("t.Holder") as c:
                c.field("value", "java.lang.Object")
                with c.method("setValue", params=["java.lang.Object"]) as m:
                    m.set_field(m.this, "value", m.param(1))
                with c.method("getValue", returns="java.lang.Object") as m:
                    v = m.get_field(m.this, "value")
                    m.ret(v)
            with pb.cls("t.User") as c:
                with c.method("use", params=["java.lang.Object"]) as m:
                    h = m.construct("t.Holder")
                    m.invoke(h, "t.Holder", "setValue", [m.param(1)])
                    out = m.invoke(h, "t.Holder", "getValue", returns="java.lang.Object")
                    m.invoke(out, "java.lang.Object", "toString", returns="java.lang.String")

        s = summary(analyze(build), "t.User", "use")
        to_string = [c for c in s.call_sites if c.callee_name == "toString"][0]
        assert to_string.polluted_position[0] == 1

    def test_scrubbing_setter_untaints_field(self):
        def build(pb):
            with pb.cls("t.Holder") as c:
                c.field("value", "java.lang.Object")
                with c.method("reset", params=["java.lang.Object"]) as m:
                    fresh = m.new("t.Holder")
                    m.set_field(m.this, "value", fresh)
                with c.method("getValue", returns="java.lang.Object") as m:
                    v = m.get_field(m.this, "value")
                    m.ret(v)
            with pb.cls("t.User") as c:
                c.field("stash", "t.Holder")
                with c.method("use", params=["java.lang.Object"]) as m:
                    h = m.get_field(m.this, "stash")
                    m.invoke(h, "t.Holder", "reset", [m.param(1)])
                    out = m.invoke(h, "t.Holder", "getValue", returns="java.lang.Object")
                    m.invoke(out, "java.lang.Object", "toString", returns="java.lang.String")

        s = summary(analyze(build), "t.User", "use")
        to_string = [c for c in s.call_sites if c.callee_name == "toString"][0]
        # this.stash.value was overwritten with a fresh object inside reset()
        assert to_string.polluted_position[0] == UNCONTROLLABLE_WEIGHT

    def test_two_level_composition(self):
        """A wrapper forwarding to the setter keeps field precision."""

        def build(pb):
            with pb.cls("t.Holder") as c:
                c.field("value", "java.lang.Object")
                with c.method("setValue", params=["java.lang.Object"]) as m:
                    m.set_field(m.this, "value", m.param(1))
            with pb.cls("t.Wrapper") as c:
                with c.method("fill", params=["t.Holder", "java.lang.Object"]) as m:
                    m.invoke(m.param(1), "t.Holder", "setValue", [m.param(2)])
            with pb.cls("t.User") as c:
                with c.method("use", params=["java.lang.Object"]) as m:
                    h = m.construct("t.Holder")
                    w = m.construct("t.Wrapper")
                    m.invoke(w, "t.Wrapper", "fill", [h, m.param(1)])
                    v = m.get_field(h, "value")
                    m.invoke(v, "java.lang.Object", "toString", returns="java.lang.String")

        s = summary(analyze(build), "t.User", "use")
        to_string = [c for c in s.call_sites if c.callee_name == "toString"][0]
        assert to_string.polluted_position[0] == 1

    def test_wrapper_action_exposes_param_field_write(self):
        def build(pb):
            with pb.cls("t.Holder") as c:
                c.field("value", "java.lang.Object")
                with c.method("setValue", params=["java.lang.Object"]) as m:
                    m.set_field(m.this, "value", m.param(1))
            with pb.cls("t.Wrapper") as c:
                with c.method("fill", params=["t.Holder", "java.lang.Object"]) as m:
                    m.invoke(m.param(1), "t.Holder", "setValue", [m.param(2)])

        action = summary(analyze(build), "t.Wrapper", "fill").action
        assert action.mapping.get("final-param-1.value") == "init-param-2"

"""Differential harness: every CPG build mode reproduces the serial one.

The determinism contract (root-final summaries, see
``repro.core.controllability``) promises that sharding the summary
phase across worker processes and/or seeding it from the on-disk cache
changes *nothing* — not just the chain results but the entire graph:
node IDs, labels, properties (including ACTION), edge endpoints,
POLLUTED_POSITION arrays, and pruning decisions are bit-identical.

The quick tests here run on the two structurally nastiest components
(a Serianalyzer recursion bomb and a deep known-chain component); the
``slow``-marked sweep covers every Table IX component across worker
counts and cache temperatures.
"""

import pytest

from repro.core.cpg import CPGBuilder
from repro.core.parallel import ParallelConfig
from repro.corpus import COMPONENT_NAMES, build_component, build_lang_base
from repro.jvm.hierarchy import ClassHierarchy

QUICK_COMPONENTS = ("Clojure", "CommonsBeanutils1")


def component_classes(name):
    return build_lang_base() + build_component(name).classes


def build_cpg(classes, parallel=None, cache=None):
    hierarchy = ClassHierarchy(classes)
    return CPGBuilder(hierarchy, parallel=parallel, cache=cache).build()


def graph_fingerprint(cpg):
    """The entire graph, raw IDs included: equality here means the two
    builds performed identical node/edge creation sequences."""
    graph = cpg.graph
    nodes = [
        (node.id, tuple(sorted(node.labels)),
         tuple(sorted((k, repr(v)) for k, v in node.properties.items())))
        for node in graph.nodes()
    ]
    edges = [
        (rel.type, rel.start_id, rel.end_id,
         tuple(sorted((k, repr(v)) for k, v in rel.properties.items())))
        for rel in graph.relationships()
    ]
    return nodes, edges


def summary_fingerprint(cpg):
    """Actions, PP arrays, and pruning decisions per method."""
    return {
        key: (
            summary.action.to_property(),
            [
                (site.kind, site.callee_class, site.callee_name, site.arity,
                 tuple(site.polluted_position), site.pruned, site.site_index)
                for site in summary.call_sites
            ],
        )
        for key, summary in cpg.summaries.items()
    }


def assert_identical(candidate, serial):
    assert summary_fingerprint(candidate) == summary_fingerprint(serial)
    c_nodes, c_edges = graph_fingerprint(candidate)
    s_nodes, s_edges = graph_fingerprint(serial)
    assert c_nodes == s_nodes
    assert c_edges == s_edges
    assert (
        candidate.statistics.pruned_call_sites
        == serial.statistics.pruned_call_sites
    )


@pytest.fixture(scope="module", params=QUICK_COMPONENTS)
def corpus(request):
    classes = component_classes(request.param)
    return classes, build_cpg(classes)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_parallel_matches_serial(corpus, workers):
    classes, serial = corpus
    parallel = build_cpg(classes, parallel=ParallelConfig(workers=workers))
    assert_identical(parallel, serial)


def test_cold_cache_matches_serial(corpus, tmp_path):
    classes, serial = corpus
    cold = build_cpg(classes, cache=str(tmp_path / "cache"))
    assert_identical(cold, serial)


def test_warm_cache_matches_serial(corpus, tmp_path):
    classes, serial = corpus
    cache_dir = str(tmp_path / "cache")
    build_cpg(classes, cache=cache_dir)  # populate
    warm = build_cpg(classes, cache=cache_dir)
    assert warm.statistics.cache_hits > 0
    assert_identical(warm, serial)


def test_parallel_with_warm_cache_matches_serial(corpus, tmp_path):
    classes, serial = corpus
    cache_dir = str(tmp_path / "cache")
    build_cpg(classes, cache=cache_dir)
    combined = build_cpg(
        classes, parallel=ParallelConfig(workers=2), cache=cache_dir
    )
    assert_identical(combined, serial)


def test_cache_population_is_mode_independent(corpus, tmp_path):
    """A cache written by a parallel build must seed a serial build to
    the same result (and vice versa)."""
    classes, serial = corpus
    cache_dir = str(tmp_path / "par-cache")
    build_cpg(classes, parallel=ParallelConfig(workers=2), cache=cache_dir)
    warm_serial = build_cpg(classes, cache=cache_dir)
    assert_identical(warm_serial, serial)


@pytest.mark.slow
@pytest.mark.parametrize("name", COMPONENT_NAMES)
def test_full_component_sweep(name, tmp_path):
    """Every Table IX component, every mode, one barrier of truth."""
    classes = component_classes(name)
    serial = build_cpg(classes)
    cache_dir = str(tmp_path / "cache")
    for label, candidate in [
        ("workers=1", build_cpg(classes, parallel=ParallelConfig(workers=1))),
        ("workers=2", build_cpg(classes, parallel=ParallelConfig(workers=2))),
        ("workers=4", build_cpg(classes, parallel=ParallelConfig(workers=4))),
        ("cold-cache", build_cpg(classes, cache=cache_dir)),
        ("warm-cache", build_cpg(classes, cache=cache_dir)),
        ("workers=2+warm-cache",
         build_cpg(classes, parallel=ParallelConfig(workers=2), cache=cache_dir)),
    ]:
        try:
            assert_identical(candidate, serial)
        except AssertionError as exc:  # pragma: no cover - diagnostic aid
            raise AssertionError(f"{name}: {label} diverged from serial") from exc

"""Figure 5 walkthrough — the paper's worked controllability example.

Source program (Figure 5(a))::

    public A example(A a, B b) {
        A a1 = new A();
        A a2 = a;
        a = a1;
        B b1 = B.exchange(a, b);
        return a2;
    }
    public static B exchange(A a, B b) {
        a.b = b;
        b = new B();
        return a.b;
    }

Expected results (Figures 5(b)-(d)):

* ``exchange``'s Action is ``{final-param-1: init-param-1,
  final-param-1.b: init-param-2, final-param-2: null,
  return: init-param-2, this: null}``;
* the PP of the ``example -> exchange`` call edge is ``[∞, ∞, 2]``;
* after the call, ``example``'s localMap effects yield
  ``b1 = 2`` (controllable via param 2) and ``a.b = 2``;
* ``example``'s Action maps ``return -> init-param-1`` (via ``a2``).
"""

import pytest

from repro.core.actions import UNCONTROLLABLE_WEIGHT, param, param_field
from repro.core.controllability import ControllabilityAnalysis
from repro.jvm.builder import ProgramBuilder
from repro.jvm.hierarchy import ClassHierarchy


@pytest.fixture(scope="module")
def summaries():
    pb = ProgramBuilder()
    with pb.cls("fig5.A") as c:
        c.field("b", "fig5.B")
    pb.cls("fig5.B").finish()
    with pb.cls("fig5.Main") as c:
        with c.method(
            "example", params=["fig5.A", "fig5.B"], returns="fig5.A",
            param_names=["a", "b"],
        ) as m:
            a1 = m.local("a1")
            m.assign(a1, m.new("fig5.A"))
            a2 = m.local("a2")
            m.assign(a2, m.param(1))
            m.assign(m.param(1), a1)
            b1 = m.invoke_static(
                "fig5.B", "exchange", [m.param(1), m.param(2)], returns="fig5.B"
            )
            m.ret(a2)
    with pb.cls("fig5.B2") as c:
        pass
    # exchange lives on B per the figure; declare it in its own builder pass
    classes = pb.build()
    pb2 = ProgramBuilder()
    with pb2.cls("fig5.BImpl", extends="fig5.B") as c:
        pass
    hierarchy_classes = classes + pb2.build()
    # attach exchange to fig5.B
    b_cls = next(c for c in hierarchy_classes if c.name == "fig5.B")
    from repro.jvm.builder import MethodBuilder
    from repro.jvm.model import JavaMethod, Modifier
    from repro.jvm import types as jt

    method = JavaMethod(
        "exchange",
        [jt.class_type("fig5.A"), jt.class_type("fig5.B")],
        jt.class_type("fig5.B"),
        Modifier.PUBLIC | Modifier.STATIC,
        param_names=["a", "b"],
    )
    b_cls.add_method(method)
    mb = MethodBuilder(method)
    mb.set_field(mb.param(1), "b", mb.param(2))
    mb.assign(mb.param(2), mb.new("fig5.B"))
    ret = mb.get_field(mb.param(1), "b")
    mb.ret(ret)
    mb.finish()

    hierarchy = ClassHierarchy(hierarchy_classes)
    analysis = ControllabilityAnalysis(hierarchy)
    return analysis.analyze_all()


def _summary(summaries, cls, name):
    return next(
        s
        for s in summaries.values()
        if s.method.class_name == cls and s.method.name == name
    )


class TestExchangeAction:
    """Figure 5(b)."""

    def test_final_param_1_unchanged(self, summaries):
        action = _summary(summaries, "fig5.B", "exchange").action
        assert action.mapping["final-param-1"] == "init-param-1"

    def test_field_write_recorded(self, summaries):
        action = _summary(summaries, "fig5.B", "exchange").action
        assert action.mapping["final-param-1.b"] == "init-param-2"

    def test_param_2_destroyed_by_new(self, summaries):
        action = _summary(summaries, "fig5.B", "exchange").action
        assert action.mapping["final-param-2"] == "null"

    def test_return_is_init_param_2(self, summaries):
        action = _summary(summaries, "fig5.B", "exchange").action
        assert action.mapping["return"] == "init-param-2"

    def test_static_method_has_no_this(self, summaries):
        action = _summary(summaries, "fig5.B", "exchange").action
        assert "this" not in action.mapping


class TestExampleCallSite:
    """Figure 5(c): PP of the exchange call is [∞, ∞, 2]."""

    def test_pp(self, summaries):
        example = _summary(summaries, "fig5.Main", "example")
        (site,) = [s for s in example.call_sites if s.callee_name == "exchange"]
        assert site.polluted_position == [
            UNCONTROLLABLE_WEIGHT,
            UNCONTROLLABLE_WEIGHT,
            2,
        ]

    def test_call_not_pruned(self, summaries):
        example = _summary(summaries, "fig5.Main", "example")
        (site,) = [s for s in example.call_sites if s.callee_name == "exchange"]
        assert not site.pruned  # one position (arg 2) is controllable


class TestExampleAction:
    """Figure 5(a) lines 2-6 and 5(d): the effects in example's frame."""

    def test_return_is_original_param_1(self, summaries):
        action = _summary(summaries, "fig5.Main", "example").action
        assert action.mapping["return"] == "init-param-1"

    def test_final_param_1_destroyed(self, summaries):
        # a was overwritten by a1 = new A()
        action = _summary(summaries, "fig5.Main", "example").action
        assert action.mapping["final-param-1"] == "null"

    def test_final_param_2_destroyed_interprocedurally(self, summaries):
        # exchange() reassigns its second parameter; correct() folds the
        # ∞ back into example's localMap for local b
        action = _summary(summaries, "fig5.Main", "example").action
        assert action.mapping["final-param-2"] == "null"

    def test_field_of_param_1_tracked_through_call(self, summaries):
        # a.b = 2 after the call (Figure 5(d) localMap) — but a itself is
        # the new A(), so the effect shows on final-param-1.b only if the
        # analysis keys fields syntactically, which it does; since local
        # 'a' no longer holds init-param-1, the Action records the write
        # under final-param-1.b = init-param-2
        action = _summary(summaries, "fig5.Main", "example").action
        assert action.mapping.get("final-param-1.b") == "init-param-2"

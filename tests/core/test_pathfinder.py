"""Unit tests for the gadget-chain finder, including the Figure 6 example."""

import pytest

from repro.core.chains import ChainStep, GadgetChain
from repro.core.cpg import ALIAS, CALL, CPG, CPGStatistics
from repro.core.pathfinder import GadgetChainFinder
from repro.errors import PathFinderError
from repro.graphdb.graph import PropertyGraph
from repro.jvm.hierarchy import ClassHierarchy


def hand_built_cpg(graph):
    """Wrap a hand-assembled graph in a CPG (hierarchy unused here)."""
    return CPG(graph, ClassHierarchy([]), CPGStatistics(), {})


def method_node(graph, name, cls="g", source=False, sink=False, tc=None):
    props = {
        "NAME": name,
        "CLASSNAME": cls,
        "ARITY": 0,
        "IS_SOURCE": source,
        "IS_SINK": sink,
    }
    if sink:
        props["TRIGGER_CONDITION"] = tc if tc is not None else [0]
        props["SINK_TYPE"] = "EXEC"
    return graph.create_node(["Method"], props)


def call(graph, caller, callee, pp):
    return graph.create_relationship(
        CALL, caller, callee, {"POLLUTED_POSITION": pp, "KIND": "virtual"}
    )


def alias(graph, sub, sup):
    return graph.create_relationship(ALIAS, sub, sup)


class TestFigure6:
    """The worked example of §III-D: nodes A..J, sink A, source H.

    Expected: E and I are excluded by the Expander (their edges carry an
    uncontrollable PP for the required TC position), G is excluded by
    the Evaluator (depth), and the H-rooted chains are found.
    """

    @pytest.fixture
    def setup(self):
        g = PropertyGraph()
        A = method_node(g, "A", sink=True, tc=[1])
        C = method_node(g, "C")
        C1 = method_node(g, "C1")
        C2 = method_node(g, "C2")
        E = method_node(g, "E")
        G = method_node(g, "G")
        H = method_node(g, "H", source=True)
        I = method_node(g, "I")  # noqa: E741 - matches the figure
        J = method_node(g, "J")
        # C calls A with the argument controllable from C's receiver
        call(g, C, A, [0, 0])
        # E calls A but the required argument is uncontrollable -> Expander drops E
        call(g, E, A, [0, -1])
        # alias family: C1 and C2 override C
        alias(g, C1, C)
        alias(g, C2, C)
        # I calls C1, but I's edge kills the controllability -> Expander drops the I chain
        call(g, I, C1, [-1, -1])
        # H (source) calls C2 with its receiver flowing into position 0
        call(g, H, C2, [0, 0])
        # J -> G -> ... deep helper chain for the Evaluator depth cut
        call(g, G, C, [0, 0])
        call(g, J, G, [0, 0])
        return g, {"A": A, "C": C, "C1": C1, "C2": C2, "E": E, "G": G, "H": H, "I": I, "J": J}

    def test_h_chain_found(self, setup):
        g, nodes = setup
        finder = GadgetChainFinder(hand_built_cpg(g), max_depth=10)
        chains = finder.find_chains()
        names = {tuple(s.method_name for s in c.steps) for c in chains}
        assert ("H", "C2", "C", "A") in names

    def test_expander_excludes_uncontrollable_edges(self, setup):
        g, nodes = setup
        finder = GadgetChainFinder(hand_built_cpg(g), max_depth=10)
        chains = finder.find_chains()
        for chain in chains:
            step_names = [s.method_name for s in chain.steps]
            assert "E" not in step_names
            assert "I" not in step_names

    def test_evaluator_excludes_beyond_depth(self, setup):
        g, nodes = setup
        # make J a source so that, absent the depth cut, J-G-C-A would match
        g.set_node_property(nodes["J"], "IS_SOURCE", True)
        finder = GadgetChainFinder(hand_built_cpg(g), max_depth=2)
        chains = finder.find_chains()
        names = {tuple(s.method_name for s in c.steps) for c in chains}
        assert ("J", "G", "C", "A") not in names
        deep = GadgetChainFinder(hand_built_cpg(g), max_depth=5)
        names = {
            tuple(s.method_name for s in c.steps) for c in deep.find_chains()
        }
        assert ("J", "G", "C", "A") in names


class TestTCPropagation:
    def test_tc_remaps_through_pp(self):
        """Sink needs arg1; the middle method passes its receiver into
        arg1; the source's edge must therefore satisfy position 0."""
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[1])
        mid = method_node(g, "mid")
        src = method_node(g, "readObject", source=True)
        call(g, mid, sink, [-1, 0])  # arg1 comes from mid's receiver
        call(g, src, mid, [0, -1])  # mid's receiver comes from src's receiver
        chains = GadgetChainFinder(hand_built_cpg(g)).find_chains()
        assert len(chains) == 1

    def test_tc_chain_breaks_when_position_lost(self):
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[1])
        mid = method_node(g, "mid")
        src = method_node(g, "readObject", source=True)
        call(g, mid, sink, [-1, 2])  # arg1 comes from mid's 2nd parameter
        call(g, src, mid, [0, 0, -1])  # ...which src passes uncontrolled
        chains = GadgetChainFinder(hand_built_cpg(g)).find_chains()
        assert chains == []

    def test_alias_passes_tc_unchanged(self):
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[1])
        impl = method_node(g, "work", cls="Impl")
        decl = method_node(g, "work", cls="Iface")
        src = method_node(g, "readObject", source=True)
        call(g, impl, sink, [0, 0])
        alias(g, impl, decl)
        call(g, src, decl, [0, 0])
        chains = GadgetChainFinder(hand_built_cpg(g)).find_chains()
        assert len(chains) == 1
        assert [s.class_name for s in chains[0].steps] == ["g", "Iface", "Impl", "g"]

    def test_follow_alias_ablation(self):
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[1])
        impl = method_node(g, "work", cls="Impl")
        decl = method_node(g, "work", cls="Iface")
        src = method_node(g, "readObject", source=True)
        call(g, impl, sink, [0, 0])
        alias(g, impl, decl)
        call(g, src, decl, [0, 0])
        finder = GadgetChainFinder(hand_built_cpg(g), follow_alias=False)
        assert finder.find_chains() == []


class TestFinderConfig:
    def test_bad_depth_rejected(self):
        g = PropertyGraph()
        with pytest.raises(PathFinderError):
            GadgetChainFinder(hand_built_cpg(g), max_depth=0)

    def test_source_filter(self):
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[0])
        s1 = method_node(g, "readObject", cls="com.a.X", source=True)
        s2 = method_node(g, "readObject", cls="org.b.Y", source=True)
        call(g, s1, sink, [0])
        call(g, s2, sink, [0])
        finder = GadgetChainFinder(hand_built_cpg(g))
        chains = finder.find_chains(source_filter="com.a")
        assert len(chains) == 1
        assert chains[0].source.class_name == "com.a.X"

    def test_max_results_per_sink(self):
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[0])
        for i in range(10):
            s = method_node(g, f"readObject{i}", source=True)
            call(g, s, sink, [0])
        finder = GadgetChainFinder(hand_built_cpg(g), max_results_per_sink=3)
        assert len(finder.find_chains()) <= 3

    def test_find_between(self):
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[0])
        s1 = method_node(g, "readObject", cls="A", source=True)
        s2 = method_node(g, "readObject", cls="B", source=True)
        call(g, s1, sink, [0])
        call(g, s2, sink, [0])
        finder = GadgetChainFinder(hand_built_cpg(g))
        chains = finder.find_between(s1, sink)
        assert len(chains) == 1
        assert chains[0].source.class_name == "A"

    def test_default_tc_when_missing(self):
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True)
        g.set_node_property(sink, "TRIGGER_CONDITION", None)
        src = method_node(g, "readObject", source=True)
        call(g, src, sink, [0])
        chains = GadgetChainFinder(hand_built_cpg(g)).find_chains()
        assert len(chains) == 1


class TestChainModel:
    def test_render_matches_table_i_format(self):
        chain = GadgetChain(
            [
                ChainStep("demo.EvilObjectA", "readObject", 1, "CALL"),
                ChainStep("demo.EvilObjectB", "toString", 0, "CALL"),
                ChainStep("java.lang.Runtime", "exec", 1),
            ],
            sink_category="EXEC",
        )
        text = chain.render()
        assert text.startswith("(source)demo.EvilObjectA.readObject()")
        assert text.endswith("(sink)java.lang.Runtime.exec()")

    def test_too_short_chain_rejected(self):
        with pytest.raises(ValueError):
            GadgetChain([ChainStep("A", "m", 0)])

    def test_dedupe_and_keys(self):
        from repro.core.chains import dedupe_chains

        a = GadgetChain([ChainStep("A", "m", 0), ChainStep("B", "n", 0)])
        b = GadgetChain([ChainStep("A", "m", 0), ChainStep("B", "n", 0)])
        c = GadgetChain([ChainStep("A", "m", 0), ChainStep("C", "n", 0)])
        assert dedupe_chains([a, b, c]) == [a, c]
        assert a.endpoint_key == (("A", "m"), ("B", "n"))

    def test_filter_by_package(self):
        from repro.core.chains import filter_by_package

        a = GadgetChain(
            [ChainStep("org.x.A", "m", 0), ChainStep("java.B", "n", 0)]
        )
        b = GadgetChain(
            [ChainStep("com.y.A", "m", 0), ChainStep("java.B", "n", 0)]
        )
        assert filter_by_package([a, b], "org.x") == [a]


class TestSearchStatistics:
    def test_fig6_style_counters(self):
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[1])
        good = method_node(g, "good")
        bad = method_node(g, "bad")
        src = method_node(g, "readObject", source=True)
        call(g, good, sink, [0, 0])
        call(g, bad, sink, [0, -1])  # Expander must reject this edge
        call(g, src, good, [0, 0])
        finder = GadgetChainFinder(hand_built_cpg(g), max_depth=5)
        chains = finder.find_chains()
        stats = finder.last_search_stats
        assert stats.chains_found == len(chains) == 1
        assert stats.call_edges_rejected >= 1
        assert stats.call_edges_followed >= 2
        assert stats.sinks_searched == 1
        assert stats.paths_visited >= 3

    def test_depth_pruning_counted(self):
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[0])
        prev = sink
        for i in range(5):
            n = method_node(g, f"hop{i}")
            call(g, n, prev, [0])
            prev = n
        # a source beyond the depth budget: every hop stays
        # source-reachable, so the optimized engine walks the chain too
        # and hits the same depth wall as the baseline
        call(g, method_node(g, "readObject", source=True), prev, [0])
        finder = GadgetChainFinder(hand_built_cpg(g), max_depth=2)
        assert finder.find_chains() == []
        assert finder.last_search_stats.depth_pruned >= 1

    def test_stats_reset_between_runs(self):
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[0])
        src = method_node(g, "readObject", source=True)
        call(g, src, sink, [0])
        finder = GadgetChainFinder(hand_built_cpg(g))
        finder.find_chains()
        first = finder.last_search_stats.paths_visited
        finder.find_chains()
        assert finder.last_search_stats.paths_visited == first


class TestExactCounters:
    """Exact SearchStatistics values on hand-built mini-CPGs, pinned on
    both engines so the optimized rewrite cannot drift unnoticed."""

    def counter_graph(self):
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[1])
        a = method_node(g, "invoke")
        d = method_node(g, "decoy")
        b = method_node(g, "readObject", source=True)
        e2 = method_node(g, "invokeOverride")
        call(g, a, sink, [0, 0])
        call(g, d, sink, [0, -1])  # PP kills the required position
        call(g, b, a, [0, 0])
        alias(g, e2, a)
        return g

    @pytest.mark.parametrize("optimize", [False, True])
    def test_fig6_counters_exact(self, optimize):
        finder = GadgetChainFinder(hand_built_cpg(self.counter_graph()),
                                   optimize=optimize)
        chains = finder.find_chains()
        stats = finder.last_search_stats
        assert [c.key for c in chains] == [(("g", "readObject", 0),
                                           ("g", "invoke", 0),
                                           ("g", "exec", 0))]
        # visits: (exec), (exec,invoke), (exec,invoke,readObject),
        # (exec,invoke,invokeOverride)
        assert stats.paths_visited == 4
        assert stats.call_edges_followed == 2
        assert stats.call_edges_rejected == 1  # the decoy edge
        assert stats.alias_hops == 1
        assert stats.depth_pruned == 0
        assert stats.filtered_sources == 0
        assert stats.chains_found == 1
        if optimize:
            # everything in this graph is source-reachable: the decoy
            # edge dies on its Polluted_Position before the prune check
            assert stats.reachability_pruned == 0
            assert stats.reachable_nodes == 4  # readObject, invoke, exec, override
            assert stats.negative_cache_hits == 0
            # the dead alias-override subtree is recorded as empty
            assert stats.negative_cache_entries == 1

    @pytest.mark.parametrize("optimize", [False, True])
    def test_depth_pruned_exact(self, optimize):
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[0])
        prev = sink
        for i in range(5):
            n = method_node(g, f"hop{i}")
            call(g, n, prev, [0])
            prev = n
        call(g, method_node(g, "readObject", source=True), prev, [0])
        finder = GadgetChainFinder(hand_built_cpg(g), max_depth=2,
                                   optimize=optimize)
        assert finder.find_chains() == []
        stats = finder.last_search_stats
        # visits: (exec), (exec,hop0), (exec,hop0,hop1) — the third hits
        # the depth wall
        assert stats.paths_visited == 3
        assert stats.call_edges_followed == 2
        assert stats.depth_pruned == 1
        assert stats.call_edges_rejected == 0
        assert stats.alias_hops == 0

    def test_reachability_prune_exact(self):
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[0])
        dead = method_node(g, "dead")
        call(g, dead, sink, [0])  # PP-controllable but source-unreachable
        # a decoy subtree behind the dead caller that the optimized
        # engine must never enumerate
        prev = dead
        for i in range(4):
            n = method_node(g, f"dead{i}")
            call(g, n, prev, [0])
            prev = n
        src = method_node(g, "readObject", source=True)
        call(g, src, sink, [0])
        baseline = GadgetChainFinder(hand_built_cpg(g), optimize=False)
        optimized = GadgetChainFinder(hand_built_cpg(g), optimize=True)
        assert ([c.key for c in baseline.find_chains()]
                == [c.key for c in optimized.find_chains()])
        assert optimized.last_search_stats.reachability_pruned == 1
        assert optimized.last_search_stats.reachable_nodes == 2  # src, exec
        # optimized never enters the decoy subtree
        assert optimized.last_search_stats.paths_visited == 2
        assert baseline.last_search_stats.paths_visited == 7

    def test_negative_cache_hit_exact(self):
        """Two same-length routes into the same dead subtree: the second
        visit is answered from the negative cache."""
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[0])
        a = method_node(g, "a")
        b = method_node(g, "b")
        x = method_node(g, "x")
        y = method_node(g, "y")
        call(g, a, sink, [0])
        call(g, b, sink, [0])
        call(g, x, a, [0])
        call(g, x, b, [0])
        call(g, y, x, [0])
        # no sources at all: disable the reachability prune to exercise
        # the cache in isolation
        finder = GadgetChainFinder(
            hand_built_cpg(g), optimize=True, prune_unreachable=False
        )
        assert finder.find_chains() == []
        stats = finder.last_search_stats
        # visits: (exec), (a), (x), (y), (b), (x: cache hit) -> 6
        assert stats.paths_visited == 6
        assert stats.negative_cache_hits == 1
        # empty states recorded: y, x, a, b, and the sink itself
        assert stats.negative_cache_entries == 5
        baseline = GadgetChainFinder(hand_built_cpg(g), optimize=False)
        assert baseline.find_chains() == []
        assert baseline.last_search_stats.paths_visited == 7


class TestSourceFilterBudget:
    """Regression: filtered-out chains must not consume the
    max_results_per_sink budget (they used to be included by the
    evaluator and post-filtered, silently dropping wanted chains)."""

    def two_source_graph(self):
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[0])
        # the unwanted source's edge is created first, so the DFS finds
        # its chain before the wanted one
        unwanted = method_node(g, "readObject", cls="com.evil.U", source=True)
        wanted = method_node(g, "readObject", cls="org.good.W", source=True)
        call(g, unwanted, sink, [0])
        call(g, wanted, sink, [0])
        return g

    @pytest.mark.parametrize("optimize", [False, True])
    def test_wanted_chain_survives_budget_of_one(self, optimize):
        finder = GadgetChainFinder(
            hand_built_cpg(self.two_source_graph()),
            max_results_per_sink=1,
            optimize=optimize,
        )
        chains = finder.find_chains(source_filter="org.good")
        assert [c.source.class_name for c in chains] == ["org.good.W"]
        assert finder.last_search_stats.filtered_sources == 1

    @pytest.mark.parametrize("optimize", [False, True])
    def test_find_between_respects_budget(self, optimize):
        g = self.two_source_graph()
        cpg = hand_built_cpg(g)
        finder = GadgetChainFinder(cpg, max_results_per_sink=1,
                                   optimize=optimize)
        sink = g.find_node("Method", NAME="exec")
        wanted = g.find_node("Method", CLASSNAME="org.good.W")
        chains = finder.find_between(wanted, sink)
        assert [c.source.class_name for c in chains] == ["org.good.W"]

    def test_filtered_sources_still_searched_through(self):
        """An unwanted source is excluded but expansion continues: a
        wanted source sitting *above* it must still be found."""
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[0])
        mid = method_node(g, "readExternal", cls="com.evil.M", source=True)
        top = method_node(g, "readObject", cls="org.good.T", source=True)
        call(g, mid, sink, [0])
        call(g, top, mid, [0])
        finder = GadgetChainFinder(hand_built_cpg(g))
        chains = finder.find_chains(source_filter="org.good")
        assert [c.source.class_name for c in chains] == ["org.good.T"]


class TestParallelSearch:
    def test_workers_match_serial_on_mini_cpg(self):
        g = PropertyGraph()
        sources = []
        for i in range(4):
            sink = method_node(g, f"exec{i}", cls=f"s{i}", sink=True, tc=[0])
            mid = method_node(g, f"mid{i}", cls=f"s{i}")
            src = method_node(g, "readObject", cls=f"s{i}", source=True)
            call(g, mid, sink, [0])
            call(g, src, mid, [0])
            sources.append(src)
        serial = GadgetChainFinder(hand_built_cpg(g), workers=1)
        fanned = GadgetChainFinder(hand_built_cpg(g), workers=2)
        assert ([c.key for c in serial.find_chains()]
                == [c.key for c in fanned.find_chains()])
        assert fanned.last_search_stats.parallel_workers == 2
        assert (fanned.last_search_stats.paths_visited
                == serial.last_search_stats.paths_visited)

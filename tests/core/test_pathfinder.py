"""Unit tests for the gadget-chain finder, including the Figure 6 example."""

import pytest

from repro.core.chains import ChainStep, GadgetChain
from repro.core.cpg import ALIAS, CALL, CPG, CPGStatistics
from repro.core.pathfinder import GadgetChainFinder
from repro.errors import PathFinderError
from repro.graphdb.graph import PropertyGraph
from repro.jvm.hierarchy import ClassHierarchy


def hand_built_cpg(graph):
    """Wrap a hand-assembled graph in a CPG (hierarchy unused here)."""
    return CPG(graph, ClassHierarchy([]), CPGStatistics(), {})


def method_node(graph, name, cls="g", source=False, sink=False, tc=None):
    props = {
        "NAME": name,
        "CLASSNAME": cls,
        "ARITY": 0,
        "IS_SOURCE": source,
        "IS_SINK": sink,
    }
    if sink:
        props["TRIGGER_CONDITION"] = tc if tc is not None else [0]
        props["SINK_TYPE"] = "EXEC"
    return graph.create_node(["Method"], props)


def call(graph, caller, callee, pp):
    return graph.create_relationship(
        CALL, caller, callee, {"POLLUTED_POSITION": pp, "KIND": "virtual"}
    )


def alias(graph, sub, sup):
    return graph.create_relationship(ALIAS, sub, sup)


class TestFigure6:
    """The worked example of §III-D: nodes A..J, sink A, source H.

    Expected: E and I are excluded by the Expander (their edges carry an
    uncontrollable PP for the required TC position), G is excluded by
    the Evaluator (depth), and the H-rooted chains are found.
    """

    @pytest.fixture
    def setup(self):
        g = PropertyGraph()
        A = method_node(g, "A", sink=True, tc=[1])
        C = method_node(g, "C")
        C1 = method_node(g, "C1")
        C2 = method_node(g, "C2")
        E = method_node(g, "E")
        G = method_node(g, "G")
        H = method_node(g, "H", source=True)
        I = method_node(g, "I")  # noqa: E741 - matches the figure
        J = method_node(g, "J")
        # C calls A with the argument controllable from C's receiver
        call(g, C, A, [0, 0])
        # E calls A but the required argument is uncontrollable -> Expander drops E
        call(g, E, A, [0, -1])
        # alias family: C1 and C2 override C
        alias(g, C1, C)
        alias(g, C2, C)
        # I calls C1, but I's edge kills the controllability -> Expander drops the I chain
        call(g, I, C1, [-1, -1])
        # H (source) calls C2 with its receiver flowing into position 0
        call(g, H, C2, [0, 0])
        # J -> G -> ... deep helper chain for the Evaluator depth cut
        call(g, G, C, [0, 0])
        call(g, J, G, [0, 0])
        return g, {"A": A, "C": C, "C1": C1, "C2": C2, "E": E, "G": G, "H": H, "I": I, "J": J}

    def test_h_chain_found(self, setup):
        g, nodes = setup
        finder = GadgetChainFinder(hand_built_cpg(g), max_depth=10)
        chains = finder.find_chains()
        names = {tuple(s.method_name for s in c.steps) for c in chains}
        assert ("H", "C2", "C", "A") in names

    def test_expander_excludes_uncontrollable_edges(self, setup):
        g, nodes = setup
        finder = GadgetChainFinder(hand_built_cpg(g), max_depth=10)
        chains = finder.find_chains()
        for chain in chains:
            step_names = [s.method_name for s in chain.steps]
            assert "E" not in step_names
            assert "I" not in step_names

    def test_evaluator_excludes_beyond_depth(self, setup):
        g, nodes = setup
        # make J a source so that, absent the depth cut, J-G-C-A would match
        g.set_node_property(nodes["J"], "IS_SOURCE", True)
        finder = GadgetChainFinder(hand_built_cpg(g), max_depth=2)
        chains = finder.find_chains()
        names = {tuple(s.method_name for s in c.steps) for c in chains}
        assert ("J", "G", "C", "A") not in names
        deep = GadgetChainFinder(hand_built_cpg(g), max_depth=5)
        names = {
            tuple(s.method_name for s in c.steps) for c in deep.find_chains()
        }
        assert ("J", "G", "C", "A") in names


class TestTCPropagation:
    def test_tc_remaps_through_pp(self):
        """Sink needs arg1; the middle method passes its receiver into
        arg1; the source's edge must therefore satisfy position 0."""
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[1])
        mid = method_node(g, "mid")
        src = method_node(g, "readObject", source=True)
        call(g, mid, sink, [-1, 0])  # arg1 comes from mid's receiver
        call(g, src, mid, [0, -1])  # mid's receiver comes from src's receiver
        chains = GadgetChainFinder(hand_built_cpg(g)).find_chains()
        assert len(chains) == 1

    def test_tc_chain_breaks_when_position_lost(self):
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[1])
        mid = method_node(g, "mid")
        src = method_node(g, "readObject", source=True)
        call(g, mid, sink, [-1, 2])  # arg1 comes from mid's 2nd parameter
        call(g, src, mid, [0, 0, -1])  # ...which src passes uncontrolled
        chains = GadgetChainFinder(hand_built_cpg(g)).find_chains()
        assert chains == []

    def test_alias_passes_tc_unchanged(self):
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[1])
        impl = method_node(g, "work", cls="Impl")
        decl = method_node(g, "work", cls="Iface")
        src = method_node(g, "readObject", source=True)
        call(g, impl, sink, [0, 0])
        alias(g, impl, decl)
        call(g, src, decl, [0, 0])
        chains = GadgetChainFinder(hand_built_cpg(g)).find_chains()
        assert len(chains) == 1
        assert [s.class_name for s in chains[0].steps] == ["g", "Iface", "Impl", "g"]

    def test_follow_alias_ablation(self):
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[1])
        impl = method_node(g, "work", cls="Impl")
        decl = method_node(g, "work", cls="Iface")
        src = method_node(g, "readObject", source=True)
        call(g, impl, sink, [0, 0])
        alias(g, impl, decl)
        call(g, src, decl, [0, 0])
        finder = GadgetChainFinder(hand_built_cpg(g), follow_alias=False)
        assert finder.find_chains() == []


class TestFinderConfig:
    def test_bad_depth_rejected(self):
        g = PropertyGraph()
        with pytest.raises(PathFinderError):
            GadgetChainFinder(hand_built_cpg(g), max_depth=0)

    def test_source_filter(self):
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[0])
        s1 = method_node(g, "readObject", cls="com.a.X", source=True)
        s2 = method_node(g, "readObject", cls="org.b.Y", source=True)
        call(g, s1, sink, [0])
        call(g, s2, sink, [0])
        finder = GadgetChainFinder(hand_built_cpg(g))
        chains = finder.find_chains(source_filter="com.a")
        assert len(chains) == 1
        assert chains[0].source.class_name == "com.a.X"

    def test_max_results_per_sink(self):
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[0])
        for i in range(10):
            s = method_node(g, f"readObject{i}", source=True)
            call(g, s, sink, [0])
        finder = GadgetChainFinder(hand_built_cpg(g), max_results_per_sink=3)
        assert len(finder.find_chains()) <= 3

    def test_find_between(self):
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[0])
        s1 = method_node(g, "readObject", cls="A", source=True)
        s2 = method_node(g, "readObject", cls="B", source=True)
        call(g, s1, sink, [0])
        call(g, s2, sink, [0])
        finder = GadgetChainFinder(hand_built_cpg(g))
        chains = finder.find_between(s1, sink)
        assert len(chains) == 1
        assert chains[0].source.class_name == "A"

    def test_default_tc_when_missing(self):
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True)
        g.set_node_property(sink, "TRIGGER_CONDITION", None)
        src = method_node(g, "readObject", source=True)
        call(g, src, sink, [0])
        chains = GadgetChainFinder(hand_built_cpg(g)).find_chains()
        assert len(chains) == 1


class TestChainModel:
    def test_render_matches_table_i_format(self):
        chain = GadgetChain(
            [
                ChainStep("demo.EvilObjectA", "readObject", 1, "CALL"),
                ChainStep("demo.EvilObjectB", "toString", 0, "CALL"),
                ChainStep("java.lang.Runtime", "exec", 1),
            ],
            sink_category="EXEC",
        )
        text = chain.render()
        assert text.startswith("(source)demo.EvilObjectA.readObject()")
        assert text.endswith("(sink)java.lang.Runtime.exec()")

    def test_too_short_chain_rejected(self):
        with pytest.raises(ValueError):
            GadgetChain([ChainStep("A", "m", 0)])

    def test_dedupe_and_keys(self):
        from repro.core.chains import dedupe_chains

        a = GadgetChain([ChainStep("A", "m", 0), ChainStep("B", "n", 0)])
        b = GadgetChain([ChainStep("A", "m", 0), ChainStep("B", "n", 0)])
        c = GadgetChain([ChainStep("A", "m", 0), ChainStep("C", "n", 0)])
        assert dedupe_chains([a, b, c]) == [a, c]
        assert a.endpoint_key == (("A", "m"), ("B", "n"))

    def test_filter_by_package(self):
        from repro.core.chains import filter_by_package

        a = GadgetChain(
            [ChainStep("org.x.A", "m", 0), ChainStep("java.B", "n", 0)]
        )
        b = GadgetChain(
            [ChainStep("com.y.A", "m", 0), ChainStep("java.B", "n", 0)]
        )
        assert filter_by_package([a, b], "org.x") == [a]


class TestSearchStatistics:
    def test_fig6_style_counters(self):
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[1])
        good = method_node(g, "good")
        bad = method_node(g, "bad")
        src = method_node(g, "readObject", source=True)
        call(g, good, sink, [0, 0])
        call(g, bad, sink, [0, -1])  # Expander must reject this edge
        call(g, src, good, [0, 0])
        finder = GadgetChainFinder(hand_built_cpg(g), max_depth=5)
        chains = finder.find_chains()
        stats = finder.last_search_stats
        assert stats.chains_found == len(chains) == 1
        assert stats.call_edges_rejected >= 1
        assert stats.call_edges_followed >= 2
        assert stats.sinks_searched == 1
        assert stats.paths_visited >= 3

    def test_depth_pruning_counted(self):
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[0])
        prev = sink
        for i in range(5):
            n = method_node(g, f"hop{i}")
            call(g, n, prev, [0])
            prev = n
        finder = GadgetChainFinder(hand_built_cpg(g), max_depth=2)
        finder.find_chains()
        assert finder.last_search_stats.depth_pruned >= 1

    def test_stats_reset_between_runs(self):
        g = PropertyGraph()
        sink = method_node(g, "exec", sink=True, tc=[0])
        src = method_node(g, "readObject", source=True)
        call(g, src, sink, [0])
        finder = GadgetChainFinder(hand_built_cpg(g))
        finder.find_chains()
        first = finder.last_search_stats.paths_visited
        finder.find_chains()
        assert finder.last_search_stats.paths_visited == first

"""Tests for blacklist derivation and enforcement (§IV-E workflow)."""

import pytest

from repro.core import Tabby, apply_blacklist, derive_blacklist
from repro.core.blacklist import DeserializationBlacklist
from repro.corpus import build_component, build_lang_base, build_scene
from repro.jvm.hierarchy import ClassHierarchy
from repro.verify import ChainVerifier


@pytest.fixture(scope="module")
def cc():
    spec = build_component("commons-collections(3.2.1)")
    classes = build_lang_base() + spec.classes
    chains = Tabby().add_classes(classes).find_gadget_chains()
    verifier = ChainVerifier(classes)
    effective = [
        c for c in chains
        if spec.match_known(c) is not None or verifier.verify(c).effective
    ]
    return classes, ClassHierarchy(classes), effective


class TestFilter:
    def test_exact_class_entry(self):
        bl = DeserializationBlacklist(classes=frozenset({"a.Evil"}))
        assert bl.blocks("a.Evil")
        assert not bl.blocks("a.Good")

    def test_package_entry(self):
        bl = DeserializationBlacklist(packages=("org.apache.commons.collections",))
        assert bl.blocks("org.apache.commons.collections.functors.InvokerTransformer")
        assert not bl.blocks("org.apache.commons.lang.Builder")

    def test_subtype_entry(self, cc):
        classes, hierarchy, _ = cc
        bl = DeserializationBlacklist(
            subtype_roots=("org.apache.commons.collections.Transformer",)
        )
        assert bl.blocks(
            "org.apache.commons.collections.functors.InvokerTransformer", hierarchy
        )
        assert not bl.blocks("org.apache.commons.collections.bag.HashBag", hierarchy)

    def test_merge_and_entries(self):
        a = DeserializationBlacklist(classes=frozenset({"x.A"}))
        b = DeserializationBlacklist(packages=("y",))
        merged = a.merged_with(b)
        assert len(merged) == 2
        assert merged.entries() == ["deny-class x.A", "deny-package y.*"]


class TestDerivation:
    def test_blacklist_kills_all_effective_chains(self, cc):
        classes, hierarchy, effective = cc
        blacklist = derive_blacklist(effective, hierarchy)
        survivors = apply_blacklist(classes, blacklist)
        assert survivors == [] or all(
            not ChainVerifier(classes).verify(c).effective for c in survivors
        )

    def test_blacklist_never_contains_runtime_classes(self, cc):
        classes, hierarchy, effective = cc
        blacklist = derive_blacklist(effective, hierarchy)
        for name in blacklist.classes:
            assert not name.startswith("java.")

    def test_greedy_cover_actually_covers(self, cc):
        """Every effective chain carries at least one chosen class."""
        classes, hierarchy, effective = cc
        blacklist = derive_blacklist(effective, hierarchy)
        for chain in effective:
            assert any(cls in blacklist.classes for cls in chain.classes()), chain

    def test_blacklist_smaller_than_chain_count(self, cc):
        classes, hierarchy, effective = cc
        blacklist = derive_blacklist(effective, hierarchy)
        assert 0 < len(blacklist.classes) < len(effective) + 2

    def test_empty_chains_empty_blacklist(self, cc):
        _, hierarchy, _ = cc
        assert len(derive_blacklist([], hierarchy)) == 0


class TestSceneRemediation:
    @pytest.mark.parametrize("scene_name", ["Spring", "JDK8", "Apache Dubbo"])
    def test_xstream_dubbo_story(self, scene_name):
        """The paper's remediation narrative: derive a blacklist from
        the effective chains; with it installed, no effective chain
        survives."""
        scene = build_scene(scene_name)
        chains = Tabby().add_classes(scene.classes).find_gadget_chains()
        verifier = ChainVerifier(scene.classes)
        effective = [c for c in chains if verifier.verify(c).effective]
        hierarchy = ClassHierarchy(scene.classes)
        blacklist = derive_blacklist(effective, hierarchy)
        survivors = apply_blacklist(scene.classes, blacklist)
        for chain in survivors:
            assert not verifier.verify(chain).effective

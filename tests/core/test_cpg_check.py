"""Tests for the CPG structural verifier (repro.core.cpg_check)."""

import pytest

from repro.core import Tabby, verify_cpg
from repro.core.cpg import ALIAS, CALL, HAS, METHOD_LABEL
from repro.corpus import COMPONENT_NAMES, build_component, build_lang_base


def _component_cpg(name="BeanShell1"):
    spec = build_component(name)
    tabby = Tabby().add_classes(build_lang_base() + spec.classes)
    return tabby, tabby.build_cpg()


@pytest.fixture()
def cpg():
    return _component_cpg()[1]


class TestCleanGraphs:
    def test_component_cpg_verifies(self):
        tabby, _ = _component_cpg()
        assert tabby.check_cpg() == []

    def test_all_components_verify(self):
        for name in COMPONENT_NAMES:
            _, cpg = _component_cpg(name)
            issues = verify_cpg(cpg)
            assert issues == [], f"{name}: {[str(i) for i in issues]}"


class TestCorruptions:
    def _checks(self, cpg):
        return {issue.check for issue in verify_cpg(cpg)}

    def test_wrong_pp_length_is_caught(self, cpg):
        rel = next(iter(cpg.graph.relationships(CALL)))
        pp = list(rel.get("POLLUTED_POSITION"))
        cpg.graph.set_relationship_property(rel, "POLLUTED_POSITION", pp + [0])
        assert "call-pp-arity" in self._checks(cpg)

    def test_missing_pp_is_caught(self, cpg):
        rel = next(iter(cpg.graph.relationships(CALL)))
        del rel.properties["POLLUTED_POSITION"]
        assert "call-pp-arity" in self._checks(cpg)

    def test_bogus_alias_edge_is_caught(self, cpg):
        # wire an ALIAS edge between two methods with different names —
        # not an override pair
        methods = list(cpg.graph.nodes(METHOD_LABEL))
        a = next(m for m in methods if m.get("NAME") == "readObject")
        b = next(m for m in methods if m.get("NAME") != "readObject")
        cpg.graph.create_relationship(ALIAS, a, b)
        assert "alias-override" in self._checks(cpg)

    def test_alias_between_unrelated_classes_is_caught(self, cpg):
        # same name and arity but the target class is not a supertype
        methods = [
            m for m in cpg.graph.nodes(METHOD_LABEL)
            if m.get("NAME") == "readObject" and m.get("ARITY") == 1
        ]
        a, b = None, None
        for x in methods:
            for y in methods:
                if x.get("CLASSNAME") != y.get("CLASSNAME"):
                    hierarchy = cpg.hierarchy
                    if y.get("CLASSNAME") not in hierarchy.supertypes(
                        x.get("CLASSNAME")
                    ):
                        a, b = x, y
                        break
            if a is not None:
                break
        assert a is not None, "component has two unrelated readObject methods"
        cpg.graph.create_relationship(ALIAS, a, b)
        assert "alias-override" in self._checks(cpg)

    def test_stripped_trigger_condition_is_caught(self, cpg):
        sink = cpg.sink_nodes()[0]
        cpg.graph.set_node_property(sink, "TRIGGER_CONDITION", [])
        assert "sink-metadata" in self._checks(cpg)

    def test_orphaned_method_is_caught(self, cpg):
        method = next(
            m for m in cpg.graph.nodes(METHOD_LABEL) if not m.get("IS_PHANTOM")
        )
        for rel in list(cpg.graph.in_relationships(method, HAS)):
            cpg.graph.delete_relationship(rel)
        assert "method-ownership" in self._checks(cpg)

    def test_dangling_relationship_is_caught(self, cpg):
        rel = next(iter(cpg.graph.relationships(CALL)))
        # surgically drop the end node from the store, leaving the edge
        end = cpg.graph.node(rel.end_id)
        for attached in list(cpg.graph.relationships_of(end)):
            if attached.id != rel.id:
                cpg.graph.delete_relationship(attached)
        cpg.graph.indexes.unindex_node(end)
        del cpg.graph._nodes[end.id]
        assert "dangling-ref" in self._checks(cpg)

    def test_issue_rendering(self, cpg):
        rel = next(iter(cpg.graph.relationships(CALL)))
        del rel.properties["POLLUTED_POSITION"]
        issue = verify_cpg(cpg)[0]
        assert str(issue).startswith("[call-pp-arity]")
        assert issue.to_dict()["check"] == "call-pp-arity"


class TestRefinementAnnotations:
    """Corrupted ``RTA_DEAD`` annotations are structural errors: absence
    means live, so a malformed marker silently changes pruned-search
    results and must be caught before anyone trusts the snapshot."""

    def _checks(self, cpg):
        return {issue.check for issue in verify_cpg(cpg)}

    def test_annotated_cpg_verifies_clean(self):
        tabby, cpg = _component_cpg("commons-collections(3.2.1)")
        tabby.annotate_rta()
        assert verify_cpg(cpg) == []

    def test_rta_dead_on_a_has_edge_is_caught(self, cpg):
        rel = next(iter(cpg.graph.relationships(HAS)))
        cpg.graph.set_relationship_property(rel, "RTA_DEAD", True)
        assert "refine-annotation" in self._checks(cpg)

    def test_rta_dead_must_be_true(self, cpg):
        rel = next(iter(cpg.graph.relationships(CALL)))
        cpg.graph.set_relationship_property(rel, "RTA_DEAD", False)
        assert "refine-annotation" in self._checks(cpg)

    def test_rta_dead_on_static_dispatch_is_caught(self, cpg):
        rel = next(
            r for r in cpg.graph.relationships(CALL)
            if r.get("KIND") not in ("virtual", "interface")
        )
        cpg.graph.set_relationship_property(rel, "RTA_DEAD", True)
        assert "refine-annotation" in self._checks(cpg)

    def test_rta_dead_alias_must_be_an_override_pair(self, cpg):
        methods = list(cpg.graph.nodes(METHOD_LABEL))
        a = next(m for m in methods if m.get("NAME") == "readObject")
        b = next(m for m in methods if m.get("NAME") != "readObject")
        rel = cpg.graph.create_relationship(ALIAS, a, b)
        cpg.graph.set_relationship_property(rel, "RTA_DEAD", True)
        assert "refine-annotation" in self._checks(cpg)

    def test_well_formed_dead_call_passes(self, cpg):
        rel = next(
            r for r in cpg.graph.relationships(CALL)
            if r.get("KIND") in ("virtual", "interface")
        )
        cpg.graph.set_relationship_property(rel, "RTA_DEAD", True)
        assert "refine-annotation" not in self._checks(cpg)

"""Unit tests for the sink and source catalogs."""

import pytest

from repro.core.sinks import DEFAULT_SINKS, SinkCatalog, SinkMethod
from repro.core.sources import SourceCatalog
from repro.jvm.builder import ProgramBuilder
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.model import EXTERNALIZABLE, SERIALIZABLE


class TestSinkCatalog:
    def test_catalog_has_38_entries(self):
        assert len(DEFAULT_SINKS) == 38
        assert len(SinkCatalog()) == 38

    def test_table_vii_rows_present(self):
        cat = SinkCatalog()
        expectations = [
            ("java.nio.file.Files", "newOutputStream", "FILE", (1,)),
            ("java.io.File", "delete", "FILE", (0,)),
            ("java.lang.reflect.Method", "invoke", "CODE", (0, 1)),
            ("javax.naming.Context", "lookup", "JNDI", (1,)),
            ("java.rmi.registry.Registry", "lookup", "JNDI", (1,)),
            ("java.lang.Runtime", "exec", "EXEC", (1,)),
            ("java.lang.ProcessImpl", "start", "EXEC", (1,)),
            ("javax.xml.parsers.DocumentBuilder", "parse", "XXE", (1,)),
            ("javax.xml.transform.Transformer", "transform", "XXE", (1,)),
            ("java.net.InetAddress", "getByName", "SSRF", (1,)),
            ("java.net.URL", "openConnection", "SSRF", (0,)),
            ("java.lang.Object", "readObject", "JDV", (0,)),
        ]
        for cls, name, category, tc in expectations:
            sink = cat.lookup(cls, name)
            assert sink is not None, f"{cls}.{name} missing"
            assert sink.category == category
            assert sink.trigger_condition == tc

    def test_lookup_miss(self):
        assert SinkCatalog().lookup("java.lang.Math", "abs") is None

    def test_with_extra(self):
        custom = SinkMethod("com.corp.Audit", "logRaw", "CUSTOM", (1,))
        cat = SinkCatalog().with_extra([custom])
        assert len(cat) == 39
        assert cat.lookup("com.corp.Audit", "logRaw") is custom
        # original untouched
        assert SinkCatalog().lookup("com.corp.Audit", "logRaw") is None

    def test_categories_cover_paper_types(self):
        cats = set(SinkCatalog().categories())
        assert {"FILE", "CODE", "JNDI", "EXEC", "XXE", "SSRF", "JDV"} <= cats

    def test_of_category(self):
        exec_sinks = SinkCatalog().of_category("EXEC")
        assert any(s.method_name == "exec" for s in exec_sinks)


def hierarchy_with(*specs):
    pb = ProgramBuilder()
    for name, interfaces, method_names in specs:
        with pb.cls(name, implements=list(interfaces)) as c:
            for mn in method_names:
                params = ["java.io.ObjectInputStream"] if mn == "readObject" else []
                with c.method(mn, params=params, returns="void") as m:
                    m.ret()
    return ClassHierarchy(pb.build())


class TestSourceCatalog:
    def test_native_read_object(self):
        h = hierarchy_with(("t.C", [SERIALIZABLE], ["readObject"]))
        method = h.require("t.C").find_method("readObject")
        assert SourceCatalog.native().is_source(method, h)

    def test_non_serializable_not_source(self):
        h = hierarchy_with(("t.C", [], ["readObject"]))
        method = h.require("t.C").find_method("readObject")
        assert not SourceCatalog.native().is_source(method, h)

    def test_externalizable_counts(self):
        h = hierarchy_with(("t.C", [EXTERNALIZABLE], ["readExternal"]))
        method = h.require("t.C").find_method("readExternal")
        assert SourceCatalog.native().is_source(method, h)

    def test_extended_includes_marshalling_entries(self):
        h = hierarchy_with(("t.C", [SERIALIZABLE], ["toString", "hashCode"]))
        cat = SourceCatalog.extended()
        assert cat.is_source(h.require("t.C").find_method("toString"), h)
        assert cat.is_source(h.require("t.C").find_method("hashCode"), h)

    def test_native_excludes_marshalling_entries(self):
        h = hierarchy_with(("t.C", [SERIALIZABLE], ["toString"]))
        assert not SourceCatalog.native().is_source(
            h.require("t.C").find_method("toString"), h
        )

    def test_abstract_method_not_source(self):
        pb = ProgramBuilder()
        cb = pb.cls("t.C", implements=[SERIALIZABLE], abstract=True)
        cb.abstract_method("readObject", params=["java.io.ObjectInputStream"])
        cb.finish()
        h = ClassHierarchy(pb.build())
        method = h.require("t.C").find_method("readObject")
        assert not SourceCatalog.native().is_source(method, h)

    def test_with_names_extension(self):
        h = hierarchy_with(("t.C", [SERIALIZABLE], ["customHook"]))
        cat = SourceCatalog.native().with_names(["customHook"])
        assert cat.is_source(h.require("t.C").find_method("customHook"), h)

    def test_require_serializable_can_be_disabled(self):
        h = hierarchy_with(("t.C", [], ["readObject"]))
        cat = SourceCatalog(
            names=frozenset({"readObject"}), require_serializable=False
        )
        assert cat.is_source(h.require("t.C").find_method("readObject"), h)

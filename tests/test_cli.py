"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def jar_dir(tmp_path_factory):
    directory = str(tmp_path_factory.mktemp("jars"))
    code = main(["corpus", "export", directory, "--component", "CommonsBeanutils1"])
    assert code == 0
    return directory


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_bench_table_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench", "table99"])


class TestCorpus:
    def test_list(self, capsys):
        assert main(["corpus", "list"]) == 0
        out = capsys.readouterr().out
        assert "CommonsBeanutils1" in out
        assert "Apache Dubbo" in out

    def test_export_writes_jars(self, jar_dir):
        names = sorted(os.listdir(jar_dir))
        assert "rt-base.jar" in names
        assert any("CommonsBeanutils1" in n for n in names)


class TestAnalyze:
    def test_analyze_and_query(self, jar_dir, tmp_path, capsys):
        cpg = str(tmp_path / "out.cpg.json.gz")
        assert main(["analyze", jar_dir, "-o", cpg]) == 0
        assert os.path.exists(cpg)
        capsys.readouterr()
        assert main([
            "query", cpg,
            "MATCH (m:Method {IS_SINK: true}) RETURN m.NAME AS n",
        ]) == 0
        out = capsys.readouterr().out
        assert "invoke" in out

    def test_query_json_output(self, jar_dir, tmp_path, capsys):
        cpg = str(tmp_path / "out.cpg.json.gz")
        main(["analyze", jar_dir, "-o", cpg])
        capsys.readouterr()
        assert main([
            "query", cpg, "--json",
            "MATCH (m:Method {IS_SINK: true}) RETURN m.NAME AS n",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert rows == [{"n": "invoke"}]

    def test_query_explain_prints_plan_without_rows(self, jar_dir, tmp_path,
                                                    capsys):
        cpg = str(tmp_path / "out.cpg.json.gz")
        main(["analyze", jar_dir, "-o", cpg])
        capsys.readouterr()
        assert main([
            "query", cpg, "--explain",
            "MATCH (a:Method)-[:CALL]->(b:Method {IS_SINK: true}) "
            "RETURN a.NAME AS n",
        ]) == 0
        out = capsys.readouterr().out
        assert "QUERY PLAN" in out
        assert "[reversed]" in out
        assert "index seek Method.IS_SINK" in out
        assert "row(s)" not in out  # plan only, no result table

    def test_query_profile_prints_counters_to_stderr(self, jar_dir, tmp_path,
                                                     capsys):
        cpg = str(tmp_path / "out.cpg.json.gz")
        main(["analyze", jar_dir, "-o", cpg])
        capsys.readouterr()
        assert main([
            "query", cpg, "--profile", "--json",
            "MATCH (m:Method {IS_SINK: true}) RETURN m.NAME AS n",
        ]) == 0
        captured = capsys.readouterr()
        assert "profiled" in captured.err and "rows=" in captured.err
        rows = json.loads(captured.out)  # --json output stays clean
        assert rows == [{"n": "invoke"}]

    def test_query_no_planner_matches_default(self, jar_dir, tmp_path, capsys):
        cpg = str(tmp_path / "out.cpg.json.gz")
        main(["analyze", jar_dir, "-o", cpg])
        cypher = ("MATCH (m:Method {IS_SINK: true}) "
                  "RETURN m.NAME AS n ORDER BY n")
        capsys.readouterr()
        assert main(["query", cpg, cypher]) == 0
        default_out = capsys.readouterr().out
        assert main(["query", cpg, "--no-planner", cypher]) == 0
        legacy_out = capsys.readouterr().out
        assert legacy_out == default_out

    def test_query_no_planner_rejects_explain(self, jar_dir, tmp_path, capsys):
        cpg = str(tmp_path / "out.cpg.json.gz")
        main(["analyze", jar_dir, "-o", cpg])
        capsys.readouterr()
        assert main([
            "query", cpg, "--no-planner", "--explain",
            "MATCH (m:Method) RETURN m.NAME AS n",
        ]) == 2
        assert "incompatible" in capsys.readouterr().err

    def test_missing_classpath_errors(self, capsys):
        assert main(["analyze", "/no/such/dir"]) == 1
        assert "error:" in capsys.readouterr().err


class TestChains:
    def test_text_output_with_verify(self, jar_dir, capsys):
        assert main(["chains", jar_dir, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "1 gadget chain(s) found" in out
        assert "EFFECTIVE" in out
        assert "(source)java.util.PriorityQueue.readObject()" in out

    def test_json_output(self, jar_dir, capsys):
        assert main(["chains", jar_dir, "--json", "--verify"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["effective"] is True
        assert payload[0]["sink_category"] == "CODE"

    def test_source_filter(self, jar_dir, capsys):
        assert main(["chains", jar_dir, "--source-filter", "com.nonexistent"]) == 0
        assert "0 gadget chain(s)" in capsys.readouterr().out

    def test_native_sources_profile(self, jar_dir, capsys):
        assert main(["chains", jar_dir, "--sources", "native"]) == 0
        out = capsys.readouterr().out
        assert "1 gadget chain(s) found" in out


class TestSnapshotFormats:
    def test_analyze_default_output_is_v3(self, jar_dir, tmp_path,
                                          monkeypatch, capsys):
        import struct

        from repro.graphdb.snapshot import SNAPSHOT_MAGIC

        monkeypatch.chdir(tmp_path)
        assert main(["analyze", jar_dir]) == 0
        assert "CPG written to tabby.cpg (v3)" in capsys.readouterr().out
        header = (tmp_path / "tabby.cpg").read_bytes()[:10]
        assert header[:8] == SNAPSHOT_MAGIC
        assert struct.unpack_from("<H", header, 8)[0] == 3

    def test_analyze_format_json_default_output(self, jar_dir, tmp_path,
                                                monkeypatch, capsys):
        import gzip

        monkeypatch.chdir(tmp_path)
        assert main(["analyze", jar_dir, "--format", "json"]) == 0
        assert "CPG written to tabby.cpg.json.gz (json)" in capsys.readouterr().out
        doc = json.loads(gzip.decompress(
            (tmp_path / "tabby.cpg.json.gz").read_bytes()
        ))
        assert doc["format_version"] == 1

    @pytest.mark.parametrize("format", ["v3", "binary", "json"])
    def test_chains_over_saved_cpg_matches_classpath_run(self, jar_dir, tmp_path,
                                                         format, capsys):
        cpg = str(tmp_path / "saved.cpg")
        assert main(["analyze", jar_dir, "-o", cpg, "--format", format]) == 0
        capsys.readouterr()
        assert main(["chains", jar_dir, "--json"]) == 0
        from_classpath = json.loads(capsys.readouterr().out)
        assert main(["chains", "--cpg", cpg, "--json"]) == 0
        from_cpg = json.loads(capsys.readouterr().out)
        assert from_cpg == from_classpath

    def test_chains_requires_some_input(self, capsys):
        assert main(["chains"]) == 2
        assert "provide jar paths or --cpg" in capsys.readouterr().err

    def test_chains_rejects_cpg_plus_classpath(self, jar_dir, tmp_path, capsys):
        cpg = str(tmp_path / "saved.cpg")
        main(["analyze", jar_dir, "-o", cpg])
        capsys.readouterr()
        assert main(["chains", jar_dir, "--cpg", cpg]) == 2
        assert "incompatible" in capsys.readouterr().err

    @pytest.mark.parametrize(
        "flag", ["--verify", "--payload", "--refine-guards", "--check-cpg"]
    )
    def test_chains_cpg_rejects_class_dependent_flags(self, jar_dir, tmp_path,
                                                      flag, capsys):
        cpg = str(tmp_path / "saved.cpg")
        main(["analyze", jar_dir, "-o", cpg])
        capsys.readouterr()
        assert main(["chains", "--cpg", cpg, flag]) == 2
        err = capsys.readouterr().err
        assert flag in err and "classpath" in err

    def test_query_over_binary_cpg(self, jar_dir, tmp_path, capsys):
        cpg = str(tmp_path / "saved.cpg")
        assert main(["analyze", jar_dir, "-o", cpg]) == 0
        capsys.readouterr()
        assert main([
            "query", cpg, "--json",
            "MATCH (m:Method {IS_SINK: true}) RETURN m.NAME AS n",
        ]) == 0
        assert json.loads(capsys.readouterr().out) == [{"n": "invoke"}]


class TestBenchCommand:
    def test_table9_subset(self, capsys):
        assert main(["bench", "table9", "--components", "Myface"]) == 0
        out = capsys.readouterr().out
        assert "Myface" in out and "FPR%" in out


class TestSinksCommand:
    def test_full_catalog(self, capsys):
        assert main(["sinks"]) == 0
        out = capsys.readouterr().out
        assert "(38 sink method(s))" in out
        assert "java.lang.Runtime.exec()" in out

    def test_category_filter(self, capsys):
        assert main(["sinks", "--category", "exec"]) == 0
        out = capsys.readouterr().out
        assert "EXEC" in out and "JNDI" not in out


class TestPayloadFlag:
    def test_chains_payload_text(self, jar_dir, capsys):
        assert main(["chains", jar_dir, "--payload"]) == 0
        out = capsys.readouterr().out
        assert "exploit recipe for" in out
        assert "${attacker-controlled}" in out

    def test_chains_payload_json(self, jar_dir, capsys):
        assert main(["chains", jar_dir, "--payload", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["payload"]["object_graph"]["class"] == "java.util.PriorityQueue"


class TestValidateFlag:
    def test_analyze_with_validation(self, jar_dir, tmp_path, capsys):
        cpg = str(tmp_path / "v.cpg.json.gz")
        assert main(["analyze", jar_dir, "-o", cpg, "--validate"]) == 0
        out = capsys.readouterr().out
        assert "validation:" in out


class TestCheckCpgFlag:
    def test_analyze_check_cpg(self, jar_dir, tmp_path, capsys):
        cpg = str(tmp_path / "c.cpg.json.gz")
        assert main(["analyze", jar_dir, "-o", cpg, "--check-cpg"]) == 0
        assert "all invariants hold" in capsys.readouterr().err

    def test_chains_check_cpg(self, jar_dir, capsys):
        assert main(["chains", jar_dir, "--check-cpg"]) == 0
        captured = capsys.readouterr()
        assert "all invariants hold" in captured.err
        assert "gadget chain(s) found" in captured.out


class TestRefineGuardsFlag:
    def test_chains_refine_guards(self, jar_dir, capsys):
        assert main(["chains", jar_dir, "--refine-guards"]) == 0
        captured = capsys.readouterr()
        assert "chain(s) refuted" in captured.err
        assert "gadget chain(s) found" in captured.out

    def test_bench_table9_refine_guards(self, capsys):
        assert main([
            "bench", "table9", "--components", "BeanShell1", "--refine-guards",
        ]) == 0
        out = capsys.readouterr().out
        assert "with --refine-guards:" in out
        assert "chain(s) refuted" in out

    def test_bench_table9_without_flag_has_no_refined_row(self, capsys):
        assert main(["bench", "table9", "--components", "BeanShell1"]) == 0
        assert "with --refine-guards:" not in capsys.readouterr().out


class TestLintCommand:
    def test_lint_jars(self, jar_dir, capsys):
        assert main(["lint", jar_dir]) == 0
        out = capsys.readouterr().out
        assert "lint:" in out and "error(s)" in out

    def test_lint_corpus_has_no_unsuppressed_errors(self, capsys):
        assert main(["lint", "--corpus", "--fail-on-error"]) == 0
        out = capsys.readouterr().out
        assert out.strip().splitlines()[-1].startswith("lint: 0 error(s)")

    def test_lint_json(self, jar_dir, capsys):
        assert main(["lint", jar_dir, "--json"]) == 0
        issues = json.loads(capsys.readouterr().out)
        for issue in issues:
            assert {"rule", "severity", "class", "method", "message",
                    "suppressed"} <= set(issue)

    def test_lint_fail_on_error_exit_code(self, tmp_path, capsys):
        # author a defective class, write it as a jar, expect exit 1
        from repro.jvm.builder import ProgramBuilder
        from repro.jvm.jar import JarArchive, write_jar

        pb = ProgramBuilder()
        with pb.cls("bad.T") as c:
            with c.method("m") as m:
                m.assign(m.local("u"), m.local("ghost"))
        jar = str(tmp_path / "bad.jar")
        write_jar(JarArchive("bad", pb.build()), jar)
        assert main(["lint", jar, "--fail-on-error"]) == 1
        assert main(["lint", jar]) == 0  # without the flag: report only
        out = capsys.readouterr().out
        assert "use-before-init" in out

    def test_lint_requires_input(self, capsys):
        assert main(["lint"]) == 2
        assert "provide jar paths or --corpus" in capsys.readouterr().err


class TestWorkersValidation:
    """--workers 0/negative is bad input (exit 2) on every subcommand
    that accepts it; 'auto' is the explicit one-per-CPU spelling."""

    @pytest.mark.parametrize("argv", [
        ["analyze", "x", "--workers", "0"],
        ["analyze", "x", "--workers", "-2"],
        ["chains", "x", "--workers", "0"],
        ["chains", "x", "--workers", "-1"],
        ["bench", "table9", "--workers", "0"],
        ["bench", "table9", "--workers", "-4"],
        ["serve", "--workers", "0"],
        ["serve", "--workers", "-3"],
        ["analyze", "x", "--workers", "many"],
    ])
    def test_rejected_with_exit_2(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        assert "worker count" in capsys.readouterr().err

    @pytest.mark.parametrize("argv", [
        ["analyze", "x", "--workers", "auto"],
        ["chains", "x", "--workers", "auto"],
        ["serve", "--workers", "auto"],
    ])
    def test_auto_is_accepted(self, argv):
        args = build_parser().parse_args(argv)
        assert args.workers == 0  # resolved to one-per-CPU downstream


class TestServeValidation:
    """tabby serve rejects bad input with exit 2, like its siblings."""

    @pytest.mark.parametrize("argv", [
        ["serve", "--port", "70000"],
        ["serve", "--port", "-1"],
        ["serve", "--port", "web"],
        ["serve", "--rate", "0"],
        ["serve", "--rate", "-1.5"],
        ["serve", "--burst", "0"],
        ["serve", "--store-capacity", "0"],
        ["serve", "--max-queue", "-1"],
    ])
    def test_bad_arguments_exit_2(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        assert capsys.readouterr().err  # argparse reported the problem

    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert (args.host, args.port, args.workers) == ("127.0.0.1", 8787, 2)
        assert args.rate is None and args.cache_dir is None

    def test_burst_below_one_rejected_at_startup(self, capsys):
        # burst is a float (fractional bursts are meaningless below 1);
        # the limiter refuses it and serve exits 2 before binding
        assert main(["serve", "--rate", "5", "--burst", "0.5"]) == 2
        assert "burst" in capsys.readouterr().err


class TestBenchTables:
    def test_table10(self, capsys):
        assert main(["bench", "table10"]) == 0
        out = capsys.readouterr().out
        assert "Apache Dubbo" in out

    def test_table11(self, capsys):
        assert main(["bench", "table11"]) == 0
        out = capsys.readouterr().out
        assert "LazyInitTargetSource" in out


class TestRefineFlag:
    def test_bad_mode_is_a_parse_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chains", "jars", "--refine", "cha"])

    def test_mode_order_is_canonicalized(self):
        args = build_parser().parse_args(["chains", "jars", "--refine",
                                          "taint,rta"])
        assert args.refine == ("rta", "taint")

    def test_chains_refine_summary(self, jar_dir, capsys):
        assert main(["chains", jar_dir, "--refine", "rta,taint"]) == 0
        captured = capsys.readouterr()
        assert "refinement (rta,taint):" in captured.err
        assert "kept" in captured.err
        assert "gadget chain(s) found" in captured.out

    def test_chains_refine_json_object_shape(self, jar_dir, capsys):
        assert main(["chains", jar_dir, "--refine", "rta,taint",
                     "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc) == {"chains", "refuted", "refinement"}
        assert doc["refinement"]["modes"] == ["rta", "taint"]
        for record in doc["chains"]:
            assert record["verdict"] in ("kept", "unknown")
        for record in doc["refuted"]:
            assert record["refutation"]["kind"]

    def test_json_stays_a_bare_list_without_refinement(self, jar_dir, capsys):
        assert main(["chains", jar_dir, "--json"]) == 0
        assert isinstance(json.loads(capsys.readouterr().out), list)

    def test_refine_rejects_snapshot_input(self, jar_dir, tmp_path, capsys):
        cpg = str(tmp_path / "saved.cpg")
        main(["analyze", jar_dir, "-o", cpg])
        capsys.readouterr()
        assert main(["chains", "--cpg", cpg, "--refine", "rta"]) == 2
        err = capsys.readouterr().err
        assert "--refine" in err and "classpath" in err

    def test_analyze_refine_reports_rta(self, jar_dir, tmp_path, capsys):
        cpg = str(tmp_path / "refined.cpg")
        assert main(["analyze", jar_dir, "-o", cpg, "--refine", "rta"]) == 0
        assert "RTA refinement:" in capsys.readouterr().out


class TestLintInterproceduralFlag:
    def test_flag_parses(self):
        args = build_parser().parse_args(["lint", "--corpus",
                                          "--interprocedural"])
        assert args.interprocedural is True

    def test_interprocedural_lint_runs(self, jar_dir, capsys):
        assert main(["lint", jar_dir, "--interprocedural"]) == 0
        out = capsys.readouterr().out
        assert "lint:" in out

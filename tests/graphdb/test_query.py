"""Unit tests for the Cypher-subset query engine."""

import pytest

from repro.errors import QueryExecutionError, QuerySyntaxError
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.query import parse_query, run_query


@pytest.fixture
def g():
    """A small CPG-shaped graph:

    Class(A) -HAS-> Method(a.read) -CALL-> Method(b.work) -CALL-> Method(c.exec sink)
    Class(B) -HAS-> Method(b.work); Method(b.work) -ALIAS-> Method(a.read)
    """
    g = PropertyGraph()
    g.indexes.create_index("Method", "NAME")
    ca = g.create_node(["Class"], {"NAME": "A"})
    cb = g.create_node(["Class"], {"NAME": "B"})
    ma = g.create_node(["Method"], {"NAME": "read", "CLASSNAME": "A", "IS_SOURCE": True})
    mb = g.create_node(["Method"], {"NAME": "work", "CLASSNAME": "B"})
    mc = g.create_node(["Method"], {"NAME": "exec", "CLASSNAME": "C", "IS_SINK": True})
    g.create_relationship("HAS", ca, ma)
    g.create_relationship("HAS", cb, mb)
    g.create_relationship("CALL", ma, mb, {"PP": [0]})
    g.create_relationship("CALL", mb, mc, {"PP": [1]})
    g.create_relationship("ALIAS", mb, ma)
    return g


class TestParsing:
    def test_minimal(self):
        q = parse_query("MATCH (n) RETURN n")
        assert len(q.patterns) == 1
        assert q.items[0].alias == "n"

    def test_full_clause_set(self):
        q = parse_query(
            "MATCH (a:Method {NAME: 'x'})-[r:CALL|ALIAS*1..3]->(b) "
            "WHERE a.NAME = 'x' AND NOT b.NAME = 'y' "
            "RETURN DISTINCT a.NAME AS n, count(*) ORDER BY n DESC SKIP 1 LIMIT 5"
        )
        assert q.distinct
        assert q.limit == 5 and q.skip == 1
        rel = q.patterns[0].rels[0]
        assert rel.types == ["CALL", "ALIAS"]
        assert rel.min_hops == 1 and rel.max_hops == 3

    def test_unbounded_var_length(self):
        q = parse_query("MATCH (a)-[:CALL*]->(b) RETURN a")
        rel = q.patterns[0].rels[0]
        assert rel.min_hops == 1 and rel.max_hops is None

    def test_exact_hops(self):
        q = parse_query("MATCH (a)-[:CALL*2]->(b) RETURN a")
        rel = q.patterns[0].rels[0]
        assert (rel.min_hops, rel.max_hops) == (2, 2)

    def test_syntax_error(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("MATCH (a RETURN a")
        with pytest.raises(QuerySyntaxError):
            parse_query("RETURN 1")

    def test_double_arrow_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("MATCH (a)<-[:X]->(b) RETURN a")


class TestMatching:
    def test_label_scan(self, g):
        res = run_query(g, "MATCH (m:Method) RETURN m.NAME ORDER BY m.NAME")
        assert res.values("m.NAME") == ["exec", "read", "work"]

    def test_inline_properties(self, g):
        res = run_query(g, "MATCH (m:Method {NAME: 'exec'}) RETURN m.CLASSNAME")
        assert res.single() == {"m.CLASSNAME": "C"}

    def test_directed_edge(self, g):
        res = run_query(
            g, "MATCH (a:Method)-[:CALL]->(b:Method {NAME: 'exec'}) RETURN a.NAME"
        )
        assert res.values("a.NAME") == ["work"]

    def test_reverse_direction(self, g):
        res = run_query(
            g, "MATCH (a:Method {NAME: 'exec'})<-[:CALL]-(b) RETURN b.NAME"
        )
        assert res.values("b.NAME") == ["work"]

    def test_undirected(self, g):
        res = run_query(
            g, "MATCH (a:Method {NAME: 'work'})-[:ALIAS]-(b) RETURN b.NAME"
        )
        assert res.values("b.NAME") == ["read"]

    def test_two_hop_pattern(self, g):
        res = run_query(
            g,
            "MATCH (a:Method)-[:CALL]->(b:Method)-[:CALL]->(c:Method) "
            "RETURN a.NAME, c.NAME",
        )
        assert res.single() == {"a.NAME": "read", "c.NAME": "exec"}

    def test_var_length(self, g):
        res = run_query(
            g,
            "MATCH (a:Method {IS_SOURCE: true})-[r:CALL*1..5]->(b:Method {IS_SINK: true}) "
            "RETURN b.NAME",
        )
        assert res.values("b.NAME") == ["exec"]

    def test_var_length_binds_rel_list(self, g):
        res = run_query(
            g,
            "MATCH (a:Method {NAME: 'read'})-[r:CALL*1..5]->(b:Method {NAME: 'exec'}) "
            "RETURN r",
        )
        rels = res.single()["r"]
        assert [rel.type for rel in rels] == ["CALL", "CALL"]

    def test_multi_pattern_join(self, g):
        res = run_query(
            g,
            "MATCH (c:Class)-[:HAS]->(m:Method), (m)-[:CALL]->(s:Method {IS_SINK: true}) "
            "RETURN c.NAME",
        )
        assert res.values("c.NAME") == ["B"]

    def test_shared_variable_must_agree(self, g):
        res = run_query(
            g,
            "MATCH (m:Method {NAME: 'read'}), (m {NAME: 'work'}) RETURN m",
        )
        assert len(res) == 0

    def test_rel_property_access(self, g):
        res = run_query(
            g,
            "MATCH (a:Method {NAME: 'work'})-[r:CALL]->(b) RETURN r.PP",
        )
        assert res.single()["r.PP"] == [1]


class TestWhere:
    def test_comparison_operators(self, g):
        res = run_query(g, "MATCH (m:Method) WHERE m.NAME <> 'exec' RETURN count(*)")
        assert res.single()["count(*)"] == 2

    def test_contains(self, g):
        res = run_query(
            g, "MATCH (m:Method) WHERE m.CLASSNAME CONTAINS 'B' RETURN m.NAME"
        )
        assert res.values("m.NAME") == ["work"]

    def test_starts_ends_with(self, g):
        res = run_query(
            g, "MATCH (m:Method) WHERE m.NAME STARTS WITH 're' RETURN m.NAME"
        )
        assert res.values("m.NAME") == ["read"]
        res = run_query(
            g, "MATCH (m:Method) WHERE m.NAME ENDS WITH 'ork' RETURN m.NAME"
        )
        assert res.values("m.NAME") == ["work"]

    def test_in_list(self, g):
        res = run_query(
            g,
            "MATCH (m:Method) WHERE m.NAME IN ['read', 'exec'] RETURN count(*)",
        )
        assert res.single()["count(*)"] == 2

    def test_exists(self, g):
        res = run_query(
            g, "MATCH (m:Method) WHERE exists(m.IS_SINK) RETURN m.NAME"
        )
        assert res.values("m.NAME") == ["exec"]

    def test_boolean_connectives(self, g):
        res = run_query(
            g,
            "MATCH (m:Method) WHERE m.NAME = 'read' OR (m.NAME = 'work' AND NOT m.CLASSNAME = 'Z') "
            "RETURN count(*)",
        )
        assert res.single()["count(*)"] == 2

    def test_null_comparisons_false(self, g):
        res = run_query(g, "MATCH (m:Method) WHERE m.NOPE > 3 RETURN count(*)")
        assert res.single()["count(*)"] == 0


class TestReturn:
    def test_alias(self, g):
        res = run_query(g, "MATCH (m:Method {NAME: 'exec'}) RETURN m.NAME AS name")
        assert res.single() == {"name": "exec"}

    def test_distinct(self, g):
        res = run_query(g, "MATCH (m:Method)-[:CALL]->() RETURN DISTINCT 1 AS one")
        assert len(res) == 1

    def test_count_star_groups(self, g):
        res = run_query(
            g,
            "MATCH (m:Method)-[:CALL]->(x) RETURN m.NAME AS n, count(*) AS c ORDER BY n",
        )
        assert res.rows == [{"n": "read", "c": 1}, {"n": "work", "c": 1}]

    def test_count_star_empty_match(self, g):
        res = run_query(g, "MATCH (m:Method {NAME: 'zzz'}) RETURN count(*) AS c")
        assert res.single()["c"] == 0

    def test_count_distinct(self, g):
        res = run_query(
            g,
            "MATCH (m:Method)-[:CALL]->(x:Method) RETURN count(DISTINCT x.CLASSNAME) AS c",
        )
        assert res.single()["c"] == 2

    def test_order_desc_and_limit(self, g):
        res = run_query(
            g, "MATCH (m:Method) RETURN m.NAME ORDER BY m.NAME DESC LIMIT 2"
        )
        assert res.values("m.NAME") == ["work", "read"]

    def test_skip(self, g):
        res = run_query(g, "MATCH (m:Method) RETURN m.NAME ORDER BY m.NAME SKIP 2")
        assert res.values("m.NAME") == ["work"]

    def test_literal_return(self, g):
        res = run_query(g, "MATCH (m:Method {NAME: 'exec'}) RETURN 42 AS answer")
        assert res.single()["answer"] == 42

    def test_unbound_variable_error(self, g):
        with pytest.raises(QueryExecutionError):
            run_query(g, "MATCH (m:Method) RETURN q.NAME")

    def test_single_raises_on_many(self, g):
        res = run_query(g, "MATCH (m:Method) RETURN m.NAME")
        with pytest.raises(QueryExecutionError):
            res.single()

"""Unit tests for graph persistence plus hypothesis round-trip."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.snapshot import graph_fingerprint
from repro.graphdb.storage import (
    _graph_from_dict_checked,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)


def sample_graph():
    g = PropertyGraph()
    g.indexes.create_index("Method", "NAME")
    a = g.create_node(["Class"], {"NAME": "A"})
    m = g.create_node(["Method"], {"NAME": "run", "PP": [0, 1]})
    g.create_relationship("HAS", a, m, {"weight": 2})
    return g


class TestRoundTrip:
    def test_dict_round_trip(self):
        g = sample_graph()
        g2 = graph_from_dict(graph_to_dict(g))
        assert g2.node_count == g.node_count
        assert g2.relationship_count == g.relationship_count
        assert g2.find_node("Method", NAME="run")["PP"] == [0, 1]

    def test_indexes_preserved(self):
        g2 = graph_from_dict(graph_to_dict(sample_graph()))
        assert g2.indexes.has_index("Method", "NAME")

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "g.json")
        save_graph(sample_graph(), path)
        g2 = load_graph(path)
        assert g2.node_count == 2

    def test_gzip_round_trip(self, tmp_path):
        path = str(tmp_path / "g.json.gz")
        save_graph(sample_graph(), path)
        g2 = load_graph(path)
        assert g2.relationship_count == 1

    def test_missing_file(self):
        with pytest.raises(StorageError):
            load_graph("/no/such/graph.json")

    def test_bad_version(self):
        with pytest.raises(StorageError):
            graph_from_dict({"format_version": 99, "nodes": [], "relationships": []})

    def test_malformed_document(self):
        with pytest.raises(StorageError):
            graph_from_dict({"format_version": 1, "nodes": [{"id": 0}], "relationships": []})

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(StorageError):
            load_graph(str(path))


class TestBulkLoaderEquivalence:
    """graph_from_dict (trusted bulk path) vs the legacy validated
    loader: structurally identical graphs, including after deletions
    force an id remap."""

    def test_sample_graph(self):
        doc = graph_to_dict(sample_graph())
        assert graph_fingerprint(graph_from_dict(doc)) == graph_fingerprint(
            _graph_from_dict_checked(doc)
        )

    def test_graph_with_deletions_remaps_identically(self):
        g = sample_graph()
        extra = g.create_node(["Class"], {"NAME": "Gone"})
        keep = g.create_node(["Method"], {"NAME": "keep"})
        g.create_relationship("HAS", extra, keep)
        g.delete_node(extra, detach=True)
        doc = graph_to_dict(g)
        bulk = graph_from_dict(doc)
        legacy = _graph_from_dict_checked(doc)
        assert graph_fingerprint(bulk) == graph_fingerprint(legacy)
        # the remap is dense, unlike the pre-save graph
        assert sorted(n.id for n in bulk.nodes()) == list(range(bulk.node_count))

    def test_columnar_loader_matches_row_loader(self):
        """The v2 decode path (_bulk_load_columns) and the v1 path
        (_bulk_load) must produce interchangeable graphs."""
        from repro.graphdb.snapshot import decode_snapshot, encode_snapshot

        g = sample_graph()
        via_columns = decode_snapshot(encode_snapshot(g))
        via_rows = graph_from_dict(graph_to_dict(g))
        assert graph_fingerprint(via_columns) == graph_fingerprint(via_rows)
        assert graph_fingerprint(via_columns) == graph_fingerprint(g)

    def test_columnar_loader_requires_empty_graph(self):
        from repro.errors import GraphError
        from repro.graphdb.graph import _bulk_load_columns

        with pytest.raises(GraphError):
            _bulk_load_columns(sample_graph(), [], [], [], [], [], [], [], [])

    def test_malformed_documents_still_raise_storage_error(self):
        for doc in (
            {"format_version": 1, "nodes": [{"id": 0}], "relationships": []},
            {"format_version": 1, "nodes": []},
            {"format_version": 1, "nodes": [], "relationships": [{"id": 0}]},
            {
                "format_version": 1,
                "nodes": [],
                "relationships": [
                    {"id": 0, "type": "E", "start": 7, "end": 7},
                ],
            },
        ):
            with pytest.raises(StorageError):
                graph_from_dict(doc)


_props = st.dictionaries(
    st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True),
    st.one_of(
        st.integers(min_value=-1000, max_value=1000),
        st.text(max_size=8),
        st.booleans(),
        st.none(),
        st.floats(allow_nan=False),
        st.lists(st.integers(min_value=0, max_value=9), max_size=4),
        st.lists(st.text(max_size=5), max_size=3),
        # mixed lists and nested maps take the tagged fallback encoding
        st.lists(
            st.one_of(st.integers(min_value=0, max_value=9), st.text(max_size=3)),
            max_size=4,
        ),
        st.dictionaries(
            st.from_regex(r"[a-z]{1,4}", fullmatch=True),
            st.text(max_size=5),
            max_size=3,
        ),
    ),
    max_size=4,
)


@settings(max_examples=30, deadline=None)
@given(
    node_specs=st.lists(
        st.tuples(st.sampled_from(["A", "B", "C"]), _props), min_size=1, max_size=8
    ),
    edge_seed=st.data(),
)
def test_property_arbitrary_graph_round_trips(node_specs, edge_seed):
    """Any graph built from random nodes/edges survives serialisation:
    same node/rel counts, same labels, same property maps."""
    g = PropertyGraph()
    nodes = [g.create_node([label], props) for label, props in node_specs]
    n_edges = edge_seed.draw(st.integers(min_value=0, max_value=6))
    for _ in range(n_edges):
        a = edge_seed.draw(st.sampled_from(nodes))
        b = edge_seed.draw(st.sampled_from(nodes))
        g.create_relationship("E", a, b)
    g2 = graph_from_dict(graph_to_dict(g))
    assert g2.node_count == g.node_count
    assert g2.relationship_count == g.relationship_count
    assert g2.label_counts() == g.label_counts()
    def snapshot(graph):
        return sorted(
            (
                (sorted(n.labels), sorted(n.properties.items(), key=repr))
                for n in graph.nodes()
            ),
            key=repr,
        )

    assert snapshot(g) == snapshot(g2)


_multi_labels = st.sets(st.sampled_from(["A", "B", "C", "Method"]), min_size=1,
                        max_size=3)
_rel_types = st.sampled_from(["CALL", "ALIAS", "HAS"])


@pytest.mark.parametrize("format", ["json", "binary", "v3"])
@settings(max_examples=25, deadline=None)
@given(
    node_specs=st.lists(st.tuples(_multi_labels, _props), min_size=1, max_size=8),
    index_keys=st.sets(
        st.tuples(st.sampled_from(["A", "Method"]),
                  st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True)),
        max_size=2,
    ),
    edge_seed=st.data(),
)
def test_both_formats_round_trip_full_state(format, tmp_path_factory, node_specs,
                                            index_keys, edge_seed):
    """save -> load is fingerprint-identical for random graphs under
    both formats: labels x property shapes x declared indexes, plus
    adjacency buckets and relationship-type counts."""
    g = PropertyGraph()
    for label, key in sorted(index_keys):
        g.indexes.create_index(label, key)
    nodes = [g.create_node(labels, props) for labels, props in node_specs]
    n_edges = edge_seed.draw(st.integers(min_value=0, max_value=8))
    for _ in range(n_edges):
        a = edge_seed.draw(st.sampled_from(nodes))
        b = edge_seed.draw(st.sampled_from(nodes))
        rel_type = edge_seed.draw(_rel_types)
        props = edge_seed.draw(_props)
        g.create_relationship(rel_type, a, b, props)
    path = str(tmp_path_factory.mktemp("rt") / "g.snapshot")
    save_graph(g, path, format=format)
    assert graph_fingerprint(load_graph(path)) == graph_fingerprint(g)

"""Unit tests for graph persistence plus hypothesis round-trip."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.storage import (
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)


def sample_graph():
    g = PropertyGraph()
    g.indexes.create_index("Method", "NAME")
    a = g.create_node(["Class"], {"NAME": "A"})
    m = g.create_node(["Method"], {"NAME": "run", "PP": [0, 1]})
    g.create_relationship("HAS", a, m, {"weight": 2})
    return g


class TestRoundTrip:
    def test_dict_round_trip(self):
        g = sample_graph()
        g2 = graph_from_dict(graph_to_dict(g))
        assert g2.node_count == g.node_count
        assert g2.relationship_count == g.relationship_count
        assert g2.find_node("Method", NAME="run")["PP"] == [0, 1]

    def test_indexes_preserved(self):
        g2 = graph_from_dict(graph_to_dict(sample_graph()))
        assert g2.indexes.has_index("Method", "NAME")

    def test_file_round_trip(self, tmp_path):
        path = str(tmp_path / "g.json")
        save_graph(sample_graph(), path)
        g2 = load_graph(path)
        assert g2.node_count == 2

    def test_gzip_round_trip(self, tmp_path):
        path = str(tmp_path / "g.json.gz")
        save_graph(sample_graph(), path)
        g2 = load_graph(path)
        assert g2.relationship_count == 1

    def test_missing_file(self):
        with pytest.raises(StorageError):
            load_graph("/no/such/graph.json")

    def test_bad_version(self):
        with pytest.raises(StorageError):
            graph_from_dict({"format_version": 99, "nodes": [], "relationships": []})

    def test_malformed_document(self):
        with pytest.raises(StorageError):
            graph_from_dict({"format_version": 1, "nodes": [{"id": 0}], "relationships": []})

    def test_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(StorageError):
            load_graph(str(path))


_props = st.dictionaries(
    st.from_regex(r"[a-z][a-z0-9_]{0,6}", fullmatch=True),
    st.one_of(
        st.integers(min_value=-1000, max_value=1000),
        st.text(max_size=8),
        st.booleans(),
        st.none(),
        st.lists(st.integers(min_value=0, max_value=9), max_size=4),
    ),
    max_size=4,
)


@settings(max_examples=30, deadline=None)
@given(
    node_specs=st.lists(
        st.tuples(st.sampled_from(["A", "B", "C"]), _props), min_size=1, max_size=8
    ),
    edge_seed=st.data(),
)
def test_property_arbitrary_graph_round_trips(node_specs, edge_seed):
    """Any graph built from random nodes/edges survives serialisation:
    same node/rel counts, same labels, same property maps."""
    g = PropertyGraph()
    nodes = [g.create_node([label], props) for label, props in node_specs]
    n_edges = edge_seed.draw(st.integers(min_value=0, max_value=6))
    for _ in range(n_edges):
        a = edge_seed.draw(st.sampled_from(nodes))
        b = edge_seed.draw(st.sampled_from(nodes))
        g.create_relationship("E", a, b)
    g2 = graph_from_dict(graph_to_dict(g))
    assert g2.node_count == g.node_count
    assert g2.relationship_count == g.relationship_count
    assert g2.label_counts() == g.label_counts()
    def snapshot(graph):
        return sorted(
            (
                (sorted(n.labels), sorted(n.properties.items(), key=repr))
                for n in graph.nodes()
            ),
            key=repr,
        )

    assert snapshot(g) == snapshot(g2)

"""Unit tests for the property-graph store."""

import pytest

from repro.errors import GraphError, NodeNotFoundError, RelationshipNotFoundError
from repro.graphdb.graph import PropertyGraph


@pytest.fixture
def graph():
    return PropertyGraph()


class TestNodes:
    def test_create_with_labels_and_properties(self, graph):
        n = graph.create_node(["Method"], {"NAME": "exec", "ARITY": 1})
        assert n.has_label("Method")
        assert n["NAME"] == "exec"
        assert n.get("MISSING") is None
        assert "ARITY" in n

    def test_ids_are_unique_and_dense(self, graph):
        ids = [graph.create_node().id for _ in range(5)]
        assert ids == sorted(set(ids))

    def test_missing_property_keyerror(self, graph):
        n = graph.create_node()
        with pytest.raises(KeyError):
            _ = n["nope"]

    def test_empty_label_rejected(self, graph):
        with pytest.raises(GraphError):
            graph.create_node([""])

    def test_unsupported_property_rejected(self, graph):
        with pytest.raises(GraphError):
            graph.create_node(properties={"bad": object()})

    def test_list_property_items_checked(self, graph):
        graph.create_node(properties={"ok": [1, "two", None]})
        with pytest.raises(GraphError):
            graph.create_node(properties={"bad": [object()]})

    def test_dict_property_allowed(self, graph):
        n = graph.create_node(properties={"ACTION": {"return": "init-param-1"}})
        assert n["ACTION"]["return"] == "init-param-1"

    def test_node_lookup(self, graph):
        n = graph.create_node()
        assert graph.node(n.id) is n
        with pytest.raises(NodeNotFoundError):
            graph.node(999)

    def test_set_property_reindexes(self, graph):
        graph.indexes.create_index("Method", "NAME")
        n = graph.create_node(["Method"], {"NAME": "a"})
        graph.set_node_property(n, "NAME", "b")
        assert graph.find_nodes("Method", NAME="b") == [n]
        assert graph.find_nodes("Method", NAME="a") == []


class TestRelationships:
    def test_create_and_adjacency(self, graph):
        a = graph.create_node()
        b = graph.create_node()
        r = graph.create_relationship("CALL", a, b, {"PP": [0, 1]})
        assert graph.out_relationships(a) == [r]
        assert graph.in_relationships(b) == [r]
        assert r["PP"] == [0, 1]

    def test_type_filter(self, graph):
        a, b = graph.create_node(), graph.create_node()
        graph.create_relationship("CALL", a, b)
        alias = graph.create_relationship("ALIAS", a, b)
        assert graph.out_relationships(a, "ALIAS") == [alias]

    def test_other_id(self, graph):
        a, b = graph.create_node(), graph.create_node()
        r = graph.create_relationship("CALL", a, b)
        assert r.other_id(a.id) == b.id
        assert r.other_id(b.id) == a.id
        with pytest.raises(GraphError):
            r.other_id(12345)

    def test_missing_endpoint_rejected(self, graph):
        a = graph.create_node()
        with pytest.raises(NodeNotFoundError):
            graph.create_relationship("CALL", a, 999)

    def test_empty_type_rejected(self, graph):
        a, b = graph.create_node(), graph.create_node()
        with pytest.raises(GraphError):
            graph.create_relationship("", a, b)

    def test_self_loop_allowed(self, graph):
        a = graph.create_node()
        r = graph.create_relationship("CALL", a, a)
        assert r.other_id(a.id) == a.id
        assert graph.degree(a) == 2


class TestTypedAdjacencyIndex:
    def test_typed_lookup_preserves_insertion_order(self, graph):
        """The per-type buckets must yield exactly what a filtered scan
        of the flat adjacency list yields, in the same order."""
        a = graph.create_node()
        targets = [graph.create_node() for _ in range(6)]
        rels = []
        for i, t in enumerate(targets):
            rels.append(
                graph.create_relationship("CALL" if i % 2 else "ALIAS", a, t)
            )
        calls = graph.out_relationships(a, "CALL")
        assert calls == [r for r in rels if r.type == "CALL"]
        assert [r.id for r in calls] == sorted(r.id for r in calls)
        assert graph.out_relationships(a) == rels

    def test_typed_lookup_unknown_type_empty(self, graph):
        a, b = graph.create_node(), graph.create_node()
        graph.create_relationship("CALL", a, b)
        assert graph.out_relationships(a, "EXTEND") == []
        assert graph.in_relationships(b, "EXTEND") == []

    def test_degree_helpers(self, graph):
        a, b, c = (graph.create_node() for _ in range(3))
        graph.create_relationship("CALL", a, b)
        graph.create_relationship("CALL", c, b)
        graph.create_relationship("ALIAS", a, b)
        assert graph.out_degree(a) == 2
        assert graph.out_degree(a, "CALL") == 1
        assert graph.in_degree(b) == 3
        assert graph.in_degree(b, "CALL") == 2
        assert graph.in_degree(b, "EXTEND") == 0

    def test_delete_relationship_updates_buckets(self, graph):
        a, b = graph.create_node(), graph.create_node()
        r1 = graph.create_relationship("CALL", a, b)
        r2 = graph.create_relationship("CALL", a, b)
        graph.delete_relationship(r1)
        assert graph.out_relationships(a, "CALL") == [r2]
        assert graph.in_relationships(b, "CALL") == [r2]
        assert graph.in_degree(b, "CALL") == 1
        graph.delete_relationship(r2)
        assert graph.out_relationships(a, "CALL") == []

    def test_detach_delete_updates_other_endpoints_buckets(self, graph):
        a, b, c = (graph.create_node() for _ in range(3))
        graph.create_relationship("CALL", a, b)
        graph.create_relationship("CALL", c, b)
        graph.delete_node(b, detach=True)
        assert graph.out_relationships(a, "CALL") == []
        assert graph.out_degree(c, "CALL") == 0


class TestDeletion:
    def test_delete_relationship(self, graph):
        a, b = graph.create_node(), graph.create_node()
        r = graph.create_relationship("CALL", a, b)
        graph.delete_relationship(r)
        assert graph.out_relationships(a) == []
        with pytest.raises(RelationshipNotFoundError):
            graph.relationship(r.id)

    def test_delete_node_with_rels_requires_detach(self, graph):
        a, b = graph.create_node(), graph.create_node()
        graph.create_relationship("CALL", a, b)
        with pytest.raises(GraphError):
            graph.delete_node(a)
        graph.delete_node(a, detach=True)
        assert not graph.has_node(a.id)
        assert graph.relationship_count == 0

    def test_delete_removes_from_indexes(self, graph):
        n = graph.create_node(["Method"])
        graph.delete_node(n)
        assert list(graph.nodes("Method")) == []


class TestFind:
    def test_find_by_label(self, graph):
        m = graph.create_node(["Method"])
        graph.create_node(["Class"])
        assert list(graph.nodes("Method")) == [m]

    def test_find_by_property_without_index(self, graph):
        graph.create_node(["M"], {"NAME": "a"})
        hit = graph.create_node(["M"], {"NAME": "b"})
        assert graph.find_nodes("M", NAME="b") == [hit]

    def test_find_with_index(self, graph):
        graph.indexes.create_index("M", "NAME")
        hit = graph.create_node(["M"], {"NAME": "x"})
        graph.create_node(["M"], {"NAME": "y"})
        assert graph.find_nodes("M", NAME="x") == [hit]

    def test_find_node_single(self, graph):
        assert graph.find_node("M", NAME="zzz") is None
        hit = graph.create_node(["M"], {"NAME": "zzz"})
        assert graph.find_node("M", NAME="zzz") == hit

    def test_find_multi_property(self, graph):
        graph.indexes.create_index("M", "NAME")
        graph.create_node(["M"], {"NAME": "f", "ARITY": 1})
        hit = graph.create_node(["M"], {"NAME": "f", "ARITY": 2})
        assert graph.find_nodes("M", NAME="f", ARITY=2) == [hit]


class TestStats:
    def test_counts(self, graph):
        a = graph.create_node(["Class"])
        b = graph.create_node(["Method"])
        graph.create_relationship("HAS", a, b)
        assert graph.node_count == 2
        assert graph.relationship_count == 1
        assert graph.label_counts() == {"Class": 1, "Method": 1}
        assert graph.relationship_type_counts() == {"HAS": 1}

    def test_relationship_type_counts_track_deletes(self, graph):
        a = graph.create_node(["M"])
        b = graph.create_node(["M"])
        r1 = graph.create_relationship("CALL", a, b)
        graph.create_relationship("CALL", b, a)
        graph.create_relationship("ALIAS", a, b)
        assert graph.relationship_type_counts() == {"CALL": 2, "ALIAS": 1}
        graph.delete_relationship(r1)
        assert graph.relationship_type_counts() == {"CALL": 1, "ALIAS": 1}


class TestInternedStorage:
    """The compact in-memory representation: pooled label frozensets
    and interned property keys (construction-time and bulk-load-time
    deduplication share the same pool)."""

    def test_labelsets_pooled_across_nodes(self, graph):
        a = graph.create_node(["Method", "Phantom"])
        b = graph.create_node(["Phantom", "Method"])  # order-insensitive
        c = graph.create_node(["Method"])
        assert a.labels is b.labels
        assert a.labels is not c.labels
        assert a.labels == {"Method", "Phantom"}

    def test_pool_survives_mixed_input_types(self, graph):
        a = graph.create_node(("Method",))
        b = graph.create_node(frozenset({"Method"}))
        c = graph.create_node(["Method"])
        assert a.labels is b.labels is c.labels

    def test_property_keys_interned(self, graph):
        import sys

        key = "SIG" + "NATURE"  # avoid a compile-time constant
        node = graph.create_node(["Method"], {key: "m()"})
        (stored,) = node.properties
        assert stored is sys.intern("SIGNATURE")

    def test_set_node_property_interns_and_pools(self, graph):
        import sys

        node = graph.create_node(["Method"])
        graph.set_node_property(node, "NA" + "ME", "x")
        (stored,) = node.properties
        assert stored is sys.intern("NAME")

    def test_pooling_does_not_leak_between_graphs(self):
        g1, g2 = PropertyGraph(), PropertyGraph()
        a = g1.create_node(["Method"])
        b = g2.create_node(["Method"])
        assert a.labels == b.labels
        assert g1._labelset_pool is not g2._labelset_pool


class TestRelationshipPropertyIndex:
    """Presence index over relationship properties (serves the RTA_DEAD
    sparse-annotation scans without touching unannotated edges)."""

    def _edges(self, graph, n=4, rel_type="CALL"):
        nodes = [graph.create_node() for _ in range(n + 1)]
        return [
            graph.create_relationship(rel_type, nodes[i], nodes[i + 1])
            for i in range(n)
        ]

    def test_index_serves_annotated_edges_in_id_order(self, graph):
        rels = self._edges(graph)
        graph.create_relationship_index("DEAD")
        graph.set_relationship_property(rels[2], "DEAD", True)
        graph.set_relationship_property(rels[0], "DEAD", True)
        got = graph.relationships_with_property("DEAD")
        assert [r.id for r in got] == sorted([rels[0].id, rels[2].id])

    def test_late_index_declaration_backfills(self, graph):
        rels = self._edges(graph)
        # property set before the index exists must still be found
        graph.set_relationship_property(rels[1], "DEAD", True)
        graph.create_relationship_index("DEAD")
        assert [r.id for r in graph.relationships_with_property("DEAD")] == [
            rels[1].id
        ]

    def test_create_is_idempotent(self, graph):
        rels = self._edges(graph)
        graph.create_relationship_index("DEAD")
        graph.set_relationship_property(rels[0], "DEAD", True)
        graph.create_relationship_index("DEAD")
        assert len(graph.relationships_with_property("DEAD")) == 1

    def test_rel_type_filter(self, graph):
        call = self._edges(graph, n=1)[0]
        alias = self._edges(graph, n=1, rel_type="ALIAS")[0]
        graph.create_relationship_index("DEAD")
        graph.set_relationship_property(call, "DEAD", True)
        graph.set_relationship_property(alias, "DEAD", True)
        got = graph.relationships_with_property("DEAD", rel_type="ALIAS")
        assert [r.id for r in got] == [alias.id]

    def test_delete_relationship_drops_index_entry(self, graph):
        rels = self._edges(graph)
        graph.create_relationship_index("DEAD")
        graph.set_relationship_property(rels[0], "DEAD", True)
        graph.set_relationship_property(rels[1], "DEAD", True)
        graph.delete_relationship(rels[0])
        assert [r.id for r in graph.relationships_with_property("DEAD")] == [
            rels[1].id
        ]

    def test_unindexed_key_still_answers_by_scan(self, graph):
        rels = self._edges(graph)
        graph.set_relationship_property(rels[3], "DEAD", True)
        assert [r.id for r in graph.relationships_with_property("DEAD")] == [
            rels[3].id
        ]

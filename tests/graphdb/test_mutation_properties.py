"""Hypothesis battery over graph mutation: any interleaving of
create/delete node, create/delete relationship, and property updates
must leave every maintained secondary structure — label/property node
indexes, typed adjacency buckets, degree counters, relationship-type
counters, relationship-property presence indexes — equal to a
from-scratch recomputation over the primary ``_nodes``/``_rels`` maps.

This is the safety net under the incremental CPG patcher, which leans
on exactly these structures surviving long delete/rebuild sequences.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import GraphError
from repro.graphdb.graph import PropertyGraph

LABELS = ["Class", "Method"]
REL_TYPES = ["CALL", "ALIAS", "HAS"]
PROP_KEYS = ["NAME", "IS_SINK"]
PROP_VALUES = ["a", "b", 0, 1, True, False]

op = st.one_of(
    st.tuples(
        st.just("add_node"),
        st.sampled_from(LABELS),
        st.sampled_from(PROP_KEYS),
        st.sampled_from(PROP_VALUES),
    ),
    st.tuples(
        st.just("add_rel"),
        st.sampled_from(REL_TYPES),
        st.integers(min_value=0, max_value=999),
        st.integers(min_value=0, max_value=999),
        st.booleans(),  # carry a PRUNED property
    ),
    st.tuples(st.just("del_node"), st.integers(min_value=0, max_value=999)),
    st.tuples(st.just("del_rel"), st.integers(min_value=0, max_value=999)),
    st.tuples(
        st.just("set_node_prop"),
        st.integers(min_value=0, max_value=999),
        st.sampled_from(PROP_KEYS),
        st.sampled_from(PROP_VALUES),
    ),
    st.tuples(
        st.just("set_rel_prop"),
        st.integers(min_value=0, max_value=999),
        st.sampled_from(PROP_VALUES),
    ),
)


def apply_ops(graph, ops):
    """Replay abstract ops against the graph; index-valued operands
    pick from the *live* entity lists so delete-heavy sequences keep
    finding targets."""
    for entry in ops:
        kind = entry[0]
        node_ids = sorted(graph._nodes)
        rel_ids = sorted(graph._rels)
        if kind == "add_node":
            _, label, key, value = entry
            graph.create_node([label], {key: value})
        elif kind == "add_rel" and node_ids:
            _, rel_type, i, j, pruned = entry
            props = {"PRUNED": True} if pruned else None
            graph.create_relationship(
                rel_type,
                node_ids[i % len(node_ids)],
                node_ids[j % len(node_ids)],
                props,
            )
        elif kind == "del_node" and node_ids:
            graph.delete_node(node_ids[entry[1] % len(node_ids)], detach=True)
        elif kind == "del_rel" and rel_ids:
            graph.delete_relationship(rel_ids[entry[1] % len(rel_ids)])
        elif kind == "set_node_prop" and node_ids:
            _, i, key, value = entry
            graph.set_node_property(node_ids[i % len(node_ids)], key, value)
        elif kind == "set_rel_prop" and rel_ids:
            graph.set_relationship_property(
                rel_ids[entry[1] % len(rel_ids)], "PRUNED", entry[1] % 2 == 0
            )


def assert_matches_rebuild(graph):
    """Independently recompute every derived structure and compare."""
    assert graph.check_integrity() == []

    # degree counters against a from-scratch count over _rels
    out_deg = {nid: 0 for nid in graph._nodes}
    in_deg = {nid: 0 for nid in graph._nodes}
    typed = {}
    type_counts = {}
    for rel in graph._rels.values():
        out_deg[rel.start_id] += 1
        in_deg[rel.end_id] += 1
        typed.setdefault((rel.start_id, rel.type, "out"), []).append(rel.id)
        typed.setdefault((rel.end_id, rel.type, "in"), []).append(rel.id)
        type_counts[rel.type] = type_counts.get(rel.type, 0) + 1
    for nid in graph._nodes:
        assert graph.out_degree(nid) == out_deg[nid]
        assert graph.in_degree(nid) == in_deg[nid]
        assert graph.degree(nid) == out_deg[nid] + in_deg[nid]
        for rel_type in REL_TYPES:
            assert [
                r.id for r in graph.out_relationships(nid, rel_type)
            ] == typed.get((nid, rel_type, "out"), [])
            assert [
                r.id for r in graph.in_relationships(nid, rel_type)
            ] == typed.get((nid, rel_type, "in"), [])
    assert graph.relationship_type_counts() == type_counts

    # node indexes against a from-scratch scan over _nodes
    for label in LABELS:
        expected_label = {
            n.id for n in graph._nodes.values() if n.has_label(label)
        }
        assert graph.indexes.nodes_with_label(label) == expected_label
        assert graph.indexes.label_count(label) == len(expected_label)
        for key in PROP_KEYS:
            for value in PROP_VALUES:
                # dict-key equality: the index buckets 0/False and
                # 1/True together, exactly like a plain dict would
                expected = {
                    n.id
                    for n in graph._nodes.values()
                    if n.has_label(label)
                    and key in n.properties
                    and n.properties[key] == value
                }
                got = graph.indexes.lookup(label, key, value) or set()
                assert got == expected, (label, key, value)

    # relationship property presence index
    expected_pruned = {
        r.id for r in graph._rels.values() if "PRUNED" in r.properties
    }
    assert {
        r.id for r in graph.relationships_with_property("PRUNED")
    } == expected_pruned


@settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=st.lists(op, min_size=0, max_size=60))
def test_interleaved_mutations_match_rebuild(ops):
    graph = PropertyGraph()
    for label in LABELS:
        for key in PROP_KEYS:
            graph.create_index(label, key)
    graph.create_relationship_index("PRUNED")
    apply_ops(graph, ops)
    assert_matches_rebuild(graph)


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(op, min_size=0, max_size=40),
    late=st.lists(op, min_size=0, max_size=20),
)
def test_indexes_declared_after_mutations_backfill(ops, late):
    """Declaring indexes mid-life must backfill to the same state as
    declaring them up front."""
    graph = PropertyGraph()
    apply_ops(graph, ops)
    for label in LABELS:
        for key in PROP_KEYS:
            graph.create_index(label, key)
    graph.create_relationship_index("PRUNED")
    apply_ops(graph, late)
    assert_matches_rebuild(graph)


def test_delete_node_refuses_attached_without_detach():
    graph = PropertyGraph()
    a = graph.create_node(["Class"], {"NAME": "a"})
    b = graph.create_node(["Class"], {"NAME": "b"})
    graph.create_relationship("CALL", a, b)
    try:
        graph.delete_node(a)
    except GraphError:
        pass
    else:  # pragma: no cover - the guard must hold
        raise AssertionError("delete_node without detach must refuse")
    assert graph.check_integrity() == []
    graph.delete_node(a, detach=True)
    assert graph.check_integrity() == []
    assert graph.relationship_count == 0

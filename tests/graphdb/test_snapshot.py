"""Unit tests for the v2 binary columnar snapshot codec."""

import gzip
import json
import struct
import sys
import zlib

import pytest

from repro.errors import StorageError
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    decode_snapshot,
    encode_snapshot,
    graph_fingerprint,
)
from repro.graphdb.storage import load_graph, save_graph


def rich_graph():
    g = PropertyGraph()
    g.indexes.create_index("Method", "NAME")
    g.indexes.create_index("Method", "IS_SINK")
    a = g.create_node(["Class"], {"NAME": "A", "INTERFACES": ["I", "J"]})
    m = g.create_node(
        ["Method"],
        {
            "NAME": "run",
            "PP": [0, 1],
            "IS_SINK": True,
            "RATIO": 1.5,
            "NOTE": None,
            "BIG": 1 << 70,
            "NEG": -12345,
            "META": {"depth": 3, "tags": ["x", "y"]},
        },
    )
    extra = g.create_node(["Method", "Phantom"], {"NAME": "exec"})
    g.create_relationship("HAS", a, m, {"weight": 2})
    g.create_relationship("CALL", m, extra, {"POLLUTED_POSITION": [0, -1]})
    g.create_relationship("CALL", extra, m, {})
    return g


class TestRoundTrip:
    def test_fingerprint_identical(self):
        g = rich_graph()
        g2 = decode_snapshot(encode_snapshot(g))
        assert graph_fingerprint(g2) == graph_fingerprint(g)

    def test_empty_graph(self):
        g2 = decode_snapshot(encode_snapshot(PropertyGraph()))
        assert g2.node_count == 0
        assert g2.relationship_count == 0

    def test_property_values_survive(self):
        g2 = decode_snapshot(encode_snapshot(rich_graph()))
        m = g2.find_node("Method", NAME="run")
        assert m["PP"] == [0, 1]
        assert m["BIG"] == 1 << 70
        assert m["NEG"] == -12345
        assert m["RATIO"] == 1.5
        assert m["NOTE"] is None
        assert m["META"] == {"depth": 3, "tags": ["x", "y"]}

    def test_special_floats(self):
        g = PropertyGraph()
        g.create_node(["N"], {"INF": float("inf"), "NINF": float("-inf")})
        n = decode_snapshot(encode_snapshot(g)).node(0)
        assert n["INF"] == float("inf")
        assert n["NINF"] == float("-inf")

    def test_unicode_strings(self):
        g = PropertyGraph()
        g.create_node(["Ünïcode"], {"NAME": "日本語 – ärger ✓"})
        g2 = decode_snapshot(encode_snapshot(g))
        assert g2.node(0)["NAME"] == "日本語 – ärger ✓"
        assert g2.node(0).has_label("Ünïcode")

    def test_indexes_and_adjacency_restored(self):
        g = rich_graph()
        g2 = decode_snapshot(encode_snapshot(g))
        assert g2.indexes.indexes() == g.indexes.indexes()
        assert g2.indexes.lookup("Method", "NAME", "run") == {1}
        assert [r.id for r in g2.out_relationships(1, "CALL")] == [1]
        assert g2.relationship_type_counts() == {"HAS": 1, "CALL": 2}

    def test_ids_renumbered_densely_like_v1(self):
        g = rich_graph()
        victim = g.create_node(["Class"], {"NAME": "Gone"})
        g.delete_node(victim)
        g2 = decode_snapshot(encode_snapshot(g))
        assert sorted(n.id for n in g2.nodes()) == [0, 1, 2]
        assert g2._next_node_id == 3


class TestInterning:
    def test_labelsets_pooled_on_load(self):
        g = PropertyGraph()
        for i in range(4):
            g.create_node(["Method", "Phantom"], {"NAME": f"m{i}"})
        g2 = decode_snapshot(encode_snapshot(g))
        labelsets = {id(n.labels) for n in g2.nodes()}
        assert len(labelsets) == 1

    def test_string_values_deduplicated_on_load(self):
        g = PropertyGraph()
        for i in range(4):
            g.create_node(["Method"], {"CLASSNAME": "com.example.Widget"})
        g2 = decode_snapshot(encode_snapshot(g))
        objects = {id(n.properties["CLASSNAME"]) for n in g2.nodes()}
        assert len(objects) == 1

    def test_property_keys_interned_on_load(self):
        g = PropertyGraph()
        g.create_node(["Method"], {"SIGNATURE": "x"})
        g2 = decode_snapshot(encode_snapshot(g))
        (key,) = g2.node(0).properties
        assert key is sys.intern("SIGNATURE")


class TestCorruption:
    def test_truncated_header(self):
        with pytest.raises(StorageError, match="truncated"):
            decode_snapshot(SNAPSHOT_MAGIC[:4])

    def test_bad_magic(self):
        data = bytearray(encode_snapshot(rich_graph()))
        data[:8] = b"NOTACPG!"
        with pytest.raises(StorageError, match="magic"):
            decode_snapshot(bytes(data))

    def test_unsupported_version(self):
        data = bytearray(encode_snapshot(rich_graph()))
        struct.pack_into("<H", data, 8, SNAPSHOT_VERSION + 1)
        with pytest.raises(StorageError, match="version.*re-export"):
            decode_snapshot(bytes(data))

    def test_truncated_body(self):
        data = encode_snapshot(rich_graph())
        with pytest.raises(StorageError, match="truncated"):
            decode_snapshot(data[: len(data) - 7])

    def test_flipped_payload_byte_fails_checksum(self):
        data = bytearray(encode_snapshot(rich_graph()))
        data[-3] ^= 0xFF  # inside the last section's payload
        with pytest.raises(StorageError, match="checksum|truncated"):
            decode_snapshot(bytes(data))

    def test_trailing_garbage(self):
        data = encode_snapshot(rich_graph()) + b"junk"
        with pytest.raises(StorageError, match="trailing"):
            decode_snapshot(data)

    def test_truncated_file_raises_storage_error(self, tmp_path):
        path = tmp_path / "g.cpg"
        save_graph(rich_graph(), str(path), format="binary")
        path.write_bytes(path.read_bytes()[:40])
        with pytest.raises(StorageError):
            load_graph(str(path))


class TestAutoDetect:
    @pytest.mark.parametrize(
        "name,format",
        [
            ("g.cpg", None),          # auto -> binary
            ("g.cpg", "binary"),
            ("g.json", None),         # auto -> v1 json
            ("g.json.gz", None),      # auto -> gzip v1 json
            ("g.weird", "json"),      # explicit json under a binary-ish name
            ("g.json", "binary"),     # explicit binary under a json name
        ],
    )
    def test_load_graph_detects_content(self, tmp_path, name, format):
        g = rich_graph()
        path = str(tmp_path / name)
        save_graph(g, path, format=format)
        assert graph_fingerprint(load_graph(path)) == graph_fingerprint(g)

    def test_gzipped_binary_snapshot_loads(self, tmp_path):
        g = rich_graph()
        path = tmp_path / "g.cpg.gz"
        path.write_bytes(gzip.compress(encode_snapshot(g)))
        assert graph_fingerprint(load_graph(str(path))) == graph_fingerprint(g)

    def test_json_format_is_byte_stable_v1(self, tmp_path):
        path = str(tmp_path / "g.json")
        save_graph(rich_graph(), path, format="json")
        with open(path, "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        assert doc["format_version"] == 1
        assert {"nodes", "relationships", "indexes"} <= set(doc)

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="unknown snapshot format"):
            save_graph(rich_graph(), str(tmp_path / "g"), format="msgpack")

    def test_binary_smaller_than_plain_json(self, tmp_path):
        g = rich_graph()
        binary = tmp_path / "g.cpg"
        text = tmp_path / "g.json"
        save_graph(g, str(binary), format="binary")
        save_graph(g, str(text), format="json")
        assert binary.stat().st_size < text.stat().st_size

"""Unit tests for the expander/evaluator traversal framework."""

import pytest

from repro.errors import GraphError
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.traversal import (
    Direction,
    Evaluation,
    Path,
    Uniqueness,
    traverse,
    type_expander,
)


def chain_graph(n=4, rel="CALL"):
    """a0 -> a1 -> ... -> a(n-1)."""
    g = PropertyGraph()
    nodes = [g.create_node(["N"], {"NAME": f"a{i}"}) for i in range(n)]
    for left, right in zip(nodes, nodes[1:]):
        g.create_relationship(rel, left, right)
    return g, nodes


def include_all(graph, path, state):
    return Evaluation.INCLUDE_AND_CONTINUE


class TestPath:
    def test_single(self):
        g, nodes = chain_graph(1)
        p = Path.single(nodes[0])
        assert p.length == 0
        assert p.start_node == p.end_node == nodes[0]

    def test_extend(self):
        g, nodes = chain_graph(2)
        rel = next(g.relationships())
        p = Path.single(nodes[0]).extend(rel, nodes[1])
        assert p.length == 1
        assert p.end_node == nodes[1]
        assert p.relationships == (rel,)

    def test_invalid_shape_rejected(self):
        g, nodes = chain_graph(2)
        rel = next(g.relationships())
        with pytest.raises(GraphError):
            Path(nodes, [rel, rel])

    def test_contains_node(self):
        g, nodes = chain_graph(2)
        rel = next(g.relationships())
        p = Path.single(nodes[0]).extend(rel, nodes[1])
        assert p.contains_node(nodes[0]) and p.contains_node(nodes[1])


class TestTraverse:
    def test_visits_whole_chain(self):
        g, nodes = chain_graph(4)
        results = list(traverse(g, nodes[0], type_expander(["CALL"]), include_all))
        assert len(results) == 4  # paths of length 0..3
        assert results[-1][0].end_node == nodes[3]

    def test_direction_incoming(self):
        g, nodes = chain_graph(3)
        expander = type_expander(["CALL"], Direction.INCOMING)
        results = list(traverse(g, nodes[2], expander, include_all))
        assert [p.end_node["NAME"] for p, _ in results] == ["a2", "a1", "a0"]

    def test_type_filter(self):
        g = PropertyGraph()
        a, b, c = (g.create_node() for _ in range(3))
        g.create_relationship("CALL", a, b)
        g.create_relationship("ALIAS", a, c)
        results = list(traverse(g, a, type_expander(["ALIAS"]), include_all))
        assert {p.end_node.id for p, _ in results} == {a.id, c.id}

    def test_prune_stops_expansion(self):
        g, nodes = chain_graph(5)

        def max_depth_2(graph, path, state):
            if path.length >= 2:
                return Evaluation.INCLUDE_AND_PRUNE
            return Evaluation.INCLUDE_AND_CONTINUE

        results = list(traverse(g, nodes[0], type_expander(["CALL"]), max_depth_2))
        assert max(p.length for p, _ in results) == 2

    def test_exclude_filters_output(self):
        g, nodes = chain_graph(3)

        def only_full(graph, path, state):
            if path.end_node["NAME"] == "a2":
                return Evaluation.INCLUDE_AND_PRUNE
            return Evaluation.EXCLUDE_AND_CONTINUE

        results = list(traverse(g, nodes[0], type_expander(["CALL"]), only_full))
        assert len(results) == 1
        assert results[0][0].end_node["NAME"] == "a2"

    def test_node_path_uniqueness_breaks_cycles(self):
        g = PropertyGraph()
        a, b = g.create_node(), g.create_node()
        g.create_relationship("CALL", a, b)
        g.create_relationship("CALL", b, a)
        results = list(traverse(g, a, type_expander(["CALL"]), include_all))
        assert len(results) == 2  # (a), (a->b); cycle back to a is blocked

    def test_node_global_uniqueness_loses_paths(self):
        """NODE_GLOBAL models GadgetInspector's visited-set shortcut: the
        second route into a shared node is dropped."""
        g = PropertyGraph()
        a, b, c, d = (g.create_node(["N"], {"NAME": x}) for x in "abcd")
        g.create_relationship("CALL", a, b)
        g.create_relationship("CALL", a, c)
        g.create_relationship("CALL", b, d)
        g.create_relationship("CALL", c, d)
        full = list(
            traverse(g, a, type_expander(["CALL"]), include_all, uniqueness=Uniqueness.NODE_PATH)
        )
        global_ = list(
            traverse(g, a, type_expander(["CALL"]), include_all, uniqueness=Uniqueness.NODE_GLOBAL)
        )
        paths_to_d_full = [p for p, _ in full if p.end_node["NAME"] == "d"]
        paths_to_d_global = [p for p, _ in global_ if p.end_node["NAME"] == "d"]
        assert len(paths_to_d_full) == 2
        assert len(paths_to_d_global) == 1

    def test_state_propagation(self):
        g, nodes = chain_graph(3)

        def counting_expander(graph, path, state):
            for rel, node, _ in type_expander(["CALL"])(graph, path, state):
                yield rel, node, state + 1

        results = list(
            traverse(g, nodes[0], counting_expander, include_all, initial_state=0)
        )
        states = {p.length: s for p, s in results}
        assert states == {0: 0, 1: 1, 2: 2}

    def test_max_results(self):
        g, nodes = chain_graph(10)
        results = list(
            traverse(g, nodes[0], type_expander(["CALL"]), include_all, max_results=3)
        )
        assert len(results) == 3

    def test_multiple_starts(self):
        g, nodes = chain_graph(3)
        results = list(
            traverse(g, [nodes[0], nodes[1]], type_expander(["CALL"]), include_all)
        )
        zero_len = [p for p, _ in results if p.length == 0]
        assert len(zero_len) == 2


class TestRelationshipPathUniqueness:
    def test_node_revisit_allowed_edge_reuse_blocked(self):
        """A node may repeat in a path, but each relationship at most
        once — the ChainedTransformer interface-revisit situation."""
        g = PropertyGraph()
        decl = g.create_node(["N"], {"NAME": "decl"})
        a = g.create_node(["N"], {"NAME": "a"})
        b = g.create_node(["N"], {"NAME": "b"})
        g.create_relationship("E", decl, a)
        g.create_relationship("E", a, decl)
        g.create_relationship("E", decl, b)
        results = list(
            traverse(
                g, decl, type_expander(["E"]), include_all,
                uniqueness=Uniqueness.RELATIONSHIP_PATH,
            )
        )
        sequences = {
            tuple(n["NAME"] for n in p.nodes) for p, _ in results
        }
        # decl -> a -> decl (node revisit) -> b is reachable
        assert ("decl", "a", "decl", "b") in sequences
        # but no path uses the decl->a edge twice
        for path, _ in results:
            ids = [r.id for r in path.relationships]
            assert len(ids) == len(set(ids))

    def test_last_relationship_accessor(self):
        g, nodes = chain_graph(3)
        rels = list(g.relationships())
        p = Path.single(nodes[0])
        assert p.last_relationship is None
        p = p.extend(rels[0], nodes[1])
        assert p.last_relationship is rels[0]
        assert p.contains_relationship(rels[0])
        assert not p.contains_relationship(rels[1])


class TestPersistentPath:
    """The persistent (structurally shared) Path representation."""

    def test_extend_shares_parent(self):
        g, nodes = chain_graph(3)
        rels = list(g.relationships())
        parent = Path.single(nodes[0]).extend(rels[0], nodes[1])
        left = parent.extend(rels[1], nodes[2])
        # materialising the child must not disturb the parent
        assert left.nodes == (nodes[0], nodes[1], nodes[2])
        assert parent.nodes == (nodes[0], nodes[1])
        assert parent.relationships == (rels[0],)
        assert left.relationships == (rels[0], rels[1])

    def test_compat_constructor_round_trip(self):
        g, nodes = chain_graph(4)
        rels = list(g.relationships())
        p = Path(nodes, rels)
        assert p.length == 3
        assert p.start_node is nodes[0]
        assert p.end_node is nodes[3]
        assert p.last_relationship is rels[2]
        assert p.nodes == tuple(nodes)
        assert p.relationships == tuple(rels)
        assert list(p) == list(nodes)
        assert len(p) == 4

    def test_membership_checks(self):
        g, nodes = chain_graph(4)
        rels = list(g.relationships())
        p = Path(nodes[:3], rels[:2])
        assert all(p.contains_node(n) for n in nodes[:3])
        assert not p.contains_node(nodes[3])
        assert p.contains_relationship(rels[0])
        assert p.contains_relationship(rels[1])
        assert not p.contains_relationship(rels[2])

    def test_repr_stable(self):
        g, nodes = chain_graph(2)
        rel = next(g.relationships())
        p = Path.single(nodes[0]).extend(rel, nodes[1])
        assert repr(p) == f"<Path ({nodes[0].id})-[:CALL]-({nodes[1].id})>"


class TestUniquenessModePins:
    """Pins the exact accepted-path sequences of every Uniqueness mode —
    start-node exemption, multi-start, and max_results interplay — so an
    engine rewrite cannot change traversal semantics unnoticed."""

    @staticmethod
    def names(results):
        return [tuple(n["NAME"] for n in p.nodes) for p, _ in results]

    @staticmethod
    def diamond():
        g = PropertyGraph()
        a, b, c, d = (g.create_node(["N"], {"NAME": x}) for x in "abcd")
        for left, right in ((a, b), (a, c), (b, d), (c, d)):
            g.create_relationship("E", left, right)
        return g, (a, b, c, d)

    def test_diamond_sequences_per_mode(self):
        g, (a, b, c, d) = self.diamond()
        dfs = [("a",), ("a", "b"), ("a", "b", "d"), ("a", "c"), ("a", "c", "d")]
        expected = {
            Uniqueness.NODE_PATH: dfs,
            Uniqueness.RELATIONSHIP_PATH: dfs,
            # the second route into d is dropped: the lossy shortcut
            Uniqueness.NODE_GLOBAL: dfs[:4],
            Uniqueness.NONE: dfs,
        }
        for mode, want in expected.items():
            got = self.names(
                traverse(g, a, type_expander(["E"]), include_all, uniqueness=mode)
            )
            assert got == want, mode

    def test_start_node_cycle_exemption_per_mode(self):
        """The start node is marked before evaluation under NODE_GLOBAL
        but exempted via ``path.length > 0`` — the start path itself is
        always evaluated; only *returns* to the start are constrained."""
        g = PropertyGraph()
        a = g.create_node(["N"], {"NAME": "a"})
        b = g.create_node(["N"], {"NAME": "b"})
        g.create_relationship("E", a, b)
        g.create_relationship("E", b, a)

        def bounded(graph, path, state):
            if path.length < 3:
                return Evaluation.INCLUDE_AND_CONTINUE
            return Evaluation.INCLUDE_AND_PRUNE

        expected = {
            Uniqueness.NODE_PATH: [("a",), ("a", "b")],
            Uniqueness.RELATIONSHIP_PATH: [("a",), ("a", "b"), ("a", "b", "a")],
            Uniqueness.NODE_GLOBAL: [("a",), ("a", "b")],
            Uniqueness.NONE: [
                ("a",), ("a", "b"), ("a", "b", "a"), ("a", "b", "a", "b"),
            ],
        }
        for mode, want in expected.items():
            got = self.names(
                traverse(g, a, type_expander(["E"]), bounded, uniqueness=mode)
            )
            assert got == want, mode

    def test_multi_start_per_mode(self):
        """A later start node already visited by an earlier traversal is
        still evaluated under NODE_GLOBAL (length-0 exemption), but its
        expansions into visited territory are dropped."""
        g, nodes = chain_graph(3)
        full = [("a0",), ("a0", "a1"), ("a0", "a1", "a2"), ("a1",), ("a1", "a2")]
        expected = {
            Uniqueness.NODE_PATH: full,
            Uniqueness.RELATIONSHIP_PATH: full,
            Uniqueness.NODE_GLOBAL: full[:4],
            Uniqueness.NONE: full,
        }
        for mode, want in expected.items():
            got = self.names(
                traverse(
                    g, [nodes[0], nodes[1]], type_expander(["CALL"]),
                    include_all, uniqueness=mode,
                )
            )
            assert got == want, mode

    def test_max_results_counts_included_paths_only(self):
        """max_results truncates on *included* paths; excluded visits do
        not consume the budget in any mode."""
        g, nodes = chain_graph(6)

        def even_lengths_only(graph, path, state):
            if path.length % 2 == 0:
                return Evaluation.INCLUDE_AND_CONTINUE
            return Evaluation.EXCLUDE_AND_CONTINUE

        for mode in Uniqueness:
            results = list(
                traverse(
                    g, nodes[0], type_expander(["CALL"]), even_lengths_only,
                    uniqueness=mode, max_results=2,
                )
            )
            assert [p.length for p, _ in results] == [0, 2], mode

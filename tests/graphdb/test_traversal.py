"""Unit tests for the expander/evaluator traversal framework."""

import pytest

from repro.errors import GraphError
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.traversal import (
    Direction,
    Evaluation,
    Path,
    Uniqueness,
    traverse,
    type_expander,
)


def chain_graph(n=4, rel="CALL"):
    """a0 -> a1 -> ... -> a(n-1)."""
    g = PropertyGraph()
    nodes = [g.create_node(["N"], {"NAME": f"a{i}"}) for i in range(n)]
    for left, right in zip(nodes, nodes[1:]):
        g.create_relationship(rel, left, right)
    return g, nodes


def include_all(graph, path, state):
    return Evaluation.INCLUDE_AND_CONTINUE


class TestPath:
    def test_single(self):
        g, nodes = chain_graph(1)
        p = Path.single(nodes[0])
        assert p.length == 0
        assert p.start_node == p.end_node == nodes[0]

    def test_extend(self):
        g, nodes = chain_graph(2)
        rel = next(g.relationships())
        p = Path.single(nodes[0]).extend(rel, nodes[1])
        assert p.length == 1
        assert p.end_node == nodes[1]
        assert p.relationships == (rel,)

    def test_invalid_shape_rejected(self):
        g, nodes = chain_graph(2)
        rel = next(g.relationships())
        with pytest.raises(GraphError):
            Path(nodes, [rel, rel])

    def test_contains_node(self):
        g, nodes = chain_graph(2)
        rel = next(g.relationships())
        p = Path.single(nodes[0]).extend(rel, nodes[1])
        assert p.contains_node(nodes[0]) and p.contains_node(nodes[1])


class TestTraverse:
    def test_visits_whole_chain(self):
        g, nodes = chain_graph(4)
        results = list(traverse(g, nodes[0], type_expander(["CALL"]), include_all))
        assert len(results) == 4  # paths of length 0..3
        assert results[-1][0].end_node == nodes[3]

    def test_direction_incoming(self):
        g, nodes = chain_graph(3)
        expander = type_expander(["CALL"], Direction.INCOMING)
        results = list(traverse(g, nodes[2], expander, include_all))
        assert [p.end_node["NAME"] for p, _ in results] == ["a2", "a1", "a0"]

    def test_type_filter(self):
        g = PropertyGraph()
        a, b, c = (g.create_node() for _ in range(3))
        g.create_relationship("CALL", a, b)
        g.create_relationship("ALIAS", a, c)
        results = list(traverse(g, a, type_expander(["ALIAS"]), include_all))
        assert {p.end_node.id for p, _ in results} == {a.id, c.id}

    def test_prune_stops_expansion(self):
        g, nodes = chain_graph(5)

        def max_depth_2(graph, path, state):
            if path.length >= 2:
                return Evaluation.INCLUDE_AND_PRUNE
            return Evaluation.INCLUDE_AND_CONTINUE

        results = list(traverse(g, nodes[0], type_expander(["CALL"]), max_depth_2))
        assert max(p.length for p, _ in results) == 2

    def test_exclude_filters_output(self):
        g, nodes = chain_graph(3)

        def only_full(graph, path, state):
            if path.end_node["NAME"] == "a2":
                return Evaluation.INCLUDE_AND_PRUNE
            return Evaluation.EXCLUDE_AND_CONTINUE

        results = list(traverse(g, nodes[0], type_expander(["CALL"]), only_full))
        assert len(results) == 1
        assert results[0][0].end_node["NAME"] == "a2"

    def test_node_path_uniqueness_breaks_cycles(self):
        g = PropertyGraph()
        a, b = g.create_node(), g.create_node()
        g.create_relationship("CALL", a, b)
        g.create_relationship("CALL", b, a)
        results = list(traverse(g, a, type_expander(["CALL"]), include_all))
        assert len(results) == 2  # (a), (a->b); cycle back to a is blocked

    def test_node_global_uniqueness_loses_paths(self):
        """NODE_GLOBAL models GadgetInspector's visited-set shortcut: the
        second route into a shared node is dropped."""
        g = PropertyGraph()
        a, b, c, d = (g.create_node(["N"], {"NAME": x}) for x in "abcd")
        g.create_relationship("CALL", a, b)
        g.create_relationship("CALL", a, c)
        g.create_relationship("CALL", b, d)
        g.create_relationship("CALL", c, d)
        full = list(
            traverse(g, a, type_expander(["CALL"]), include_all, uniqueness=Uniqueness.NODE_PATH)
        )
        global_ = list(
            traverse(g, a, type_expander(["CALL"]), include_all, uniqueness=Uniqueness.NODE_GLOBAL)
        )
        paths_to_d_full = [p for p, _ in full if p.end_node["NAME"] == "d"]
        paths_to_d_global = [p for p, _ in global_ if p.end_node["NAME"] == "d"]
        assert len(paths_to_d_full) == 2
        assert len(paths_to_d_global) == 1

    def test_state_propagation(self):
        g, nodes = chain_graph(3)

        def counting_expander(graph, path, state):
            for rel, node, _ in type_expander(["CALL"])(graph, path, state):
                yield rel, node, state + 1

        results = list(
            traverse(g, nodes[0], counting_expander, include_all, initial_state=0)
        )
        states = {p.length: s for p, s in results}
        assert states == {0: 0, 1: 1, 2: 2}

    def test_max_results(self):
        g, nodes = chain_graph(10)
        results = list(
            traverse(g, nodes[0], type_expander(["CALL"]), include_all, max_results=3)
        )
        assert len(results) == 3

    def test_multiple_starts(self):
        g, nodes = chain_graph(3)
        results = list(
            traverse(g, [nodes[0], nodes[1]], type_expander(["CALL"]), include_all)
        )
        zero_len = [p for p, _ in results if p.length == 0]
        assert len(zero_len) == 2


class TestRelationshipPathUniqueness:
    def test_node_revisit_allowed_edge_reuse_blocked(self):
        """A node may repeat in a path, but each relationship at most
        once — the ChainedTransformer interface-revisit situation."""
        g = PropertyGraph()
        decl = g.create_node(["N"], {"NAME": "decl"})
        a = g.create_node(["N"], {"NAME": "a"})
        b = g.create_node(["N"], {"NAME": "b"})
        g.create_relationship("E", decl, a)
        g.create_relationship("E", a, decl)
        g.create_relationship("E", decl, b)
        results = list(
            traverse(
                g, decl, type_expander(["E"]), include_all,
                uniqueness=Uniqueness.RELATIONSHIP_PATH,
            )
        )
        sequences = {
            tuple(n["NAME"] for n in p.nodes) for p, _ in results
        }
        # decl -> a -> decl (node revisit) -> b is reachable
        assert ("decl", "a", "decl", "b") in sequences
        # but no path uses the decl->a edge twice
        for path, _ in results:
            ids = [r.id for r in path.relationships]
            assert len(ids) == len(set(ids))

    def test_last_relationship_accessor(self):
        g, nodes = chain_graph(3)
        rels = list(g.relationships())
        p = Path.single(nodes[0])
        assert p.last_relationship is None
        p = p.extend(rels[0], nodes[1])
        assert p.last_relationship is rels[0]
        assert p.contains_relationship(rels[0])
        assert not p.contains_relationship(rels[1])

"""Unit tests for the index manager."""

import pytest

from repro.errors import GraphError
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.index import IndexManager, _index_key


class TestIndexManager:
    def test_label_index_automatic(self):
        g = PropertyGraph()
        n = g.create_node(["Method"])
        assert g.indexes.nodes_with_label("Method") == {n.id}
        assert g.indexes.nodes_with_label("Class") == set()

    def test_property_index_declared_before_load(self):
        g = PropertyGraph()
        g.indexes.create_index("M", "NAME")
        a = g.create_node(["M"], {"NAME": "x"})
        g.create_node(["M"], {"NAME": "y"})
        assert g.indexes.lookup("M", "NAME", "x") == {a.id}

    def test_lookup_without_index_returns_none(self):
        g = PropertyGraph()
        g.create_node(["M"], {"NAME": "x"})
        assert g.indexes.lookup("M", "NAME", "x") is None

    def test_create_index_idempotent(self):
        ix = IndexManager()
        ix.create_index("A", "k")
        ix.create_index("A", "k")
        assert ix.indexes() == [("A", "k")]

    def test_invalid_index_spec(self):
        ix = IndexManager()
        with pytest.raises(GraphError):
            ix.create_index("", "k")
        with pytest.raises(GraphError):
            ix.create_index("A", "")

    def test_unindex_on_delete(self):
        g = PropertyGraph()
        g.indexes.create_index("M", "NAME")
        n = g.create_node(["M"], {"NAME": "x"})
        g.delete_node(n)
        assert g.indexes.lookup("M", "NAME", "x") == set()

    def test_label_counts(self):
        g = PropertyGraph()
        g.create_node(["A"])
        g.create_node(["A"])
        g.create_node(["B"])
        assert g.indexes.label_counts() == {"A": 2, "B": 1}

    def test_multi_label_node_indexed_under_each(self):
        g = PropertyGraph()
        n = g.create_node(["A", "B"])
        assert n.id in g.indexes.nodes_with_label("A")
        assert n.id in g.indexes.nodes_with_label("B")

    def test_graph_create_index_backfills_existing_nodes(self):
        g = PropertyGraph()
        a = g.create_node(["M"], {"NAME": "x"})
        b = g.create_node(["M"], {"NAME": "x"})
        g.create_node(["M"], {"NAME": "y"})
        g.create_node(["Other"], {"NAME": "x"})  # wrong label: not covered
        g.create_index("M", "NAME")
        assert g.indexes.lookup("M", "NAME", "x") == {a.id, b.id}
        # and stays maintained for nodes created afterwards
        c = g.create_node(["M"], {"NAME": "x"})
        assert g.indexes.lookup("M", "NAME", "x") == {a.id, b.id, c.id}

    def test_manager_create_index_backfills_passed_nodes_only(self):
        g = PropertyGraph()
        a = g.create_node(["M"], {"NAME": "x"})
        g.indexes.create_index("M", "NAME", nodes=[a])
        assert g.indexes.lookup("M", "NAME", "x") == {a.id}

    def test_count_matches_lookup_size(self):
        g = PropertyGraph()
        g.create_index("M", "NAME")
        g.create_node(["M"], {"NAME": "x"})
        g.create_node(["M"], {"NAME": "x"})
        assert g.indexes.count("M", "NAME", "x") == 2
        assert g.indexes.count("M", "NAME", "missing") == 0
        assert g.indexes.count("M", "OTHER", "x") is None

    def test_label_count(self):
        g = PropertyGraph()
        g.create_node(["A"])
        g.create_node(["A"])
        assert g.indexes.label_count("A") == 2
        assert g.indexes.label_count("Nope") == 0


class TestIndexKeys:
    def test_list_values_hashable(self):
        assert _index_key([1, 2]) == (1, 2)

    def test_dict_values_hashable(self):
        assert _index_key({"b": 1, "a": [2]}) == (("a", (2,)), ("b", 1))

    def test_scalar_passthrough(self):
        assert _index_key("x") == "x"

    def test_list_property_lookup(self):
        g = PropertyGraph()
        g.indexes.create_index("E", "PP")
        n = g.create_node(["E"], {"PP": [0, 1]})
        assert g.indexes.lookup("E", "PP", [0, 1]) == {n.id}

"""Additional query-engine coverage: tricky patterns and errors."""

import pytest

from repro.errors import QueryExecutionError, QuerySyntaxError
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.query import parse_query, run_query


@pytest.fixture
def ring():
    """a0 -> a1 -> a2 -> a0 (a directed 3-cycle)."""
    g = PropertyGraph()
    nodes = [g.create_node(["N"], {"i": i}) for i in range(3)]
    for i in range(3):
        g.create_relationship("E", nodes[i], nodes[(i + 1) % 3])
    return g


class TestVariableLengthOnCycles:
    def test_unbounded_terminates(self, ring):
        res = run_query(ring, "MATCH (a {i: 0})-[:E*]->(b) RETURN b.i ORDER BY b.i")
        # simple paths only: 1 hop -> a1, 2 hops -> a2 (back to a0 blocked)
        assert res.values("b.i") == [1, 2]

    def test_min_hops_respected(self, ring):
        res = run_query(ring, "MATCH (a {i: 0})-[:E*2..3]->(b) RETURN b.i")
        assert res.values("b.i") == [2]

    def test_zero_matches_ok(self, ring):
        res = run_query(ring, "MATCH (a {i: 0})-[:MISSING*]->(b) RETURN b.i")
        assert len(res) == 0


class TestMixedPatterns:
    def test_pattern_reusing_rel_variable_joins(self, ring):
        res = run_query(
            ring, "MATCH (a {i: 0})-[r:E]->(b), (a)-[r]->(c) RETURN c.i"
        )
        assert res.values("c.i") == [1]

    def test_three_patterns(self, ring):
        res = run_query(
            ring,
            "MATCH (a {i: 0}), (b {i: 1}), (a)-[:E]->(b) RETURN count(*) AS n",
        )
        assert res.single()["n"] == 1

    def test_undirected_var_length(self, ring):
        res = run_query(
            ring, "MATCH (a {i: 0})-[:E*1..1]-(b) RETURN b.i ORDER BY b.i"
        )
        assert res.values("b.i") == [1, 2]  # successor and predecessor


class TestWhereEdgeCases:
    def test_float_literals(self, ring):
        res = run_query(ring, "MATCH (a {i: 0}) RETURN 1.5 AS x")
        assert res.single()["x"] == 1.5

    def test_cmp_incomparable_types_false(self, ring):
        res = run_query(ring, "MATCH (a:N) WHERE a.i > 'str' RETURN count(*) AS n")
        assert res.single()["n"] == 0

    def test_null_literal_equality(self, ring):
        res = run_query(ring, "MATCH (a:N) WHERE a.missing = null RETURN count(*) AS n")
        assert res.single()["n"] == 3

    def test_contains_on_non_string_false(self, ring):
        res = run_query(ring, "MATCH (a:N) WHERE a.i CONTAINS '0' RETURN count(*) AS n")
        assert res.single()["n"] == 0

    def test_empty_in_list(self, ring):
        res = run_query(ring, "MATCH (a:N) WHERE a.i IN [] RETURN count(*) AS n")
        assert res.single()["n"] == 0


class TestReturnEdgeCases:
    def test_order_by_unreturned_expression_errors(self, ring):
        with pytest.raises(QueryExecutionError):
            run_query(ring, "MATCH (a:N) RETURN a.i AS x ORDER BY a.missing")

    def test_order_by_mixed_none_sorts_last(self, ring):
        g = ring
        g.create_node(["N"])  # no i property
        res = run_query(g, "MATCH (a:N) RETURN a.i ORDER BY a.i")
        values = res.values("a.i")
        assert values[-1] is None and values[:3] == [0, 1, 2]

    def test_count_group_by_rel_property(self, ring):
        for rel in ring.relationships():
            ring.set_relationship_property(rel, "kind", "x")
        res = run_query(
            ring, "MATCH ()-[r:E]->() RETURN r.kind AS k, count(*) AS n"
        )
        assert res.single() == {"k": "x", "n": 3}

    def test_skip_past_end(self, ring):
        res = run_query(ring, "MATCH (a:N) RETURN a.i ORDER BY a.i SKIP 10")
        assert len(res) == 0

    def test_limit_zero(self, ring):
        res = run_query(ring, "MATCH (a:N) RETURN a.i LIMIT 0")
        assert len(res) == 0


class TestParserErrors:
    @pytest.mark.parametrize(
        "query",
        [
            "MATCH (a RETURN a",
            "MATCH (a) WHERE RETURN a",
            "MATCH (a) RETURN",
            "MATCH (a)-[:]->(b) RETURN a",
            "MATCH (a) RETURN a LIMIT x",
            "MATCH (a) RETURN a ORDER a.i",
            "MATCH (a) RETURN a; DROP",
        ],
    )
    def test_malformed_queries_raise(self, query):
        with pytest.raises(QuerySyntaxError):
            parse_query(query)

    def test_position_reported(self):
        with pytest.raises(QuerySyntaxError) as exc:
            parse_query("MATCH (a) RETURN $$$")
        assert exc.value.position > 0

"""v3 zero-copy snapshots: codec robustness, the ArrayGraph view's
parity with PropertyGraph, and cross-process mmap sharing.

The contract under test, in three layers:

* **corruption** — every malformed input (empty file, shorter than the
  magic, a v3 header stapled onto a v2 body, truncation anywhere in the
  section area) must surface as a structured ``StorageError``, never a
  raw ``struct.error``/``IndexError``;
* **parity** — the mmap'd :class:`ArrayGraph` answers the entire read
  surface (lookups, degrees, indexes, queries, chain search in every
  uniqueness mode) bit-identically to the ``PropertyGraph`` the
  snapshot was written from, and materializes fingerprint-identically;
* **sharing** — two separate processes traversing one v3 file get
  bit-identical chain lists, and the parallel search's worker transport
  preserves node ids so no renumbering happens anywhere.
"""

import multiprocessing
import struct

import pytest

from repro.core.cpg import CPG, CPGBuilder, CPGStatistics
from repro.core.pathfinder import GadgetChainFinder
from repro.corpus import build_component, build_lang_base
from repro.errors import GraphError, StorageError
from repro.graphdb.arraygraph import ArrayGraph
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.query import run_query
from repro.graphdb.snapshot import (
    decode_snapshot,
    encode_snapshot,
    graph_fingerprint,
)
from repro.graphdb.snapshot_v3 import (
    decode_snapshot_v3,
    encode_snapshot_v3,
    open_snapshot,
    view_snapshot,
)
from repro.graphdb.storage import load_graph, open_graph, save_graph
from repro.graphdb.traversal import Uniqueness
from repro.jvm.hierarchy import ClassHierarchy

PROBE_QUERY = (
    "MATCH (a:Method)-[c:CALL]->(b:Method {IS_SINK: true}) "
    "RETURN a.SIGNATURE AS caller, b.NAME AS sink ORDER BY caller, sink"
)


def small_graph():
    g = PropertyGraph()
    g.indexes.create_index("Method", "NAME")
    g.indexes.create_index("Method", "IS_SINK")
    a = g.create_node(["Class"], {"NAME": "A", "INTERFACES": ["I", "J"]})
    m = g.create_node(
        ["Method"],
        {"NAME": "run", "IS_SINK": True, "PP": [0, 1], "RATE": 0.5,
         "META": {"k": "v"}},
    )
    n = g.create_node(["Method"], {"NAME": "call", "IS_SINK": False})
    g.create_relationship("HAS", a, m, {"weight": 2})
    g.create_relationship("CALL", n, m, {"POLLUTED_POSITION": [0, 0]})
    g.create_relationship("ALIAS", n, m)
    return g


@pytest.fixture(scope="module")
def corpus_cpg():
    classes = build_lang_base() + build_component("CommonsBeanutils1").classes
    return CPGBuilder(ClassHierarchy(classes)).build()


@pytest.fixture(scope="module")
def v3_path(corpus_cpg, tmp_path_factory):
    path = str(tmp_path_factory.mktemp("v3") / "corpus.cpg")
    save_graph(corpus_cpg.graph, path, format="v3")
    return path


def view_as_cpg(graph):
    return CPG(graph, ClassHierarchy([]), CPGStatistics(), {})


def chain_fingerprint(cpg, **kwargs):
    return [
        (
            tuple(step.qualified for step in chain.steps),
            chain.sink_category,
            tuple(chain.trigger_condition),
        )
        for chain in GadgetChainFinder(cpg, **kwargs).find_chains()
    ]


# ---------------------------------------------------------------------------
# Corruption: structured errors, never struct.error / IndexError
# ---------------------------------------------------------------------------


class TestCorruption:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.cpg"
        path.write_bytes(b"")
        with pytest.raises(StorageError):
            load_graph(str(path))
        with pytest.raises(StorageError):
            open_graph(str(path))

    def test_shorter_than_magic(self, tmp_path):
        path = tmp_path / "tiny.cpg"
        path.write_bytes(b"TABBY")
        with pytest.raises(StorageError):
            load_graph(str(path))
        with pytest.raises(StorageError):
            open_graph(str(path))

    def test_v3_header_on_v2_body(self, tmp_path):
        """A version field bumped to 3 on real v2 bytes must fail the
        table checksum, not be misparsed as sections."""
        data = bytearray(encode_snapshot(small_graph()))
        struct.pack_into("<H", data, 8, 3)
        path = tmp_path / "lying.cpg"
        path.write_bytes(bytes(data))
        with pytest.raises(StorageError):
            load_graph(str(path))
        with pytest.raises(StorageError):
            open_graph(str(path))

    @pytest.mark.parametrize("fraction", [0.05, 0.2, 0.5, 0.8, 0.97])
    def test_truncation_anywhere(self, tmp_path, fraction):
        data = encode_snapshot_v3(small_graph())
        cut = data[: max(1, int(len(data) * fraction))]
        path = tmp_path / "cut.cpg"
        path.write_bytes(cut)
        with pytest.raises(StorageError):
            open_graph(str(path))
        with pytest.raises(StorageError):
            decode_snapshot_v3(cut)

    def test_truncated_csr_section(self):
        """Cutting inside the CSR arrays specifically (the largest
        fixed-layout section) raises at open, not at first traversal."""
        g = small_graph()
        data = encode_snapshot_v3(g)
        # drop the final 16 bytes: lands inside the trailing sections'
        # data, making some section's recorded length overrun the file
        with pytest.raises(StorageError):
            view_snapshot(data[:-16])

    def test_every_single_byte_truncation_is_structured(self):
        """Exhaustive: no prefix of a tiny snapshot escapes as a raw
        struct/index error."""
        data = encode_snapshot_v3(small_graph())
        step = max(1, len(data) // 97)
        for cut in range(0, len(data) - 1, step):
            with pytest.raises(StorageError):
                graph = view_snapshot(data[:cut])
                graph.materialize()  # force lazy sections if open passed

    def test_error_message_names_the_problem(self, tmp_path):
        path = tmp_path / "empty.cpg"
        path.write_bytes(b"")
        with pytest.raises(StorageError, match="empty"):
            open_graph(str(path))


# ---------------------------------------------------------------------------
# Round trips and auto-detection
# ---------------------------------------------------------------------------


class TestRoundTrip:
    def test_v3_fingerprint_identical(self):
        g = small_graph()
        assert graph_fingerprint(decode_snapshot_v3(encode_snapshot_v3(g))) \
            == graph_fingerprint(g)

    def test_v3_matches_v2_decode(self):
        g = small_graph()
        assert graph_fingerprint(decode_snapshot_v3(encode_snapshot_v3(g))) \
            == graph_fingerprint(decode_snapshot(encode_snapshot(g)))

    def test_default_save_is_v3_and_autodetected(self, tmp_path):
        path = str(tmp_path / "g.cpg")
        save_graph(small_graph(), path)  # auto -> v3
        assert isinstance(open_graph(path), ArrayGraph)
        assert isinstance(load_graph(path), PropertyGraph)

    def test_json_suffix_still_means_v1(self, tmp_path):
        path = str(tmp_path / "g.json.gz")
        save_graph(small_graph(), path)
        assert isinstance(open_graph(path), PropertyGraph)

    def test_gzipped_v3_opens_as_in_memory_view(self, tmp_path):
        import gzip

        path = str(tmp_path / "g.cpg.gz")
        with open(path, "wb") as fh:
            fh.write(gzip.compress(encode_snapshot_v3(small_graph())))
        view = open_graph(path)
        assert isinstance(view, ArrayGraph)
        assert view.path is None  # decompressed copy, not a file mapping

    def test_v2_file_still_loads(self, tmp_path):
        path = str(tmp_path / "g.cpg")
        g = small_graph()
        save_graph(g, path, format="binary")
        assert graph_fingerprint(load_graph(path)) == graph_fingerprint(g)
        assert isinstance(open_graph(path), PropertyGraph)

    def test_unknown_format_rejected(self, tmp_path):
        with pytest.raises(StorageError, match="unknown snapshot format"):
            save_graph(small_graph(), str(tmp_path / "g.cpg"), format="v9")


# ---------------------------------------------------------------------------
# ArrayGraph parity with PropertyGraph
# ---------------------------------------------------------------------------


class TestArrayGraphParity:
    @pytest.fixture()
    def pair(self, tmp_path):
        g = small_graph()
        path = str(tmp_path / "g.cpg")
        save_graph(g, path, format="v3")
        view = open_graph(path)
        yield g, view
        view.close()

    def test_counts_and_labels(self, pair):
        g, view = pair
        assert view.node_count == g.node_count
        assert view.relationship_count == g.relationship_count
        assert view.label_counts() == g.label_counts()
        assert view.relationship_type_counts() == g.relationship_type_counts()

    def test_node_identity_and_properties(self, pair):
        g, view = pair
        for node in g.nodes():
            twin = view.node(node.id)
            assert twin == node and hash(twin) == hash(node)
            assert twin.labels == node.labels
            assert dict(twin.properties) == dict(node.properties)
            for key, value in node.properties.items():
                assert twin[key] == value
                assert key in twin
                assert twin.get(key) == value
            assert twin.get("NOPE", 42) == 42
            with pytest.raises(KeyError):
                twin["NOPE"]

    def test_adjacency(self, pair):
        g, view = pair
        for node in g.nodes():
            for rel_type in (None, "CALL", "ALIAS", "HAS", "NOPE"):
                assert (
                    [r.id for r in view.out_relationships(node, rel_type)]
                    == [r.id for r in g.out_relationships(node, rel_type)]
                )
                assert (
                    [r.id for r in view.in_relationships(node, rel_type)]
                    == [r.id for r in g.in_relationships(node, rel_type)]
                )
                assert view.out_degree(node, rel_type) == g.out_degree(node, rel_type)
                assert view.in_degree(node, rel_type) == g.in_degree(node, rel_type)

    def test_find_nodes_same_order(self, pair):
        g, view = pair
        assert (
            [n.id for n in view.find_nodes("Method", IS_SINK=True)]
            == [n.id for n in g.find_nodes("Method", IS_SINK=True)]
        )
        assert (
            [n.id for n in view.find_nodes("Method")]
            == [n.id for n in g.find_nodes("Method")]
        )

    def test_mutation_rejected(self, pair):
        _, view = pair
        with pytest.raises(GraphError, match="read-only"):
            view.create_node(["X"], {})
        with pytest.raises(GraphError, match="read-only"):
            view.create_relationship("E", 0, 1)
        with pytest.raises(GraphError, match="read-only"):
            view.delete_node(0)

    def test_materialize_fingerprint(self, pair):
        g, view = pair
        assert graph_fingerprint(view.materialize()) == graph_fingerprint(g)

    def test_query_rows_identical(self, corpus_cpg, v3_path):
        view = open_graph(v3_path)
        assert (
            run_query(view, PROBE_QUERY).rows
            == run_query(corpus_cpg.graph, PROBE_QUERY).rows
        )
        view.close()


# ---------------------------------------------------------------------------
# Chain identity over the mmap'd view, every uniqueness mode
# ---------------------------------------------------------------------------


ALL_MODES = list(Uniqueness)


@pytest.mark.parametrize("mode", ALL_MODES, ids=[m.name for m in ALL_MODES])
def test_chains_identical_over_mmap_view(corpus_cpg, v3_path, mode):
    baseline = chain_fingerprint(corpus_cpg, uniqueness=mode)
    view = open_graph(v3_path)
    assert chain_fingerprint(view_as_cpg(view), uniqueness=mode) == baseline
    view.close()


def test_chains_identical_with_parallel_workers(corpus_cpg, v3_path):
    """The path transport: parallel workers re-open the parent's mmap'd
    snapshot and must reproduce the serial chain list exactly."""
    baseline = chain_fingerprint(corpus_cpg)
    view = open_graph(v3_path)
    assert chain_fingerprint(view_as_cpg(view), workers=2) == baseline
    view.close()


# ---------------------------------------------------------------------------
# Cross-process sharing
# ---------------------------------------------------------------------------


def _search_snapshot(path, out):
    """Child-process worker: open the shared snapshot, search, report."""
    from repro.graphdb.storage import open_graph as _open

    view = _open(path)
    out.put(chain_fingerprint(view_as_cpg(view)))


def test_two_processes_same_mmap_identical_chains(corpus_cpg, v3_path):
    ctx = multiprocessing.get_context("spawn")
    out = ctx.Queue()
    procs = [
        ctx.Process(target=_search_snapshot, args=(v3_path, out))
        for _ in range(2)
    ]
    for proc in procs:
        proc.start()
    results = [out.get(timeout=300) for _ in procs]
    for proc in procs:
        proc.join(timeout=60)
    baseline = chain_fingerprint(corpus_cpg)
    assert results[0] == baseline
    assert results[1] == baseline


class TestWorkerTransport:
    """search_parallel's graph shipping preserves node ids."""

    def test_v2_bytes_preserve_dense_ids(self):
        g = small_graph()
        decoded = decode_snapshot(encode_snapshot(g))
        assert [n.id for n in decoded.nodes()] == [n.id for n in g.nodes()]
        assert [r.id for r in decoded.relationships()] \
            == [r.id for r in g.relationships()]

    def _config(self):
        return {
            "max_depth": 12,
            "max_results_per_sink": 200,
            "follow_alias": True,
            "uniqueness": Uniqueness.RELATIONSHIP_PATH.value,
            "optimize": True,
            "prune_unreachable": True,
            "negative_cache": True,
            "skip_rta_dead": False,
            "accept_spec": None,
        }

    def test_worker_init_path_transport(self, v3_path, corpus_cpg):
        from repro.core import search_parallel as sp

        sp._worker_init(("path", v3_path), self._config())
        try:
            assert isinstance(sp._WORKER_FINDER.cpg.graph, ArrayGraph)
            assert (
                sp._WORKER_FINDER.cpg.graph.node_count
                == corpus_cpg.graph.node_count
            )
        finally:
            sp._WORKER_FINDER = None

    def test_worker_init_snapshot_transport(self):
        from repro.core import search_parallel as sp

        g = small_graph()
        sp._worker_init(("snapshot", encode_snapshot(g)), self._config())
        try:
            worker_graph = sp._WORKER_FINDER.cpg.graph
            assert graph_fingerprint(worker_graph) == graph_fingerprint(g)
            assert [n.id for n in worker_graph.nodes()] \
                == [n.id for n in g.nodes()]
        finally:
            sp._WORKER_FINDER = None

"""The MVCC interleaving battery: reader threads pin snapshots and
run queries/chain searches while a writer commits edit scripts.

The single invariant under test is the MVCC contract itself — every
reader observation (fingerprint, query result, chain list) equals the
one computed from **exactly one committed version**, never a blend,
whatever the thread interleaving.  Scripts are hypothesis-generated in
the style of ``test_mutation_properties.py``; the chain-search half
drives the real incremental analyzer in versioned mode.
"""

import threading

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graphdb.graph import PropertyGraph
from repro.graphdb.mvcc import VersionedGraph, version_of
from repro.graphdb.query import run_query
from repro.graphdb.snapshot import graph_fingerprint

from tests.graphdb.test_mutation_properties import apply_ops, op

READERS = 4
MAX_READS = 120


def fresh():
    g = PropertyGraph()
    for label in ("Class", "Method"):
        for key in ("NAME", "IS_SINK"):
            g.create_index(label, key)
    g.create_relationship_index("PRUNED")
    return g


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    scripts=st.lists(
        st.lists(op, min_size=1, max_size=6), min_size=2, max_size=5
    )
)
def test_concurrent_readers_see_exactly_one_committed_version(scripts):
    vg = VersionedGraph(fresh())
    committed = {0: repr(graph_fingerprint(vg.begin_snapshot()))}
    start = threading.Event()
    stop = threading.Event()
    observations = []
    errors = []

    def reader():
        local = []
        start.wait()
        while not stop.is_set() and len(local) < MAX_READS:
            snap = vg.begin_snapshot()
            version = version_of(snap)
            try:
                fp = repr(graph_fingerprint(snap))
                counted = run_query(
                    snap, "MATCH (n:Class) RETURN count(n) AS c"
                ).rows[0]["c"]
            except Exception as exc:  # noqa: BLE001 - collected for the assert
                errors.append(exc)
                return
            local.append((version, fp, counted))
        observations.extend(local)

    threads = [threading.Thread(target=reader) for _ in range(READERS)]
    for thread in threads:
        thread.start()
    start.set()
    for script in scripts:
        with vg.write_txn() as txn:
            apply_ops(txn.graph, script)
        committed[vg.version] = repr(
            graph_fingerprint(vg.begin_snapshot())
        )
    stop.set()
    for thread in threads:
        thread.join()

    assert not errors, errors
    for version, fp, counted in observations:
        assert version in committed
        # fingerprint-equal to exactly the version the reader pinned:
        # no torn reads, no writer bleed-through
        assert fp == committed[version], version
        # the query ran over the same frozen version without tripping
        # the immutability guard or observing a half-applied script
        assert counted >= 0


def test_chain_search_readers_during_incremental_updates():
    """Readers run the real gadget-chain search over pinned snapshots
    while the incremental analyzer commits successive class versions;
    every reader's chain list is bit-identical to the list computed
    from the version it pinned."""
    from repro.core.cpg import CLASS_LABEL, CPG, METHOD_LABEL, CPGStatistics
    from repro.core.incremental import IncrementalAnalyzer
    from repro.core.pathfinder import GadgetChainFinder
    from repro.jvm.hierarchy import ClassHierarchy

    from tests.core.test_incremental import gadget_program

    def chain_keys(snapshot):
        statistics = CPGStatistics(
            class_node_count=snapshot.indexes.label_count(CLASS_LABEL),
            method_node_count=snapshot.indexes.label_count(METHOD_LABEL),
            relationship_edge_count=snapshot.relationship_count,
        )
        view = CPG(snapshot, ClassHierarchy([]), statistics, {})
        finder = GadgetChainFinder(view, max_depth=12, workers=1)
        return sorted(
            (tuple(s.qualified for s in chain.steps), chain.sink_category)
            for chain in finder.find_chains()
        )

    versions = [
        gadget_program(sink_in_b=True),
        gadget_program(sink_in_b=False),
        gadget_program(sink_in_b=True, with_extra=True),
        gadget_program(sink_in_b=True, define_util=True),
    ]
    session = IncrementalAnalyzer(versions[0], versioned=True)
    vg = session.versioned
    reference = {0: chain_keys(vg.begin_snapshot())}

    stop = threading.Event()
    observations = []
    errors = []

    def reader():
        local = []
        while not stop.is_set() and len(local) < 30:
            snap = vg.begin_snapshot()
            try:
                local.append((version_of(snap), chain_keys(snap)))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)
                return
        observations.extend(local)

    threads = [threading.Thread(target=reader) for _ in range(READERS)]
    for thread in threads:
        thread.start()
    for classes in versions[1:]:
        session.update(classes)
        current = vg.begin_snapshot()
        reference[version_of(current)] = chain_keys(current)
    stop.set()
    for thread in threads:
        thread.join()

    assert not errors, errors
    assert vg.version == len(versions) - 1
    seen_versions = {version for version, _ in observations}
    assert seen_versions  # the readers did observe something
    for version, keys in observations:
        assert keys == reference[version], version
    # the sink toggles really did change the chain lists between
    # versions, so the identity above is not vacuous
    assert reference[0] != reference[1]

"""MVCC version-chain battery: frozen versions, copy-on-write staging,
commit/abort semantics, and the differential contract that a committed
overlay equals applying the same mutations to a plain graph.

The concurrency half (reader threads pinned to snapshots while a
writer commits) lives in ``test_mvcc_concurrency.py``.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import GraphError
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.mvcc import VersionedGraph, version_of
from repro.graphdb.snapshot import fingerprint_digest, graph_fingerprint

from tests.graphdb.test_mutation_properties import (
    apply_ops,
    assert_matches_rebuild,
    op,
)


def seed_graph():
    """A small graph with every structure the COW overlay must handle:
    labels, property indexes, typed adjacency, rel-property indexes."""
    g = PropertyGraph()
    for label in ("Class", "Method"):
        for key in ("NAME", "IS_SINK"):
            g.create_index(label, key)
    g.create_relationship_index("PRUNED")
    nodes = [
        g.create_node(["Class"], {"NAME": f"C{i}", "IS_SINK": i % 2 == 0})
        for i in range(6)
    ]
    for i in range(5):
        props = {"PRUNED": True} if i % 2 else None
        g.create_relationship("CALL", nodes[i], nodes[i + 1], props)
    g.create_relationship("ALIAS", nodes[0], nodes[3])
    return g


class TestFreeze:
    def test_frozen_graph_rejects_every_mutator(self):
        g = seed_graph()
        node = next(iter(g._nodes.values()))
        rel = next(iter(g._rels.values()))
        g.freeze()
        assert g.frozen
        for call in (
            lambda: g.create_node(["Class"]),
            lambda: g.create_relationship("CALL", node.id, node.id),
            lambda: g.delete_node(node.id, detach=True),
            lambda: g.delete_relationship(rel.id),
            lambda: g.set_node_property(node.id, "NAME", "X"),
            lambda: g.set_relationship_property(rel.id, "PRUNED", False),
            lambda: g.create_index("Class", "IS_SINK"),
            lambda: g.create_relationship_index("WEIGHT"),
        ):
            with pytest.raises(GraphError, match="frozen"):
                call()

    def test_reads_still_work_on_frozen_graph(self):
        g = seed_graph()
        before = graph_fingerprint(g)
        g.freeze()
        assert graph_fingerprint(g) == before
        assert g.find_nodes("Class", NAME="C0")

    def test_fingerprint_digest_memoised_only_when_frozen(self):
        g = seed_graph()
        d1 = fingerprint_digest(g)
        assert not hasattr(g, "_fingerprint_digest")  # mutable: no memo
        g.freeze()
        d2 = fingerprint_digest(g)
        assert d2 == d1
        assert g._fingerprint_digest == d2  # frozen: memoised


class TestVersionChain:
    def test_base_is_frozen_and_versioned(self):
        vg = VersionedGraph(seed_graph())
        snap = vg.begin_snapshot()
        assert snap.frozen
        assert version_of(snap) == 0
        assert vg.version == 0

    def test_commit_publishes_new_version_pinned_readers_unaffected(self):
        vg = VersionedGraph(seed_graph())
        pinned = vg.begin_snapshot()
        before = graph_fingerprint(pinned)
        with vg.write_txn() as txn:
            txn.graph.create_node(["Class"], {"NAME": "NEW"})
            # not published yet: readers still see version 0
            assert vg.begin_snapshot() is pinned
        assert vg.version == 1
        current = vg.begin_snapshot()
        assert version_of(current) == 1
        assert current is not pinned
        assert graph_fingerprint(pinned) == before
        assert current.find_nodes("Class", NAME="NEW")
        assert not pinned.find_nodes("Class", NAME="NEW")

    def test_abort_discards_staging(self):
        vg = VersionedGraph(seed_graph())
        pinned = vg.begin_snapshot()
        with vg.write_txn() as txn:
            txn.graph.create_node(["Class"], {"NAME": "DROPPED"})
            txn.abort()
        assert vg.version == 0
        assert vg.begin_snapshot() is pinned

    def test_writer_exception_aborts(self):
        vg = VersionedGraph(seed_graph())
        pinned = vg.begin_snapshot()
        with pytest.raises(RuntimeError):
            with vg.write_txn() as txn:
                txn.graph.create_node(["Class"], {"NAME": "DROPPED"})
                raise RuntimeError("boom")
        assert vg.version == 0
        assert vg.begin_snapshot() is pinned

    def test_replace_commits_external_graph(self):
        vg = VersionedGraph(seed_graph())
        other = PropertyGraph()
        other.create_node(["Method"], {"NAME": "m"})
        with vg.write_txn() as txn:
            txn.replace(other)
        current = vg.begin_snapshot()
        assert version_of(current) == 1
        assert current is other
        assert current.frozen

    def test_commit_after_close_raises(self):
        vg = VersionedGraph(seed_graph())
        with vg.write_txn() as txn:
            pass
        with pytest.raises(GraphError, match="closed"):
            txn.commit()

    def test_version_of_plain_graph_is_none(self):
        assert version_of(PropertyGraph()) is None


class TestCopyOnWrite:
    def test_point_write_privatizes_o_touched_not_o_graph(self):
        g = seed_graph()
        n = g.node_count
        vg = VersionedGraph(g)
        with vg.write_txn() as txn:
            target = next(iter(txn.graph._nodes))
            txn.graph.set_node_property(target, "NAME", "RENAMED")
            stats = txn.cow_stats()
        assert stats["owned_nodes"] == 1
        assert stats["owned_rels"] == 0
        assert stats["owned_out_lists"] == 0
        assert stats["ops"] == 1
        committed = vg.begin_snapshot()
        # every untouched entity object is shared by identity
        shared = sum(
            1
            for nid, node in committed._nodes.items()
            if g._nodes[nid] is node
        )
        assert shared == n - 1
        assert all(
            g._rels[rid] is rel for rid, rel in committed._rels.items()
        )

    def test_base_entity_objects_never_mutated(self):
        g = seed_graph()
        vg = VersionedGraph(g)
        target = next(iter(g._nodes))
        old_name = g._nodes[target].properties["NAME"]
        with vg.write_txn() as txn:
            txn.graph.set_node_property(target, "NAME", "RENAMED")
        assert g._nodes[target].properties["NAME"] == old_name

    def test_create_index_on_existing_pair_shares_tables(self):
        g = seed_graph()
        vg = VersionedGraph(g)
        base_table = g.indexes._property_indexes[("Class", "NAME")]
        with vg.write_txn() as txn:
            txn.graph.create_index("Class", "NAME")  # already declared
            stats = txn.cow_stats()
        assert stats["owned_nodes"] == 0
        committed = vg.begin_snapshot()
        # the shared table object was not copied, let alone mutated
        assert (
            committed.indexes._property_indexes[("Class", "NAME")]
            is base_table
        )

    def test_ensure_private_entities_unshares_everything(self):
        g = seed_graph()
        vg = VersionedGraph(g)
        with vg.write_txn() as txn:
            txn.ensure_private_entities()
            assert all(
                g._nodes[nid] is not node
                for nid, node in txn.graph._nodes.items()
            )
            assert all(
                g._rels[rid] is not rel
                for rid, rel in txn.graph._rels.items()
            )
            # direct entity mutation is now safe for the base
            next(iter(txn.graph._nodes.values())).properties["NAME"] = "X"
        assert all(
            node.properties["NAME"] != "X" for node in g._nodes.values()
        )

    def test_delete_node_in_overlay_keeps_base_intact(self):
        g = seed_graph()
        before = graph_fingerprint(g)
        vg = VersionedGraph(g)
        with vg.write_txn() as txn:
            victim = next(iter(txn.graph._nodes))
            txn.graph.delete_node(victim, detach=True)
        assert graph_fingerprint(g) == before
        committed = vg.begin_snapshot()
        assert victim not in committed._nodes
        assert_matches_rebuild(committed)


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    scripts=st.lists(
        st.lists(op, min_size=1, max_size=8), min_size=1, max_size=4
    )
)
def test_cow_commits_equal_plain_graph_mutation(scripts):
    """Differential oracle: running edit scripts through MVCC write
    transactions yields, version by version, exactly the fingerprints
    of applying the same scripts to one plain graph — and each frozen
    version's derived structures survive an independent rebuild check.
    """
    def fresh():
        g = PropertyGraph()
        for label in ("Class", "Method"):
            for key in ("NAME", "IS_SINK"):
                g.create_index(label, key)
        g.create_relationship_index("PRUNED")
        return g

    plain = fresh()
    vg = VersionedGraph(fresh())
    pinned = {0: (vg.begin_snapshot(), graph_fingerprint(vg.begin_snapshot()))}
    for script in scripts:
        apply_ops(plain, script)
        with vg.write_txn() as txn:
            apply_ops(txn.graph, script)
        version = vg.version
        snap = vg.begin_snapshot()
        assert version_of(snap) == version
        assert graph_fingerprint(snap) == graph_fingerprint(plain)
        assert_matches_rebuild(snap)
        pinned[version] = (snap, graph_fingerprint(snap))
    # every previously pinned version still fingerprints identically:
    # no commit ever reached back into a published version
    for _, (snap, fp) in pinned.items():
        assert graph_fingerprint(snap) == fp

"""Write-ahead-log battery: durable round trips, sparse-id base
snapshots, compaction, and the corruption matrix (torn tails recover
cleanly and fingerprint-identically; mid-log corruption is a
structured refusal) — same contract style as ``test_snapshot_v3.py``.
"""

import os
import struct

import pytest

from repro.errors import StorageError
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.mvcc import VersionedGraph
from repro.graphdb.snapshot import fingerprint_digest, graph_fingerprint
from repro.graphdb.wal import (
    WAL_MAGIC,
    WriteAheadLog,
    apply_ops,
)

_FRAME = struct.Struct("<BIQ")
_HEADER_SIZE = struct.calcsize("<8sHH")


def build_graph(with_holes=False):
    g = PropertyGraph()
    g.create_index("Class", "NAME")
    g.create_relationship_index("PRUNED")
    nodes = [g.create_node(["Class"], {"NAME": f"C{i}"}) for i in range(5)]
    rels = [
        g.create_relationship(
            "CALL", nodes[i], nodes[i + 1],
            {"PRUNED": True} if i % 2 else None,
        )
        for i in range(4)
    ]
    if with_holes:
        g.delete_relationship(rels[1])
        g.delete_node(nodes[2], detach=True)
    return g


def durable(tmp_path, **kwargs):
    return VersionedGraph.open_durable(
        str(tmp_path / "graph.wal"), fsync=False, **kwargs
    )


def mutate_twice(vg):
    """Two committed transactions covering every op kind."""
    with vg.write_txn() as txn:
        g = txn.graph
        a = g.create_node(["Class"], {"NAME": "A"})
        b = g.create_node(["Class"], {"NAME": "B"})
        g.create_relationship("CALL", a, b, {"PRUNED": True})
        g.create_index("Class", "IS_SINK")
        g.create_relationship_index("WEIGHT")
    with vg.write_txn() as txn:
        g = txn.graph
        c = g.create_node(["Method"], {"NAME": "m"})
        rel = g.create_relationship("ALIAS", c, c)
        g.set_node_property(c, "NAME", "m2")
        g.set_relationship_property(rel, "WEIGHT", 3)
        g.delete_relationship(rel)
        g.delete_node(c)


def frames(path):
    """(offset, kind, length) for each record in the log."""
    with open(path, "rb") as fh:
        data = fh.read()
    out = []
    pos = _HEADER_SIZE
    while pos + _FRAME.size <= len(data):
        kind, _crc, length = _FRAME.unpack_from(data, pos)
        out.append((pos, kind, length))
        pos += _FRAME.size + length
    return out, data


class TestRoundTrip:
    def test_create_append_replay(self, tmp_path):
        vg = durable(tmp_path)
        mutate_twice(vg)
        want = graph_fingerprint(vg.begin_snapshot())
        reopened = durable(tmp_path)
        assert reopened.version == 2
        assert graph_fingerprint(reopened.begin_snapshot()) == want
        replayed = reopened.wal.replay()
        assert replayed.txns_applied == 2
        assert replayed.truncated_bytes == 0

    def test_reopened_graph_keeps_accepting_commits(self, tmp_path):
        vg = durable(tmp_path)
        mutate_twice(vg)
        reopened = durable(tmp_path)
        with reopened.write_txn() as txn:
            txn.graph.create_node(["Class"], {"NAME": "LATE"})
        assert reopened.version == 3
        again = durable(tmp_path)
        assert again.version == 3
        assert again.begin_snapshot().find_nodes("Class", NAME="LATE")

    def test_sparse_ids_survive_compaction(self, tmp_path):
        graph = build_graph(with_holes=True)
        assert sorted(graph._nodes) != list(range(len(graph._nodes)))
        path = str(tmp_path / "graph.wal")
        wal = WriteAheadLog.create(path, graph, 7, fsync=False)
        replayed = wal.replay()
        assert replayed.version == 7
        assert graph_fingerprint(replayed.graph) == graph_fingerprint(graph)
        assert sorted(replayed.graph._nodes) == sorted(graph._nodes)
        assert replayed.graph._next_node_id == graph._next_node_id
        # undeclared-in-snapshot state comes back too
        assert set(replayed.graph._rel_prop_indexes) == {"PRUNED"}

    def test_compact_every_folds_journal(self, tmp_path):
        vg = durable(tmp_path, compact_every=2)
        mutate_twice(vg)  # second commit hits the compaction threshold
        recs, _ = frames(vg.wal.path)
        assert [kind for _, kind, _ in recs] == [1]  # BASE only
        reopened = durable(tmp_path)
        assert reopened.version == 2
        assert graph_fingerprint(reopened.begin_snapshot()) == (
            graph_fingerprint(vg.begin_snapshot())
        )

    def test_stale_bases_are_collected(self, tmp_path):
        vg = durable(tmp_path, compact_every=1)
        mutate_twice(vg)
        bases = [
            name
            for name in os.listdir(tmp_path)
            if ".base." in name and not name.endswith(".tmp")
        ]
        assert bases == ["graph.wal.base.2"]

    def test_explicit_compact(self, tmp_path):
        vg = durable(tmp_path)
        mutate_twice(vg)
        vg.compact()
        recs, _ = frames(vg.wal.path)
        assert [kind for _, kind, _ in recs] == [1]
        assert durable(tmp_path).version == 2


class TestCorruptionMatrix:
    def _wal_with_two_txns(self, tmp_path):
        vg = durable(tmp_path)
        mutate_twice(vg)
        return vg.wal.path, graph_fingerprint(vg.begin_snapshot())

    def test_truncated_tail_recovers_to_last_durable_commit(self, tmp_path):
        path, _ = self._wal_with_two_txns(tmp_path)
        recs, data = frames(path)
        assert len(recs) == 3  # BASE + 2 TXN
        after_first_txn = recs[2][0]
        fp_v1 = None
        # chop anywhere inside the final record: short frame, short
        # payload, single byte — every cut is a torn tail
        for cut in (after_first_txn + 1, after_first_txn + _FRAME.size,
                    len(data) - 1):
            with open(path, "wb") as fh:
                fh.write(data[:cut])
            wal = WriteAheadLog.attach(path, fsync=False)
            replayed = wal.replay(recover=True)
            assert replayed.version == 1
            assert replayed.txns_applied == 1
            assert replayed.truncated_bytes == cut - after_first_txn
            if fp_v1 is None:
                fp_v1 = graph_fingerprint(replayed.graph)
            assert graph_fingerprint(replayed.graph) == fp_v1
            # recovery truncated the torn bytes: a second replay is clean
            assert os.path.getsize(path) == after_first_txn
            assert wal.replay().truncated_bytes == 0

    def test_bitflip_in_final_record_is_a_torn_write(self, tmp_path):
        path, _ = self._wal_with_two_txns(tmp_path)
        recs, data = frames(path)
        after_first_txn = recs[2][0]
        corrupted = bytearray(data)
        corrupted[-3] ^= 0xFF  # payload byte of the final record
        with open(path, "wb") as fh:
            fh.write(corrupted)
        replayed = WriteAheadLog.attach(path, fsync=False).replay()
        assert replayed.version == 1
        assert os.path.getsize(path) == after_first_txn

    def test_bitflip_with_intact_data_after_is_structured_refusal(
        self, tmp_path
    ):
        path, _ = self._wal_with_two_txns(tmp_path)
        recs, data = frames(path)
        first_txn_payload = recs[1][0] + _FRAME.size
        corrupted = bytearray(data)
        corrupted[first_txn_payload + 2] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(corrupted)
        with pytest.raises(StorageError, match="intact data after"):
            WriteAheadLog.attach(path, fsync=False).replay()
        # recovery did NOT truncate: the data is preserved for forensics
        assert os.path.getsize(path) == len(data)

    def test_bad_magic(self, tmp_path):
        path, _ = self._wal_with_two_txns(tmp_path)
        with open(path, "r+b") as fh:
            fh.write(b"NOTAWAL!")
        with pytest.raises(StorageError, match="bad magic"):
            WriteAheadLog.attach(path, fsync=False).replay()

    def test_truncated_header(self, tmp_path):
        path = str(tmp_path / "graph.wal")
        with open(path, "wb") as fh:
            fh.write(WAL_MAGIC[:4])
        with pytest.raises(StorageError, match="truncated header"):
            WriteAheadLog.attach(path, fsync=False).replay()

    def test_missing_base_record(self, tmp_path):
        path = str(tmp_path / "graph.wal")
        with open(path, "wb") as fh:
            fh.write(struct.pack("<8sHH", WAL_MAGIC, 1, 0))
        with pytest.raises(StorageError, match="missing BASE"):
            WriteAheadLog.attach(path, fsync=False).replay()

    def test_tampered_base_snapshot_fails_digest_check(self, tmp_path):
        path, _ = self._wal_with_two_txns(tmp_path)
        base = next(
            str(tmp_path / name)
            for name in os.listdir(tmp_path)
            if ".base." in name
        )
        from repro.graphdb.storage import save_graph

        save_graph(build_graph(), base, format="v3")
        with pytest.raises(StorageError, match="fingerprint mismatch"):
            WriteAheadLog.attach(path, fsync=False).replay()

    def test_attach_missing_log(self, tmp_path):
        with pytest.raises(StorageError, match="not found"):
            WriteAheadLog.attach(str(tmp_path / "absent.wal"))

    def test_id_drift_refuses_replay(self, tmp_path):
        path, _ = self._wal_with_two_txns(tmp_path)
        wal = WriteAheadLog.attach(path, fsync=False)
        # journal a creation whose recorded id cannot match the base
        wal.append_txn(3, [["n+", 999, ["Class"], {}]])
        with pytest.raises(StorageError, match="id drift"):
            wal.replay()


class TestApplyOps:
    def test_unknown_op_kind(self):
        with pytest.raises(StorageError, match="unknown op kind"):
            apply_ops(PropertyGraph(), [["??", 1]])

    def test_digest_matches_mvcc_commit_path(self, tmp_path):
        """The op journal written by a COW transaction replays to the
        exact committed graph (digest equality, not just shape)."""
        vg = durable(tmp_path)
        mutate_twice(vg)
        assert fingerprint_digest(
            durable(tmp_path).begin_snapshot()
        ) == fingerprint_digest(vg.begin_snapshot())

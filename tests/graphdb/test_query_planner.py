"""Differential tests: planned execution ≡ naive interpreter.

The planner in :mod:`repro.graphdb.plan` promises row-multiset identity
with the legacy interpreter for every query it accepts (and exact row
order whenever the naive engine's output order is determined by ORDER
BY).  These tests enforce that promise three ways:

* hand-written regression pins for the planner-specific behaviours —
  reversed anchors, predicate pushdown, bound-variable joins, top-k
  LIMIT handling, and the EXPLAIN/PROFILE surfaces;
* a query suite run against a real (corpus-derived) CPG;
* hypothesis-generated random graphs × random queries.
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphdb.graph import PropertyGraph
from repro.graphdb.plan import build_plan, split_conjuncts, expr_variables
from repro.graphdb.query import parse_query, run_query, _hashable
from repro.errors import QueryExecutionError


def row_multiset(result):
    return Counter(
        tuple(_hashable(row[c]) for c in result.columns) for row in result.rows
    )


def assert_equivalent(graph, cypher):
    """Planned ≡ naive as row multisets (and profiled ≡ planned exactly)."""
    naive = run_query(graph, cypher, optimize=False)
    planned = run_query(graph, cypher)
    profiled = run_query(graph, cypher, profile=True)
    assert planned.columns == naive.columns
    assert row_multiset(planned) == row_multiset(naive), cypher
    assert profiled.rows == planned.rows, cypher
    assert profiled.plan is not None and profiled.plan.profiled
    explained = run_query(graph, cypher, explain=True)
    assert explained.rows == [] and explained.plan is not None
    explained.plan.render()  # must not raise
    return naive, planned


def assert_identical(graph, cypher):
    """Planned ≡ naive as exact row lists (total ORDER BY or aggregates)."""
    naive, planned = assert_equivalent(graph, cypher)
    assert planned.rows == naive.rows, cypher
    return naive, planned


# ---------------------------------------------------------------------------
# A small deterministic call-graph fixture
# ---------------------------------------------------------------------------


@pytest.fixture()
def chain_graph():
    g = PropertyGraph()
    g.create_index("Method", "NAME")
    g.create_index("Method", "IS_SINK")
    ids = []
    for i in range(40):
        node = g.create_node(
            ["Method"],
            {"NAME": f"m{i}", "IS_SINK": i % 9 == 0, "WEIGHT": i % 5},
        )
        ids.append(node.id)
    for i in range(39):
        g.create_relationship("CALL", ids[i], ids[i + 1])
    for i in range(0, 40, 4):
        g.create_relationship("ALIAS", ids[i], ids[(i * 3 + 1) % 40])
    return g


# ---------------------------------------------------------------------------
# Regression pins: reversed anchor
# ---------------------------------------------------------------------------


class TestReversedAnchor:
    def test_sink_anchored_pattern_is_reversed(self, chain_graph):
        cypher = (
            "MATCH (a:Method)-[c:CALL]->(b:Method {IS_SINK: true}) "
            "RETURN a.NAME, b.NAME ORDER BY a.NAME, b.NAME"
        )
        plan = build_plan(chain_graph, parse_query(cypher))
        [pplan] = plan.patterns
        assert pplan.reversed
        assert pplan.anchor.strategy == "index"
        assert (pplan.anchor.label, pplan.anchor.key) == ("Method", "IS_SINK")
        assert pplan.anchor.value is True
        assert pplan.backward_estimate < pplan.forward_estimate
        assert_identical(chain_graph, cypher)

    def test_reversal_examines_far_fewer_anchor_candidates(self, chain_graph):
        cypher = (
            "MATCH (a:Method)-[:CALL]->(b:Method {IS_SINK: true}) "
            "RETURN a.NAME ORDER BY a.NAME"
        )
        profiled = run_query(chain_graph, cypher, profile=True)
        [pplan] = profiled.plan.patterns
        sinks = sum(
            1 for n in chain_graph.nodes("Method") if n.properties["IS_SINK"]
        )
        assert pplan.anchor_checked == sinks  # not the 40-node label scan

    def test_forward_anchor_kept_when_cheaper(self, chain_graph):
        cypher = (
            "MATCH (a:Method {NAME: 'm3'})-[:CALL]->(b:Method) "
            "RETURN b.NAME"
        )
        plan = build_plan(chain_graph, parse_query(cypher))
        [pplan] = plan.patterns
        assert not pplan.reversed
        assert pplan.anchor.strategy == "index"
        assert pplan.anchor.key == "NAME"
        assert_identical(chain_graph, cypher)

    def test_reversed_var_length_rel_binding_order(self, chain_graph):
        # the bound relationship list must follow the pattern as written,
        # even when the engine walked it backwards from the sink anchor
        cypher = (
            "MATCH (a:Method)-[r:CALL*1..2]->"
            "(b:Method {IS_SINK: true}) RETURN r, b.NAME"
        )
        plan = build_plan(chain_graph, parse_query(cypher))
        assert plan.patterns[0].reversed
        naive = run_query(chain_graph, cypher, optimize=False)
        planned = run_query(chain_graph, cypher)
        assert row_multiset(planned) == row_multiset(naive)
        for row in planned.rows:
            rels = row["r"]
            # consecutive rels chain start→end in written direction
            for first, second in zip(rels, rels[1:]):
                assert first.end_id == second.start_id

    def test_undirected_pattern_reversal(self, chain_graph):
        cypher = (
            "MATCH (a:Method)-[c:CALL]-(b:Method {NAME: 'm5'}) "
            "RETURN a.NAME ORDER BY a.NAME"
        )
        plan = build_plan(chain_graph, parse_query(cypher))
        assert plan.patterns[0].reversed
        assert_identical(chain_graph, cypher)


# ---------------------------------------------------------------------------
# Regression pins: predicate pushdown
# ---------------------------------------------------------------------------


class TestPredicatePushdown:
    def test_single_var_conjuncts_pushed_to_their_position(self, chain_graph):
        cypher = (
            "MATCH (a:Method)-[c:CALL]->(b:Method) "
            "WHERE a.WEIGHT > 2 AND b.IS_SINK = true AND a.NAME <> b.NAME "
            "RETURN a.NAME, b.NAME ORDER BY a.NAME, b.NAME"
        )
        plan = build_plan(chain_graph, parse_query(cypher))
        [pplan] = plan.patterns
        assert pplan.reversed  # b.IS_SINK = true makes b the index anchor
        # oriented pattern is (b)<-(a): b filters at position 0, a at 1,
        # and the two-variable conjunct also lands at position 1
        assert len(pplan.position_filters[0]) == 1
        assert len(pplan.position_filters[1]) == 2
        assert plan.residual == []
        assert_identical(chain_graph, cypher)

    def test_where_equality_folds_into_index_anchor(self, chain_graph):
        cypher = "MATCH (a:Method) WHERE a.NAME = 'm11' RETURN a.WEIGHT"
        plan = build_plan(chain_graph, parse_query(cypher))
        anchor = plan.patterns[0].anchor
        assert anchor.strategy == "index"
        assert (anchor.key, anchor.value) == ("NAME", "m11")
        # the conjunct is still evaluated: fold is a narrowing, not a skip
        assert plan.patterns[0].position_filters[0]
        assert_identical(chain_graph, cypher)

    def test_null_equality_not_folded_into_index(self, chain_graph):
        # missing properties compare equal to null, but indexes only
        # cover present values — folding would drop rows
        cypher = "MATCH (a:Method) WHERE a.MISSING = null RETURN count(*)"
        plan = build_plan(chain_graph, parse_query(cypher))
        assert plan.patterns[0].anchor.key != "MISSING"
        assert_identical(chain_graph, cypher)

    def test_cross_pattern_conjunct_waits_for_second_pattern(self, chain_graph):
        cypher = (
            "MATCH (a:Method {IS_SINK: true}), (b:Method) "
            "WHERE b.WEIGHT = a.WEIGHT AND b.IS_SINK = false "
            "RETURN a.NAME, b.NAME ORDER BY a.NAME, b.NAME"
        )
        plan = build_plan(chain_graph, parse_query(cypher))
        first, second = plan.patterns
        assert not any(first.position_filters[0] is f for f in ())  # sanity
        # b-only conjunct and the join conjunct both live on pattern 2
        assert sum(len(fs) for fs in first.position_filters) == 0
        assert sum(len(fs) for fs in second.position_filters) == 2
        assert plan.residual == []
        assert_identical(chain_graph, cypher)

    def test_or_predicate_stays_whole(self, chain_graph):
        cypher = (
            "MATCH (a:Method) WHERE a.WEIGHT = 4 OR a.IS_SINK = true "
            "RETURN a.NAME ORDER BY a.NAME"
        )
        conjuncts = split_conjuncts(parse_query(cypher).where)
        assert len(conjuncts) == 1  # OR is not split
        assert expr_variables(conjuncts[0]) == {"a"}
        assert_identical(chain_graph, cypher)


# ---------------------------------------------------------------------------
# Pipeline behaviours
# ---------------------------------------------------------------------------


class TestPipeline:
    def test_order_by_limit_topk_matches_sort_slice(self, chain_graph):
        assert_identical(
            chain_graph,
            "MATCH (a:Method) RETURN a.NAME, a.WEIGHT "
            "ORDER BY a.WEIGHT DESC, a.NAME SKIP 3 LIMIT 7",
        )

    def test_bare_limit_short_circuits_but_same_multiset_window(self, chain_graph):
        cypher = "MATCH (a:Method) RETURN a.NAME LIMIT 5"
        naive = run_query(chain_graph, cypher, optimize=False)
        planned = run_query(chain_graph, cypher)
        # anchor candidates are id-ordered in both engines, so even the
        # unordered LIMIT window agrees here
        assert planned.rows == naive.rows
        profiled = run_query(chain_graph, cypher, profile=True)
        # short-circuit: the scan stopped after 5 anchor rows
        assert profiled.plan.patterns[0].anchor_checked == 5

    def test_aggregate_and_distinct(self, chain_graph):
        assert_identical(
            chain_graph,
            "MATCH (a:Method) RETURN a.WEIGHT, count(*) "
            "ORDER BY a.WEIGHT",
        )
        assert_equivalent(
            chain_graph, "MATCH (a:Method) RETURN DISTINCT a.IS_SINK"
        )

    def test_empty_match_count_star(self, chain_graph):
        assert_identical(chain_graph, "MATCH (x:NoSuchLabel) RETURN count(*)")

    def test_explain_does_not_execute(self, chain_graph):
        result = run_query(
            chain_graph,
            "MATCH (a:Method)-[:CALL]->(b:Method) RETURN a.NAME",
            explain=True,
        )
        assert result.rows == []
        assert result.plan.patterns[0].rows_out == 0
        text = result.plan.render()
        assert "anchor" in text and "expand" in text

    def test_profile_render_includes_counters(self, chain_graph):
        result = run_query(
            chain_graph,
            "MATCH (a:Method {IS_SINK: true}) RETURN a.NAME ORDER BY a.NAME",
            profile=True,
        )
        text = result.plan.render()
        assert "profiled" in text
        assert "rows=" in text and "time=" in text
        as_dict = result.plan.to_dict()
        assert as_dict["rows_returned"] == len(result.rows)

    def test_naive_engine_rejects_explain_and_profile(self, chain_graph):
        with pytest.raises(QueryExecutionError):
            run_query(chain_graph, "MATCH (a) RETURN a", optimize=False,
                      explain=True)
        with pytest.raises(QueryExecutionError):
            run_query(chain_graph, "MATCH (a) RETURN a", optimize=False,
                      profile=True)

    def test_naive_engine_has_no_plan(self, chain_graph):
        result = run_query(chain_graph, "MATCH (a:Method) RETURN a.NAME",
                           optimize=False)
        assert result.plan is None


# ---------------------------------------------------------------------------
# Query suite over a corpus-derived CPG
# ---------------------------------------------------------------------------


CPG_QUERY_SUITE = [
    "MATCH (m:Method {IS_SINK: true}) RETURN m.SIGNATURE ORDER BY m.SIGNATURE",
    "MATCH (a:Method)-[c:CALL]->(b:Method {IS_SINK: true}) "
    "RETURN a.SIGNATURE, b.NAME ORDER BY a.SIGNATURE, b.NAME",
    "MATCH (c:Class)-[:HAS]->(m:Method) WHERE m.IS_SINK = true "
    "RETURN c.NAME, count(m) AS sinks ORDER BY c.NAME",
    "MATCH (a:Method)-[:CALL|ALIAS*1..3]->(b:Method {IS_SINK: true}) "
    "RETURN DISTINCT a.SIGNATURE ORDER BY a.SIGNATURE",
    "MATCH (a:Method {IS_SOURCE: true})-[:CALL]->(b:Method) "
    "RETURN a.NAME, b.NAME ORDER BY a.NAME, b.NAME LIMIT 25",
    "MATCH (m:Method) WHERE m.NAME STARTS WITH 'read' "
    "RETURN m.SIGNATURE ORDER BY m.SIGNATURE",
    "MATCH (c:Class {NAME: 'java.util.HashMap'})-[:HAS]->(m:Method) "
    "RETURN m.NAME ORDER BY m.NAME",
]


@pytest.fixture(scope="module")
def corpus_cpg():
    from repro.core.cpg import CPGBuilder
    from repro.corpus import build_component, build_lang_base
    from repro.jvm.hierarchy import ClassHierarchy

    classes = list(build_lang_base())
    classes.extend(build_component("commons-collections(3.2.1)").classes)
    classes.extend(build_component("CommonsBeanutils1").classes)
    return CPGBuilder(ClassHierarchy(classes)).build().graph


class TestCorpusQuerySuite:
    @pytest.mark.parametrize("cypher", CPG_QUERY_SUITE)
    def test_planned_matches_naive_on_cpg(self, corpus_cpg, cypher):
        assert_equivalent(corpus_cpg, cypher)

    def test_sink_anchored_query_reverses_on_cpg(self, corpus_cpg):
        plan = build_plan(corpus_cpg, parse_query(CPG_QUERY_SUITE[1]))
        [pplan] = plan.patterns
        assert pplan.reversed
        assert pplan.anchor.strategy == "index"
        assert pplan.anchor.key == "IS_SINK"


# ---------------------------------------------------------------------------
# Hypothesis: random graphs × random queries
# ---------------------------------------------------------------------------


NODE_LABELS = ["Method", "Class", "Field"]
REL_TYPES = ["CALL", "ALIAS", "HAS"]
PROP_KEYS = ["NAME", "KIND", "WEIGHT"]


@st.composite
def graphs(draw):
    g = PropertyGraph()
    g.create_index("Method", "NAME")
    g.create_index("Method", "KIND")
    n = draw(st.integers(min_value=0, max_value=14))
    ids = []
    for i in range(n):
        labels = draw(
            st.lists(st.sampled_from(NODE_LABELS), min_size=1, max_size=2,
                     unique=True)
        )
        props = {}
        for key in PROP_KEYS:
            if draw(st.booleans()):
                props[key] = draw(
                    st.one_of(
                        st.integers(min_value=-3, max_value=3),
                        st.sampled_from(["x", "y", "readObject"]),
                        st.booleans(),
                        st.none(),
                    )
                )
        ids.append(g.create_node(labels, props).id)
    if ids:
        m = draw(st.integers(min_value=0, max_value=3 * len(ids)))
        for _ in range(m):
            g.create_relationship(
                draw(st.sampled_from(REL_TYPES)),
                draw(st.sampled_from(ids)),
                draw(st.sampled_from(ids)),
            )
    return g


@st.composite
def queries(draw):
    n_nodes = draw(st.integers(min_value=1, max_value=3))
    node_vars = [f"n{i}" for i in range(n_nodes)]
    parts = []
    for i, var in enumerate(node_vars):
        label = draw(
            st.one_of(st.none(), st.sampled_from(NODE_LABELS))
        )
        inline = ""
        if draw(st.booleans()):
            key = draw(st.sampled_from(PROP_KEYS))
            value = draw(st.sampled_from(["'x'", "'readObject'", "1", "true"]))
            inline = f" {{{key}: {value}}}"
        node = f"({var}{':' + label if label else ''}{inline})"
        if i:
            rel_type = draw(st.one_of(st.none(), st.sampled_from(REL_TYPES)))
            var_len = draw(st.booleans()) and draw(st.booleans())
            body = f":{rel_type}" if rel_type else ""
            if var_len:
                body += "*1..2"
            arrow = draw(st.sampled_from(["-[{}]->", "<-[{}]-", "-[{}]-"]))
            parts.append(arrow.format(body) if body else
                         arrow.replace("[{}]", ""))
        parts.append(node)
    pattern = "".join(parts)

    conjuncts = []
    n_conj = draw(st.integers(min_value=0, max_value=2))
    for _ in range(n_conj):
        var = draw(st.sampled_from(node_vars))
        key = draw(st.sampled_from(PROP_KEYS))
        kind = draw(st.sampled_from(["=", ">", "exists", "join"]))
        if kind == "=":
            value = draw(st.sampled_from(["'x'", "1", "true", "null"]))
            conjuncts.append(f"{var}.{key} = {value}")
        elif kind == ">":
            conjuncts.append(f"{var}.{key} > 0")
        elif kind == "exists":
            conjuncts.append(f"exists({var}.{key})")
        else:
            other = draw(st.sampled_from(node_vars))
            conjuncts.append(f"{var}.{key} = {other}.{key}")
    where = f" WHERE {' AND '.join(conjuncts)}" if conjuncts else ""

    ret_var = draw(st.sampled_from(node_vars))
    ret_key = draw(st.sampled_from(PROP_KEYS))
    if draw(st.booleans()):
        items = f"{ret_var}.{ret_key} AS v, count(*) AS c"
        order = " ORDER BY v" if draw(st.booleans()) else ""
        tail = ""
    else:
        distinct = "DISTINCT " if draw(st.booleans()) else ""
        items = f"{distinct}{ret_var}.{ret_key} AS v"
        order = " ORDER BY v" if draw(st.booleans()) else ""
        tail = ""
        if draw(st.booleans()):
            tail = f" SKIP {draw(st.integers(min_value=0, max_value=2))}"
        if draw(st.booleans()):
            tail += f" LIMIT {draw(st.integers(min_value=0, max_value=4))}"
    return f"MATCH {pattern}{where} RETURN {items}{order}{tail}"


class TestDifferentialFuzz:
    @settings(max_examples=120, deadline=None)
    @given(graph=graphs(), cypher=queries())
    def test_planned_matches_naive(self, graph, cypher):
        naive = run_query(graph, cypher, optimize=False)
        planned = run_query(graph, cypher)
        has_window = " SKIP " in cypher or " LIMIT " in cypher
        if has_window:
            # a SKIP/LIMIT window over a non-total order is any slice of
            # the full multiset — compare against the unwindowed query
            base = cypher.split(" SKIP ")[0].split(" LIMIT ")[0]
            full = row_multiset(run_query(graph, base, optimize=False))
            window = row_multiset(planned)
            assert all(window[k] <= full[k] for k in window), cypher
            assert len(planned.rows) == len(naive.rows), cypher
        else:
            assert row_multiset(planned) == row_multiset(naive), cypher
        profiled = run_query(graph, cypher, profile=True)
        assert profiled.rows == planned.rows, cypher

    @settings(max_examples=60, deadline=None)
    @given(graph=graphs(), cypher=queries())
    def test_ordered_rows_identical(self, graph, cypher):
        base = cypher.split(" SKIP ")[0].split(" LIMIT ")[0]
        if " ORDER BY" not in base:
            base = base + " ORDER BY v"
        naive = run_query(graph, base, optimize=False)
        planned = run_query(graph, base)
        keys = [tuple(_hashable(r["v"]) for r in naive.rows)]
        # exact order is only pinned when the sort key is total
        if len(set(keys[0])) == len(keys[0]):
            assert planned.rows == naive.rows, base

"""Hypothesis property: the bottom-up SCC fixpoint is visit-order
independent — permuting the in-SCC member order (and with it the
Kleene iteration schedule) always converges to the same summaries."""

import random

from hypothesis import given, settings, strategies as st

from repro.analysis.taint import TaintSummaryEngine
from repro.jvm.builder import ProgramBuilder
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.model import SERIALIZABLE


def _scc_program():
    """One four-member mutually recursive SCC (a ring with a chord) over
    distinct taint sources, so partial propagation differs iteration by
    iteration while the fixpoint itself is unique."""
    pb = ProgramBuilder()
    with pb.cls("t.Ring", implements=[SERIALIZABLE]) as c:
        c.field("seed", "java.lang.Object")
        c.field("spare", "java.lang.Object", transient=True)
        with c.method("a", params=["java.lang.Object"],
                      returns="java.lang.Object") as m:
            m.if_ne(m.param(1), 0, "rec")
            v = m.get_field(m.this, "seed")
            m.ret(v)  # base case: a contributes (0, "seed")
            m.label("rec")
            out = m.invoke(m.this, "t.Ring", "b", [m.param(1)],
                           returns="java.lang.Object")
            m.ret(out)
        with c.method("b", params=["java.lang.Object"],
                      returns="java.lang.Object") as m:
            m.if_ne(m.param(1), 0, "rec")
            m.ret(m.param(1))  # base case: b contributes (1, None)
            m.label("rec")
            out = m.invoke(m.this, "t.Ring", "c", [m.param(1)],
                           returns="java.lang.Object")
            m.ret(out)
        with c.method("c", params=["java.lang.Object"],
                      returns="java.lang.Object") as m:
            out = m.invoke(m.this, "t.Ring", "d", [m.param(1)],
                           returns="java.lang.Object")
            m.ret(out)
        with c.method("d", params=["java.lang.Object"],
                      returns="java.lang.Object") as m:
            m.if_ne(m.param(1), 0, "chord")
            out = m.invoke(m.this, "t.Ring", "a", [m.param(1)],
                           returns="java.lang.Object")
            m.ret(out)
            m.label("chord")
            out = m.invoke(m.this, "t.Ring", "b", [m.param(1)],
                           returns="java.lang.Object")
            m.ret(out)
    return pb.build()


CLASSES = _scc_program()
BASELINE = TaintSummaryEngine(ClassHierarchy(CLASSES)).compute_all()


def test_the_scc_is_genuinely_mutual():
    """Guard the fixture: all four ring methods sit in one SCC and their
    fixpoint needed more than one Kleene iteration."""
    engine = TaintSummaryEngine(ClassHierarchy(CLASSES))
    engine.compute_all()
    assert engine.stats["iterations"] > engine.stats["sccs"]
    ring = {k for k in BASELINE if "t.Ring" in k}
    assert len(ring) == 4


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=40, deadline=None)
def test_fixpoint_is_scc_order_independent(seed):
    rng = random.Random(seed)

    def shuffle(members):
        out = list(members)
        rng.shuffle(out)
        return out

    engine = TaintSummaryEngine(ClassHierarchy(CLASSES), scc_order=shuffle)
    assert engine.compute_all() == BASELINE

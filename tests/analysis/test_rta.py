"""RTA instantiated-type reachability: seed set, liveness queries, edge
annotation, and the pruned-search/post-hoc-refinement differential."""

import pytest

from repro.analysis.rta import (
    RTAResult,
    TypeReachability,
    annotate_type_reachability,
    instantiated_types,
)
from repro.core import Tabby
from repro.core.cpg import ALIAS, CALL, RTA_DEAD
from repro.corpus.patterns import plant_interface_chain, plant_rta_decoy
from repro.errors import AnalysisError
from repro.jvm.builder import ProgramBuilder
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.model import SERIALIZABLE


def _mixed_program():
    """One live interface chain plus one ghost-handler decoy, with an
    allocation site and a transient-field declared type on the side."""
    pb = ProgramBuilder()
    plant_interface_chain(pb, "t.Xform", "t.XformImpl", "t.TrueSrc", "exec")
    plant_rta_decoy(pb, "t.Handler", "t.GhostHandler", "t.DecoySrc")
    with pb.cls("t.Allocated") as c:
        with c.method("noop") as m:
            m.ret()
    with pb.cls("t.Factory") as c:
        with c.method("make", returns="java.lang.Object") as m:
            obj = m.new("t.Allocated")
            m.ret(obj)
    with pb.cls("t.Repopulated") as c:
        with c.method("noop") as m:
            m.ret()
    with pb.cls("t.Holder", implements=[SERIALIZABLE]) as c:
        c.field("slot", "t.Repopulated", transient=True)
    return pb.build()


@pytest.fixture(scope="module")
def classes():
    return _mixed_program()


@pytest.fixture(scope="module")
def hierarchy(classes):
    return ClassHierarchy(classes)


class TestInstantiatedTypes:
    def test_allocation_sites_are_seeded(self, hierarchy):
        assert "t.Allocated" in instantiated_types(hierarchy)

    def test_serializable_classes_are_seeded(self, hierarchy):
        live = instantiated_types(hierarchy)
        assert "t.TrueSrc" in live
        assert "t.XformImpl" in live
        assert "t.Holder" in live

    def test_transient_field_declared_type_is_seeded(self, hierarchy):
        # the deserializer repopulates transient refs with a trusted
        # instance of the declared type, so that type is constructible
        assert "t.Repopulated" in instantiated_types(hierarchy)

    def test_ghost_impl_is_not_seeded(self, hierarchy):
        live = instantiated_types(hierarchy)
        assert "t.GhostHandler" not in live
        # non-serializable, never allocated helper classes stay out too
        assert "t.Factory" not in live


class TestClassIsLive:
    def test_object_and_phantom_are_live(self, hierarchy):
        types = TypeReachability(hierarchy)
        assert types.class_is_live("java.lang.Object")
        assert types.class_is_live("com.example.NotInClosure")
        assert types.class_is_live(None)

    def test_interface_liveness_follows_subtypes(self, hierarchy):
        types = TypeReachability(hierarchy)
        assert types.class_is_live("t.Xform")  # live impl exists
        assert not types.class_is_live("t.Handler")  # only the ghost
        assert not types.class_is_live("t.GhostHandler")

    def test_queries_are_memoised(self, hierarchy):
        types = TypeReachability(hierarchy)
        assert types.class_is_live("t.Handler") is types.class_is_live(
            "t.Handler"
        )


class TestAnnotation:
    @pytest.fixture()
    def cpg(self, classes):
        return Tabby().add_classes(classes).build_cpg()

    def test_marks_only_dead_dispatch_edges(self, cpg):
        result = annotate_type_reachability(cpg)
        assert isinstance(result, RTAResult)
        dead = cpg.graph.relationships_with_property(RTA_DEAD)
        assert len(dead) == result.dead_edges > 0
        for rel in dead:
            assert rel.type in (CALL, ALIAS)
            assert rel.get(RTA_DEAD) is True
        dead_callees = {
            cpg.graph.node(rel.end_id).get("CLASSNAME")
            for rel in dead
            if rel.type == CALL
        }
        assert dead_callees == {"t.Handler"}
        dead_children = {
            cpg.graph.node(rel.start_id).get("CLASSNAME")
            for rel in dead
            if rel.type == ALIAS
        }
        assert dead_children == {"t.GhostHandler"}

    def test_live_chain_edges_stay_unmarked(self, cpg):
        annotate_type_reachability(cpg)
        for rel in cpg.graph.relationships(CALL):
            callee = cpg.graph.node(rel.end_id).get("CLASSNAME")
            if callee in ("t.Xform", "t.XformImpl"):
                assert rel.get(RTA_DEAD) is None

    def test_idempotent(self, cpg):
        first = annotate_type_reachability(cpg)
        second = annotate_type_reachability(cpg)
        assert first.dead_edges == second.dead_edges
        assert len(cpg.graph.relationships_with_property(RTA_DEAD)) == (
            first.dead_edges
        )

    def test_counts_are_consistent(self, cpg):
        result = annotate_type_reachability(cpg)
        assert result.dead_alias_edges <= result.alias_edges
        assert result.dead_call_edges <= result.call_edges
        doc = result.as_dict()
        assert doc["dead_alias_edges"] + doc["dead_call_edges"] == (
            result.dead_edges
        )

    def test_refuses_snapshot_loaded_cpg(self, classes, tmp_path):
        """A snapshot carries no class bodies, so the seed set would be
        empty and every defined dispatch would look dead — refuse."""
        path = str(tmp_path / "cpg.snap")
        Tabby().add_classes(classes).save_cpg(path)
        loaded = Tabby().load_cpg(path)
        with pytest.raises(AnalysisError):
            annotate_type_reachability(loaded.build_cpg())


class TestPrunedSearchDifferential:
    def test_skip_rta_dead_equals_post_hoc_refinement(self, classes):
        """Searching over the annotated CPG with dead edges skipped
        returns exactly the chains a post-hoc RTA refinement keeps
        (with per-sink capping off, so both sides see every chain)."""
        from repro.analysis.chain_refiner import ChainRefiner

        tabby = Tabby().add_classes(classes)
        baseline = tabby.find_gadget_chains(max_results_per_sink=None)
        kept = ChainRefiner(tabby.cpg.hierarchy, modes=("rta",)).refine(
            baseline
        ).kept

        tabby.annotate_rta()
        pruned = tabby.find_gadget_chains(
            max_results_per_sink=None, skip_rta_dead=True
        )
        assert [c.key for c in pruned] == [c.key for c in kept]
        assert len(pruned) < len(baseline)

    def test_skip_without_annotation_is_baseline(self, classes):
        tabby = Tabby().add_classes(classes)
        baseline = tabby.find_gadget_chains(max_results_per_sink=None)
        skipped = tabby.find_gadget_chains(
            max_results_per_sink=None, skip_rta_dead=True
        )
        assert [c.key for c in skipped] == [c.key for c in baseline]

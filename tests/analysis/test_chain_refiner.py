"""ChainRefiner verdicts: the decoys are refuted with the right reason,
kept output is a verbatim subset, and — the soundness differential — no
ground-truth or oracle-effective chain is ever refuted."""

import pytest

from repro.analysis.chain_refiner import REFINE_MODES, ChainRefiner
from repro.core import Tabby
from repro.corpus import build_component, build_lang_base
from repro.errors import AnalysisError
from repro.jvm.hierarchy import ClassHierarchy
from repro.verify import ChainVerifier


def _component(name):
    spec = build_component(name)
    classes = build_lang_base() + spec.classes
    tabby = Tabby().add_classes(classes)
    chains = tabby.find_gadget_chains()
    return spec, classes, tabby, chains


@pytest.fixture(scope="module")
def cc3():
    return _component("commons-collections(3.2.1)")


@pytest.fixture(scope="module")
def hibernate():
    return _component("Hibernate")


class TestConstruction:
    def test_rejects_unknown_modes(self):
        hierarchy = ClassHierarchy(build_lang_base())
        with pytest.raises(AnalysisError, match="unknown refinement mode"):
            ChainRefiner(hierarchy, modes=("rta", "cha"))

    def test_rejects_empty_modes(self):
        hierarchy = ClassHierarchy(build_lang_base())
        with pytest.raises(AnalysisError, match="at least one"):
            ChainRefiner(hierarchy, modes=())

    def test_rejects_empty_hierarchy(self):
        with pytest.raises(AnalysisError, match="snapshot"):
            ChainRefiner(ClassHierarchy([]))

    def test_mode_order_is_canonical(self):
        hierarchy = ClassHierarchy(build_lang_base())
        refiner = ChainRefiner(hierarchy, modes=("taint", "rta"))
        assert refiner.modes == REFINE_MODES


class TestDecoyRefutation:
    def test_cc3_rta_decoy_is_refuted(self, cc3):
        spec, classes, tabby, chains = cc3
        result = ChainRefiner(tabby.cpg.hierarchy).refine(chains)
        assert result.statistics["refuted_by_kind"] == {
            "rta-dead-dispatch": 1
        }
        ((chain, reason),) = result.refuted
        assert chain.steps[0].class_name.endswith("ObservableCollection")
        assert "StandardModificationHandler" in reason.detail or (
            "ModificationHandler" in reason.detail
        )
        assert not ChainVerifier(classes).verify(chain).effective

    def test_hibernate_taint_decoy_is_refuted(self, hibernate):
        spec, classes, tabby, chains = hibernate
        result = ChainRefiner(tabby.cpg.hierarchy).refine(chains)
        assert result.statistics["refuted_by_kind"] == {"untainted-sink": 1}
        ((chain, reason),) = result.refuted
        assert chain.steps[0].class_name.endswith("UpdateTimestampsCache")
        assert not ChainVerifier(classes).verify(chain).effective

    def test_decoys_escape_the_guard_pass(self, cc3, hibernate):
        """The planted decoys carry no constant guard: only whole-CPG
        refinement can explain them (the >= 1-beyond-guard gate)."""
        from repro.core.refine import GuardFeasibilityRefiner

        for spec, classes, tabby, chains in (cc3, hibernate):
            guard_kept, _ = GuardFeasibilityRefiner(
                tabby.cpg.hierarchy
            ).refine(chains)
            guard_keys = {c.key for c in guard_kept}
            for chain, _reason in ChainRefiner(
                tabby.cpg.hierarchy
            ).refine(chains).refuted:
                assert chain.key in guard_keys


class TestSoundness:
    @pytest.mark.parametrize("fixture", ["cc3", "hibernate"])
    def test_no_true_chain_is_refuted(self, fixture, request):
        spec, classes, tabby, chains = request.getfixturevalue(fixture)
        verifier = ChainVerifier(classes)
        result = ChainRefiner(tabby.cpg.hierarchy).refine(chains)
        for chain, _reason in result.refuted:
            assert spec.match_known(chain) is None
            assert not verifier.verify(chain).effective

    @pytest.mark.parametrize("fixture", ["cc3", "hibernate"])
    def test_kept_is_a_verbatim_ordered_subset(self, fixture, request):
        spec, classes, tabby, chains = request.getfixturevalue(fixture)
        result = ChainRefiner(tabby.cpg.hierarchy).refine(chains)
        kept = iter(result.kept)
        remaining = next(kept, None)
        for chain in chains:
            if remaining is chain:
                remaining = next(kept, None)
        assert remaining is None  # every kept chain is an input, in order

    def test_unknown_never_refutes(self, cc3):
        """Chains the replay cannot follow produce UNKNOWN and survive."""
        spec, classes, tabby, chains = cc3
        refiner = ChainRefiner(tabby.cpg.hierarchy)
        result = refiner.refine(chains)
        statuses = {v.status for v in result.verdicts}
        assert statuses <= {"kept", "refuted", "unknown"}
        assert len(result.kept) + len(result.refuted) == len(chains)

    def test_statistics_shape(self, cc3):
        spec, classes, tabby, chains = cc3
        stats = ChainRefiner(tabby.cpg.hierarchy).refine(chains).statistics
        assert stats["modes"] == ["rta", "taint"]
        assert stats["chains"] == len(chains)
        assert stats["kept"] + stats["refuted"] + stats["unknown"] == len(chains)
        assert stats["rta_instantiated"] > 0
        assert stats["taint"]["methods"] > 0


class TestSingleModes:
    def test_rta_only_skips_taint_refutations(self, hibernate):
        spec, classes, tabby, chains = hibernate
        result = ChainRefiner(tabby.cpg.hierarchy, modes=("rta",)).refine(
            chains
        )
        assert result.statistics["refuted"] == 0
        assert "taint" not in result.statistics

    def test_taint_only_skips_rta_refutations(self, cc3):
        spec, classes, tabby, chains = cc3
        result = ChainRefiner(tabby.cpg.hierarchy, modes=("taint",)).refine(
            chains
        )
        assert "rta-dead-dispatch" not in result.statistics["refuted_by_kind"]
        assert "rta_instantiated" not in result.statistics


class TestApiIntegration:
    def test_refine_kwarg_filters_and_records(self, cc3):
        spec, classes, _tabby, chains = cc3
        tabby = Tabby().add_classes(classes)
        refined = tabby.find_gadget_chains(refine=("rta", "taint"))
        assert tabby.last_refine is not None
        assert [c.key for c in refined] == [
            c.key for c in tabby.last_refine.kept
        ]
        assert len(tabby.last_refutations) == 1
        assert tabby.last_refuted == [c for c, _ in tabby.last_refutations]
        assert len(refined) == len(chains) - 1

    def test_refine_rejects_snapshot_loaded_cpg(self, cc3, tmp_path):
        spec, classes, _tabby, _chains = cc3
        path = str(tmp_path / "cpg.snap")
        Tabby().add_classes(classes).save_cpg(path)
        loaded = Tabby().load_cpg(path)
        with pytest.raises(AnalysisError):
            loaded.find_gadget_chains(refine=("rta",))

    def test_verdict_objects_serialize(self, cc3):
        spec, classes, tabby, chains = cc3
        result = ChainRefiner(tabby.cpg.hierarchy).refine(chains)
        for verdict in result.verdicts:
            doc = verdict.as_dict()
            assert doc["status"] in ("kept", "refuted", "unknown")
            if verdict.reason is not None:
                assert doc["reason"]["kind"] == verdict.reason.kind

"""Field-sensitive taint summaries: the lattice, whole-closure field
trust, per-method transfer functions, bottom-up composition, and the
on-disk summary cache."""

import pytest

from repro.analysis.taint import (
    TAINT_TOP,
    UNTAINTED,
    FieldFacts,
    TaintSummaryEngine,
    decode_value,
    encode_value,
    is_untainted,
    join_values,
)
from repro.jvm.builder import ProgramBuilder
from repro.jvm.hierarchy import ClassHierarchy
from repro.jvm.model import SERIALIZABLE


class TestLattice:
    def test_join_is_union_with_top_absorbing(self):
        a = frozenset({(1, None)})
        b = frozenset({(0, "f")})
        assert join_values(a, b) == a | b
        assert join_values(a, TAINT_TOP) is TAINT_TOP
        assert join_values(TAINT_TOP, b) is TAINT_TOP
        assert join_values(UNTAINTED, a) == a

    def test_is_untainted_only_for_empty_set(self):
        assert is_untainted(UNTAINTED)
        assert not is_untainted(TAINT_TOP)
        assert not is_untainted(frozenset({(2, None)}))

    def test_encode_decode_round_trip(self):
        for value in (
            TAINT_TOP,
            UNTAINTED,
            frozenset({(0, None), (0, "f"), (3, None)}),
        ):
            assert decode_value(encode_value(value)) == value or (
                value is TAINT_TOP and decode_value(encode_value(value)) is TAINT_TOP
            )

    def test_encoding_is_deterministic(self):
        value = frozenset({(2, None), (0, "b"), (0, "a")})
        assert encode_value(value) == encode_value(frozenset(sorted(value))) \
            == [[0, "a"], [0, "b"], [2, None]]


def _facts_program():
    pb = ProgramBuilder()
    with pb.cls("t.Pure", implements=[SERIALIZABLE]) as c:
        c.field("clean", "java.lang.Object", transient=True)
        c.field("dirty", "java.lang.Object")
        c.field("primitive", "int", transient=True)
        c.field("written", "java.lang.Object", transient=True)
        with c.method("poke", params=["java.lang.Object"]) as m:
            m.set_field(m.this, "written", m.param(1))
    with pb.cls("t.Mixed") as c:
        # same name as t.Pure.clean but NOT transient: the by-name trust
        # classification must reject the name entirely
        c.field("shared", "java.lang.Object")
    with pb.cls("t.Pure2") as c:
        c.field("shared", "java.lang.Object", transient=True)
    return ClassHierarchy(pb.build())


class TestFieldFacts:
    @pytest.fixture(scope="class")
    def facts(self):
        return FieldFacts.compute(_facts_program())

    def test_transient_unstored_reference_is_trusted(self, facts):
        assert "clean" in facts.trusted

    def test_non_transient_is_not_trusted(self, facts):
        assert "dirty" not in facts.trusted

    def test_transient_primitive_is_not_trusted(self, facts):
        # the oracle lets attacker bytes through for primitives
        assert "primitive" not in facts.trusted

    def test_stored_field_is_not_trusted(self, facts):
        assert "written" in facts.stored
        assert "written" not in facts.trusted

    def test_mixed_declarations_are_not_trusted(self, facts):
        assert "shared" not in facts.trusted

    def test_read_field_semantics(self, facts):
        this = frozenset({(0, None)})
        assert facts.read_field("clean", this) == UNTAINTED
        assert facts.read_field("written", this) is TAINT_TOP
        assert facts.read_field("dirty", this) == frozenset({(0, "dirty")})
        # reading off a parameter collapses to the parameter channel
        assert facts.read_field("dirty", frozenset({(2, None)})) == frozenset(
            {(2, None)}
        )
        assert facts.read_field("dirty", TAINT_TOP) is TAINT_TOP

    def test_digest_tracks_content(self):
        a = FieldFacts(frozenset({"x"}), frozenset())
        b = FieldFacts(frozenset({"y"}), frozenset())
        assert a.digest() != b.digest()
        assert a.digest() == FieldFacts(frozenset({"x"}), frozenset()).digest()


def _summary_program():
    pb = ProgramBuilder()
    with pb.cls("t.Lib") as c:
        c.field("payload", "java.lang.Object")
        c.field("spare", "java.lang.Object", transient=True)
        with c.method("identity", params=["java.lang.Object"],
                      returns="java.lang.Object") as m:
            m.ret(m.param(1))
        with c.method("constant", returns="java.lang.Object") as m:
            obj = m.new("java.lang.Object")
            m.ret(obj)
        with c.method("readPayload", returns="java.lang.Object") as m:
            v = m.get_field(m.this, "payload")
            m.ret(v)
        with c.method("readSpare", returns="java.lang.Object") as m:
            v = m.get_field(m.this, "spare")
            m.ret(v)
        with c.method("wrap", params=["java.lang.Object"],
                      returns="java.lang.Object") as m:
            out = m.invoke(m.this, "t.Lib", "identity", [m.param(1)],
                           returns="java.lang.Object")
            m.ret(out)
        with c.method("launder", params=["java.lang.Object"],
                      returns="java.lang.Object") as m:
            # calls a phantom method: must degrade to TOP, never to clean
            out = m.invoke(m.param(1), "ext.Unknown", "mix", [m.param(1)],
                           returns="java.lang.Object")
            m.ret(out)
    with pb.cls("t.Rec") as c:
        with c.method("ping", params=["java.lang.Object"],
                      returns="java.lang.Object") as m:
            out = m.invoke(m.this, "t.Rec", "pong", [m.param(1)],
                           returns="java.lang.Object")
            m.ret(out)
        with c.method("pong", params=["java.lang.Object"],
                      returns="java.lang.Object") as m:
            m.if_ne(m.param(1), 0, "rec")
            m.ret(m.param(1))  # the base case seeding the SCC fixpoint
            m.label("rec")
            out = m.invoke(m.this, "t.Rec", "ping", [m.param(1)],
                           returns="java.lang.Object")
            m.ret(out)
    return pb.build()


def _summary(engine, cls, name):
    hierarchy = engine.hierarchy
    method = hierarchy.get(cls).find_method(name, 1) or hierarchy.get(
        cls
    ).find_method(name, 0)
    return engine.summary_for(method)


class TestSummaries:
    @pytest.fixture(scope="class")
    def engine(self):
        return TaintSummaryEngine(ClassHierarchy(_summary_program()))

    def test_identity_returns_its_parameter(self, engine):
        assert _summary(engine, "t.Lib", "identity").returns == frozenset(
            {(1, None)}
        )

    def test_fresh_allocation_is_untainted(self, engine):
        assert _summary(engine, "t.Lib", "constant").returns == UNTAINTED

    def test_field_read_names_the_channel(self, engine):
        assert _summary(engine, "t.Lib", "readPayload").returns == frozenset(
            {(0, "payload")}
        )

    def test_trusted_field_read_is_clean(self, engine):
        assert _summary(engine, "t.Lib", "readSpare").returns == UNTAINTED

    def test_interprocedural_composition(self, engine):
        # wrap(p) = identity(p): the callee's channel rewrites to the
        # caller's parameter
        assert _summary(engine, "t.Lib", "wrap").returns == frozenset(
            {(1, None)}
        )

    def test_unresolvable_call_degrades_to_top(self, engine):
        assert _summary(engine, "t.Lib", "launder").returns is TAINT_TOP

    def test_mutual_recursion_reaches_a_fixpoint(self, engine):
        ping = _summary(engine, "t.Rec", "ping")
        pong = _summary(engine, "t.Rec", "pong")
        assert ping.returns == pong.returns == frozenset({(1, None)})

    def test_sites_record_position_taint(self, engine):
        wrap = _summary(engine, "t.Lib", "wrap")
        (site,) = [s for s in wrap.sites if s.method_name == "identity"]
        assert site.positions[0] == frozenset({(0, None)})
        assert site.positions[1] == frozenset({(1, None)})

    def test_bodiless_method_has_no_summary(self, engine):
        pb = ProgramBuilder()
        ib = pb.interface("t.I")
        ib.abstract_method("go", params=["java.lang.Object"])
        ib.finish()
        h = ClassHierarchy(pb.build())
        e = TaintSummaryEngine(h)
        method = h.get("t.I").find_method("go", 1)
        assert e.summary_for(method) is None

    def test_compute_all_is_deterministic(self):
        hierarchy = ClassHierarchy(_summary_program())
        first = TaintSummaryEngine(hierarchy).compute_all()
        second = TaintSummaryEngine(hierarchy).compute_all()
        assert first == second


class TestSummaryCache:
    def test_round_trip_hits_on_second_engine(self, tmp_path):
        hierarchy = ClassHierarchy(_summary_program())
        cold = TaintSummaryEngine(hierarchy, cache_dir=str(tmp_path))
        baseline = cold.compute_all()
        assert cold.cache.stats.stored > 0

        warm = TaintSummaryEngine(hierarchy, cache_dir=str(tmp_path))
        cached = warm.compute_all()
        assert cached == baseline
        assert warm.cache.stats.hits > 0
        # everything came from disk: no fixpoint work was done
        assert warm.stats["methods"] == 0

    def test_field_fact_changes_invalidate_the_cache(self, tmp_path):
        hierarchy = ClassHierarchy(_summary_program())
        TaintSummaryEngine(hierarchy, cache_dir=str(tmp_path)).compute_all()

        pb = ProgramBuilder()
        with pb.cls("t.Extra") as c:
            # declares `spare` non-transient: "spare" loses trust
            c.field("spare", "java.lang.Object")
        changed = ClassHierarchy(_summary_program() + pb.build())
        warm = TaintSummaryEngine(changed, cache_dir=str(tmp_path))
        summaries = warm.compute_all()
        key = [k for k in summaries if "readSpare" in k]
        assert summaries[key[0]].returns == frozenset({(0, "spare")})

"""End-to-end integration: disk jars -> analysis -> persisted CPG ->
re-query -> verification, across subsystem boundaries."""

import os

import pytest

from repro import ChainVerifier, Tabby
from repro.corpus import build_component, build_lang_base
from repro.graphdb.query import run_query
from repro.graphdb.storage import load_graph
from repro.jvm.jar import JarArchive, load_classpath, write_jar


@pytest.fixture(scope="module")
def workspace(tmp_path_factory):
    """The cc321 component written to disk as jasm jars."""
    directory = tmp_path_factory.mktemp("ws")
    spec = build_component("commons-collections(3.2.1)")
    write_jar(JarArchive("rt-base", build_lang_base()), str(directory / "rt-base.jar"))
    write_jar(
        JarArchive("commons-collections-3.2.1", spec.classes),
        str(directory / "commons-collections-3.2.1.jar"),
    )
    return str(directory), spec


class TestJarRoundTripAnalysis:
    def test_analysis_from_disk_equals_in_memory(self, workspace):
        directory, spec = workspace
        from_disk = Tabby().load_classpath([directory]).find_gadget_chains()
        in_memory = (
            Tabby()
            .add_classes(build_lang_base() + spec.classes)
            .find_gadget_chains()
        )
        assert {c.key for c in from_disk} == {c.key for c in in_memory}

    def test_verifier_against_disk_classes(self, workspace):
        directory, spec = workspace
        archives = load_classpath([directory])
        classes = [c for a in archives for c in a.classes]
        chains = Tabby().add_classes(classes).find_gadget_chains()
        verifier = ChainVerifier(classes)
        effective = [c for c in chains if verifier.verify(c).effective]
        assert len(effective) >= spec.known_count - 1  # proxy chain missing


class TestPersistedCPG:
    def test_chain_search_survives_save_load(self, workspace, tmp_path):
        directory, spec = workspace
        tabby = Tabby().load_classpath([directory])
        live_chains = tabby.find_gadget_chains()
        path = str(tmp_path / "cc.cpg.json.gz")
        tabby.save_cpg(path)

        graph = load_graph(path)
        assert graph.node_count == tabby.cpg.graph.node_count
        # the persisted graph can answer the same reachability question
        result = run_query(
            graph,
            "MATCH (src:Method {IS_SOURCE: true})-[:CALL|ALIAS*1..10]-"
            "(snk:Method {IS_SINK: true}) RETURN DISTINCT src.CLASSNAME AS c",
        )
        queried_sources = set(result.values("c"))
        chain_sources = {c.source.class_name for c in live_chains}
        assert chain_sources <= queried_sources

    def test_action_properties_persisted(self, workspace, tmp_path):
        directory, _ = workspace
        tabby = Tabby().load_classpath([directory])
        path = str(tmp_path / "cc.cpg.json.gz")
        tabby.save_cpg(path)
        graph = load_graph(path)
        node = next(
            n
            for n in graph.nodes("Method")
            if n.get("NAME") == "transform" and not n.get("IS_PHANTOM", False)
            and n.get("ACTION")
        )
        assert "final-param-1" in node["ACTION"]


class TestCrossToolConsistency:
    def test_tabby_chains_all_explainable(self, workspace):
        """Every Tabby chain is either ground-truth known, oracle-
        effective, or a conditional fake — never unclassifiable."""
        directory, spec = workspace
        archives = load_classpath([directory])
        classes = [c for a in archives for c in a.classes]
        chains = Tabby().add_classes(classes).find_gadget_chains()
        verifier = ChainVerifier(classes)
        for chain in chains:
            known = spec.match_known(chain) is not None
            report = verifier.verify(chain)
            assert known or report.effective or (
                "no feasible execution" in report.reason
            )

    def test_chain_steps_are_connected_in_cpg(self, workspace):
        """Adjacent chain steps correspond to CALL/ALIAS edges."""
        directory, _ = workspace
        tabby = Tabby().load_classpath([directory])
        cpg = tabby.build_cpg()
        for chain in tabby.find_gadget_chains():
            for step in chain.steps:
                node = cpg.method_node(step.class_name, step.method_name)
                assert node is not None, f"missing node for {step}"

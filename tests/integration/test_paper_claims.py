"""Direct checks of the paper's narrative claims, outside the tables."""

import pytest

from repro import ChainVerifier, SourceCatalog, Tabby
from repro.corpus import build_component, build_lang_base


class TestSectionIVF:
    """'Reflections on existing tools' — the four bullets."""

    def test_tabby_interprocedural_beats_intraprocedural_default(self):
        """Bullet 3: a callee that destroys taint must not leave a
        reportable chain (compare tests/core's scrub case)."""
        from repro.jvm.builder import ProgramBuilder
        from repro.jvm.model import SERIALIZABLE

        pb = ProgramBuilder()
        with pb.cls("t.Src", implements=[SERIALIZABLE]) as c:
            c.field("cmd", "java.lang.Object")
            with c.method("scrub", params=["java.lang.Object"], returns="java.lang.Object") as m:
                fresh = m.new("t.Src")
                m.ret(fresh)
            with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
                v = m.get_field(m.this, "cmd")
                clean = m.invoke(m.this, "t.Src", "scrub", [v], returns="java.lang.Object")
                rt = m.invoke_static("java.lang.Runtime", "getRuntime", returns="java.lang.Runtime")
                m.invoke(rt, "java.lang.Runtime", "exec", [clean])
        chains = Tabby().add_classes(build_lang_base() + pb.build()).find_gadget_chains()
        assert chains == []

    def test_intermediate_results_reusable(self, tmp_path):
        """Bullet 4: results persist and answer later custom queries."""
        spec = build_component("Rome")
        tabby = Tabby().add_classes(build_lang_base() + spec.classes)
        tabby.build_cpg()
        path = str(tmp_path / "rome.cpg.json")
        tabby.save_cpg(path)
        from repro.graphdb.storage import load_graph

        graph = load_graph(path)
        assert graph.relationship_count == tabby.cpg.graph.relationship_count


class TestSectionVB:
    """Dynamic proxy / reflection limitation."""

    def test_proxy_chain_exists_but_is_missed(self):
        spec = build_component("Groovy1")
        classes = build_lang_base() + spec.classes
        proxy_specs = [k for k in spec.known_chains if k.via_proxy]
        assert proxy_specs, "Groovy1 must carry a proxy chain"
        chains = Tabby().add_classes(classes).find_gadget_chains()
        for known in proxy_specs:
            assert not any(known.matches(c) for c in chains)


class TestSectionIVE:
    """Result description: fake chains come from logical judgments."""

    def test_every_tabby_fake_is_guard_broken(self):
        spec = build_component("BeanShell1")
        classes = build_lang_base() + spec.classes
        chains = Tabby().add_classes(classes).find_gadget_chains()
        verifier = ChainVerifier(classes)
        fakes = [
            c
            for c in chains
            if spec.match_known(c) is None and not verifier.verify(c).effective
        ]
        assert len(fakes) == 2
        for chain in fakes:
            report = verifier.verify(chain)
            assert "no feasible execution" in report.reason


class TestSourceProfiles:
    def test_native_profile_is_stricter(self):
        spec = build_component("Rome")  # hashCode-rooted chains
        classes = build_lang_base() + spec.classes
        extended = Tabby().add_classes(classes).find_gadget_chains()
        native = (
            Tabby(sources=SourceCatalog.native())
            .add_classes(classes)
            .find_gadget_chains()
        )
        assert len(native) < len(extended)

"""Every corpus component survives the full jar round trip: export to
zip archives of jasm text, reload, and produce identical analysis."""

import pytest

from repro.core import Tabby
from repro.corpus import COMPONENT_NAMES, build_component, build_lang_base
from repro.jvm import jasm
from repro.jvm.jar import JarArchive, read_jar, write_jar


@pytest.mark.parametrize("name", COMPONENT_NAMES)
def test_component_jar_round_trip(name, tmp_path):
    spec = build_component(name)
    path = str(tmp_path / "component.jar")
    write_jar(JarArchive("component", spec.classes), path)
    reloaded = read_jar(path)
    assert sorted(reloaded.class_names) == sorted(c.name for c in spec.classes)
    # the jasm text of the reloaded classes is a fixed point
    original = {c.name: jasm.dump_class(c) for c in spec.classes}
    for cls in reloaded.classes:
        assert jasm.dump_class(cls) == original[cls.name]


@pytest.mark.parametrize("name", ["Rome", "C3P0", "Wicket1"])
def test_component_analysis_identical_after_round_trip(name, tmp_path):
    spec = build_component(name)
    path = str(tmp_path / "component.jar")
    write_jar(JarArchive("component", spec.classes), path)
    reloaded = read_jar(path)
    direct = {
        c.key
        for c in Tabby()
        .add_classes(build_lang_base() + spec.classes)
        .find_gadget_chains()
    }
    via_disk = {
        c.key
        for c in Tabby()
        .add_classes(build_lang_base() + reloaded.classes)
        .find_gadget_chains()
    }
    assert direct == via_disk

"""Robustness properties: the oracle and synthesizer never crash on
tool output over arbitrary generated corpora."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import GadgetInspector, Serianalyzer
from repro.core import Tabby
from repro.corpus.generator import generate_corpus
from repro.errors import VerificationError
from repro.verify import ChainVerifier, PayloadSynthesizer


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 200))
def test_property_verifier_total_on_tabby_output(seed):
    classes = [c for j in generate_corpus(12, seed=seed) for c in j.classes]
    chains = Tabby().add_classes(classes).find_gadget_chains()
    verifier = ChainVerifier(classes)
    for chain in chains:
        report = verifier.verify(chain)  # must not raise
        assert isinstance(report.effective, bool)
        assert report.reason


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 200))
def test_property_verifier_total_on_baseline_output(seed):
    classes = [c for j in generate_corpus(10, seed=seed) for c in j.classes]
    verifier = ChainVerifier(classes)
    for tool in (GadgetInspector(classes), Serianalyzer(classes, step_budget=20_000)):
        result = tool.run()
        for chain in result.chains[:50]:
            verifier.verify(chain)  # must not raise


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 200))
def test_property_synthesizer_total_on_effective_chains(seed):
    classes = [c for j in generate_corpus(12, seed=seed) for c in j.classes]
    chains = Tabby().add_classes(classes).find_gadget_chains()
    verifier = ChainVerifier(classes)
    synthesizer = PayloadSynthesizer(classes)
    for chain in chains:
        if not verifier.verify(chain).effective:
            continue
        try:
            spec = synthesizer.synthesize(chain)
        except VerificationError:
            continue  # declared failure is acceptable; crashing is not
        assert spec.root.class_name == chain.source.class_name

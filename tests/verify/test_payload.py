"""Tests for payload synthesis (§V-C future work)."""

import json

import pytest

from repro.core import Tabby
from repro.corpus import (
    build_component,
    build_jdk8_extras,
    build_lang_base,
    build_scene,
)
from repro.errors import VerificationError
from repro.verify import ChainVerifier, PayloadSynthesizer
from repro.verify.payload import ATTACKER_VALUE


def find_chain(classes, predicate):
    chains = Tabby().add_classes(classes).find_gadget_chains()
    return next(c for c in chains if predicate(c)), chains


class TestURLDNSPayload:
    @pytest.fixture(scope="class")
    def spec(self):
        classes = build_lang_base() + build_jdk8_extras()
        chain, _ = find_chain(
            classes, lambda c: c.source.class_name == "java.util.HashMap"
        )
        return PayloadSynthesizer(classes).synthesize(chain)

    def test_root_is_hashmap(self, spec):
        assert spec.root.class_name == "java.util.HashMap"

    def test_key_field_holds_url(self, spec):
        url = spec.root.fields["key"]
        assert url.class_name == "java.net.URL"

    def test_attacker_value_in_host(self, spec):
        url = spec.root.fields["key"]
        assert url.fields["host"] == ATTACKER_VALUE

    def test_trigger_mentions_native_deserialization(self, spec):
        assert "deserialization" in spec.trigger

    def test_json_round_trips(self, spec):
        data = json.loads(spec.to_json())
        assert data["object_graph"]["class"] == "java.util.HashMap"
        assert data["sink"] == "java.net.InetAddress.getByName()"

    def test_render_is_recipe_shaped(self, spec):
        text = spec.render()
        assert "new java.util.HashMap" in text
        assert ATTACKER_VALUE in text


class TestNestedPayloads:
    def test_chained_transformer_array_nesting(self):
        component = build_component("commons-collections(3.2.1)")
        classes = build_lang_base() + component.classes
        chain, _ = find_chain(
            classes,
            lambda c: c.source.class_name.endswith("TransformedMap")
            and any("ChainedTransformer" in s.class_name for s in c.steps)
            and any("InvokerTransformer" in s.class_name for s in c.steps),
        )
        spec = PayloadSynthesizer(classes).synthesize(chain)
        chained = spec.root.fields["keyTransformer"]
        assert chained.class_name.endswith("ChainedTransformer")
        array = chained.fields["iTransformers"]
        invoker = array.fields["[]"]
        assert invoker.class_name.endswith("InvokerTransformer")
        assert invoker.fields["iMethodName"] == ATTACKER_VALUE

    def test_inherited_method_dispatch_stays_on_same_object(self):
        scene = build_scene("Spring")
        chain, _ = find_chain(
            scene.classes,
            lambda c: any("LazyInit" in s.class_name for s in c.steps),
        )
        spec = PayloadSynthesizer(scene.classes).synthesize(chain)
        target_source = spec.root.fields["targetSource"]
        factory = target_source.fields["beanFactory"]
        # getBean -> lookup is inherited dispatch: ONE factory object
        assert factory.class_name.endswith("SimpleJndiBeanFactory")
        assert target_source.fields["targetBeanName"] == ATTACKER_VALUE


class TestStaticHop:
    def test_static_hop_threads_through_argument(self):
        classes = build_lang_base() + build_jdk8_extras()
        chain, _ = find_chain(
            classes, lambda c: c.source.class_name == "java.util.HashMap"
        )
        spec = PayloadSynthesizer(classes).synthesize(chain)
        # HashMap.readObject -> static hash(key) -> key.hashCode():
        # the URL gadget must land in HashMap.key, not a pseudo-field
        assert "key" in spec.root.fields
        assert not any(k.startswith("<hash") for k in spec.root.fields)


class TestErrors:
    def test_bodyless_source_rejected(self):
        from repro.core.chains import ChainStep, GadgetChain

        classes = build_lang_base()
        chain = GadgetChain(
            [ChainStep("no.Such", "readObject", 1), ChainStep("x.Y", "z", 0)]
        )
        with pytest.raises(VerificationError):
            PayloadSynthesizer(classes).synthesize(chain)

    def test_disconnected_chain_rejected(self):
        from repro.core.chains import ChainStep, GadgetChain

        classes = build_lang_base()
        chain = GadgetChain(
            [
                ChainStep("java.util.HashMap", "readObject", 1),
                ChainStep("completely.Unrelated", "nothing", 0),
                ChainStep("java.lang.Runtime", "exec", 1),
            ]
        )
        with pytest.raises(VerificationError):
            PayloadSynthesizer(classes).synthesize(chain)


class TestEveryEffectiveChainSynthesises:
    @pytest.mark.parametrize(
        "scene_name", ["Spring", "JDK8", "Tomcat", "Jetty", "Apache Dubbo"]
    )
    def test_scene_payloads(self, scene_name):
        """Every oracle-effective chain in every scene yields a payload
        whose root is the chain source and which plants attacker data."""
        scene = build_scene(scene_name)
        chains = Tabby().add_classes(scene.classes).find_gadget_chains()
        verifier = ChainVerifier(scene.classes)
        synthesizer = PayloadSynthesizer(scene.classes)
        effective = [c for c in chains if verifier.verify(c).effective]
        assert effective
        for chain in effective:
            spec = synthesizer.synthesize(chain)
            assert spec.root.class_name == chain.source.class_name
            assert ATTACKER_VALUE in spec.render()

"""Tests for the PoC verification oracle."""

import pytest

from repro.core import SourceCatalog
from repro.core.chains import ChainStep, GadgetChain
from repro.corpus.jdk import build_lang_base
from repro.jvm.builder import ProgramBuilder
from repro.jvm.model import SERIALIZABLE
from repro.verify import ChainVerifier
from repro.verify.values import AInt, ANull, AObject, AString, ATop


def chain(*steps):
    return GadgetChain([ChainStep(c, m, a) for c, m, a in steps])


def direct_exec_program(guarded=False, guard_value=None):
    pb = ProgramBuilder()
    with pb.cls("t.Config") as c:
        c.field("ENABLED", "int", static=True)
    with pb.cls("t.Src", implements=[SERIALIZABLE]) as c:
        c.field("cmd", "java.lang.Object")
        with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
            if guard_value is not None:
                m.set_static("t.Config", "ENABLED", guard_value)
            v = m.get_field(m.this, "cmd")
            if guarded:
                flag = m.get_static("t.Config", "ENABLED")
                m.if_ne(flag, 0, "fire")
                m.goto("end")
                m.label("fire")
            rt = m.invoke_static("java.lang.Runtime", "getRuntime", returns="java.lang.Runtime")
            m.invoke(rt, "java.lang.Runtime", "exec", [v])
            if guarded:
                m.label("end")
            m.ret()
    return build_lang_base() + pb.build()


EXEC_CHAIN = chain(("t.Src", "readObject", 1), ("java.lang.Runtime", "exec", 1))


class TestBasicVerdicts:
    def test_direct_chain_effective(self):
        v = ChainVerifier(direct_exec_program())
        assert v.verify(EXEC_CHAIN).effective

    def test_impossible_guard_rejected(self):
        v = ChainVerifier(direct_exec_program(guarded=True))
        report = v.verify(EXEC_CHAIN)
        assert not report.effective
        assert "no feasible execution" in report.reason

    def test_satisfiable_guard_accepted(self):
        """The guard reads a static the method itself set to nonzero."""
        v = ChainVerifier(direct_exec_program(guarded=True, guard_value=1))
        assert v.verify(EXEC_CHAIN).effective

    def test_source_must_have_body(self):
        v = ChainVerifier(direct_exec_program())
        report = v.verify(chain(("t.Missing", "readObject", 1), ("x", "y", 0)))
        assert not report.effective
        assert "no body" in report.reason

    def test_source_must_be_entry_point(self):
        pb = ProgramBuilder()
        with pb.cls("t.NotSerializable") as c:
            c.field("cmd", "java.lang.Object")
            with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
                v = m.get_field(m.this, "cmd")
                rt = m.invoke_static("java.lang.Runtime", "getRuntime", returns="java.lang.Runtime")
                m.invoke(rt, "java.lang.Runtime", "exec", [v])
        verifier = ChainVerifier(build_lang_base() + pb.build())
        report = verifier.verify(
            chain(("t.NotSerializable", "readObject", 1), ("java.lang.Runtime", "exec", 1))
        )
        assert not report.effective
        assert "entry point" in report.reason


class TestTriggerConditions:
    def test_constant_sink_arg_rejected(self):
        pb = ProgramBuilder()
        with pb.cls("t.Src", implements=[SERIALIZABLE]) as c:
            with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
                rt = m.invoke_static("java.lang.Runtime", "getRuntime", returns="java.lang.Runtime")
                m.invoke(rt, "java.lang.Runtime", "exec", ["fixed"])
        v = ChainVerifier(build_lang_base() + pb.build())
        assert not v.verify(EXEC_CHAIN).effective

    def test_receiver_position_checked(self):
        """File.delete has TC [0]: a fresh File() is not attacker data."""
        pb = ProgramBuilder()
        with pb.cls("t.Src", implements=[SERIALIZABLE]) as c:
            with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
                f = m.new("java.io.File")
                m.invoke(f, "java.io.File", "delete")
        v = ChainVerifier(build_lang_base() + pb.build())
        assert not v.verify(
            chain(("t.Src", "readObject", 1), ("java.io.File", "delete", 0))
        ).effective


class TestDispatchBinding:
    def test_attacker_field_binds_serializable_impl(self):
        pb = ProgramBuilder()
        ib = pb.interface("t.I")
        ib.abstract_method("go", params=["java.lang.Object"])
        ib.finish()
        with pb.cls("t.Impl", implements=["t.I", SERIALIZABLE]) as c:
            c.field("cmd", "java.lang.Object")
            with c.method("go", params=["java.lang.Object"]) as m:
                v = m.get_field(m.this, "cmd")
                rt = m.invoke_static("java.lang.Runtime", "getRuntime", returns="java.lang.Runtime")
                m.invoke(rt, "java.lang.Runtime", "exec", [v])
        with pb.cls("t.Src", implements=[SERIALIZABLE]) as c:
            c.field("d", "java.lang.Object")
            with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
                d = m.get_field(m.this, "d")
                m.invoke_interface(d, "t.I", "go", [d])
        classes = build_lang_base() + pb.build()
        good = chain(
            ("t.Src", "readObject", 1), ("t.I", "go", 1), ("t.Impl", "go", 1),
            ("java.lang.Runtime", "exec", 1),
        )
        assert ChainVerifier(classes).verify(good).effective

    def test_non_serializable_impl_not_bindable(self):
        pb = ProgramBuilder()
        ib = pb.interface("t.I")
        ib.abstract_method("go", params=["java.lang.Object"])
        ib.finish()
        with pb.cls("t.Impl", implements=["t.I"]) as c:  # NOT serializable
            c.field("cmd", "java.lang.Object")
            with c.method("go", params=["java.lang.Object"]) as m:
                v = m.get_field(m.this, "cmd")
                rt = m.invoke_static("java.lang.Runtime", "getRuntime", returns="java.lang.Runtime")
                m.invoke(rt, "java.lang.Runtime", "exec", [v])
        with pb.cls("t.Src", implements=[SERIALIZABLE]) as c:
            c.field("d", "java.lang.Object")
            with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
                d = m.get_field(m.this, "d")
                m.invoke_interface(d, "t.I", "go", [d])
        classes = build_lang_base() + pb.build()
        bad = chain(
            ("t.Src", "readObject", 1), ("t.I", "go", 1), ("t.Impl", "go", 1),
            ("java.lang.Runtime", "exec", 1),
        )
        assert not ChainVerifier(classes).verify(bad).effective

    def test_concrete_allocation_fixes_the_class(self):
        """new X() cannot be re-bound to a different chain class."""
        pb = ProgramBuilder()
        with pb.cls("t.Benign") as c:
            with c.method("toString", returns="java.lang.String") as m:
                m.ret("ok")
        with pb.cls("t.Evil", implements=[SERIALIZABLE]) as c:
            c.field("cmd", "java.lang.Object")
            with c.method("toString", returns="java.lang.String") as m:
                v = m.get_field(m.this, "cmd")
                rt = m.invoke_static("java.lang.Runtime", "getRuntime", returns="java.lang.Runtime")
                m.invoke(rt, "java.lang.Runtime", "exec", [v])
                m.ret("boom")
        with pb.cls("t.Src", implements=[SERIALIZABLE]) as c:
            with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
                b = m.construct("t.Benign")
                m.invoke(b, "java.lang.Object", "toString", returns="java.lang.String")
        classes = build_lang_base() + pb.build()
        fake = chain(
            ("t.Src", "readObject", 1), ("java.lang.Object", "toString", 0),
            ("t.Evil", "toString", 0), ("java.lang.Runtime", "exec", 1),
        )
        assert not ChainVerifier(classes).verify(fake).effective

    def test_dynamic_proxy_binds_anything_tainted(self):
        pb = ProgramBuilder()
        with pb.cls("t.Handler", implements=[SERIALIZABLE]) as c:
            c.field("cmd", "java.lang.Object")
            with c.method("invokeIt", params=["java.lang.Object"]) as m:
                v = m.get_field(m.this, "cmd")
                rt = m.invoke_static("java.lang.Runtime", "getRuntime", returns="java.lang.Runtime")
                m.invoke(rt, "java.lang.Runtime", "exec", [v])
        with pb.cls("t.Src", implements=[SERIALIZABLE]) as c:
            c.field("h", "java.lang.Object")
            with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
                h = m.get_field(m.this, "h")
                m.invoke_dynamic(h, "whatever", [h])
        classes = build_lang_base() + pb.build()
        proxy_chain = chain(
            ("t.Src", "readObject", 1), ("t.Handler", "invokeIt", 1),
            ("java.lang.Runtime", "exec", 1),
        )
        assert ChainVerifier(classes).verify(proxy_chain).effective


class TestSwitchAndLoops:
    def test_concrete_switch_prunes_unreachable_arm(self):
        pb = ProgramBuilder()
        with pb.cls("t.Src", implements=[SERIALIZABLE]) as c:
            c.field("cmd", "java.lang.Object")
            with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
                v = m.get_field(m.this, "cmd")
                zero = m.binop("+", 0, 0)
                m.switch(zero, [(7, "fire")], "end")
                m.label("fire")
                rt = m.invoke_static("java.lang.Runtime", "getRuntime", returns="java.lang.Runtime")
                m.invoke(rt, "java.lang.Runtime", "exec", [v])
                m.label("end")
                m.ret()
        v = ChainVerifier(build_lang_base() + pb.build())
        assert not v.verify(EXEC_CHAIN).effective

    def test_tainted_switch_explores_arms(self):
        pb = ProgramBuilder()
        with pb.cls("t.Src", implements=[SERIALIZABLE]) as c:
            c.field("cmd", "java.lang.Object")
            c.field("mode", "int")
            with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
                v = m.get_field(m.this, "cmd")
                mode = m.get_field(m.this, "mode")
                m.switch(mode, [(7, "fire")], "end")
                m.label("fire")
                rt = m.invoke_static("java.lang.Runtime", "getRuntime", returns="java.lang.Runtime")
                m.invoke(rt, "java.lang.Runtime", "exec", [v])
                m.label("end")
                m.ret()
        v = ChainVerifier(build_lang_base() + pb.build())
        assert v.verify(EXEC_CHAIN).effective

    def test_loop_terminates_within_budget(self):
        pb = ProgramBuilder()
        with pb.cls("t.Src", implements=[SERIALIZABLE]) as c:
            c.field("cmd", "java.lang.Object")
            with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
                v = m.get_field(m.this, "cmd")
                m.label("head")
                count = m.get_field(m.this, "cmd")
                cmp = m.binop("==", count, 0)
                m.iff(cmp, "head")
                rt = m.invoke_static("java.lang.Runtime", "getRuntime", returns="java.lang.Runtime")
                m.invoke(rt, "java.lang.Runtime", "exec", [v])
        v = ChainVerifier(build_lang_base() + pb.build())
        report = v.verify(EXEC_CHAIN)
        assert report.effective
        assert report.steps_used < v.max_steps


class TestValuesDomain:
    def test_null_compares_as_zero(self):
        assert ANull().concrete_int == 0

    def test_attacker_object_fields_tainted(self):
        o = AObject("t.X", attacker=True)
        assert o.get_field("anything").tainted

    def test_concrete_object_fields_null(self):
        o = AObject("t.X", attacker=False)
        assert isinstance(o.get_field("anything"), ANull)

    def test_field_write_read_round_trip(self):
        o = AObject("t.X")
        o.set_field("f", AInt(3))
        assert o.get_field("f").concrete_int == 3

    def test_top_and_string(self):
        assert not ATop().tainted
        assert ATop(tainted=True).tainted
        assert AString("x").value == "x"

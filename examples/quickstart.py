#!/usr/bin/env python
"""Quickstart: find the Figure 1 gadget chain end to end.

Builds the paper's running example (EvilObjectA/EvilObjectB), runs
Tabby over it, prints the recovered chain in the Table I format, and
confirms it with the PoC oracle.

Run:  python examples/quickstart.py
"""

from repro import ChainVerifier, SourceCatalog, Tabby
from repro.jvm import ProgramBuilder, SERIALIZABLE


def build_figure1_classes():
    """The vulnerable program of Figure 1, authored in the builder DSL."""
    pb = ProgramBuilder(jar="demo.jar")

    obj = pb.cls("java.lang.Object", extends=None)
    obj.abstract_method("toString", returns="java.lang.String")
    obj.finish()

    # class EvilObjectB { Object val2;
    #   String toString() { Runtime.getRuntime().exec(val2.toString()); } }
    with pb.cls("demo.EvilObjectB", implements=[SERIALIZABLE]) as c:
        c.field("val2", "java.lang.Object")
        with c.method("toString", returns="java.lang.String") as m:
            val2 = m.get_field(m.this, "val2")
            cmd = m.invoke(val2, "java.lang.Object", "toString",
                           returns="java.lang.String")
            rt = m.invoke_static("java.lang.Runtime", "getRuntime",
                                 returns="java.lang.Runtime")
            m.invoke(rt, "java.lang.Runtime", "exec", [cmd])
            m.ret(cmd)

    # class EvilObjectA { Object val1;
    #   void readObject(ObjectInputStream s) { val1.toString(); } }
    with pb.cls("demo.EvilObjectA", implements=[SERIALIZABLE]) as c:
        c.field("val1", "java.lang.Object")
        with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
            val1 = m.get_field(m.this, "val1")
            m.invoke(val1, "java.lang.Object", "toString",
                     returns="java.lang.String")

    return pb.build()


def main() -> None:
    classes = build_figure1_classes()

    # 1. analyse: semantic extraction -> controllability -> CPG
    tabby = Tabby(sources=SourceCatalog.native())
    tabby.add_classes(classes)
    cpg = tabby.build_cpg()
    print(f"built {cpg!r}")

    # 2. search: tabby-path-finder (Algorithms 2-3), backwards from sinks
    chains = tabby.find_gadget_chains()
    print(f"\n{len(chains)} gadget chain(s) found:\n")
    for chain in chains:
        print(chain.render())

    # 3. confirm: the PoC oracle simulates the deserialization attack
    verifier = ChainVerifier(classes, sources=SourceCatalog.native())
    for chain in chains:
        report = verifier.verify(chain)
        verdict = "EFFECTIVE" if report.effective else "fake"
        print(f"\nverification: {verdict} ({report.reason})")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""The §IV-E remediation loop: find chains, verify them, derive the
minimal deserialization blacklist, and prove the filter kills every
effective chain — the workflow XStream and Apache Dubbo followed with
the authors' reports.

Run:  python examples/blacklist_remediation.py
"""

from repro import ChainVerifier, Tabby
from repro.core import apply_blacklist, derive_blacklist
from repro.corpus import build_component, build_lang_base
from repro.jvm.hierarchy import ClassHierarchy

COMPONENT = "commons-collections(3.2.1)"


def main() -> None:
    spec = build_component(COMPONENT)
    classes = build_lang_base() + spec.classes
    hierarchy = ClassHierarchy(classes)

    chains = Tabby().add_classes(classes).find_gadget_chains()
    verifier = ChainVerifier(classes)
    effective = [
        c for c in chains
        if spec.match_known(c) is not None or verifier.verify(c).effective
    ]
    print(f"{COMPONENT}: {len(chains)} chains reported, "
          f"{len(effective)} effective\n")

    blacklist = derive_blacklist(effective, hierarchy)
    print("derived deserialization filter:")
    for entry in blacklist.entries():
        print(f"  {entry}")

    survivors = apply_blacklist(classes, blacklist)
    still_effective = [c for c in survivors if verifier.verify(c).effective]
    print(f"\nwith the filter installed: {len(survivors)} chains survive, "
          f"{len(still_effective)} still effective")
    assert not still_effective, "the filter must neutralise every chain"
    print("remediation verified: no effective chain survives the filter")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Audit a library the way §IV-C does: run Tabby over the
commons-collections 3.2.1 component, classify every reported chain
against the ysoserial/marshalsec ground truth, and verify the rest with
the PoC oracle — then compare against both baseline tools.

Run:  python examples/audit_commons_collections.py
"""

from repro import ChainVerifier, Tabby
from repro.baselines import GadgetInspector, Serianalyzer
from repro.corpus import build_component, build_lang_base

COMPONENT = "commons-collections(3.2.1)"


def main() -> None:
    spec = build_component(COMPONENT)
    classes = build_lang_base() + spec.classes
    print(f"auditing {spec.name}: {len(spec.classes)} classes, "
          f"{spec.known_count} dataset chains\n")

    chains = Tabby().add_classes(classes).find_gadget_chains()
    verifier = ChainVerifier(classes)

    known, unknown, fake = [], [], []
    for chain in chains:
        if spec.match_known(chain) is not None:
            known.append(chain)
        elif verifier.verify(chain).effective:
            unknown.append(chain)
        else:
            fake.append(chain)

    print(f"Tabby reported {len(chains)} chains: "
          f"{len(known)} known, {len(unknown)} unknown-but-effective, "
          f"{len(fake)} fake\n")

    print("=== a known chain (InvokerTransformer family) ===")
    print(known[0].render())
    print("\n=== an unknown-but-effective chain ===")
    print(unknown[0].render())
    print("\n=== a fake chain (broken by a conditional, §IV-E) ===")
    print(fake[0].render())

    print("\n=== dataset chains the static tools must miss (dynamic proxy) ===")
    for spec_chain in spec.known_chains:
        if spec_chain.via_proxy:
            print(f"  {spec_chain}")

    print("\n=== baseline comparison on the same classes ===")
    gi = GadgetInspector(classes).run()
    sl = Serianalyzer(classes, step_budget=40_000).run()
    print(f"  gadgetinspector: {gi.result_count} chains "
          f"({'ok' if gi.terminated else 'TIMEOUT'})")
    print(f"  serianalyzer:    {sl.result_count} chains "
          f"({'ok' if sl.terminated else 'TIMEOUT'})")


if __name__ == "__main__":
    main()

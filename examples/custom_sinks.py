#!/usr/bin/env python
"""Extend the sink catalog for project-specific auditing (§III-D:
"security researchers can check for the existence of a gadget chain
between any source and sink according to their needs").

A fictional in-house audit framework treats ``AuditLog.logRaw`` as
dangerous (log injection into a SIEM pipeline).  We register it as a
custom sink and find the chain that reaches it.

Run:  python examples/custom_sinks.py
"""

from repro import SinkMethod, Tabby
from repro.jvm import ProgramBuilder, SERIALIZABLE


def build_inhouse_library():
    pb = ProgramBuilder(jar="corp-audit.jar")
    iface = "com.corp.audit.Formatter"
    ib = pb.interface(iface)
    ib.abstract_method("format", params=["java.lang.Object"],
                       returns="java.lang.Object")
    ib.finish()
    with pb.cls("com.corp.audit.RawFormatter", implements=[iface, SERIALIZABLE]) as c:
        c.field("pattern", "java.lang.Object")
        with c.method("format", params=["java.lang.Object"],
                      returns="java.lang.Object") as m:
            payload = m.get_field(m.this, "pattern")
            log = m.new("com.corp.audit.AuditLog")
            m.invoke(log, "com.corp.audit.AuditLog", "logRaw", [payload])
            m.ret(payload)
    with pb.cls("com.corp.audit.SavedSearch", implements=[SERIALIZABLE]) as c:
        c.field("formatter", "java.lang.Object")
        with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
            f = m.get_field(m.this, "formatter")
            m.invoke_interface(f, iface, "format", [f], returns="java.lang.Object")
    return pb.build()


def main() -> None:
    classes = build_inhouse_library()

    print("without the custom sink, Tabby reports:",
          len(Tabby().add_classes(classes).find_gadget_chains()), "chains")

    tabby = Tabby().add_classes(classes).add_sinks(
        [SinkMethod("com.corp.audit.AuditLog", "logRaw", "LOG-INJECTION", (1,))]
    )
    chains = tabby.find_gadget_chains()
    print("with it:", len(chains), "chain(s)\n")
    for chain in chains:
        print(chain.render())


if __name__ == "__main__":
    main()

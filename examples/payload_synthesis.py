#!/usr/bin/env python
"""Payload synthesis — the §V-C future work, demonstrated.

For every effective chain Tabby finds in the JDK8 scene, derive the
attacker object graph a real exploit would serialise (the ysoserial
recipe), including the classic URLDNS payload.

Run:  python examples/payload_synthesis.py
"""

from repro import ChainVerifier, Tabby
from repro.corpus import build_scene
from repro.verify import PayloadSynthesizer


def main() -> None:
    scene = build_scene("JDK8")
    tabby = Tabby().add_classes(scene.classes)
    chains = tabby.find_gadget_chains()

    verifier = ChainVerifier(scene.classes)
    synthesizer = PayloadSynthesizer(scene.classes)

    effective = [c for c in chains if verifier.verify(c).effective]
    print(f"{len(chains)} chains reported, {len(effective)} effective; "
          f"synthesising exploit recipes:\n")

    for chain in effective:
        print("=" * 60)
        print(synthesizer.synthesize(chain).render())
        print()

    # machine-readable form for tooling pipelines
    urldns = next(c for c in effective if c.source.class_name == "java.util.HashMap")
    print("=" * 60)
    print("URLDNS as JSON:")
    print(synthesizer.synthesize(urldns).to_json())


if __name__ == "__main__":
    main()

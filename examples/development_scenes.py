#!/usr/bin/env python
"""Reproduce the development-environment audit of §IV-D (Table X) and
print the Spring JNDI chains of Table XI.

Run:  python examples/development_scenes.py
"""

from repro.bench import (
    format_table_x,
    format_table_xi,
    run_table_x,
    run_table_xi,
)


def main() -> None:
    print("Table X — development scenes")
    print(format_table_x(run_table_x()))
    print()
    print("Table XI — Spring framework JNDI-injection chains")
    print("(LazyInit/Prototype are the two new chains; SimpleBean is the")
    print(" CVE-2020-11619 shape)")
    print()
    print(format_table_xi(run_table_xi()))


if __name__ == "__main__":
    main()

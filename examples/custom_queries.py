#!/usr/bin/env python
"""RQ4: re-query a persisted CPG without re-analysing the code.

Tabby's key workflow advantage over GadgetInspector/Serianalyzer
(§IV-F): the CPG persists to disk, and researchers iterate on Cypher
queries — here, the XStream-style blacklist-refinement loop of §IV-E.

Run:  python examples/custom_queries.py
"""

import os
import tempfile

from repro import Tabby
from repro.corpus import build_scene
from repro.graphdb.query import run_query
from repro.graphdb.storage import load_graph


def main() -> None:
    scene = build_scene("JDK8")
    tabby = Tabby().add_classes(scene.classes)
    tabby.build_cpg()

    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "jdk8.cpg.json.gz")
        tabby.save_cpg(path)
        print(f"CPG persisted to {path} "
              f"({os.path.getsize(path)} bytes compressed)\n")

        # a later session: reload and query, no re-analysis
        graph = load_graph(path)

        print("=== sink inventory by category ===")
        for row in run_query(
            graph,
            "MATCH (m:Method {IS_SINK: true}) "
            "RETURN m.SINK_TYPE AS type, count(*) AS n ORDER BY type",
        ):
            print(f"  {row['type']:6s} {row['n']}")

        print("\n=== deserialization entry points reaching a sink ===")
        result = run_query(
            graph,
            "MATCH (src:Method {IS_SOURCE: true})-[:CALL|ALIAS*1..8]-"
            "(snk:Method {IS_SINK: true}) "
            "RETURN DISTINCT src.CLASSNAME AS cls ORDER BY cls",
        )
        for row in result:
            print(f"  {row['cls']}")

        print("\nThese classes are the blacklist candidates XStream/Dubbo "
              "maintainers would add (§IV-E).")

        print("\n=== call edges into Method.invoke with their PP ===")
        for row in run_query(
            graph,
            "MATCH (a:Method)-[c:CALL]->(b:Method {NAME: 'invoke'}) "
            "RETURN a.CLASSNAME AS caller, c.POLLUTED_POSITION AS pp LIMIT 5",
        ):
            print(f"  {row['caller']}  PP={row['pp']}")


if __name__ == "__main__":
    main()

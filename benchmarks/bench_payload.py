"""Payload synthesis (§V-C) under the timer: every effective chain in
the comparison corpus yields an exploit recipe."""

import pytest

from repro.core import Tabby
from repro.corpus import build_component, build_jdk8_extras, build_lang_base
from repro.verify import ChainVerifier, PayloadSynthesizer
from repro.verify.payload import ATTACKER_VALUE


@pytest.fixture(scope="module")
def cc_setup():
    spec = build_component("commons-collections(3.2.1)")
    classes = build_lang_base() + spec.classes
    chains = Tabby().add_classes(classes).find_gadget_chains()
    verifier = ChainVerifier(classes)
    effective = [
        c for c in chains
        if spec.match_known(c) is not None or verifier.verify(c).effective
    ]
    return classes, effective


def test_synthesis_throughput(cc_setup, benchmark):
    classes, effective = cc_setup
    synthesizer = PayloadSynthesizer(classes)

    def synthesise_all():
        return [synthesizer.synthesize(c) for c in effective]

    specs = benchmark(synthesise_all)
    assert len(specs) == len(effective)
    for spec in specs:
        assert ATTACKER_VALUE in spec.render()


def test_urldns_recipe_matches_real_payload(benchmark):
    """The synthesised URLDNS recipe is structurally the real ysoserial
    payload: HashMap.key = URL(host=attacker), transient handler."""
    classes = build_lang_base() + build_jdk8_extras()
    chains = Tabby().add_classes(classes).find_gadget_chains()
    urldns = next(c for c in chains if c.source.class_name == "java.util.HashMap")
    synthesizer = PayloadSynthesizer(classes)
    spec = benchmark(lambda: synthesizer.synthesize(urldns))
    assert spec.root.class_name == "java.util.HashMap"
    url = spec.root.fields["key"]
    assert url.class_name == "java.net.URL"
    assert url.fields["host"] == ATTACKER_VALUE
    print()
    print(spec.render())

"""Figures 3 and 4 — the URLDNS chain and its code property graph.

Builds the CPG for the synthetic JDK classes of Figure 3 and recovers
the method-call stack HashMap.readObject() -> HashMap.hash() ->
URL.hashCode() (via the Object.hashCode Alias edge) ->
URLStreamHandler.hashCode() -> getHostAddress() ->
InetAddress.getByName().
"""

import pytest

from repro.core import Tabby
from repro.core.cpg import ALIAS
from repro.corpus import build_jdk8_extras, build_lang_base
from repro.corpus.jdk import URLDNS_SINK, URLDNS_SOURCE
from repro.verify import ChainVerifier


@pytest.fixture(scope="module")
def classes():
    return build_lang_base() + build_jdk8_extras()


def test_urldns_cpg_build(classes, benchmark):
    cpg = benchmark(lambda: Tabby().add_classes(classes).build_cpg())
    # the Alias edge of Figure 4: URL.hashCode -> Object.hashCode
    url_hash = cpg.method_node("java.net.URL", "hashCode")
    aliases = cpg.graph.out_relationships(url_hash, ALIAS)
    targets = {cpg.graph.node(r.end_id)["CLASSNAME"] for r in aliases}
    assert "java.lang.Object" in targets


def test_urldns_chain_recovered(classes, benchmark):
    chains = benchmark(lambda: Tabby().add_classes(classes).find_gadget_chains())
    by_endpoint = {c.endpoint_key: c for c in chains}
    chain = by_endpoint.get((URLDNS_SOURCE, URLDNS_SINK))
    assert chain is not None, "URLDNS chain not recovered"
    names = [s.qualified for s in chain.steps]
    assert names == [
        "java.util.HashMap.readObject",
        "java.util.HashMap.hash",
        "java.lang.Object.hashCode",
        "java.net.URL.hashCode",
        "java.net.URLStreamHandler.hashCode",
        "java.net.URLStreamHandler.getHostAddress",
        "java.net.InetAddress.getByName",
    ]
    print()
    print(chain.render())


def test_urldns_chain_verifies(classes, benchmark):
    chains = Tabby().add_classes(classes).find_gadget_chains()
    verifier = ChainVerifier(classes)
    reports = benchmark.pedantic(
        lambda: [verifier.verify(c) for c in chains], rounds=1, iterations=1
    )
    assert all(r.effective for r in reports)


def test_enummap_alias_neighbour_not_reported(classes, benchmark):
    """§III-B2: EnumMap.hashCode aliases Object.hashCode but never
    reaches the sink; searching upwards from the sink avoids it."""
    benchmark.pedantic(lambda: None, rounds=1)
    chains = Tabby().add_classes(classes).find_gadget_chains()
    for chain in chains:
        assert all(s.class_name != "java.util.EnumMap" for s in chain.steps)

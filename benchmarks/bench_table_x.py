"""Table X — development-scene detection (RQ3).

Regenerates the five scene rows (result count, effective chains, FPR,
search time) and asserts the exact result/effective splits the paper
reports for every scene.
"""

import pytest

from repro.bench import format_table_x, run_scene, run_table_x

#: paper's Table X: scene -> (result, effective, fpr%)
PAPER = {
    "Spring": (10, 7, 30.0),
    "JDK8": (13, 10, 23.1),
    "Tomcat": (4, 3, 25.0),
    "Jetty": (6, 4, 33.3),
    "Apache Dubbo": (5, 3, 40.0),
}


@pytest.fixture(scope="module")
def rows():
    return run_table_x()


def test_table_x_report(rows, benchmark):
    result = benchmark(lambda: run_scene("Tomcat"))
    assert result.result_count > 0
    print()
    print(format_table_x(rows))


@pytest.mark.parametrize("scene", sorted(PAPER))
def test_scene_matches_paper(rows, scene, benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    row = next(r for r in rows if r.scene == scene)
    result, effective, fpr = PAPER[scene]
    assert row.result_count == result
    assert row.effective_count == effective
    assert abs(row.fpr_percent - fpr) < 0.5

"""Table XI — the Spring-framework JNDI gadget chains.

Regenerates the LazyInitTargetSource / PrototypeTargetSource /
SimpleBeanTargetSource (CVE-2020-11619) chains through
SimpleJndiBeanFactory.getBean(String) -> JndiLocatorSupport.lookup()
-> javax.naming.Context.lookup().
"""

import pytest

from repro.bench import format_table_xi, run_table_xi
from repro.corpus.scenes import TABLE_XI_TARGET_SOURCES


@pytest.fixture(scope="module")
def chains():
    return run_table_xi()


def test_table_xi_report(chains, benchmark):
    result = benchmark.pedantic(run_table_xi, rounds=1, iterations=1)
    assert result
    print()
    print(format_table_xi(chains))


def test_three_target_source_chains(chains, benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    heads = set()
    for chain in chains:
        for step in chain.steps:
            if step.class_name in TABLE_XI_TARGET_SOURCES:
                heads.add(step.class_name)
    assert heads == set(TABLE_XI_TARGET_SOURCES)


def test_chain_structure_matches_table(chains, benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    for chain in chains:
        qualified = [s.qualified for s in chain.steps]
        assert "org.springframework.jndi.support.SimpleJndiBeanFactory.getBean" in qualified
        assert "org.springframework.jndi.JndiLocatorSupport.lookup" in qualified
        assert chain.sink.qualified == "javax.naming.Context.lookup"

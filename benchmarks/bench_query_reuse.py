"""Figure 7 / RQ4 — the re-queryable CPG workflow.

GadgetInspector and Serianalyzer throw their intermediate results away;
Tabby persists the CPG and lets researchers re-query it (§IV-F).  This
bench saves a scene CPG, reloads it, and runs the blacklist-refinement
queries of §IV-E under the timer.
"""

import pytest

from repro.core import Tabby
from repro.corpus import build_scene
from repro.graphdb.query import run_query
from repro.graphdb.storage import load_graph, save_graph


@pytest.fixture(scope="module")
def saved_graph(tmp_path_factory):
    scene = build_scene("Spring")
    tabby = Tabby().add_classes(scene.classes)
    tabby.build_cpg()
    path = str(tmp_path_factory.mktemp("cpg") / "spring.cpg.json.gz")
    tabby.save_cpg(path)
    return path


def test_reload_and_requery(saved_graph, benchmark):
    graph = load_graph(saved_graph)

    def blacklist_candidates():
        return run_query(
            graph,
            "MATCH (src:Method {IS_SOURCE: true})-[:CALL|ALIAS*1..8]-(snk:Method {IS_SINK: true}) "
            "RETURN DISTINCT src.CLASSNAME AS cls ORDER BY cls",
        )

    result = benchmark(blacklist_candidates)
    classes = result.values("cls")
    assert "org.springframework.aop.framework.AdvisedSupport" in classes
    print()
    print("blacklist candidates:", classes)


def test_sink_inventory_query(saved_graph, benchmark):
    graph = load_graph(saved_graph)
    result = benchmark(
        lambda: run_query(
            graph,
            "MATCH (m:Method {IS_SINK: true}) "
            "RETURN m.SINK_TYPE AS type, count(*) AS n ORDER BY type",
        )
    )
    assert any(row["type"] == "JNDI" for row in result)


def test_call_edge_pp_query(saved_graph, benchmark):
    """PP values stored on edges are queryable — the call-detail reuse
    the paper highlights against the baselines."""
    graph = load_graph(saved_graph)
    result = benchmark(
        lambda: run_query(
            graph,
            "MATCH (a:Method)-[c:CALL]->(b:Method {NAME: 'lookup'}) "
            "RETURN a.NAME AS caller, c.POLLUTED_POSITION AS pp",
        )
    )
    assert all(row["pp"] is not None for row in result)

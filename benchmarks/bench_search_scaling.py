"""Search-scaling benchmark: the optimized gadget-chain engine vs baseline.

Two workloads, both rooted in the full 26-component Table IX corpus:

* **pure corpus** — the merged corpus CPG exactly as built.  Its search
  space is small (a few hundred visited paths), so it serves as the
  identity barrier: every Uniqueness mode, serial and fanned out, must
  return a chain list bit-identical to the baseline engine, or this
  script exits non-zero.

* **augmented corpus** — the same CPG plus "library bulk": decoy CALL
  lattices attached to a real sink, mimicking what dominates real-world
  classpaths (Table X's classes.jar is millions of edges, almost all of
  them irrelevant to any source).  One diamond lattice is
  source-*unreachable* (the reachability prune refuses it at the first
  backward step); one is reachable-but-dead behind an uncontrollable
  Polluted_Position (the negative cache collapses its exponential
  path enumeration to linear).  The decoys add **zero** chains — the
  augmented chain list must equal the pure-corpus list, which is also
  asserted — so baseline-vs-optimized on this workload measures exactly
  the cost the optimizations exist to remove.

Timings and speedups are recorded to ``BENCH_search.json``.  The full
run asserts the optimized engine is >=3x faster than baseline on the
augmented corpus; ``--smoke`` shrinks the lattices and skips the
speedup assertion (identity is always enforced), which is what CI runs.
"""

import argparse
import json
import sys
import time

sys.path.insert(0, "src")

from repro.core.cpg import CALL, CPGBuilder
from repro.core.parallel import available_cpus
from repro.core.pathfinder import GadgetChainFinder
from repro.corpus import COMPONENT_NAMES, build_component, build_lang_base
from repro.graphdb.traversal import Uniqueness
from repro.jvm.hierarchy import ClassHierarchy

REPETITIONS = 3


def build_corpus_cpg():
    classes = build_lang_base()
    for name in COMPONENT_NAMES:
        classes += build_component(name).classes
    return CPGBuilder(ClassHierarchy(classes)).build()


def chain_fingerprint(chains):
    return [
        (
            tuple(step.qualified for step in chain.steps),
            chain.sink_category,
            tuple(chain.trigger_condition),
        )
        for chain in chains
    ]


def decoy_method(graph, name):
    return graph.create_node(
        ["Method"],
        {
            "NAME": name,
            "CLASSNAME": "bulk.Library",
            "ARITY": 1,
            "IS_SOURCE": False,
            "IS_SINK": False,
        },
    )


def decoy_call(graph, caller, callee, pp):
    graph.create_relationship(
        CALL, caller, callee, {"POLLUTED_POSITION": pp, "KIND": "virtual"}
    )


def attach_lattice(graph, sink, tag, width, depth, reachable_via=None):
    """A diamond CALL lattice feeding ``sink``: layer 0 calls the sink,
    each layer-d node is called by two layer-(d+1) nodes, so the
    backward search enumerates ~width * 2**depth dead paths.

    With ``reachable_via`` (a source node), the source "calls" the top
    layer with an *uncontrollable* PP: forward reachability marks the
    whole lattice live, but the backward TC propagation rejects the
    final hop — reachable, dead, and exponential unless the negative
    cache collapses it.
    """
    layers = []
    for d in range(depth + 1):
        layers.append(
            [decoy_method(graph, f"{tag}_{d}_{k}") for k in range(width)]
        )
    for node in layers[0]:
        decoy_call(graph, node, sink, [0, 0])
    for d in range(depth):
        for k in range(width):
            decoy_call(graph, layers[d + 1][k], layers[d][k], [0, 0])
            decoy_call(graph, layers[d + 1][(k + 1) % width], layers[d][k], [0, 0])
    if reachable_via is not None:
        for node in layers[depth]:
            decoy_call(graph, reachable_via, node, [-1, -1])


def build_augmented_cpg(width, depth):
    cpg = build_corpus_cpg()
    sink = cpg.sink_nodes()[0]
    source = cpg.source_nodes()[0]
    attach_lattice(cpg.graph, sink, "unreach", width, depth)
    attach_lattice(cpg.graph, sink, "dead", width, depth, reachable_via=source)
    return cpg


def timed_search(cpg, repetitions=REPETITIONS, **kwargs):
    best = float("inf")
    chains = stats = None
    for _ in range(repetitions):
        finder = GadgetChainFinder(cpg, **kwargs)
        started = time.perf_counter()
        chains = finder.find_chains()
        best = min(best, time.perf_counter() - started)
        stats = finder.last_search_stats
    return best, chain_fingerprint(chains), stats


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="small lattices, identity checks only (no speedup assertion)",
    )
    parser.add_argument("--output", default="BENCH_search.json")
    args = parser.parse_args(argv)

    width, depth = (2, 6) if args.smoke else (2, 15)
    max_depth = depth + 4
    failures = []
    report = {
        "benchmark": "search_scaling",
        "mode": "smoke" if args.smoke else "full",
        "cpus": available_cpus(),
        "lattice": {"width": width, "depth": depth},
        "max_depth": max_depth,
        "identity": {},
        "timings": {},
    }

    print("building merged 26-component corpus CPG ...")
    cpg = build_corpus_cpg()

    # -- identity barrier: pure corpus, every mode, serial and fanned out
    for mode in Uniqueness:
        _, base, _ = timed_search(cpg, repetitions=1, uniqueness=mode, optimize=False)
        _, opt, _ = timed_search(cpg, repetitions=1, uniqueness=mode, optimize=True)
        _, par, _ = timed_search(
            cpg, repetitions=1, uniqueness=mode, optimize=True, workers=2
        )
        ok = base == opt == par
        report["identity"][mode.name] = {"chains": len(base), "identical": ok}
        if not ok:
            failures.append(f"chain set mismatch on pure corpus ({mode.name})")
        print(f"  identity {mode.name:<18} {len(base)} chains  "
              f"{'OK' if ok else 'MISMATCH'}")

    # -- pure corpus timings (small search space; recorded, not asserted)
    base_s, base_chains, _ = timed_search(cpg, optimize=False)
    opt_s, opt_chains, _ = timed_search(cpg, optimize=True)
    report["timings"]["corpus"] = {
        "baseline_s": base_s,
        "optimized_s": opt_s,
        "chains": len(base_chains),
    }
    print(f"pure corpus: baseline {base_s * 1000:.1f}ms, "
          f"optimized {opt_s * 1000:.1f}ms, {len(base_chains)} chains")

    # -- augmented corpus: where the library bulk lives
    print(f"building augmented corpus (decoy lattices width={width}, "
          f"depth={depth}) ...")
    aug = build_augmented_cpg(width, depth)
    _, pure_ref, _ = timed_search(
        cpg, repetitions=1, max_depth=max_depth, max_results_per_sink=None
    )
    runs = {}
    search_args = {"max_depth": max_depth, "max_results_per_sink": None}
    runs["baseline"] = timed_search(aug, optimize=False, **search_args)
    runs["prune_only"] = timed_search(
        aug, optimize=True, negative_cache=False, **search_args
    )
    runs["cache_only"] = timed_search(
        aug, optimize=True, prune_unreachable=False, **search_args
    )
    runs["optimized"] = timed_search(aug, optimize=True, **search_args)
    runs["optimized_workers"] = timed_search(
        aug, optimize=True, workers=min(4, available_cpus()), **search_args
    )
    baseline_s = runs["baseline"][0]
    for label, (seconds, chains, stats) in runs.items():
        speedup = baseline_s / seconds if seconds else float("inf")
        report["timings"][label] = {
            "seconds": seconds,
            "speedup_vs_baseline": speedup,
            "chains": len(chains),
            "paths_visited": stats.paths_visited,
            "reachability_pruned": stats.reachability_pruned,
            "negative_cache_hits": stats.negative_cache_hits,
        }
        print(f"  {label:<18} {seconds:8.3f}s  {speedup:6.2f}x  "
              f"visited={stats.paths_visited}")
        if chains != runs["baseline"][1]:
            failures.append(f"chain set mismatch on augmented corpus ({label})")
        if chains != pure_ref:
            failures.append(
                f"decoy lattices changed the chain set ({label}) — "
                "they must be search-invariant"
            )

    speedup = baseline_s / runs["optimized"][0]
    report["speedup"] = speedup
    if not args.smoke and speedup < 3.0:
        failures.append(
            f"expected >=3x optimized speedup on augmented corpus, "
            f"got {speedup:.2f}x"
        )

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"wrote {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"optimized engine: {speedup:.1f}x vs baseline — all chain sets "
          "identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())

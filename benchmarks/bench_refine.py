"""Refinement benchmark: the whole-CPG refinement gate (RQ follow-up).

Runs the baseline Tabby pipeline and the ``rta,taint`` ChainRefiner
over dataset components and enforces the soundness contract of the
verdict layer:

* **subset** — the refined chain list is a verbatim, order-preserving
  subset of the baseline list (refinement only ever removes);
* **zero false negatives** — no refuted chain matches the ground-truth
  table or is effective under the PoC oracle;
* **beyond the guard pass** — at least one chain is refuted that the
  older constant-guard refinement keeps (the planted RTA/taint decoys
  in commons-collections 3.2.1 and Hibernate);
* **overhead** (full mode) — total refinement time is <= 25% of the
  total analyze (build + search) wall time.

``--smoke`` runs the two decoy-bearing components only and skips the
overhead gate (timings on a 2-component subset are noise); this is
what CI runs.  The full run covers all 26 components and writes
``BENCH_refine.json`` with per-component chain-count deltas and
timings.
"""

import argparse
import json
import sys
import time

sys.path.insert(0, "src")

from repro.analysis.chain_refiner import ChainRefiner
from repro.core import Tabby
from repro.core.refine import GuardFeasibilityRefiner
from repro.corpus import COMPONENT_NAMES, build_component, build_lang_base
from repro.verify import ChainVerifier

SMOKE_COMPONENTS = ["commons-collections(3.2.1)", "Hibernate"]


def run_component(name, failures):
    spec = build_component(name)
    classes = build_lang_base() + spec.classes
    tabby = Tabby().add_classes(classes)

    start = time.perf_counter()
    baseline = tabby.find_gadget_chains()
    analyze_seconds = time.perf_counter() - start

    start = time.perf_counter()
    refiner = ChainRefiner(tabby.cpg.hierarchy)
    result = refiner.refine(baseline)
    refine_seconds = time.perf_counter() - start

    # subset: every kept chain is a baseline chain, in baseline order
    kept = iter(result.kept)
    cursor = next(kept, None)
    for chain in baseline:
        if cursor is chain:
            cursor = next(kept, None)
    if cursor is not None:
        failures.append(f"{name}: refined output is not a verbatim "
                        "ordered subset of the baseline")

    # zero false negatives: refuted chains are neither known nor effective
    verifier = ChainVerifier(classes)
    for chain, reason in result.refuted:
        if spec.match_known(chain) is not None:
            failures.append(f"{name}: refuted a ground-truth chain "
                            f"({reason.kind}: {reason.detail})")
        elif verifier.verify(chain).effective:
            failures.append(f"{name}: refuted an oracle-effective chain "
                            f"({reason.kind}: {reason.detail})")

    # how many refutations the constant-guard pass cannot explain
    guard_kept, _ = GuardFeasibilityRefiner(tabby.cpg.hierarchy).refine(baseline)
    guard_kept_keys = {c.key for c in guard_kept}
    beyond_guard = sum(
        1 for chain, _r in result.refuted if chain.key in guard_kept_keys
    )

    return {
        "component": name,
        "baseline_chains": len(baseline),
        "refined_chains": len(result.kept),
        "refuted": len(result.refuted),
        "refuted_by_kind": result.statistics["refuted_by_kind"],
        "refuted_beyond_guard_pass": beyond_guard,
        "analyze_seconds": round(analyze_seconds, 4),
        "refine_seconds": round(refine_seconds, 4),
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="decoy components only; skip the overhead gate")
    parser.add_argument("--output", default="BENCH_refine.json")
    args = parser.parse_args(argv)

    names = SMOKE_COMPONENTS if args.smoke else list(COMPONENT_NAMES)
    failures = []
    rows = []
    for name in names:
        row = run_component(name, failures)
        rows.append(row)
        print(f"{name:32s} {row['baseline_chains']:3d} -> "
              f"{row['refined_chains']:3d} chains "
              f"({row['refuted']} refuted, {row['refuted_beyond_guard_pass']} "
              f"beyond guard pass)  "
              f"analyze {row['analyze_seconds']:6.2f}s  "
              f"refine {row['refine_seconds']:6.2f}s")

    analyze_total = sum(r["analyze_seconds"] for r in rows)
    refine_total = sum(r["refine_seconds"] for r in rows)
    overhead = refine_total / analyze_total if analyze_total else 0.0
    beyond_guard_total = sum(r["refuted_beyond_guard_pass"] for r in rows)
    report = {
        "mode": "smoke" if args.smoke else "full",
        "components": rows,
        "totals": {
            "baseline_chains": sum(r["baseline_chains"] for r in rows),
            "refined_chains": sum(r["refined_chains"] for r in rows),
            "refuted": sum(r["refuted"] for r in rows),
            "refuted_beyond_guard_pass": beyond_guard_total,
            "analyze_seconds": round(analyze_total, 4),
            "refine_seconds": round(refine_total, 4),
            "refine_overhead_ratio": round(overhead, 4),
        },
    }
    print(f"total: {report['totals']['baseline_chains']} -> "
          f"{report['totals']['refined_chains']} chains, "
          f"{report['totals']['refuted']} refuted "
          f"({beyond_guard_total} beyond the guard pass), "
          f"refinement overhead {overhead:.1%} of analyze time")

    if beyond_guard_total < 1:
        failures.append("expected >=1 refutation the constant-guard pass "
                        "cannot explain (the planted decoys)")
    if not args.smoke and overhead > 0.25:
        failures.append(f"refinement overhead {overhead:.1%} exceeds 25% "
                        "of analyze wall time")

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"wrote {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

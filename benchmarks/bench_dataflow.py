"""Dataflow-engine benchmark: the four analyses over the full corpus.

Times one fixpoint of each shipped analysis (reaching definitions,
liveness, nullness, conditional constant propagation) across every
method body in the language base plus all 26 Table IX components —
the exact workload ``tabby lint`` and ``--refine-guards`` put on the
engine.  Run with ``--benchmark-json`` for the same machine-readable
shape as the other pytest-benchmark suites.
"""

import pytest

from repro.corpus import COMPONENT_NAMES, build_component, build_lang_base
from repro.jvm import dataflow as df
from repro.jvm.cfg import build_cfg

pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def corpus_cfgs():
    classes = list(build_lang_base())
    for name in COMPONENT_NAMES:
        classes.extend(build_component(name).classes)
    cfgs = [
        build_cfg(method)
        for cls in classes
        for method in cls.methods.values()
        if method.has_body
    ]
    oracle = df.constant_static_fields(classes)
    return cfgs, oracle


def _sweep(cfgs, make_analysis):
    reached = 0
    for cfg in cfgs:
        result = df.run_analysis(cfg, make_analysis())
        reached += len(result.reached)
    return reached


def test_reaching_definitions(corpus_cfgs, benchmark):
    cfgs, _ = corpus_cfgs
    reached = benchmark(lambda: _sweep(cfgs, df.ReachingDefinitions))
    assert reached > 0
    print(f"\n  {len(cfgs)} methods, {reached} block visits")


def test_liveness(corpus_cfgs, benchmark):
    cfgs, _ = corpus_cfgs
    assert benchmark(lambda: _sweep(cfgs, df.Liveness)) > 0


def test_nullness(corpus_cfgs, benchmark):
    cfgs, _ = corpus_cfgs
    assert benchmark(lambda: _sweep(cfgs, df.Nullness)) > 0


def test_constant_propagation(corpus_cfgs, benchmark):
    cfgs, oracle = corpus_cfgs
    reached = benchmark(
        lambda: _sweep(cfgs, lambda: df.ConstantPropagation(static_oracle=oracle))
    )
    # constant guards prune at least the planted decoy arms, so the
    # conditional sweep visits strictly fewer blocks than the
    # unconditional ones
    unconditional = _sweep(cfgs, df.ReachingDefinitions)
    assert reached < unconditional

"""Figure 5 — the controllability-analysis walkthrough as a benchmark.

The correctness assertions live in tests/core/test_fig5_walkthrough.py;
here the same two-method program is analysed under the timer, plus a
whole-corpus controllability pass for scale.
"""

import pytest

from repro.core.controllability import ControllabilityAnalysis
from repro.corpus import build_component, build_lang_base
from repro.jvm.builder import ProgramBuilder
from repro.jvm.hierarchy import ClassHierarchy


def fig5_hierarchy():
    pb = ProgramBuilder()
    with pb.cls("fig5.A") as c:
        c.field("b", "fig5.B")
    with pb.cls("fig5.B") as c:
        with c.method(
            "exchange", params=["fig5.A", "fig5.B"], returns="fig5.B",
            static=True, param_names=["a", "b"],
        ) as m:
            m.set_field(m.param(1), "b", m.param(2))
            m.assign(m.param(2), m.new("fig5.B"))
            ret = m.get_field(m.param(1), "b")
            m.ret(ret)
    with pb.cls("fig5.Main") as c:
        with c.method(
            "example", params=["fig5.A", "fig5.B"], returns="fig5.A",
            param_names=["a", "b"],
        ) as m:
            a1 = m.local("a1")
            m.assign(a1, m.new("fig5.A"))
            a2 = m.local("a2")
            m.assign(a2, m.param(1))
            m.assign(m.param(1), a1)
            m.invoke_static("fig5.B", "exchange", [m.param(1), m.param(2)], returns="fig5.B")
            m.ret(a2)
    return ClassHierarchy(pb.build())


def test_fig5_analysis(benchmark):
    hierarchy = fig5_hierarchy()
    summaries = benchmark(lambda: ControllabilityAnalysis(hierarchy).analyze_all())
    exchange = next(s for s in summaries.values() if s.method.name == "exchange")
    assert exchange.action.mapping["final-param-1.b"] == "init-param-2"
    example = next(s for s in summaries.values() if s.method.name == "example")
    (site,) = example.call_sites
    assert site.polluted_position == [-1, -1, 2]  # the paper's [∞, ∞, 2]


def test_controllability_scales_to_component(benchmark):
    spec = build_component("commons-collections(3.2.1)")
    hierarchy = ClassHierarchy(build_lang_base() + spec.classes)
    summaries = benchmark(lambda: ControllabilityAnalysis(hierarchy).analyze_all())
    assert len(summaries) > 50

"""Table VIII — CPG generation efficiency (RQ1).

Regenerates the code-amount / jar / class-node / method-node / edge /
time rows over scaled random corpora and asserts the paper's finding:
execution time grows approximately linearly with the class/method
count ("Tabby is unlikely to take unpredictable time").
"""

import pytest

from repro.bench import format_table_viii, run_table_viii
from repro.core import Tabby
from repro.corpus import generate_corpus

SIZES_KB = (10, 20, 30, 40, 50, 100, 150)


@pytest.fixture(scope="module")
def rows():
    return run_table_viii(sizes_kb=SIZES_KB, repetitions=4)


def test_table_viii_report(rows, benchmark):
    """Print the regenerated table; benchmark one mid-size CPG build."""
    jars = generate_corpus(50)
    classes = [c for jar in jars for c in jar.classes]

    def build():
        return Tabby().add_classes(classes).build_cpg()

    cpg = benchmark(build)
    assert cpg.statistics.method_node_count > 0
    print()
    print(format_table_viii(rows))


def test_counts_scale_with_code_amount(rows, benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    for smaller, larger in zip(rows, rows[1:]):
        assert larger.class_nodes > smaller.class_nodes
        assert larger.method_nodes > smaller.method_nodes
        assert larger.relationship_edges > smaller.relationship_edges


def test_time_is_near_linear(rows, benchmark):
    """time/method-node ratio must not blow up across a 15x size range."""
    benchmark.pedantic(lambda: None, rounds=1)
    per_method = [r.seconds / r.method_nodes for r in rows]
    assert max(per_method) / min(per_method) < 5.0

"""Incremental-analysis benchmark: differential identity + speedup.

Two claims, two gates:

* **identity** (every mode, smoke included) — after each edit in the
  script, the incremental session's output must be *bit-identical* to
  a cold rebuild of the edited version: same chain-key list, same
  ``repr(graph_fingerprint(...))`` after the canonical renumber.  Any
  divergence fails the run; there is no tolerance.

* **speedup** (full mode) — a one-class edit over the merged corpus
  (lang base + every component) must analyse >= 5x faster through
  ``IncrementalAnalyzer.update`` than through a cold
  build-and-search, reported with the per-phase breakdown
  (dirty/summaries/patch/renumber/search) from
  ``IncrementalStatistics``.

``--smoke`` runs the identity gate over a 3-edit script on a two
component corpus and skips the speedup gate — that is what CI runs.
The full run writes ``BENCH_incremental.json``.
"""

import argparse
import copy
import json
import sys
import time

sys.path.insert(0, "src")

from repro.core.chains import dedupe_chains
from repro.core.cpg import CPGBuilder
from repro.core.incremental import ChainSearchConfig, IncrementalAnalyzer
from repro.core.pathfinder import GadgetChainFinder
from repro.corpus import COMPONENT_NAMES, build_component, build_lang_base
from repro.graphdb.snapshot import graph_fingerprint
from repro.jvm.hierarchy import ClassHierarchy

SMOKE_COMPONENTS = ["commons-collections(3.2.1)", "Hibernate"]

#: the canonical one-class edit target; guaranteed present in the
#: commons-collections component and in the merged corpus
EDIT_TARGET = "org.apache.commons.collections.map.TransformedMap"


def load_corpus(components):
    classes = list(build_lang_base())
    for name in components:
        classes.extend(build_component(name).classes)
    return classes


def cold_pipeline(classes, cfg):
    """Build + per-sink search + dedupe — the work update() avoids."""
    cpg = CPGBuilder(ClassHierarchy(classes)).build()
    finder = GadgetChainFinder(
        cpg,
        max_depth=cfg.max_depth,
        follow_alias=cfg.follow_alias,
        max_results_per_sink=cfg.max_results_per_sink,
        uniqueness=cfg.uniqueness,
        optimize=cfg.optimize,
        workers=cfg.workers,
    )
    per_sink = finder.find_chains_per_sink(
        cpg.sink_nodes(), source_filter=cfg.source_filter
    )
    return cpg, dedupe_chains([c for bucket in per_sink for c in bucket])


def drop_last_method(classes, target=EDIT_TARGET):
    """Remove the last body-carrying method of ``target`` (falling back
    to any multi-method class) — the canonical one-class edit."""
    edited = [copy.deepcopy(c) for c in classes]
    cls = next(
        (c for c in edited if c.name == target),
        next(c for c in edited
             if c.name != "java.lang.Object"
             and sum(m.has_body for m in c.methods.values()) > 1),
    )
    victim = [k for k, m in cls.methods.items() if m.has_body][-1]
    del cls.methods[victim]
    return edited, cls.name


def drop_class(classes, name):
    return [copy.deepcopy(c) for c in classes if c.name != name]


def check_identity(session, classes, label, failures):
    """update() and compare chains + fingerprint against a cold build."""
    result = session.update([copy.deepcopy(c) for c in classes])
    cpg_cold, chains_cold = cold_pipeline(
        [copy.deepcopy(c) for c in classes], session.search
    )
    ok = True
    if [c.key for c in result.chains] != [c.key for c in chains_cold]:
        failures.append(f"{label}: chain list diverged from cold rebuild")
        ok = False
    if repr(graph_fingerprint(session.cpg.graph)) != repr(
        graph_fingerprint(cpg_cold.graph)
    ):
        failures.append(f"{label}: graph fingerprint diverged from cold rebuild")
        ok = False
    if session.last_statistics.full_rebuild:
        failures.append(
            f"{label}: fell back to a full rebuild "
            f"({session.last_statistics.full_rebuild_reason})"
        )
        ok = False
    print(f"  identity [{label}]: {'ok' if ok else 'FAILED'} "
          f"({len(result.chains)} chains, "
          f"{session.last_statistics.sinks_researched}/"
          f"{session.last_statistics.sinks_total} sinks re-searched)")
    return result


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="identity gate only, on a 2-component corpus (what CI runs)",
    )
    parser.add_argument("--output", default="BENCH_incremental.json")
    args = parser.parse_args(argv)

    components = SMOKE_COMPONENTS if args.smoke else list(COMPONENT_NAMES)
    failures = []
    report = {
        "benchmark": "incremental",
        "mode": "smoke" if args.smoke else "full",
        "components": components,
    }

    classes = load_corpus(components)
    print(f"corpus: {len(classes)} classes from {len(components)} "
          f"component(s) + lang base")

    cfg = ChainSearchConfig()
    t0 = time.perf_counter()
    session = IncrementalAnalyzer(
        [copy.deepcopy(c) for c in classes], search=cfg
    )
    cold_session_seconds = time.perf_counter() - t0
    report["classes"] = len(classes)
    report["chains_initial"] = len(session.chains)
    report["cold_session_seconds"] = round(cold_session_seconds, 4)
    print(f"cold session: {len(session.chains)} chains "
          f"in {cold_session_seconds:.2f}s")

    # -- 3-edit identity script (all modes) ----------------------------
    edited, target = drop_last_method(classes)
    check_identity(session, edited, f"edit-method {target}", failures)
    check_identity(session, drop_class(edited, target),
                   f"drop-class {target}", failures)
    check_identity(session, classes, "revert-all", failures)
    report["identity_edits"] = 3
    report["identity_ok"] = not failures

    # -- speedup gate (full mode): 1-class edit, incremental vs cold ---
    edited, target = drop_last_method(classes)
    incremental_input = [copy.deepcopy(c) for c in edited]
    cold_input = [copy.deepcopy(c) for c in edited]

    t0 = time.perf_counter()
    result = session.update(incremental_input)
    incremental_seconds = time.perf_counter() - t0
    stats = result.statistics

    t0 = time.perf_counter()
    cpg_cold, chains_cold = cold_pipeline(cold_input, cfg)
    cold_seconds = time.perf_counter() - t0

    if [c.key for c in result.chains] != [c.key for c in chains_cold]:
        failures.append("speedup edit: chain list diverged from cold rebuild")
    if repr(graph_fingerprint(session.cpg.graph)) != repr(
        graph_fingerprint(cpg_cold.graph)
    ):
        failures.append("speedup edit: fingerprint diverged from cold rebuild")

    speedup = cold_seconds / incremental_seconds if incremental_seconds else 0.0
    report["one_class_edit"] = {
        "target": target,
        "cold_seconds": round(cold_seconds, 4),
        "incremental_seconds": round(incremental_seconds, 4),
        "speedup": round(speedup, 2),
        "phases": {k: round(v, 4) for k, v in stats.phase_seconds.items()},
        "statistics": stats.as_row(),
    }
    print(f"1-class edit ({target}):")
    print(f"  cold rebuild + search : {cold_seconds:8.3f}s")
    print(f"  incremental update    : {incremental_seconds:8.3f}s "
          f"({speedup:.1f}x)")
    for phase, seconds in stats.phase_seconds.items():
        print(f"    {phase:<10} {seconds:8.3f}s")

    if not args.smoke and speedup < 5.0:
        failures.append(
            f"expected >=5x speedup for a 1-class edit over the merged "
            f"corpus, got {speedup:.2f}x"
        )

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"wrote {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

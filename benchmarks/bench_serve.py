"""Serve benchmark: latency/throughput of the ``tabby serve`` job API.

Three measurements against an in-process server, all over persistent
HTTP/1.1 connections:

* **serial baseline** — a 1-worker server computing N *distinct*
  submissions back-to-back (submit, poll to done, repeat).  Every job
  misses the result store, so this is the throughput of the service
  when each request pays for a full parse -> CPG -> search pipeline
  serially: the "1 worker serial baseline" of the acceptance gate.

* **warm cache** — one bundle is computed once, then ``clients``
  threads each fire M identical POST /jobs; every response must come
  back ``status == "cached"``.  Reported per client count (1 and 8 in
  full mode) with p50/p99 latency and aggregate throughput.

* **equivalence** (every mode, smoke included) — the chains fetched
  over the live HTTP API are diffed against a direct
  ``Tabby.find_gadget_chains`` call on the same classes; any
  divergence fails the run.

The full run asserts warm-cache throughput at 8 concurrent clients is
>= 2x the serial baseline and writes ``BENCH_serve.json``; ``--smoke``
shrinks the request counts and skips the throughput gate (equivalence
is always enforced), which is what CI runs.
"""

import argparse
import http.client
import json
import statistics
import sys
import threading
import time

sys.path.insert(0, "src")

from repro.core import SourceCatalog, Tabby
from repro.jvm import jasm
from repro.jvm.builder import ProgramBuilder
from repro.jvm.model import SERIALIZABLE
from repro.serve import create_server

OPTIONS = {"sources": "native"}


def gadget_classes(tag):
    """The Figure-1 three-class gadget program, parameterised by package
    so distinct tags produce distinct content hashes."""
    pb = ProgramBuilder(jar=f"{tag}.jar")
    obj = pb.cls("java.lang.Object", extends=None)
    obj.abstract_method("toString", returns="java.lang.String")
    obj.finish()
    with pb.cls(f"{tag}.EvilObjectB", implements=[SERIALIZABLE]) as c:
        c.field("val2", "java.lang.Object")
        with c.method("toString", returns="java.lang.String") as m:
            v = m.get_field(m.this, "val2")
            cmd = m.invoke(
                v, "java.lang.Object", "toString", returns="java.lang.String"
            )
            rt = m.invoke_static(
                "java.lang.Runtime", "getRuntime", returns="java.lang.Runtime"
            )
            m.invoke(rt, "java.lang.Runtime", "exec", [cmd])
            m.ret(cmd)
    with pb.cls(f"{tag}.EvilObjectA", implements=[SERIALIZABLE]) as c:
        c.field("val1", "java.lang.Object")
        with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
            v = m.get_field(m.this, "val1")
            m.invoke(v, "java.lang.Object", "toString", returns="java.lang.String")
            m.ret()
    return pb.build()


def submission_body(tag):
    return json.dumps(
        {"classes": jasm.dumps(gadget_classes(tag)), "options": OPTIONS}
    ).encode()


class Conn:
    """One persistent keep-alive connection speaking the JSON protocol."""

    def __init__(self, host, port):
        self.conn = http.client.HTTPConnection(host, port, timeout=60)

    def request(self, method, path, body=None):
        self.conn.request(method, path, body=body)
        response = self.conn.getresponse()
        return response.status, json.loads(response.read())

    def poll_done(self, job_id, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, doc = self.request("GET", f"/jobs/{job_id}")
            assert status == 200, doc
            if doc["state"] in ("done", "failed", "cancelled"):
                return doc
        raise AssertionError(f"job {job_id} did not finish within {timeout}s")

    def close(self):
        self.conn.close()


def percentiles(latencies):
    ordered = sorted(latencies)
    return {
        "p50_ms": statistics.median(ordered) * 1000,
        "p99_ms": ordered[min(len(ordered) - 1, int(len(ordered) * 0.99))] * 1000,
        "mean_ms": statistics.fmean(ordered) * 1000,
    }


def serial_baseline(host, port, jobs, failures):
    """1-worker server, distinct bundles, submit-and-wait serially:
    end-to-end job latency with every request paying full compute."""
    conn = Conn(host, port)
    latencies = []
    started = time.perf_counter()
    for i in range(jobs):
        body = submission_body(f"cold{i}")
        t0 = time.perf_counter()
        status, doc = conn.request("POST", "/jobs", body)
        if doc.get("status") != "new":
            failures.append(
                f"serial baseline job {i}: expected a fresh compute, "
                f"got {doc.get('status')!r}"
            )
        final = conn.poll_done(doc["id"])
        latencies.append(time.perf_counter() - t0)
        if final["state"] != "done":
            failures.append(f"serial baseline job {i}: state {final['state']}")
    wall = time.perf_counter() - started
    conn.close()
    return {"jobs": jobs, "throughput_rps": jobs / wall, **percentiles(latencies)}


def warm_cache_run(host, port, clients, requests_each, body, failures):
    """``clients`` threads x ``requests_each`` identical POSTs, all of
    which must be served from the result store."""
    latencies = []
    lock = threading.Lock()

    def client_thread():
        conn = Conn(host, port)
        local = []
        for _ in range(requests_each):
            t0 = time.perf_counter()
            status, doc = conn.request("POST", "/jobs", body)
            local.append(time.perf_counter() - t0)
            if status != 200 or doc.get("status") != "cached":
                with lock:
                    failures.append(
                        f"warm run (clients={clients}): expected a cache "
                        f"hit, got HTTP {status} status={doc.get('status')!r}"
                    )
                return
        conn.close()
        with lock:
            latencies.extend(local)

    threads = [threading.Thread(target=client_thread) for _ in range(clients)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started
    total = clients * requests_each
    return {
        "clients": clients,
        "requests": total,
        "throughput_rps": total / wall,
        **percentiles(latencies or [wall]),
    }


def check_equivalence(host, port, failures):
    """Round-trip a bundle through the live API and diff against the
    direct library call."""
    conn = Conn(host, port)
    classes = gadget_classes("equiv")
    body = json.dumps({"classes": jasm.dumps(classes), "options": OPTIONS}).encode()
    _, doc = conn.request("POST", "/jobs", body)
    final = conn.poll_done(doc["id"])
    if final["state"] != "done":
        failures.append(f"equivalence job failed: {final.get('error')}")
        conn.close()
        return False
    _, payload = conn.request("GET", f"/jobs/{doc['id']}/chains")
    conn.close()
    chains = (
        Tabby(sources=SourceCatalog.native())
        .add_classes(classes)
        .find_gadget_chains()
    )
    expected = [
        {
            "steps": [step.qualified for step in chain.steps],
            "sink_category": chain.sink_category,
        }
        for chain in chains
    ]
    if payload["chains"] != expected:
        failures.append(
            "HTTP chains diverge from the direct API: "
            f"{payload['chains']!r} != {expected!r}"
        )
        return False
    return True


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny request counts, equivalence checks only (no throughput gate)",
    )
    parser.add_argument("--output", default="BENCH_serve.json")
    args = parser.parse_args(argv)

    if args.smoke:
        baseline_jobs, requests_each, client_counts = 4, 20, [1, 4]
    else:
        baseline_jobs, requests_each, client_counts = 40, 300, [1, 2, 8]

    failures = []
    report = {
        "benchmark": "serve",
        "mode": "smoke" if args.smoke else "full",
        "options": OPTIONS,
    }

    # -- serial baseline: its own 1-worker server, nothing pre-warmed
    server = create_server(workers=1)
    server.run_forever_in_thread()
    host, port = "127.0.0.1", server.port
    print(f"serial baseline: {baseline_jobs} distinct jobs, 1 worker ...")
    baseline = serial_baseline(host, port, baseline_jobs, failures)
    report["serial_baseline"] = baseline
    print(f"  {baseline['throughput_rps']:7.1f} jobs/s  "
          f"p50 {baseline['p50_ms']:6.2f}ms  p99 {baseline['p99_ms']:6.2f}ms")
    server.close()

    # -- warm cache: a fresh server, one computed bundle, hammered
    server = create_server(workers=2)
    server.run_forever_in_thread()
    host, port = "127.0.0.1", server.port
    body = submission_body("hot")
    warmer = Conn(host, port)
    _, doc = warmer.request("POST", "/jobs", body)
    warmer.poll_done(doc["id"])
    warmer.close()

    report["warm_cache"] = []
    for clients in client_counts:
        entry = warm_cache_run(host, port, clients, requests_each, body, failures)
        report["warm_cache"].append(entry)
        print(f"warm cache, {clients} client(s): "
              f"{entry['throughput_rps']:7.1f} rps  "
              f"p50 {entry['p50_ms']:6.2f}ms  p99 {entry['p99_ms']:6.2f}ms")

    equivalent = check_equivalence(host, port, failures)
    print(f"HTTP vs direct API equivalence: {'ok' if equivalent else 'FAILED'}")

    _, stats = Conn(host, port).request("GET", "/stats")
    store = stats["store"]
    lookups = store["hits"] + store["misses"]
    report["warm_hit_ratio"] = store["hits"] / lookups if lookups else 0.0
    print(f"result-store hit ratio on the warm server: "
          f"{report['warm_hit_ratio']:.4f} "
          f"({store['hits']} hits / {lookups} lookups)")
    server.close()

    concurrent = report["warm_cache"][-1]
    speedup = concurrent["throughput_rps"] / baseline["throughput_rps"]
    report["speedup_8_clients_warm_vs_serial"] = speedup
    print(f"warm throughput at {concurrent['clients']} clients vs serial "
          f"recompute baseline: {speedup:.1f}x")

    if not args.smoke and speedup < 2.0:
        failures.append(
            f"expected >=2x throughput at 8 concurrent warm-cache clients "
            f"vs the 1-worker serial baseline, got {speedup:.2f}x"
        )

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"wrote {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

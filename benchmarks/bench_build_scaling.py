"""Build-scaling benchmark: parallel shards and the warm summary cache.

Measures the CPG build on an analysis-heavy synthetic corpus (many live
call sites composing a wide Action, so Algorithm 1 dominates the build)
in three modes:

* serial, cold — the baseline pipeline;
* workers ∈ {2, 4}, cold — the sharded summary phase.  The ≥1.5×
  speedup assertion only applies when the machine actually has ≥2 CPUs
  (a single-CPU container cannot speed up CPU-bound work by adding
  processes; the differential tests still prove the results identical);
* serial, warm cache — a rebuild over an unchanged classpath, which
  must skip Algorithm 1 entirely and run ≥5× faster than cold.
"""

import time

import pytest

from repro.core.cpg import CPGBuilder
from repro.core.parallel import ParallelConfig, available_cpus
from repro.jvm.builder import ProgramBuilder
from repro.jvm.hierarchy import ClassHierarchy

pytestmark = pytest.mark.slow

N_CLASSES = 30
N_METHODS = 5
N_CALLS = 40
HUB_FIELDS = 40
REPETITIONS = 3


def build_corpus():
    """One wide hub method + many methods that repeatedly compose it.

    Every invoke is one jasm line but costs a ``calc`` over a
    ``HUB_FIELDS``-entry Action, so analysis cost dwarfs the cache's
    dump/hash/decode overhead — the honest setting for measuring the
    warm-cache claim."""
    pb = ProgramBuilder(jar="scale.jar")
    with pb.cls("scale.Hub") as c:
        for fi in range(HUB_FIELDS):
            c.field(f"f{fi}", "java.lang.Object")
        with c.method("mix", params=["java.lang.Object"],
                      returns="java.lang.Object") as m:
            for fi in range(HUB_FIELDS):
                m.set_field(m.this, f"f{fi}", m.param(1))
            m.ret(m.param(1))
    for ci in range(N_CLASSES):
        with pb.cls(f"scale.p{ci % 8}.C{ci}") as c:
            for mi in range(N_METHODS):
                with c.method(f"m{mi}", params=["java.lang.Object"],
                              returns="java.lang.Object") as m:
                    v = m.param(1)
                    for _ in range(N_CALLS):
                        v = m.invoke(v, "scale.Hub", "mix", [v],
                                     returns="java.lang.Object")
                    m.ret(v)
    return pb.build()


def timed_build(classes, parallel=None, cache=None, repetitions=REPETITIONS):
    """Best-of-N wall clock for one build mode, plus the last CPG."""
    best = float("inf")
    cpg = None
    for _ in range(repetitions):
        hierarchy = ClassHierarchy(classes)
        builder = CPGBuilder(hierarchy, parallel=parallel, cache=cache)
        started = time.perf_counter()
        cpg = builder.build()
        best = min(best, time.perf_counter() - started)
    return best, cpg


@pytest.fixture(scope="module")
def corpus():
    return build_corpus()


def test_parallel_build_scaling(corpus):
    serial_s, serial_cpg = timed_build(corpus)
    rows = [("serial", serial_s, 1.0)]
    for workers in (2, 4):
        par_s, par_cpg = timed_build(
            corpus, parallel=ParallelConfig(workers=workers)
        )
        rows.append((f"workers={workers}", par_s, serial_s / par_s))
        assert (
            par_cpg.statistics.relationship_edge_count
            == serial_cpg.statistics.relationship_edge_count
        )
    print()
    for label, seconds, speedup in rows:
        print(f"  {label:<12} {seconds:8.3f}s  {speedup:5.2f}x")
    if available_cpus() >= 2:
        four = next(s for label, _, s in rows if label == "workers=4")
        assert four >= 1.5, f"expected >=1.5x at 4 workers, got {four:.2f}x"
    else:
        print(f"  (only {available_cpus()} CPU available; "
              "speedup assertion skipped, equivalence still checked)")


def test_warm_cache_rebuild_speedup(corpus, tmp_path):
    cache_dir = str(tmp_path / "cache")
    cold_s, cold_cpg = timed_build(corpus, cache=cache_dir, repetitions=1)
    warm_s, warm_cpg = timed_build(corpus, cache=cache_dir)
    assert warm_cpg.statistics.cache_misses == 0
    assert warm_cpg.statistics.analyzed_method_count == 0
    assert (
        warm_cpg.statistics.relationship_edge_count
        == cold_cpg.statistics.relationship_edge_count
    )
    speedup = cold_s / warm_s
    print(f"\n  cold {cold_s:.3f}s -> warm {warm_s:.3f}s  ({speedup:.1f}x)")
    assert speedup >= 5.0, f"expected >=5x warm rebuild, got {speedup:.2f}x"


def test_warm_cache_beats_plain_serial(corpus, tmp_path):
    """The end-to-end claim: with a populated cache, rebuilding is
    faster than ever running Algorithm 1, not merely faster than the
    cache's own cold path."""
    cache_dir = str(tmp_path / "cache")
    timed_build(corpus, cache=cache_dir, repetitions=1)
    serial_s, _ = timed_build(corpus)
    warm_s, _ = timed_build(corpus, cache=cache_dir)
    print(f"\n  serial {serial_s:.3f}s vs warm {warm_s:.3f}s")
    assert warm_s < serial_s

"""Table IX — comparison with GadgetInspector and Serianalyzer (RQ2).

Runs all three tools over the 26 dataset components, classifies every
reported chain against the ground truth with the PoC oracle, prints the
full table, and asserts the paper's headline shape:

* Tabby's FPR is far below both baselines (32.9 vs 93.0 / 98.6);
* Tabby's FNR is far below both baselines (31.6 vs 86.8 / 81.6);
* Serianalyzer fails to terminate on the Clojure/Jython components;
* Tabby finds every unknown chain the baselines find.
"""

import pytest

from repro.bench import format_table_ix, run_table_ix, run_table_ix_component, table_ix_totals
from repro.core import Tabby
from repro.corpus import build_component, build_lang_base


@pytest.fixture(scope="module")
def results():
    return run_table_ix()


@pytest.fixture(scope="module")
def totals(results):
    return table_ix_totals(results)


def test_table_ix_report(results, benchmark):
    """Print the full comparison; benchmark Tabby on one component."""
    spec = build_component("commons-collections(3.2.1)")
    classes = build_lang_base() + spec.classes

    def tabby_run():
        return Tabby().add_classes(classes).find_gadget_chains()

    chains = benchmark(tabby_run)
    assert chains
    print()
    print(format_table_ix(results))


def test_tabby_beats_baselines_on_fpr(totals, benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    assert totals["tabby_fpr"] < 40.0
    assert totals["gadgetinspector_fpr"] > 80.0
    assert totals["serianalyzer_fpr"] > 80.0
    # the >60.1% accuracy-gap claim of the paper's contribution list
    assert totals["gadgetinspector_fpr"] - totals["tabby_fpr"] > 50.0


def test_tabby_beats_baselines_on_fnr(totals, benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    assert totals["tabby_fnr"] < 40.0
    assert totals["gadgetinspector_fnr"] > 70.0
    assert totals["serianalyzer_fnr"] > 70.0


def test_serianalyzer_does_not_terminate_on_dense_components(results, benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    unterminated = {
        r.component for r in results if not r.serianalyzer.terminated
    }
    assert unterminated == {"Clojure", "Jython1"}
    # the other tools always terminate
    assert all(r.tabby.terminated and r.gadgetinspector.terminated for r in results)


def test_tabby_known_recovery_matches_paper(totals, benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    assert totals["known_in_dataset"] == 38
    assert totals["tabby_known"] == 26  # paper: 26 of 38 (proxy chains missed)
    assert totals["gadgetinspector_known"] == 5
    assert totals["serianalyzer_known"] == 7


def test_tabby_supersets_baseline_unknowns(benchmark):
    """Every unknown chain a baseline finds, Tabby also finds (§IV-C)."""
    benchmark.pedantic(lambda: None, rounds=1)
    from repro.baselines import GadgetInspector, Serianalyzer
    from repro.verify import ChainVerifier

    for name in ("Clojure", "commons-collections(3.2.1)"):
        spec = build_component(name)
        classes = build_lang_base() + spec.classes
        tabby_keys = {
            c.endpoint_key
            for c in Tabby().add_classes(classes).find_gadget_chains()
        }
        verifier = ChainVerifier(classes)
        gi = GadgetInspector(classes).run()
        for chain in gi.chains:
            if spec.match_known(chain) is None and verifier.verify(chain).effective:
                assert chain.endpoint_key in tabby_keys


#: measured reproduction cells (see EXPERIMENTS.md): component ->
#: (tabby_result, tabby_fake, tabby_known, tabby_unknown)
EXPECTED_TABBY_CELLS = {
    "AspectJWeaver": (1, 0, 1, 0),
    "BeanShell1": (3, 2, 1, 0),
    "C3P0": (6, 2, 1, 3),
    "Click1": (1, 0, 1, 0),
    "Clojure": (4, 1, 1, 2),
    "CommonsBeanutils1": (1, 0, 1, 0),
    "commons-collections(3.2.1)": (20, 5, 4, 9),
    "commons-colletions(4.0.0)": (18, 5, 1, 11),
    "FileUpload1": (2, 0, 2, 0),
    "Groovy1": (2, 2, 0, 0),
    "Hibernate": (5, 1, 2, 2),
    "JBossInterceptors1": (3, 2, 1, 0),
    "JSON1": (0, 0, 0, 0),
    "JavassistWeld1": (3, 2, 1, 0),
    "Jython1": (2, 2, 0, 0),
    "MozillaRhino": (1, 0, 1, 0),
    "Myface": (1, 0, 1, 0),
    "Rome": (2, 0, 1, 1),
    "Spring": (2, 2, 0, 0),
    "Vaadin1": (1, 0, 1, 0),
    "Wicket1": (2, 0, 2, 0),
    "commons-configration": (0, 0, 0, 0),
    "spring-beans": (2, 1, 1, 0),
    "spring-aop": (2, 1, 1, 0),
    "XBean": (1, 0, 1, 0),
    "Resin": (0, 0, 0, 0),
}


def test_per_component_tabby_cells_are_stable(results, benchmark):
    """Regression lock on every Tabby cell of the reproduced Table IX
    (the measured values recorded in EXPERIMENTS.md)."""
    benchmark.pedantic(lambda: None, rounds=1)
    for r in results:
        expected = EXPECTED_TABBY_CELLS[r.component]
        measured = (
            r.tabby.result_count,
            r.tabby.fake_count,
            r.tabby.known_found,
            r.tabby.unknown_count,
        )
        assert measured == expected, f"{r.component}: {measured} != {expected}"


def test_gi_sl_totals_match_paper(totals, benchmark):
    benchmark.pedantic(lambda: None, rounds=1)
    assert totals["gadgetinspector_result"] == 129  # paper: 129
    assert totals["gadgetinspector_fake"] == 120  # paper: 120
    assert totals["gadgetinspector_unknown"] == 4  # paper: 4
    assert 580 <= totals["serianalyzer_result"] <= 610  # paper: 593
    assert totals["serianalyzer_known"] == 7  # paper: 7

"""MVCC + WAL benchmark: reader identity, crash recovery, throughput.

Four claims, four gates:

* **reader identity** (every mode, smoke included) — reader threads
  pin snapshots and run the gadget-chain search while the incremental
  writer commits an edit script; every reader's chain-key list must be
  *bit-identical* to the list computed from the exact version it
  pinned.  Any divergence fails the run; there is no tolerance.

* **crash recovery** (every mode) — after the edit script, re-opening
  the write-ahead log (the crash path: attach + replay, no in-memory
  state) must reconstruct a graph whose ``graph_fingerprint`` equals
  the last committed version's.

* **O(changed buckets) staging** (every mode) — a write transaction
  may privatize only the buckets it touches: a point write's
  owned-node fraction must stay under 5% of the graph, and
  ``begin_snapshot`` must cost the same on the full corpus as on a
  10-node graph (it is one attribute read; the gate allows 20x for
  timer noise).

* **reader throughput** (full mode) — with a writer continuously
  committing one-class edits, aggregate snapshot-reader throughput
  must be >= 2x the coarse global-lock baseline in which every reader
  and the writer serialize on one mutex around the same graph.

``--smoke`` runs the first three gates on a two-component corpus —
that is what CI runs.  The full run adds the throughput gate and
writes ``BENCH_mvcc.json``.
"""

import argparse
import copy
import json
import sys
import tempfile
import threading
import time

sys.path.insert(0, "src")

from repro.core.cpg import CLASS_LABEL, CPG, METHOD_LABEL, CPGStatistics
from repro.core.incremental import IncrementalAnalyzer
from repro.core.pathfinder import GadgetChainFinder
from repro.corpus import COMPONENT_NAMES, build_component, build_lang_base
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.mvcc import VersionedGraph, version_of
from repro.graphdb.query import run_query
from repro.graphdb.snapshot import fingerprint_digest, graph_fingerprint
from repro.jvm.hierarchy import ClassHierarchy

SMOKE_COMPONENTS = ["commons-collections(3.2.1)", "Hibernate"]

EDIT_TARGET = "org.apache.commons.collections.map.TransformedMap"

READERS = 4

#: one reader "op": a label count plus a sink scan — the serve-layer
#: query mix, cheap enough that the op rate is lock-bound, not CPU-bound
READER_QUERIES = (
    "MATCH (n:Class) RETURN count(n) AS c",
    "MATCH (m:Method) WHERE m.IS_SINK = true RETURN count(m) AS c",
)


def load_corpus(components):
    classes = list(build_lang_base())
    for name in components:
        classes.extend(build_component(name).classes)
    return classes


def chain_keys(snapshot, max_depth=12):
    statistics = CPGStatistics(
        class_node_count=snapshot.indexes.label_count(CLASS_LABEL),
        method_node_count=snapshot.indexes.label_count(METHOD_LABEL),
        relationship_edge_count=snapshot.relationship_count,
    )
    view = CPG(snapshot, ClassHierarchy([]), statistics, {})
    finder = GadgetChainFinder(view, max_depth=max_depth, workers=1)
    return sorted(
        (tuple(s.qualified for s in chain.steps), chain.sink_category)
        for chain in finder.find_chains()
    )


def drop_last_method(classes, target=EDIT_TARGET):
    edited = [copy.deepcopy(c) for c in classes]
    cls = next(
        (c for c in edited if c.name == target),
        next(c for c in edited
             if c.name != "java.lang.Object"
             and sum(m.has_body for m in c.methods.values()) > 1),
    )
    victim = [k for k, m in cls.methods.items() if m.has_body][-1]
    del cls.methods[victim]
    return edited, cls.name


def drop_class(classes, name):
    return [copy.deepcopy(c) for c in classes if c.name != name]


# -- gate 1+2: reader identity under a writer, then crash recovery -----


def run_identity_gate(classes, wal_path, failures, report):
    session = IncrementalAnalyzer(
        [copy.deepcopy(c) for c in classes], wal_path=wal_path,
        wal_fsync=False,
    )
    vg = session.versioned
    reference = {0: chain_keys(vg.begin_snapshot())}

    stop = threading.Event()
    observations = []
    errors = []

    def reader():
        local = []
        while not stop.is_set():
            snap = vg.begin_snapshot()
            try:
                local.append((version_of(snap), chain_keys(snap)))
            except Exception as exc:  # noqa: BLE001 - failed in the assert
                errors.append(repr(exc))
                return
        observations.extend(local)

    threads = [threading.Thread(target=reader) for _ in range(READERS)]
    for thread in threads:
        thread.start()

    edited, target = drop_last_method(classes)
    script = [
        ("edit-method", edited),
        ("drop-class", drop_class(edited, target)),
        ("revert-all", classes),
    ]
    for label, version_classes in script:
        session.update([copy.deepcopy(c) for c in version_classes])
        current = vg.begin_snapshot()
        reference[version_of(current)] = chain_keys(current)
    stop.set()
    for thread in threads:
        thread.join()

    mismatches = sum(
        1 for version, keys in observations if keys != reference[version]
    )
    if errors:
        failures.append(f"identity: reader raised: {errors[0]}")
    if mismatches:
        failures.append(
            f"identity: {mismatches}/{len(observations)} reader "
            f"observations diverged from their pinned version"
        )
    if len({tuple(map(tuple, keys)) for keys in reference.values()}) < 2:
        failures.append("identity: the edit script never changed the chains")
    report["identity"] = {
        "edits": len(script),
        "reader_observations": len(observations),
        "versions_observed": sorted(
            {version for version, _ in observations}
        ),
        "mismatches": mismatches,
    }
    print(f"  identity: {len(observations)} reader observations across "
          f"versions {report['identity']['versions_observed']}, "
          f"{mismatches} mismatches")

    # crash path: throw the session away, attach + replay the log
    want = graph_fingerprint(vg.begin_snapshot())
    recovered = VersionedGraph.open_durable(wal_path, fsync=False)
    got = graph_fingerprint(recovered.begin_snapshot())
    ok = got == want and recovered.version == vg.version
    if not ok:
        failures.append(
            "recovery: WAL replay fingerprint/version diverged from the "
            "last committed state"
        )
    report["recovery"] = {
        "version": recovered.version,
        "fingerprint_identical": got == want,
        "digest": fingerprint_digest(recovered.begin_snapshot()),
    }
    print(f"  recovery: replayed to version {recovered.version}, "
          f"fingerprint {'identical' if ok else 'DIVERGED'}")
    return session


# -- gate 3: O(changed buckets) staging --------------------------------


def run_staging_gate(session, failures, report):
    vg = session.versioned
    base = vg.begin_snapshot()
    node_count = base.node_count

    # a point write privatizes O(touched buckets), not O(graph):
    # stage one property write over the full corpus graph and count
    # what the transaction actually copied (then abort it)
    with vg.write_txn() as txn:
        any_node = next(iter(txn.graph._nodes))
        txn.graph.set_node_property(any_node, "NAME", "bench-touch")
        cow = txn.cow_stats()
        txn.abort()
    owned_fraction = cow.get("owned_nodes", 0) / max(1, node_count)
    if owned_fraction > 0.05:
        failures.append(
            f"staging: a point write privatized "
            f"{owned_fraction:.1%} of {node_count} nodes (gate: 5%)"
        )

    def snapshot_ns(graph_like, rounds=200_000):
        t0 = time.perf_counter_ns()
        for _ in range(rounds):
            graph_like.begin_snapshot()
        return (time.perf_counter_ns() - t0) / rounds

    tiny = PropertyGraph()
    for _ in range(10):
        tiny.create_node(["Class"])
    tiny_ns = snapshot_ns(VersionedGraph(tiny))
    corpus_ns = snapshot_ns(vg)
    ratio = corpus_ns / max(tiny_ns, 1e-9)
    if ratio > 20.0:
        failures.append(
            f"staging: begin_snapshot scaled with graph size "
            f"({corpus_ns:.0f}ns on {node_count} nodes vs "
            f"{tiny_ns:.0f}ns on 10 nodes)"
        )
    report["staging"] = {
        "graph_nodes": node_count,
        "cow": cow,
        "owned_node_fraction": round(owned_fraction, 5),
        "snapshot_begin_ns_tiny": round(tiny_ns, 1),
        "snapshot_begin_ns_corpus": round(corpus_ns, 1),
    }
    print(f"  staging: point write owned {cow.get('owned_nodes', 0)}"
          f"/{node_count} nodes ({owned_fraction:.2%}); "
          f"begin_snapshot {corpus_ns:.0f}ns on the corpus vs "
          f"{tiny_ns:.0f}ns on 10 nodes")


# -- gate 4 (full mode): reader throughput vs a global lock ------------


def reader_op(graph):
    for query in READER_QUERIES:
        run_query(graph, query)


def measure_readers(duration, get_graph, lock=None):
    """Aggregate reader ops completed in ``duration`` seconds."""
    stop = threading.Event()
    counts = [0] * READERS

    def reader(slot):
        while not stop.is_set():
            if lock is not None:
                with lock:
                    reader_op(get_graph())
            else:
                reader_op(get_graph())
            counts[slot] += 1

    threads = [
        threading.Thread(target=reader, args=(slot,))
        for slot in range(READERS)
    ]
    for thread in threads:
        thread.start()
    time.sleep(duration)
    stop.set()
    for thread in threads:
        thread.join()
    return sum(counts)


def run_throughput_gate(classes, failures, report, duration=6.0):
    edited, _ = drop_last_method(classes)
    flip = [classes, edited]

    # -- MVCC: wait-free readers, writer commits via write_txn ---------
    session = IncrementalAnalyzer(
        [copy.deepcopy(c) for c in classes], versioned=True
    )
    vg = session.versioned
    stop = threading.Event()
    commits = [0]

    def mvcc_writer():
        while not stop.is_set():
            commits[0] += 1
            session.update(
                [copy.deepcopy(c) for c in flip[commits[0] % 2]]
            )

    writer = threading.Thread(target=mvcc_writer)
    writer.start()
    mvcc_ops = measure_readers(duration, vg.begin_snapshot)
    stop.set()
    writer.join()
    mvcc_commits = commits[0]

    # -- baseline: one mutex around one mutable graph ------------------
    baseline = IncrementalAnalyzer([copy.deepcopy(c) for c in classes])
    lock = threading.Lock()
    stop = threading.Event()
    commits = [0]

    def locked_writer():
        while not stop.is_set():
            commits[0] += 1
            with lock:
                baseline.update(
                    [copy.deepcopy(c) for c in flip[commits[0] % 2]]
                )

    writer = threading.Thread(target=locked_writer)
    writer.start()
    lock_ops = measure_readers(
        duration, lambda: baseline.cpg.graph, lock=lock
    )
    stop.set()
    writer.join()
    lock_commits = commits[0]

    ratio = mvcc_ops / max(1, lock_ops)
    if ratio < 2.0:
        failures.append(
            f"throughput: expected >=2x aggregate reader throughput with "
            f"an active writer, got {ratio:.2f}x "
            f"({mvcc_ops} vs {lock_ops} ops in {duration:.0f}s)"
        )
    report["throughput"] = {
        "readers": READERS,
        "window_seconds": duration,
        "mvcc_reader_ops": mvcc_ops,
        "mvcc_writer_commits": mvcc_commits,
        "locked_reader_ops": lock_ops,
        "locked_writer_commits": lock_commits,
        "speedup": round(ratio, 2),
    }
    print(f"  throughput ({READERS} readers, {duration:.0f}s window):")
    print(f"    mvcc snapshots : {mvcc_ops:8d} reader ops "
          f"({mvcc_commits} writer commits)")
    print(f"    global lock    : {lock_ops:8d} reader ops "
          f"({lock_commits} writer commits)")
    print(f"    speedup        : {ratio:8.1f}x")


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="identity/recovery/staging gates only, on a 2-component "
             "corpus (what CI runs)",
    )
    parser.add_argument("--output", default="BENCH_mvcc.json")
    args = parser.parse_args(argv)

    components = SMOKE_COMPONENTS if args.smoke else list(COMPONENT_NAMES)
    failures = []
    report = {
        "benchmark": "mvcc",
        "mode": "smoke" if args.smoke else "full",
        "components": components,
        "readers": READERS,
    }

    classes = load_corpus(components)
    report["classes"] = len(classes)
    print(f"corpus: {len(classes)} classes from {len(components)} "
          f"component(s) + lang base")

    with tempfile.TemporaryDirectory() as tmp:
        session = run_identity_gate(
            classes, f"{tmp}/bench.wal", failures, report
        )
        run_staging_gate(session, failures, report)

    if not args.smoke:
        run_throughput_gate(classes, failures, report)

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"wrote {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

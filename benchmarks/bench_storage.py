"""Storage benchmark: v3 mmap / v2 binary / v1 JSON snapshots.

Two workloads, both rooted in the 26-component Table IX corpus:

* **corpus** — the merged corpus CPG exactly as built: the graph a
  ``tabby analyze`` of the whole corpus persists.  The load-speedup and
  open-latency gates (full mode only) are asserted on this workload.

* **library_bulk** — the same CPG plus decoy CALL lattices attached to
  a real sink, mimicking the storage profile of real-world classpaths
  (lots of near-identical method nodes and CALL edges, few distinct
  strings).  This is where columnar layout and the string table pay
  the most; the decoys add zero chains, which is also asserted.

Per workload x format we record save time, full-decode load time (both
best-of-N), file size, and two memory figures: the tracemalloc-visible
size of the loaded object graph (blind to mmap'd pages by design) and
the process RSS delta around the load (sees mmap'd pages once touched,
but noisy at small sizes — which is why both are reported).  The v3
format additionally records its zero-copy *open* latency — mmap plus
header validation, no decoding — and an N-process concurrent-reader
measurement: 8 spawned readers each open the same corpus snapshot, run
the probe query, and report their PSS delta while all 8 hold the graph
simultaneously.  mmap'd pages are shared, so the v3 total collapses
where 8 independent v2 decodes each pay full freight.

Identity gates run in every mode, smoke included:

* ``load_graph(save_graph(g))`` is :func:`graph_fingerprint`-identical
  to ``g`` under all three formats;
* the gadget-chain search over the reloaded graph — and, for v3, over
  the *mmap'd zero-copy view* — is bit-identical to the search over
  the in-memory original;
* a planner query over the reloaded graph (and the v3 view) returns
  bit-identical rows.

Results go to ``BENCH_storage.json``.  The full run asserts per
workload: v2 loads >=1.5x faster than v1 and produces a smaller file
(the floor leaves headroom for shared CI hosts — quiet machines
measure well above it, and the report records the actual ratio each
run); v3 opens >=10x
faster than a v2 full decode on the merged corpus; and 8 v3 readers
of one snapshot cost <=0.5x the memory of 8 independent v2 decodes.
``--smoke`` uses a two-component corpus and skips the performance
gates (identity is always enforced), which is what CI runs.
"""

import argparse
import json
import os
import sys
import tempfile
import time
import tracemalloc

sys.path.insert(0, "src")

from repro.core.cpg import CALL, CPG, CPGBuilder, CPGStatistics
from repro.core.pathfinder import GadgetChainFinder
from repro.corpus import COMPONENT_NAMES, build_component, build_lang_base
from repro.graphdb.query import run_query
from repro.graphdb.snapshot import graph_fingerprint
from repro.graphdb.storage import load_graph, open_graph, save_graph
from repro.jvm.hierarchy import ClassHierarchy

REPETITIONS = 5

#: load/open timings get extra repetitions — they are cheap and their
#: best-of is what the speedup gates divide, so squeeze the noise there
LOAD_REPETITIONS = 9

#: concurrent readers in the shared-memory measurement
READERS = 8

SMOKE_COMPONENTS = ["CommonsBeanutils1", "commons-collections(3.2.1)"]

#: every format answers this after a reload, bit-identically
PROBE_QUERY = (
    "MATCH (a:Method)-[c:CALL]->(b:Method {IS_SINK: true}) "
    "RETURN a.SIGNATURE AS caller, b.NAME AS sink ORDER BY caller, sink"
)

FORMATS = {
    "v1_json": ("g.cpg.json.gz", "json"),
    "v2_binary": ("g.cpg", "binary"),
    "v3_mmap": ("g3.cpg", "v3"),
}


def build_corpus_cpg(components):
    classes = build_lang_base()
    for name in components:
        classes += build_component(name).classes
    return CPGBuilder(ClassHierarchy(classes)).build()


def decoy_method(graph, name):
    return graph.create_node(
        ["Method"],
        {
            "NAME": name,
            "CLASSNAME": "bulk.Library",
            "SIGNATURE": f"void bulk.Library.{name}(java.lang.Object)",
            "ARITY": 1,
            "IS_SOURCE": False,
            "IS_SINK": False,
        },
    )


def attach_lattice(graph, sink, tag, width, depth):
    """A diamond CALL lattice feeding ``sink`` (see bench_search_scaling):
    source-unreachable, so it adds bulk but zero chains."""
    layers = []
    for d in range(depth + 1):
        layers.append([decoy_method(graph, f"{tag}_{d}_{k}") for k in range(width)])
    for node in layers[0]:
        graph.create_relationship(
            CALL, node, sink, {"POLLUTED_POSITION": [0, 0], "KIND": "virtual"}
        )
    for d in range(depth):
        for k in range(width):
            for caller in (layers[d + 1][k], layers[d + 1][(k + 1) % width]):
                graph.create_relationship(
                    CALL, caller, layers[d][k],
                    {"POLLUTED_POSITION": [0, 0], "KIND": "virtual"},
                )


def build_bulk_cpg(components, width, depth):
    cpg = build_corpus_cpg(components)
    sink = cpg.sink_nodes()[0]
    attach_lattice(cpg.graph, sink, "bulk", width, depth)
    return cpg


def chain_fingerprint(cpg):
    return [
        (
            tuple(step.qualified for step in chain.steps),
            chain.sink_category,
            tuple(chain.trigger_condition),
        )
        for chain in GadgetChainFinder(cpg).find_chains()
    ]


def reload_as_cpg(graph):
    return CPG(graph, ClassHierarchy([]), CPGStatistics(), {})


def timed(action, repetitions=REPETITIONS):
    best = float("inf")
    result = None
    for _ in range(repetitions):
        started = time.perf_counter()
        result = action()
        best = min(best, time.perf_counter() - started)
    return best, result


def statm_rss_bytes():
    """Resident set size from ``/proc/self/statm`` (None off-Linux)."""
    try:
        with open("/proc/self/statm") as fh:
            return int(fh.read().split()[1]) * os.sysconf("SC_PAGESIZE")
    except (OSError, ValueError, IndexError):
        return None


def pss_bytes():
    """Proportional set size (shared pages divided by their mapper
    count — the honest metric for mmap sharing), falling back to plain
    RSS where ``smaps_rollup`` is unavailable."""
    try:
        with open("/proc/self/smaps_rollup") as fh:
            for line in fh:
                if line.startswith("Pss:"):
                    return int(line.split()[1]) * 1024, "pss"
    except OSError:
        pass
    rss = statm_rss_bytes()
    return (rss, "rss") if rss is not None else (None, None)


def resident_bytes(path):
    """Memory cost of a full load, measured two ways.

    tracemalloc sees exactly the Python objects the load allocates but
    is blind to mmap'd file pages; the statm RSS delta sees those pages
    once touched but is noisy at small sizes (allocator reuse, arena
    growth).  Both are reported; neither alone tells the mmap story.
    """
    rss_before = statm_rss_bytes()
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    graph = load_graph(path)
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    rss_after = statm_rss_bytes()
    rss = (
        max(0, rss_after - rss_before)
        if rss_before is not None and rss_after is not None
        else None
    )
    return after - before, rss, graph


def _reader_worker(path, mmap_mode, barrier, out):
    """One concurrent reader: open/decode, do real work, report the
    memory delta while every sibling still holds its graph."""
    before, metric = pss_bytes()
    graph = open_graph(path) if mmap_mode else load_graph(path)
    rows = run_query(graph, PROBE_QUERY).rows
    barrier.wait(timeout=300)  # all readers resident simultaneously
    after, _ = pss_bytes()
    delta = (
        max(0, after - before)
        if before is not None and after is not None
        else None
    )
    out.put((delta, metric, len(rows)))
    barrier.wait(timeout=300)  # hold the graph until everyone measured


def measure_concurrent_readers(v3_path, v2_path, failures):
    """Total memory of N processes reading one corpus snapshot: v3
    readers mmap-share a single physical copy; v2 readers each decode
    their own."""
    import multiprocessing

    ctx = multiprocessing.get_context("spawn")
    result = {"readers": READERS}
    for label, path, mmap_mode in (
        ("v3_mmap", v3_path, True),
        ("v2_binary", v2_path, False),
    ):
        barrier = ctx.Barrier(READERS)
        out = ctx.Queue()
        procs = [
            ctx.Process(
                target=_reader_worker, args=(path, mmap_mode, barrier, out)
            )
            for _ in range(READERS)
        ]
        for proc in procs:
            proc.start()
        try:
            samples = [out.get(timeout=600) for _ in range(READERS)]
        except Exception:
            for proc in procs:
                proc.terminate()
            failures.append(f"readers/{label}: worker did not report")
            return result
        finally:
            for proc in procs:
                proc.join(timeout=60)
        deltas = [sample[0] for sample in samples]
        total = sum(deltas) if all(d is not None for d in deltas) else None
        result[label] = {"total_bytes": total, "metric": samples[0][1]}
        shown = f"{total:>12}" if total is not None else "         n/a"
        print(f"  {READERS} readers {label:<10} total {shown} bytes "
              f"({samples[0][1] or 'unavailable'})")
    v3 = result.get("v3_mmap", {}).get("total_bytes")
    v2 = result.get("v2_binary", {}).get("total_bytes")
    if v3 is not None and v2:
        result["ratio_v3_vs_v2"] = v3 / v2
    return result


def measure_workload(name, cpg, tmp_dir, report, failures):
    graph = cpg.graph
    print(f"{name}: {graph.node_count} nodes, "
          f"{graph.relationship_count} relationships")
    reference = graph_fingerprint(graph)
    chains_before = chain_fingerprint(cpg)
    rows_before = run_query(graph, PROBE_QUERY).rows
    entry = {
        "nodes": graph.node_count,
        "relationships": graph.relationship_count,
        "chains": len(chains_before),
        "formats": {},
    }
    paths = {}
    for label, (file_name, format) in FORMATS.items():
        path = os.path.join(tmp_dir, f"{name}-{file_name}")
        paths[label] = path
        save_s, _ = timed(lambda: save_graph(graph, path, format=format))
        load_s, _ = timed(lambda: load_graph(path), LOAD_REPETITIONS)
        traced, rss, loaded = resident_bytes(path)
        entry["formats"][label] = {
            "save_s": save_s,
            "load_s": load_s,
            "file_bytes": os.path.getsize(path),
            "resident_bytes": traced,
            "resident_rss_bytes": rss,
        }
        print(f"  {label:<10} save {save_s * 1000:7.1f}ms  "
              f"load {load_s * 1000:7.1f}ms  "
              f"{os.path.getsize(path):>9} bytes on disk  "
              f"{traced:>9} bytes traced")

        # -- identity gates (every mode)
        if graph_fingerprint(loaded) != reference:
            failures.append(f"{name}/{label}: reload is not "
                            "fingerprint-identical to the original")
        if chain_fingerprint(reload_as_cpg(loaded)) != chains_before:
            failures.append(f"{name}/{label}: chain search diverged "
                            "after a save/load cycle")
        if run_query(loaded, PROBE_QUERY).rows != rows_before:
            failures.append(f"{name}/{label}: planner query rows diverged "
                            "after a save/load cycle")

        if label == "v3_mmap":
            # zero-copy open latency: mmap + header validation only
            def open_close():
                view = open_graph(path)
                view.close()

            open_s, _ = timed(open_close, LOAD_REPETITIONS)
            entry["formats"][label]["open_s"] = open_s
            print(f"  {label:<10} open {open_s * 1000:7.3f}ms  (zero-copy)")
            # the mmap'd view itself — no materialisation — must search
            # and query bit-identically to the in-memory original
            view = open_graph(path)
            if chain_fingerprint(reload_as_cpg(view)) != chains_before:
                failures.append(f"{name}/{label}: chain search over the "
                                "mmap'd view diverged from the original")
            if run_query(view, PROBE_QUERY).rows != rows_before:
                failures.append(f"{name}/{label}: planner query over the "
                                "mmap'd view diverged from the original")
            if graph_fingerprint(view.materialize()) != reference:
                failures.append(f"{name}/{label}: materialized view is not "
                                "fingerprint-identical to the original")
            view.close()

    v1 = entry["formats"]["v1_json"]
    v2 = entry["formats"]["v2_binary"]
    v3 = entry["formats"]["v3_mmap"]
    entry["load_speedup_v2_vs_v1"] = (
        v1["load_s"] / v2["load_s"] if v2["load_s"] else float("inf")
    )
    entry["size_ratio_v2_vs_v1"] = v2["file_bytes"] / v1["file_bytes"]
    entry["size_ratio_v3_vs_v1"] = v3["file_bytes"] / v1["file_bytes"]
    entry["open_speedup_v3_vs_v2"] = (
        v2["load_s"] / v3["open_s"] if v3["open_s"] else float("inf")
    )
    report["workloads"][name] = entry
    return entry, paths


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="two-component corpus, identity checks only (no perf gates)",
    )
    parser.add_argument("--output", default="BENCH_storage.json")
    args = parser.parse_args(argv)

    components = SMOKE_COMPONENTS if args.smoke else list(COMPONENT_NAMES)
    width, depth = (8, 4) if args.smoke else (96, 14)
    failures = []
    report = {
        "benchmark": "storage",
        "mode": "smoke" if args.smoke else "full",
        "components": len(components),
        "repetitions": REPETITIONS,
        "lattice": {"width": width, "depth": depth},
        "workloads": {},
    }

    print(f"building merged {len(components)}-component corpus CPG ...")
    corpus = build_corpus_cpg(components)
    print(f"building library-bulk CPG (lattice width={width}, depth={depth}) ...")
    bulk = build_bulk_cpg(components, width, depth)

    with tempfile.TemporaryDirectory(prefix="bench-storage-") as tmp_dir:
        corpus_entry, corpus_paths = measure_workload(
            "corpus", corpus, tmp_dir, report, failures
        )
        bulk_entry, _ = measure_workload(
            "library_bulk", bulk, tmp_dir, report, failures
        )
        print(f"measuring {READERS} concurrent readers of the corpus "
              "snapshot ...")
        report["concurrent_readers"] = measure_concurrent_readers(
            corpus_paths["v3_mmap"], corpus_paths["v2_binary"], failures
        )

    speedup = corpus_entry["load_speedup_v2_vs_v1"]
    report["speedup"] = speedup
    if not args.smoke:
        # per-workload load gates: the corpus and bulk profiles stress
        # different parts of the codec, so each gets its own floor
        load_floors = {"corpus": 1.5, "library_bulk": 1.5}
        for name, entry in report["workloads"].items():
            floor = load_floors[name]
            if entry["load_speedup_v2_vs_v1"] < floor:
                failures.append(
                    f"{name}: expected >={floor}x v2 load speedup, "
                    f"got {entry['load_speedup_v2_vs_v1']:.2f}x"
                )
            if entry["size_ratio_v2_vs_v1"] >= 1.0:
                failures.append(
                    f"{name}: v2 file is not smaller than v1 "
                    f"(ratio {entry['size_ratio_v2_vs_v1']:.2f})"
                )
            # v3 is deliberately uncompressed (it is the mmap'd in-memory
            # layout), so it carries no size gate — its gates are open
            # latency and shared residency
        if corpus_entry["open_speedup_v3_vs_v2"] < 10.0:
            failures.append(
                f"corpus: expected v3 open >=10x faster than a v2 full "
                f"decode, got {corpus_entry['open_speedup_v3_vs_v2']:.1f}x"
            )
        readers = report["concurrent_readers"]
        ratio = readers.get("ratio_v3_vs_v2")
        if ratio is None:
            if readers.get("v3_mmap", {}).get("metric") is not None:
                failures.append("readers: memory totals unavailable")
        elif ratio > 0.5:
            failures.append(
                f"readers: {READERS} v3 readers cost {ratio:.2f}x the "
                f"memory of {READERS} v2 decodes (expected <=0.5x)"
            )

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"wrote {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    open_ms = corpus_entry["formats"]["v3_mmap"]["open_s"] * 1000
    print(f"v2 binary: {speedup:.1f}x faster load than v1 on the merged "
          f"corpus; v3 opens in {open_ms:.2f}ms "
          f"({corpus_entry['open_speedup_v3_vs_v2']:.0f}x faster than a v2 "
          "decode) — all reloads bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Storage benchmark: the v2 binary columnar snapshot vs the v1 JSON form.

Two workloads, both rooted in the 26-component Table IX corpus:

* **corpus** — the merged corpus CPG exactly as built: the graph a
  ``tabby analyze`` of the whole corpus persists.  The >=3x v2 load
  speedup gate (full mode only) is asserted on this workload.

* **library_bulk** — the same CPG plus decoy CALL lattices attached to
  a real sink, mimicking the storage profile of real-world classpaths
  (lots of near-identical method nodes and CALL edges, few distinct
  strings).  This is where columnar layout and the string table pay
  the most; the decoys add zero chains, which is also asserted.

Per workload x format we record save time, load time (both best-of-N),
file size, and the tracemalloc-visible resident size of the loaded
graph.  Identity gates run in every mode, smoke included:

* ``load_graph(save_graph(g))`` is :func:`graph_fingerprint`-identical
  to ``g`` under both formats — nodes, labels, properties, indexes,
  adjacency buckets and relationship-type counts;
* the gadget-chain search over the reloaded graph is bit-identical to
  the search over the in-memory original;
* a planner query over the reloaded graph returns bit-identical rows.

Results go to ``BENCH_storage.json``.  The full run asserts the v2
binary loads >=3x faster than v1 and produces a smaller file;
``--smoke`` uses a two-component corpus and skips the speedup gate
(identity is always enforced), which is what CI runs.
"""

import argparse
import json
import os
import sys
import tempfile
import time
import tracemalloc

sys.path.insert(0, "src")

from repro.core.cpg import CALL, CPG, CPGBuilder, CPGStatistics
from repro.core.pathfinder import GadgetChainFinder
from repro.corpus import COMPONENT_NAMES, build_component, build_lang_base
from repro.graphdb.query import run_query
from repro.graphdb.snapshot import graph_fingerprint
from repro.graphdb.storage import load_graph, save_graph
from repro.jvm.hierarchy import ClassHierarchy

REPETITIONS = 5

SMOKE_COMPONENTS = ["CommonsBeanutils1", "commons-collections(3.2.1)"]

#: both formats answer this after a reload, bit-identically
PROBE_QUERY = (
    "MATCH (a:Method)-[c:CALL]->(b:Method {IS_SINK: true}) "
    "RETURN a.SIGNATURE AS caller, b.NAME AS sink ORDER BY caller, sink"
)

FORMATS = {"v1_json": ("g.cpg.json.gz", "json"), "v2_binary": ("g.cpg", "binary")}


def build_corpus_cpg(components):
    classes = build_lang_base()
    for name in components:
        classes += build_component(name).classes
    return CPGBuilder(ClassHierarchy(classes)).build()


def decoy_method(graph, name):
    return graph.create_node(
        ["Method"],
        {
            "NAME": name,
            "CLASSNAME": "bulk.Library",
            "SIGNATURE": f"void bulk.Library.{name}(java.lang.Object)",
            "ARITY": 1,
            "IS_SOURCE": False,
            "IS_SINK": False,
        },
    )


def attach_lattice(graph, sink, tag, width, depth):
    """A diamond CALL lattice feeding ``sink`` (see bench_search_scaling):
    source-unreachable, so it adds bulk but zero chains."""
    layers = []
    for d in range(depth + 1):
        layers.append([decoy_method(graph, f"{tag}_{d}_{k}") for k in range(width)])
    for node in layers[0]:
        graph.create_relationship(
            CALL, node, sink, {"POLLUTED_POSITION": [0, 0], "KIND": "virtual"}
        )
    for d in range(depth):
        for k in range(width):
            for caller in (layers[d + 1][k], layers[d + 1][(k + 1) % width]):
                graph.create_relationship(
                    CALL, caller, layers[d][k],
                    {"POLLUTED_POSITION": [0, 0], "KIND": "virtual"},
                )


def build_bulk_cpg(components, width, depth):
    cpg = build_corpus_cpg(components)
    sink = cpg.sink_nodes()[0]
    attach_lattice(cpg.graph, sink, "bulk", width, depth)
    return cpg


def chain_fingerprint(cpg):
    return [
        (
            tuple(step.qualified for step in chain.steps),
            chain.sink_category,
            tuple(chain.trigger_condition),
        )
        for chain in GadgetChainFinder(cpg).find_chains()
    ]


def reload_as_cpg(graph):
    return CPG(graph, ClassHierarchy([]), CPGStatistics(), {})


def timed(action, repetitions=REPETITIONS):
    best = float("inf")
    result = None
    for _ in range(repetitions):
        started = time.perf_counter()
        result = action()
        best = min(best, time.perf_counter() - started)
    return best, result


def resident_bytes(path):
    """tracemalloc-visible size of the object graph a load allocates."""
    tracemalloc.start()
    before, _ = tracemalloc.get_traced_memory()
    graph = load_graph(path)
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return after - before, graph


def measure_workload(name, cpg, tmp_dir, report, failures):
    graph = cpg.graph
    print(f"{name}: {graph.node_count} nodes, "
          f"{graph.relationship_count} relationships")
    reference = graph_fingerprint(graph)
    chains_before = chain_fingerprint(cpg)
    rows_before = run_query(graph, PROBE_QUERY).rows
    entry = {
        "nodes": graph.node_count,
        "relationships": graph.relationship_count,
        "chains": len(chains_before),
        "formats": {},
    }
    for label, (file_name, format) in FORMATS.items():
        path = os.path.join(tmp_dir, f"{name}-{file_name}")
        save_s, _ = timed(lambda: save_graph(graph, path, format=format))
        load_s, _ = timed(lambda: load_graph(path))
        resident, loaded = resident_bytes(path)
        entry["formats"][label] = {
            "save_s": save_s,
            "load_s": load_s,
            "file_bytes": os.path.getsize(path),
            "resident_bytes": resident,
        }
        print(f"  {label:<10} save {save_s * 1000:7.1f}ms  "
              f"load {load_s * 1000:7.1f}ms  "
              f"{os.path.getsize(path):>9} bytes on disk  "
              f"{resident:>9} bytes resident")

        # -- identity gates (every mode)
        if graph_fingerprint(loaded) != reference:
            failures.append(f"{name}/{label}: reload is not "
                            "fingerprint-identical to the original")
        if chain_fingerprint(reload_as_cpg(loaded)) != chains_before:
            failures.append(f"{name}/{label}: chain search diverged "
                            "after a save/load cycle")
        if run_query(loaded, PROBE_QUERY).rows != rows_before:
            failures.append(f"{name}/{label}: planner query rows diverged "
                            "after a save/load cycle")

    v1, v2 = entry["formats"]["v1_json"], entry["formats"]["v2_binary"]
    entry["load_speedup_v2_vs_v1"] = (
        v1["load_s"] / v2["load_s"] if v2["load_s"] else float("inf")
    )
    entry["size_ratio_v2_vs_v1"] = v2["file_bytes"] / v1["file_bytes"]
    report["workloads"][name] = entry
    return entry


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="two-component corpus, identity checks only (no speedup gate)",
    )
    parser.add_argument("--output", default="BENCH_storage.json")
    args = parser.parse_args(argv)

    components = SMOKE_COMPONENTS if args.smoke else list(COMPONENT_NAMES)
    width, depth = (8, 4) if args.smoke else (96, 14)
    failures = []
    report = {
        "benchmark": "storage",
        "mode": "smoke" if args.smoke else "full",
        "components": len(components),
        "repetitions": REPETITIONS,
        "lattice": {"width": width, "depth": depth},
        "workloads": {},
    }

    print(f"building merged {len(components)}-component corpus CPG ...")
    corpus = build_corpus_cpg(components)
    print(f"building library-bulk CPG (lattice width={width}, depth={depth}) ...")
    bulk = build_bulk_cpg(components, width, depth)

    with tempfile.TemporaryDirectory(prefix="bench-storage-") as tmp_dir:
        corpus_entry = measure_workload("corpus", corpus, tmp_dir, report, failures)
        measure_workload("library_bulk", bulk, tmp_dir, report, failures)

    speedup = corpus_entry["load_speedup_v2_vs_v1"]
    report["speedup"] = speedup
    if not args.smoke:
        if speedup < 3.0:
            failures.append(
                f"expected >=3x v2 load speedup on the merged corpus, "
                f"got {speedup:.2f}x"
            )
        for name, entry in report["workloads"].items():
            if entry["size_ratio_v2_vs_v1"] >= 1.0:
                failures.append(
                    f"{name}: v2 file is not smaller than v1 "
                    f"(ratio {entry['size_ratio_v2_vs_v1']:.2f})"
                )

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"wrote {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"v2 binary: {speedup:.1f}x faster load than v1 on the merged "
          "corpus — all reloads bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Query-planner benchmark: planned execution vs the naive interpreter.

Workloads run against the merged 26-component Table IX corpus CPG (plus,
for the LIMIT workload, nothing extra — the corpus itself is large
enough for short-circuiting to matter):

* **sink_anchored** — ``MATCH (a:Method)-[c:CALL]->(b:Method
  {IS_SINK: true}) ...``: the naive engine scans every method and
  expands every CALL edge; the planner reverses the pattern and walks
  backwards from the indexed sink nodes.  This is the workload the
  speedup gate (>=3x, full mode only) is asserted on.
* **pushdown_filter** — a WHERE conjunction whose per-variable parts
  the planner folds into the anchor index seek and evaluates mid-
  expansion instead of on complete bindings.
* **var_length_blacklist** — the blacklist-style ``CALL|ALIAS*1..``
  reachability query from the query-reuse benchmark.
* **order_by_limit** — top-k selection via a bounded heap instead of
  sort-everything-then-slice.

Every workload's planned row multiset is compared against the naive
engine's (and, where ORDER BY pins a total order, the exact row lists);
any divergence makes the script exit non-zero.  Results are recorded to
``BENCH_query.json``.  ``--smoke`` uses a two-component corpus and skips
the speedup assertion (identity is always enforced) — that is what CI
runs.
"""

import argparse
import json
import sys
import time
from collections import Counter

sys.path.insert(0, "src")

from repro.core.cpg import CPGBuilder
from repro.corpus import COMPONENT_NAMES, build_component, build_lang_base
from repro.graphdb.plan import build_plan
from repro.graphdb.query import _hashable, parse_query, run_query
from repro.jvm.hierarchy import ClassHierarchy

REPETITIONS = 3

SMOKE_COMPONENTS = ["CommonsBeanutils1", "commons-collections(3.2.1)"]

WORKLOADS = [
    {
        "name": "sink_anchored",
        "gate": True,  # the >=3x assertion rides on this one
        "ordered": True,
        "cypher": (
            "MATCH (a:Method)-[c:CALL]->(b:Method {IS_SINK: true}) "
            "RETURN a.SIGNATURE AS caller, b.NAME AS sink "
            "ORDER BY caller, sink"
        ),
    },
    {
        "name": "pushdown_filter",
        "gate": False,
        "ordered": True,
        "cypher": (
            "MATCH (a:Method)-[c:CALL]->(b:Method) "
            "WHERE b.IS_SINK = true AND a.ARITY > 0 "
            "RETURN a.SIGNATURE AS caller, b.NAME AS sink "
            "ORDER BY caller, sink"
        ),
    },
    {
        "name": "var_length_blacklist",
        "gate": False,
        "ordered": True,
        "cypher": (
            "MATCH (a:Method)-[:CALL|ALIAS*1..3]->(b:Method {IS_SINK: true}) "
            "RETURN DISTINCT a.SIGNATURE AS caller ORDER BY caller"
        ),
    },
    {
        "name": "order_by_limit",
        "gate": False,
        "ordered": True,
        "cypher": (
            "MATCH (m:Method) RETURN m.SIGNATURE AS sig "
            "ORDER BY sig LIMIT 20"
        ),
    },
]


def build_corpus_graph(components):
    classes = build_lang_base()
    for name in components:
        classes += build_component(name).classes
    return CPGBuilder(ClassHierarchy(classes)).build().graph


def row_multiset(result):
    return Counter(
        tuple(_hashable(row[c]) for c in result.columns) for row in result.rows
    )


def timed_query(graph, cypher, repetitions=REPETITIONS, **kwargs):
    best = float("inf")
    result = None
    for _ in range(repetitions):
        started = time.perf_counter()
        result = run_query(graph, cypher, **kwargs)
        best = min(best, time.perf_counter() - started)
    return best, result


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true",
        help="two-component corpus, identity checks only (no speedup gate)",
    )
    parser.add_argument("--output", default="BENCH_query.json")
    args = parser.parse_args(argv)

    components = SMOKE_COMPONENTS if args.smoke else COMPONENT_NAMES
    failures = []
    report = {
        "benchmark": "query_planner",
        "mode": "smoke" if args.smoke else "full",
        "components": len(components),
        "workloads": {},
    }

    print(f"building merged {len(components)}-component corpus CPG ...")
    graph = build_corpus_graph(components)
    report["graph"] = {
        "nodes": graph.node_count,
        "relationships": graph.relationship_count,
    }
    print(f"  {graph.node_count} nodes, {graph.relationship_count} "
          "relationships")

    gate_speedup = None
    for workload in WORKLOADS:
        name, cypher = workload["name"], workload["cypher"]
        naive_s, naive = timed_query(graph, cypher, optimize=False)
        planned_s, planned = timed_query(graph, cypher)
        _, profiled = timed_query(graph, cypher, repetitions=1, profile=True)

        identical_multiset = row_multiset(planned) == row_multiset(naive)
        if not identical_multiset:
            failures.append(f"row multiset mismatch on {name}")
        if workload["ordered"] and planned.rows != naive.rows:
            failures.append(f"row order mismatch on ordered workload {name}")
        if profiled.rows != planned.rows:
            failures.append(f"profile=True changed the rows on {name}")

        plan = build_plan(graph, parse_query(cypher))
        speedup = naive_s / planned_s if planned_s else float("inf")
        report["workloads"][name] = {
            "cypher": cypher,
            "naive_s": naive_s,
            "planned_s": planned_s,
            "speedup": speedup,
            "rows": len(planned.rows),
            "identical": identical_multiset,
            "anchor_strategy": plan.patterns[0].anchor.strategy,
            "reversed": plan.patterns[0].reversed,
        }
        if workload["gate"]:
            gate_speedup = speedup
        print(f"  {name:<22} naive {naive_s * 1000:8.1f}ms  "
              f"planned {planned_s * 1000:8.1f}ms  {speedup:6.2f}x  "
              f"rows={len(planned.rows)}  "
              f"{'OK' if identical_multiset else 'MISMATCH'}")

    report["speedup"] = gate_speedup
    if not args.smoke and gate_speedup is not None and gate_speedup < 3.0:
        failures.append(
            f"expected >=3x planner speedup on sink-anchored workload, "
            f"got {gate_speedup:.2f}x"
        )

    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"wrote {args.output}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"planner: {gate_speedup:.1f}x vs naive on the sink-anchored "
          "workload — all row sets identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 6 — the gadget-chain-finding example graph.

Reconstructs the A..J method-node graph and asserts the exclusions the
figure annotates: E and I dropped by the Expander (uncontrollable PP
for the required Trigger_Condition), G dropped by the Evaluator (depth).
"""

import pytest

from repro.core.cpg import ALIAS, CALL, CPG, CPGStatistics
from repro.core.pathfinder import GadgetChainFinder
from repro.graphdb.graph import PropertyGraph
from repro.jvm.hierarchy import ClassHierarchy


def figure6_graph():
    g = PropertyGraph()

    def node(name, source=False, sink=False, tc=None):
        props = {"NAME": name, "CLASSNAME": "fig6", "ARITY": 0,
                 "IS_SOURCE": source, "IS_SINK": sink}
        if sink:
            props["TRIGGER_CONDITION"] = tc or [1]
            props["SINK_TYPE"] = "EXEC"
        return g.create_node(["Method"], props)

    A = node("A", sink=True, tc=[1])
    C, C1, C2, E, G_, H, I, J = (node(n) for n in ("C", "C1", "C2", "E", "G", "H", "I", "J"))
    g.set_node_property(H, "IS_SOURCE", True)
    g.set_node_property(J, "IS_SOURCE", True)

    def call(a, b, pp):
        g.create_relationship(CALL, a, b, {"POLLUTED_POSITION": pp, "KIND": "virtual"})

    call(C, A, [0, 0])
    call(E, A, [0, -1])   # Expander drops E: required TC position is ∞
    g.create_relationship(ALIAS, C1, C)
    g.create_relationship(ALIAS, C2, C)
    call(I, C1, [-1, -1])  # Expander drops the I continuation
    call(H, C2, [0, 0])
    call(G_, C, [0, 0])
    call(J, G_, [0, 0])
    return g


def run(max_depth):
    cpg = CPG(figure6_graph(), ClassHierarchy([]), CPGStatistics(), {})
    finder = GadgetChainFinder(cpg, max_depth=max_depth)
    return finder.find_chains()


def test_fig6_search(benchmark):
    chains = benchmark(lambda: run(max_depth=10))
    names = {tuple(s.method_name for s in c.steps) for c in chains}
    assert ("H", "C2", "C", "A") in names
    for chain in chains:
        steps = [s.method_name for s in chain.steps]
        assert "E" not in steps, "Expander must exclude E"
        assert "I" not in steps, "Expander must exclude I"


def test_fig6_evaluator_depth_cut(benchmark):
    shallow = benchmark.pedantic(lambda: run(max_depth=2), rounds=1, iterations=1)
    names = {tuple(s.method_name for s in c.steps) for c in shallow}
    assert ("J", "G", "C", "A") not in names  # Evaluator drops G at depth 2
    deep = run(max_depth=6)
    names = {tuple(s.method_name for s in c.steps) for c in deep}
    assert ("J", "G", "C", "A") in names

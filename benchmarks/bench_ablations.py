"""Ablations of the design choices DESIGN.md calls out.

* PCG pruning (§III-C): without it, the MCG keeps every all-∞ edge and
  the finder's search space grows.
* Alias edges (§III-B2): without them, polymorphic chains vanish.
* GadgetInspector's visited-node shortcut (NODE_GLOBAL uniqueness):
  loses chains relative to Tabby's path uniqueness (§IV-F).
"""

import pytest

from repro.core import Tabby
from repro.corpus import build_component, build_lang_base
from repro.graphdb.traversal import Uniqueness


@pytest.fixture(scope="module")
def classes():
    spec = build_component("commons-collections(3.2.1)")
    return build_lang_base() + spec.classes


def test_pruning_shrinks_the_graph(classes, benchmark):
    pruned = benchmark(lambda: Tabby().add_classes(classes).build_cpg())
    unpruned = Tabby(prune_uncontrollable_calls=False).add_classes(classes).build_cpg()
    assert pruned.statistics.relationship_edge_count < unpruned.statistics.relationship_edge_count
    assert pruned.statistics.pruned_call_sites > 0


def test_pruning_keeps_all_chains(classes, benchmark):
    """Pruned edges are exactly the never-exploitable ones: disabling
    pruning must not reveal any new chain endpoint."""
    benchmark.pedantic(lambda: None, rounds=1)
    with_pruning = {
        c.endpoint_key for c in Tabby().add_classes(classes).find_gadget_chains()
    }
    without = {
        c.endpoint_key
        for c in Tabby(prune_uncontrollable_calls=False)
        .add_classes(classes)
        .find_gadget_chains()
    }
    assert with_pruning == without


def test_alias_edges_are_load_bearing(classes, benchmark):
    full = benchmark.pedantic(
        lambda: Tabby().add_classes(classes).find_gadget_chains(),
        rounds=1, iterations=1,
    )
    no_alias = Tabby().add_classes(classes).find_gadget_chains(follow_alias=False)
    assert len(no_alias) < len(full)


def test_node_global_uniqueness_loses_chains(classes, benchmark):
    """GadgetInspector's visited-set shortcut applied to Tabby's own
    search drops chains (§IV-F bullet 2)."""
    benchmark.pedantic(lambda: None, rounds=1)
    full = Tabby().add_classes(classes).find_gadget_chains()
    shortcut = Tabby().add_classes(classes).find_gadget_chains(
        uniqueness=Uniqueness.NODE_GLOBAL
    )
    assert len(shortcut) < len(full)

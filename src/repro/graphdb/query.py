"""Cypher-subset query language over :class:`PropertyGraph`.

Security researchers re-query Tabby's CPG in Neo4j with Cypher (paper
§II-B, §IV-F); this module provides the matching capability.  Supported
surface::

    MATCH (m:Method {IS_SINK: true})<-[c:CALL]-(n:Method)
    WHERE n.NAME = 'readObject' AND m.SUBSIGNATURE CONTAINS 'exec'
    RETURN DISTINCT n.CLASSNAME AS cls, count(*) AS calls
    ORDER BY calls DESC, cls
    SKIP 1 LIMIT 10

* ``MATCH`` with multiple comma-separated linear patterns (shared
  variables join them), node labels, inline property maps, relationship
  types with ``|`` alternation, both directions, and variable-length
  hops ``-[:CALL*1..3]->``.
* ``WHERE`` with ``AND``/``OR``/``NOT``, comparisons
  (``= <> < <= > >=``), ``IN`` lists, ``CONTAINS`` / ``STARTS WITH`` /
  ``ENDS WITH``, and ``exists(x.prop)``.
* ``RETURN`` of variables, properties, literals, ``count(*)`` /
  ``count(expr)`` / ``count(DISTINCT expr)``, with ``AS`` aliases,
  ``DISTINCT``, ``ORDER BY ... [ASC|DESC]``, ``SKIP`` and ``LIMIT``.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import QueryExecutionError, QuerySyntaxError
from repro.graphdb.graph import Node, PropertyGraph, Relationship
from repro.graphdb.traversal import Path

__all__ = ["run_query", "QueryResult", "parse_query", "jsonable_row"]


# ---------------------------------------------------------------------------
# Lexer
# ---------------------------------------------------------------------------

_KEYWORDS = {
    "match", "where", "return", "distinct", "order", "by", "limit", "skip",
    "and", "or", "not", "as", "in", "contains", "starts", "ends", "with",
    "exists", "true", "false", "null", "asc", "desc", "count",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'(?:\\.|[^'\\])*'|"(?:\\.|[^"\\])*")
  | (?P<float>-?\d+\.\d+)
  | (?P<int>-?\d+)
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<op><=|>=|<>|<-|->|\.\.|[()\[\]{},:.|*=<>-])
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int):
        self.kind = kind
        self.text = text
        self.pos = pos

    def __repr__(self) -> str:  # pragma: no cover
        return f"_Token({self.kind}, {self.text!r})"


def _lex(source: str) -> List[_Token]:
    out: List[_Token] = []
    pos = 0
    while pos < len(source):
        m = _TOKEN_RE.match(source, pos)
        if m is None:
            raise QuerySyntaxError(f"unexpected character {source[pos]!r}", pos)
        kind = m.lastgroup or ""
        text = m.group()
        if kind != "ws":
            if kind == "name" and text.lower() in _KEYWORDS:
                kind = "kw"
                text = text.lower()
            out.append(_Token(kind, text, pos))
        pos = m.end()
    out.append(_Token("eof", "", pos))
    return out


# ---------------------------------------------------------------------------
# AST
# ---------------------------------------------------------------------------


class NodePattern:
    def __init__(self, var: Optional[str], labels: List[str], props: Dict[str, Any]):
        self.var = var
        self.labels = labels
        self.props = props


class RelPattern:
    def __init__(
        self,
        var: Optional[str],
        types: List[str],
        direction: str,  # 'out' | 'in' | 'both'
        min_hops: int = 1,
        max_hops: Optional[int] = 1,
    ):
        self.var = var
        self.types = types
        self.direction = direction
        self.min_hops = min_hops
        self.max_hops = max_hops

    @property
    def is_var_length(self) -> bool:
        return not (self.min_hops == 1 and self.max_hops == 1)


class PatternPath:
    def __init__(self, nodes: List[NodePattern], rels: List[RelPattern]):
        self.nodes = nodes
        self.rels = rels


# Expressions are (kind, payload) tuples evaluated against a binding dict:
#   ('lit', value) ('var', name) ('prop', var, key)
#   ('count_all',) ('count', expr, distinct)
Expr = Tuple


class ReturnItem:
    def __init__(self, expr: Expr, alias: str):
        self.expr = expr
        self.alias = alias

    @property
    def is_aggregate(self) -> bool:
        return self.expr[0] in ("count_all", "count")


class Query:
    def __init__(
        self,
        patterns: List[PatternPath],
        where: Optional[Expr],
        items: List[ReturnItem],
        distinct: bool,
        order_by: List[Tuple[Expr, bool]],
        skip: int,
        limit: Optional[int],
    ):
        self.patterns = patterns
        self.where = where
        self.items = items
        self.distinct = distinct
        self.order_by = order_by
        self.skip = skip
        self.limit = limit


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------


class _Parser:
    def __init__(self, source: str):
        self._tokens = _lex(source)
        self._pos = 0

    def _peek(self, offset: int = 0) -> _Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    def _next(self) -> _Token:
        tok = self._tokens[self._pos]
        if tok.kind != "eof":
            self._pos += 1
        return tok

    def _accept(self, kind: str, text: Optional[str] = None) -> Optional[_Token]:
        tok = self._peek()
        if tok.kind == kind and (text is None or tok.text == text):
            return self._next()
        return None

    def _expect(self, kind: str, text: Optional[str] = None) -> _Token:
        tok = self._next()
        if tok.kind != kind or (text is not None and tok.text != text):
            raise QuerySyntaxError(
                f"expected {text or kind!r}, got {tok.text!r}", tok.pos
            )
        return tok

    # -- entry ---------------------------------------------------------------

    def parse(self) -> Query:
        self._expect("kw", "match")
        patterns = [self._pattern()]
        while self._accept("op", ","):
            patterns.append(self._pattern())
        where = None
        if self._accept("kw", "where"):
            where = self._or_expr()
        self._expect("kw", "return")
        distinct = bool(self._accept("kw", "distinct"))
        items = [self._return_item()]
        while self._accept("op", ","):
            items.append(self._return_item())
        order_by: List[Tuple[Expr, bool]] = []
        if self._accept("kw", "order"):
            self._expect("kw", "by")
            order_by.append(self._order_item())
            while self._accept("op", ","):
                order_by.append(self._order_item())
        skip = 0
        if self._accept("kw", "skip"):
            skip = int(self._expect("int").text)
        limit = None
        if self._accept("kw", "limit"):
            limit = int(self._expect("int").text)
        self._expect("eof")
        return Query(patterns, where, items, distinct, order_by, skip, limit)

    # -- patterns ----------------------------------------------------------------

    def _pattern(self) -> PatternPath:
        nodes = [self._node_pattern()]
        rels: List[RelPattern] = []
        while self._peek().kind == "op" and self._peek().text in ("-", "<-"):
            rels.append(self._rel_pattern())
            nodes.append(self._node_pattern())
        return PatternPath(nodes, rels)

    def _node_pattern(self) -> NodePattern:
        self._expect("op", "(")
        var = None
        tok = self._peek()
        if tok.kind == "name":
            var = self._next().text
        labels: List[str] = []
        while self._accept("op", ":"):
            labels.append(self._expect("name").text)
        props: Dict[str, Any] = {}
        if self._accept("op", "{"):
            while not self._accept("op", "}"):
                key = self._expect("name").text
                self._expect("op", ":")
                props[key] = self._literal()
                self._accept("op", ",")
        self._expect("op", ")")
        return NodePattern(var, labels, props)

    def _rel_pattern(self) -> RelPattern:
        direction = "both"
        lead = self._next()
        if lead.text == "<-":
            direction = "in"
        elif lead.text != "-":
            raise QuerySyntaxError(f"bad relationship syntax {lead.text!r}", lead.pos)
        var = None
        types: List[str] = []
        min_hops, max_hops = 1, 1
        if self._accept("op", "["):
            tok = self._peek()
            if tok.kind == "name":
                var = self._next().text
            while self._accept("op", ":"):
                types.append(self._expect("name").text)
                while self._accept("op", "|"):
                    self._accept("op", ":")
                    types.append(self._expect("name").text)
            if self._accept("op", "*"):
                min_hops, max_hops = 1, None
                if self._peek().kind == "int":
                    min_hops = int(self._next().text)
                    max_hops = min_hops
                    if self._accept("op", ".."):
                        if self._peek().kind == "int":
                            max_hops = int(self._next().text)
                        else:
                            max_hops = None
                elif self._accept("op", ".."):
                    if self._peek().kind == "int":
                        max_hops = int(self._next().text)
            self._expect("op", "]")
        tail = self._next()
        if tail.text == "->":
            if direction == "in":
                raise QuerySyntaxError("relationship has two arrowheads", tail.pos)
            direction = "out"
        elif tail.text != "-":
            raise QuerySyntaxError(f"bad relationship syntax {tail.text!r}", tail.pos)
        return RelPattern(var, types, direction, min_hops, max_hops)

    # -- expressions ------------------------------------------------------------

    def _literal(self) -> Any:
        tok = self._next()
        if tok.kind == "string":
            body = tok.text[1:-1]
            return body.replace("\\'", "'").replace('\\"', '"').replace("\\\\", "\\")
        if tok.kind == "int":
            return int(tok.text)
        if tok.kind == "float":
            return float(tok.text)
        if tok.kind == "kw" and tok.text == "true":
            return True
        if tok.kind == "kw" and tok.text == "false":
            return False
        if tok.kind == "kw" and tok.text == "null":
            return None
        raise QuerySyntaxError(f"expected a literal, got {tok.text!r}", tok.pos)

    def _value_expr(self) -> Expr:
        tok = self._peek()
        if tok.kind == "kw" and tok.text == "count":
            self._next()
            self._expect("op", "(")
            if self._accept("op", "*"):
                self._expect("op", ")")
                return ("count_all",)
            distinct = bool(self._accept("kw", "distinct"))
            inner = self._value_expr()
            self._expect("op", ")")
            return ("count", inner, distinct)
        if tok.kind == "name":
            name = self._next().text
            if self._accept("op", "."):
                key = self._expect("name").text
                return ("prop", name, key)
            return ("var", name)
        return ("lit", self._literal())

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        while self._accept("kw", "or"):
            left = ("or", left, self._and_expr())
        return left

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        while self._accept("kw", "and"):
            left = ("and", left, self._not_expr())
        return left

    def _not_expr(self) -> Expr:
        if self._accept("kw", "not"):
            return ("not", self._not_expr())
        if self._accept("op", "("):
            inner = self._or_expr()
            self._expect("op", ")")
            return inner
        return self._comparison()

    def _comparison(self) -> Expr:
        if (
            self._peek().kind == "kw"
            and self._peek().text == "exists"
        ):
            self._next()
            self._expect("op", "(")
            inner = self._value_expr()
            self._expect("op", ")")
            return ("exists", inner)
        left = self._value_expr()
        tok = self._peek()
        if tok.kind == "op" and tok.text in ("=", "<>", "<", "<=", ">", ">="):
            op = self._next().text
            return ("cmp", op, left, self._value_expr())
        if tok.kind == "kw" and tok.text == "in":
            self._next()
            self._expect("op", "[")
            values: List[Any] = []
            if not self._accept("op", "]"):
                while True:
                    values.append(self._literal())
                    if self._accept("op", "]"):
                        break
                    self._expect("op", ",")
            return ("in", left, values)
        if tok.kind == "kw" and tok.text == "contains":
            self._next()
            return ("contains", left, self._value_expr())
        if tok.kind == "kw" and tok.text == "starts":
            self._next()
            self._expect("kw", "with")
            return ("starts", left, self._value_expr())
        if tok.kind == "kw" and tok.text == "ends":
            self._next()
            self._expect("kw", "with")
            return ("ends", left, self._value_expr())
        raise QuerySyntaxError(
            f"expected a comparison operator, got {tok.text!r}", tok.pos
        )

    def _return_item(self) -> ReturnItem:
        expr = self._value_expr()
        if self._accept("kw", "as"):
            alias = self._expect("name").text
        else:
            alias = _default_alias(expr)
        return ReturnItem(expr, alias)

    def _order_item(self) -> Tuple[Expr, bool]:
        expr = self._value_expr()
        asc = True
        if self._accept("kw", "desc"):
            asc = False
        else:
            self._accept("kw", "asc")
        return expr, asc


def _default_alias(expr: Expr) -> str:
    kind = expr[0]
    if kind == "var":
        return expr[1]
    if kind == "prop":
        return f"{expr[1]}.{expr[2]}"
    if kind == "count_all":
        return "count(*)"
    if kind == "count":
        return f"count({_default_alias(expr[1])})"
    return "literal"


def parse_query(source: str) -> Query:
    """Parse a query string into its AST (exposed for testing)."""
    return _Parser(source).parse()


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------

Binding = Dict[str, Any]


def _node_matches(node: Node, pat: NodePattern) -> bool:
    if any(label not in node.labels for label in pat.labels):
        return False
    return all(node.get(k) == v for k, v in pat.props.items())


def _candidate_nodes(graph: PropertyGraph, pat: NodePattern) -> Iterable[Node]:
    """Seed nodes for a pattern: the smallest indexed property hit set
    across *all* of the pattern's labels, falling back to the most
    selective (lowest-count) label scan; every candidate is then
    verified against the full label set and property map."""
    if pat.labels:
        best_hit: Optional[Set[int]] = None
        for label in pat.labels:
            for key, value in pat.props.items():
                hit = graph.indexes.lookup(label, key, value)
                if hit is not None and (best_hit is None or len(hit) < len(best_hit)):
                    best_hit = hit
        if best_hit is not None:
            candidates: Iterable[Node] = (graph.node(i) for i in best_hit)
        else:
            candidates = graph.nodes(
                min(pat.labels, key=graph.indexes.label_count)
            )
        return [n for n in candidates if _node_matches(n, pat)]
    return [n for n in graph.nodes() if _node_matches(n, pat)]


def _typed_rels(getter, node: Node, types: List[str]) -> List[Relationship]:
    """Relationships of the wanted types via the per-type adjacency
    buckets; merging by id reproduces the order a filtered scan of the
    flat (insertion-ordered) adjacency list used to yield."""
    if len(types) == 1:
        return getter(node, types[0])
    rels: List[Relationship] = []
    for rel_type in dict.fromkeys(types):
        rels.extend(getter(node, rel_type))
    rels.sort(key=lambda r: r.id)
    return rels


def _step(
    graph: PropertyGraph, node: Node, rel_pat: RelPattern
) -> Iterator[Tuple[Relationship, Node]]:
    types = rel_pat.types
    out_rels: Sequence[Relationship] = ()
    in_rels: Sequence[Relationship] = ()
    if rel_pat.direction in ("out", "both"):
        out_rels = (
            _typed_rels(graph.out_relationships, node, types)
            if types
            else graph.out_relationships(node)
        )
    if rel_pat.direction in ("in", "both"):
        in_rels = (
            _typed_rels(graph.in_relationships, node, types)
            if types
            else graph.in_relationships(node)
        )
    for rel in out_rels:
        yield rel, graph.node(rel.end_id)
    if rel_pat.direction == "both":
        seen = {rel.id for rel in out_rels}
        for rel in in_rels:
            if rel.id not in seen:
                yield rel, graph.node(rel.start_id)
    else:
        for rel in in_rels:
            yield rel, graph.node(rel.start_id)


def _bind_node(b: Binding, pat: NodePattern, node: Node) -> Optional[Binding]:
    if not _node_matches(node, pat):
        return None
    if pat.var is not None:
        existing = b.get(pat.var)
        if existing is not None:
            if not (isinstance(existing, Node) and existing.id == node.id):
                return None
            return b
        b = dict(b)
        b[pat.var] = node
    return b


def _bind_rel(b: Binding, rel_pat: RelPattern, rel: Relationship) -> Optional[Binding]:
    if rel_pat.var is None:
        return b
    existing = b.get(rel_pat.var)
    if existing is not None:
        if not (isinstance(existing, Relationship) and existing.id == rel.id):
            return None
        return b
    b = dict(b)
    b[rel_pat.var] = rel
    return b


def _match_path(
    graph: PropertyGraph,
    pattern: PatternPath,
    binding: Binding,
) -> Iterator[Binding]:
    """Backtracking matcher for one linear pattern, extending ``binding``."""

    def rec(b: Binding, node: Node, index: int) -> Iterator[Binding]:
        if index == len(pattern.rels):
            yield b
            return
        rel_pat = pattern.rels[index]
        next_pat = pattern.nodes[index + 1]
        if not rel_pat.is_var_length:
            for rel, nxt in _step(graph, node, rel_pat):
                b2 = _bind_rel(b, rel_pat, rel)
                if b2 is None:
                    continue
                b3 = _bind_node(b2, next_pat, nxt)
                if b3 is None:
                    continue
                yield from rec(b3, nxt, index + 1)
            return
        # variable-length: DFS over hop counts within [min, max], using
        # the persistent cons-list Path so each push is O(1) instead of
        # copying an O(depth) rel list and visited set
        max_hops = rel_pat.max_hops if rel_pat.max_hops is not None else graph.node_count
        stack: List[Path] = [Path.single(node)]
        while stack:
            path = stack.pop()
            if path.length >= rel_pat.min_hops:
                b2 = b
                if rel_pat.var is not None:
                    b2 = dict(b2)
                    b2[rel_pat.var] = list(path.relationships)
                b3 = _bind_node(b2, next_pat, path.end_node)
                if b3 is not None:
                    yield from rec(b3, path.end_node, index + 1)
            if path.length >= max_hops:
                continue
            for rel, nxt in _step(graph, path.end_node, rel_pat):
                if path.contains_node(nxt):
                    continue
                stack.append(path.extend(rel, nxt))

    first = pattern.nodes[0]
    bound = binding.get(first.var) if first.var else None
    if isinstance(bound, Node):
        candidates: Iterable[Node] = [bound]
    else:
        candidates = _candidate_nodes(graph, first)
    for node in candidates:
        b0 = _bind_node(binding, first, node)
        if b0 is None:
            continue
        yield from rec(b0, node, 0)


def _eval_expr(expr: Expr, binding: Binding) -> Any:
    kind = expr[0]
    if kind == "lit":
        return expr[1]
    if kind == "var":
        if expr[1] not in binding:
            raise QueryExecutionError(f"unbound variable {expr[1]!r}")
        return binding[expr[1]]
    if kind == "prop":
        entity = binding.get(expr[1])
        if entity is None:
            raise QueryExecutionError(f"unbound variable {expr[1]!r}")
        if isinstance(entity, (Node, Relationship)):
            return entity.get(expr[2])
        raise QueryExecutionError(
            f"{expr[1]!r} is not an entity with properties"
        )
    raise QueryExecutionError(f"cannot evaluate {expr!r} in scalar position")


def _eval_predicate(expr: Expr, binding: Binding) -> bool:
    kind = expr[0]
    if kind == "or":
        return _eval_predicate(expr[1], binding) or _eval_predicate(expr[2], binding)
    if kind == "and":
        return _eval_predicate(expr[1], binding) and _eval_predicate(expr[2], binding)
    if kind == "not":
        return not _eval_predicate(expr[1], binding)
    if kind == "exists":
        inner = expr[1]
        if inner[0] != "prop":
            raise QueryExecutionError("exists() takes a property access")
        entity = binding.get(inner[1])
        return isinstance(entity, (Node, Relationship)) and inner[2] in entity
    if kind == "cmp":
        op = expr[1]
        left = _eval_expr(expr[2], binding)
        right = _eval_expr(expr[3], binding)
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if left is None or right is None:
            return False
        try:
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            if op == ">=":
                return left >= right
        except TypeError:
            return False
    if kind == "in":
        return _eval_expr(expr[1], binding) in expr[2]
    if kind in ("contains", "starts", "ends"):
        left = _eval_expr(expr[1], binding)
        right = _eval_expr(expr[2], binding)
        if not isinstance(left, str) or not isinstance(right, str):
            return False
        if kind == "contains":
            return right in left
        if kind == "starts":
            return left.startswith(right)
        return left.endswith(right)
    raise QueryExecutionError(f"cannot evaluate predicate {expr!r}")


def _hashable(value: Any) -> Any:
    if isinstance(value, (Node, Relationship)):
        return (type(value).__name__, value.id)
    if isinstance(value, list):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    return value


class QueryResult:
    """Query output: ordered ``columns`` and a list of row dicts.

    When the cost-based planner ran (see :mod:`repro.graphdb.plan`),
    ``plan`` holds the chosen :class:`~repro.graphdb.plan.QueryPlan` —
    with per-operator row/time counters filled in under ``profile=``.
    """

    def __init__(
        self, columns: List[str], rows: List[Dict[str, Any]], plan: Any = None
    ):
        self.columns = columns
        self.rows = rows
        self.plan = plan

    def values(self, column: str) -> List[Any]:
        return [row[column] for row in self.rows]

    def single(self) -> Dict[str, Any]:
        if len(self.rows) != 1:
            raise QueryExecutionError(
                f"expected exactly one row, got {len(self.rows)}"
            )
        return self.rows[0]

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        return iter(self.rows)

    def __repr__(self) -> str:
        return f"<QueryResult {len(self.rows)} rows x {self.columns}>"


def jsonable_row(row: Dict[str, Any]) -> Dict[str, Any]:
    """A row with graph entities replaced by their property maps, safe
    for ``json.dumps`` — the shape the CLI's ``--json`` and the serve
    API's query endpoint both emit."""
    out: Dict[str, Any] = {}
    for key, value in row.items():
        if hasattr(value, "properties"):
            out[key] = dict(value.properties)
        elif isinstance(value, list):
            out[key] = [
                dict(v.properties) if hasattr(v, "properties") else v for v in value
            ]
        else:
            out[key] = value
    return out


def _project_row(query: Query, b: Binding) -> Dict[str, Any]:
    return {item.alias: _eval_expr(item.expr, b) for item in query.items}


def _aggregate_rows(query: Query, bindings: Iterable[Binding]) -> List[Dict[str, Any]]:
    """Group bindings by the non-aggregate RETURN items and evaluate the
    count() aggregates per group (shared by both engines)."""
    group_items = [item for item in query.items if not item.is_aggregate]
    groups: Dict[Any, Dict[str, Any]] = {}
    members: Dict[Any, List[Binding]] = {}
    for b in bindings:
        key = tuple(_hashable(_eval_expr(item.expr, b)) for item in group_items)
        if key not in groups:
            groups[key] = {
                item.alias: _eval_expr(item.expr, b) for item in group_items
            }
            members[key] = []
        members[key].append(b)
    if not groups and not group_items:
        groups[()] = {}
        members[()] = []
    rows = []
    for key, row in groups.items():
        for item in query.items:
            if item.expr[0] == "count_all":
                row[item.alias] = len(members[key])
            elif item.expr[0] == "count":
                _, inner, distinct = item.expr
                vals = [
                    _eval_expr(inner, b)
                    for b in members[key]
                    if _eval_expr(inner, b) is not None
                ]
                if distinct:
                    row[item.alias] = len({_hashable(v) for v in vals})
                else:
                    row[item.alias] = len(vals)
        rows.append(row)
    return rows


def _distinct_rows(
    columns: List[str], rows: Iterable[Dict[str, Any]]
) -> Iterator[Dict[str, Any]]:
    """Streaming first-occurrence dedup over full rows."""
    seen: Set[Any] = set()
    for row in rows:
        key = tuple(_hashable(row[c]) for c in columns)
        if key not in seen:
            seen.add(key)
            yield row


def _make_sort_key(query: Query) -> Callable[[Dict[str, Any]], Tuple]:
    def sort_key(row: Dict[str, Any]) -> Tuple:
        key = []
        for expr, asc in query.order_by:
            alias = _default_alias(expr)
            if alias in row:
                value = row[alias]
            elif expr[0] == "var" and expr[1] in row:
                value = row[expr[1]]
            else:
                raise QueryExecutionError(
                    f"ORDER BY expression {alias!r} is not in RETURN"
                )
            key.append(_OrderKey(value, asc))
        return tuple(key)

    return sort_key


def _run_naive(graph: PropertyGraph, query: Query) -> QueryResult:
    """The legacy interpreter: seed every pattern from its first node,
    evaluate WHERE on complete bindings, materialise + sort + slice."""
    bindings: List[Binding] = [{}]
    for pattern in query.patterns:
        bindings = [
            matched
            for binding in bindings
            for matched in _match_path(graph, pattern, binding)
        ]
    if query.where is not None:
        bindings = [b for b in bindings if _eval_predicate(query.where, b)]

    columns = [item.alias for item in query.items]
    has_aggregate = any(item.is_aggregate for item in query.items)

    rows: List[Dict[str, Any]]
    if has_aggregate:
        rows = _aggregate_rows(query, bindings)
    else:
        rows = [_project_row(query, b) for b in bindings]

    if query.distinct:
        rows = list(_distinct_rows(columns, rows))

    if query.order_by:
        rows.sort(key=_make_sort_key(query))

    if query.skip:
        rows = rows[query.skip :]
    if query.limit is not None:
        rows = rows[: query.limit]
    return QueryResult(columns, rows)


def run_query(
    graph: PropertyGraph,
    source: str,
    *,
    optimize: bool = True,
    explain: bool = False,
    profile: bool = False,
) -> QueryResult:
    """Parse and execute a query against ``graph``.

    By default the cost-based planner (:mod:`repro.graphdb.plan`) picks
    the cheapest anchor for each pattern, pushes WHERE conjuncts to the
    earliest position where their variables are bound, and short-circuits
    ORDER BY/LIMIT; the row multiset is identical to the legacy engine
    by construction.  ``optimize=False`` runs the legacy interpreter.
    ``explain=True`` returns the plan without executing (empty rows);
    ``profile=True`` executes and fills per-operator row/time counters.
    Either way the plan is attached as ``result.plan``.
    """
    query = parse_query(source)
    if not optimize:
        if explain or profile:
            raise QueryExecutionError(
                "explain/profile require the planner (optimize=True)"
            )
        return _run_naive(graph, query)
    from repro.graphdb.plan import execute_planned

    return execute_planned(graph, query, source, explain=explain, profile=profile)


class _OrderKey:
    """Total-order wrapper: None sorts last; mixed types sort by repr."""

    __slots__ = ("value", "asc")

    def __init__(self, value: Any, asc: bool):
        self.value = value
        self.asc = asc

    def __lt__(self, other: "_OrderKey") -> bool:
        a, b = self.value, other.value
        if a is None and b is None:
            return False
        if a is None:
            return not self.asc
        if b is None:
            return self.asc
        try:
            result = a < b
        except TypeError:
            result = repr(a) < repr(b)
        return result if self.asc else not result

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _OrderKey) and self.value == other.value

"""Cost-based query planner and optimized executor for the Cypher subset.

The naive interpreter in :mod:`repro.graphdb.query` always seeds a MATCH
from the *first* node pattern, evaluates WHERE only on complete
bindings, and materialises + sorts every row before applying LIMIT.  On
a CPG that is fine for ``(m:Method {IS_SINK: true})`` but disastrous for
``(a:Method)-[:CALL]->(b:Method {IS_SINK: true})``: the engine scans
every method node and expands every CALL edge, when walking *backwards*
from the handful of indexed sink nodes touches a few dozen.

This module compiles a parsed :class:`~repro.graphdb.query.Query` into
an explicit :class:`QueryPlan`:

* **start-point selection** — both endpoints of each linear pattern are
  scored by estimated cardinality (bound variable < indexed property
  equality < label scan < full scan, using real index hit sizes and
  label counts), and the pattern is matched *reversed* when its far end
  is the cheaper anchor.  Reversal is sound because a linear pattern
  denotes a set of paths and that set is direction-symmetric: a path
  matches ``(a)-[:T]->(b)`` from ``a`` iff it matches ``(b)<-[:T]-(a)``
  from ``b``, including variable-length segments (the simple-path
  constraint is symmetric); only the order bindings are *enumerated* in
  changes, never the set.
* **predicate pushdown** — the WHERE conjunction is split and each
  conjunct is evaluated at the earliest pattern position where all of
  its variables are bound; equality conjuncts on the anchor also fold
  into the index lookup itself.  Every conjunct is still evaluated
  exactly once per surviving binding, so the planned engine accepts
  precisely the bindings the naive engine accepts.
* **index- and type-routed expansion** — hops go through the graph's
  per-relationship-type adjacency buckets (dict hits), with bucket and
  type counts feeding the cost estimates shown by EXPLAIN.
* **top-k and short-circuit row pipeline** — ORDER BY + LIMIT runs a
  bounded stable heap (``heapq.nsmallest`` ≡ ``sorted()[:k]``) instead
  of sort-then-slice, and LIMIT without ORDER BY or aggregation stops
  pulling bindings as soon as the window is full.

Because the planner only changes *where* work happens — candidates are
always re-verified against the pattern, and pushed conjuncts are the
same predicate objects the naive engine evaluates — planned results are
row-multiset-identical to the naive engine by construction (enumeration
order may differ when a pattern is reversed).  The planner assumes
property indexes are complete for the nodes they cover, which
:meth:`PropertyGraph.create_index` guarantees by backfilling; the same
assumption already underlies ``PropertyGraph.find_nodes``.
"""

from __future__ import annotations

import heapq
import time
from itertools import islice
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.graphdb.graph import Node, PropertyGraph, Relationship
from repro.graphdb.query import (
    Binding,
    Expr,
    NodePattern,
    PatternPath,
    Query,
    QueryResult,
    RelPattern,
    _aggregate_rows,
    _bind_node,
    _bind_rel,
    _distinct_rows,
    _eval_predicate,
    _make_sort_key,
    _project_row,
    _step,
)
from repro.graphdb.traversal import Path

__all__ = ["QueryPlan", "PatternPlan", "Anchor", "build_plan", "execute_planned"]


# ---------------------------------------------------------------------------
# Expression utilities
# ---------------------------------------------------------------------------


def split_conjuncts(expr: Optional[Expr]) -> List[Expr]:
    """Top-level AND components of a WHERE tree, in evaluation order."""
    if expr is None:
        return []
    if expr[0] == "and":
        return split_conjuncts(expr[1]) + split_conjuncts(expr[2])
    return [expr]


def expr_variables(expr: Expr) -> Set[str]:
    """Every variable an expression reads (free variables)."""
    kind = expr[0]
    if kind == "lit" or kind == "count_all":
        return set()
    if kind == "var" or kind == "prop":
        return {expr[1]}
    if kind in ("not", "exists", "count"):
        return expr_variables(expr[1])
    if kind in ("and", "or", "contains", "starts", "ends"):
        return expr_variables(expr[1]) | expr_variables(expr[2])
    if kind == "cmp":
        return expr_variables(expr[2]) | expr_variables(expr[3])
    if kind == "in":
        return expr_variables(expr[1])
    return set()


def _lit_text(value: Any) -> str:
    if value is True:
        return "true"
    if value is False:
        return "false"
    if value is None:
        return "null"
    if isinstance(value, str):
        return "'" + value.replace("'", "\\'") + "'"
    return repr(value)


def expr_text(expr: Expr) -> str:
    """Render an expression back to (pseudo-)Cypher for plan display."""
    kind = expr[0]
    if kind == "lit":
        return _lit_text(expr[1])
    if kind == "var":
        return expr[1]
    if kind == "prop":
        return f"{expr[1]}.{expr[2]}"
    if kind == "count_all":
        return "count(*)"
    if kind == "count":
        inner = expr_text(expr[1])
        return f"count(DISTINCT {inner})" if expr[2] else f"count({inner})"
    if kind == "and":
        return f"({expr_text(expr[1])} AND {expr_text(expr[2])})"
    if kind == "or":
        return f"({expr_text(expr[1])} OR {expr_text(expr[2])})"
    if kind == "not":
        return f"NOT {expr_text(expr[1])}"
    if kind == "exists":
        return f"exists({expr_text(expr[1])})"
    if kind == "cmp":
        return f"{expr_text(expr[2])} {expr[1]} {expr_text(expr[3])}"
    if kind == "in":
        values = ", ".join(_lit_text(v) for v in expr[2])
        return f"{expr_text(expr[1])} IN [{values}]"
    if kind == "contains":
        return f"{expr_text(expr[1])} CONTAINS {expr_text(expr[2])}"
    if kind == "starts":
        return f"{expr_text(expr[1])} STARTS WITH {expr_text(expr[2])}"
    if kind == "ends":
        return f"{expr_text(expr[1])} ENDS WITH {expr_text(expr[2])}"
    return repr(expr)


def _node_pattern_text(pat: NodePattern) -> str:
    parts = pat.var or ""
    parts += "".join(f":{label}" for label in pat.labels)
    if pat.props:
        inner = ", ".join(f"{k}: {_lit_text(v)}" for k, v in pat.props.items())
        parts += (" " if parts else "") + "{" + inner + "}"
    return f"({parts})"


def _rel_pattern_text(rel: RelPattern) -> str:
    body = rel.var or ""
    if rel.types:
        body += ":" + "|".join(rel.types)
    if rel.is_var_length:
        body += "*"
        if not (rel.min_hops == 1 and rel.max_hops is None):
            body += f"{rel.min_hops}.."
            if rel.max_hops is not None:
                body += str(rel.max_hops)
    core = f"[{body}]" if body else ""
    if rel.direction == "out":
        return f"-{core}->"
    if rel.direction == "in":
        return f"<-{core}-"
    return f"-{core}-"


def pattern_text(pattern: PatternPath) -> str:
    out = _node_pattern_text(pattern.nodes[0])
    for rel, node in zip(pattern.rels, pattern.nodes[1:]):
        out += _rel_pattern_text(rel) + _node_pattern_text(node)
    return out


# ---------------------------------------------------------------------------
# Plan structure
# ---------------------------------------------------------------------------


class Anchor:
    """Where a pattern's matching starts, and how candidates are found."""

    __slots__ = ("var", "strategy", "label", "key", "value", "estimate")

    def __init__(
        self,
        var: Optional[str],
        strategy: str,  # 'bound' | 'index' | 'label' | 'scan'
        label: Optional[str],
        key: Optional[str],
        value: Any,
        estimate: int,
    ):
        self.var = var
        self.strategy = strategy
        self.label = label
        self.key = key
        self.value = value
        self.estimate = estimate

    def describe(self) -> str:
        name = self.var or "_"
        if self.strategy == "bound":
            return f"{name}: already bound by an earlier pattern"
        if self.strategy == "index":
            return (
                f"{name}: index seek {self.label}.{self.key} = "
                f"{_lit_text(self.value)} (est {self.estimate} rows)"
            )
        if self.strategy == "label":
            return f"{name}: label scan :{self.label} (est {self.estimate} rows)"
        return f"{name}: full node scan (est {self.estimate} rows)"


class PatternPlan:
    """One MATCH pattern: orientation, anchor, pushed filters, counters."""

    __slots__ = (
        "original",
        "oriented",
        "reversed",
        "anchor",
        "position_filters",
        "forward_estimate",
        "backward_estimate",
        "expand_fan",
        # profile counters
        "rows_in",
        "anchor_checked",
        "anchor_rows",
        "expand_rows",
        "filter_drops",
        "rows_out",
        "seconds",
    )

    def __init__(
        self,
        original: PatternPath,
        oriented: PatternPath,
        reversed_: bool,
        anchor: Anchor,
        position_filters: List[List[Expr]],
        forward_estimate: int,
        backward_estimate: int,
        expand_fan: List[float],
    ):
        self.original = original
        self.oriented = oriented
        self.reversed = reversed_
        self.anchor = anchor
        self.position_filters = position_filters
        self.forward_estimate = forward_estimate
        self.backward_estimate = backward_estimate
        self.expand_fan = expand_fan
        self.rows_in = 0
        self.anchor_checked = 0
        self.anchor_rows = 0
        self.expand_rows = [0] * len(oriented.rels)
        self.filter_drops = [0] * len(oriented.nodes)
        self.rows_out = 0
        self.seconds = 0.0


class StageStats:
    """A row-pipeline operator (project/aggregate/distinct/sort/limit)."""

    __slots__ = ("name", "detail", "rows", "seconds")

    def __init__(self, name: str, detail: str = ""):
        self.name = name
        self.detail = detail
        self.rows = 0
        self.seconds = 0.0


class QueryPlan:
    """The compiled plan: per-pattern strategies plus the row pipeline.

    ``render()`` produces the EXPLAIN text; after a ``profile=True`` run
    the same object carries per-operator row and time counters.
    """

    def __init__(
        self,
        query: Query,
        source: str,
        patterns: List[PatternPlan],
        residual: List[Expr],
        node_count: int,
    ):
        self.query = query
        self.source = source
        self.patterns = patterns
        self.residual = residual
        self.node_count = node_count
        self.residual_drops = 0
        self.pipeline: List[StageStats] = []
        self.profiled = False
        self.rows_returned = 0

    # -- display ---------------------------------------------------------

    def render(self) -> str:
        profiled = self.profiled
        lines = [
            "QUERY PLAN (cost-based planner)"
            + (" — profiled" if profiled else "")
        ]
        prev_seconds = 0.0
        for i, pplan in enumerate(self.patterns, start=1):
            tag = " [reversed]" if pplan.reversed else ""
            suffix = ""
            if profiled:
                self_ms = max(0.0, pplan.seconds - prev_seconds) * 1000
                prev_seconds = pplan.seconds
                suffix = f"  (rows={pplan.rows_out}, time={self_ms:.2f}ms)"
            lines.append(
                f"  MATCH {pattern_text(pplan.original)}{tag}{suffix}"
            )
            if len(pplan.original.nodes) > 1:
                lines.append(
                    "    cost: forward anchor est "
                    f"{pplan.forward_estimate}, reversed anchor est "
                    f"{pplan.backward_estimate} of {self.node_count} nodes"
                )
            anchor_suffix = ""
            if profiled:
                anchor_suffix = (
                    f"  (candidates={pplan.anchor_checked}, "
                    f"rows={pplan.anchor_rows})"
                )
            lines.append(f"    anchor {pplan.anchor.describe()}{anchor_suffix}")
            for f in pplan.position_filters[0]:
                lines.append(
                    f"      filter {expr_text(f)}  [pushed to anchor]"
                )
            for h, rel in enumerate(pplan.oriented.rels):
                target = _node_pattern_text(pplan.oriented.nodes[h + 1])
                hop_suffix = ""
                if profiled:
                    hop_suffix = f"  (rows={pplan.expand_rows[h]})"
                lines.append(
                    f"    expand {_rel_pattern_text(rel)} {target} via typed "
                    f"adjacency (est fan {pplan.expand_fan[h]:.2f}){hop_suffix}"
                )
                for f in pplan.position_filters[h + 1]:
                    lines.append(
                        f"      filter {expr_text(f)}  [pushed to hop {h + 1}]"
                    )
        if self.residual:
            drops = f"  (dropped={self.residual_drops})" if profiled else ""
            for f in self.residual:
                lines.append(f"  residual WHERE {expr_text(f)}{drops}")
        for stage in self.pipeline:
            suffix = ""
            if profiled:
                suffix = f"  (rows={stage.rows}, time={stage.seconds * 1000:.2f}ms)"
            detail = f": {stage.detail}" if stage.detail else ""
            lines.append(f"  {stage.name}{detail}{suffix}")
        if profiled:
            lines.append(f"  returned {self.rows_returned} row(s)")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "profiled": self.profiled,
            "node_count": self.node_count,
            "patterns": [
                {
                    "pattern": pattern_text(p.original),
                    "reversed": p.reversed,
                    "anchor": {
                        "var": p.anchor.var,
                        "strategy": p.anchor.strategy,
                        "label": p.anchor.label,
                        "key": p.anchor.key,
                        "value": p.anchor.value,
                        "estimate": p.anchor.estimate,
                    },
                    "forward_estimate": p.forward_estimate,
                    "backward_estimate": p.backward_estimate,
                    "expand_fan": p.expand_fan,
                    "pushed_filters": [
                        [expr_text(f) for f in fs] for fs in p.position_filters
                    ],
                    "rows_out": p.rows_out,
                    "anchor_candidates": p.anchor_checked,
                    "expand_rows": p.expand_rows,
                    "filter_drops": p.filter_drops,
                    "seconds": p.seconds,
                }
                for p in self.patterns
            ],
            "residual_where": [expr_text(f) for f in self.residual],
            "pipeline": [
                {
                    "stage": s.name,
                    "detail": s.detail,
                    "rows": s.rows,
                    "seconds": s.seconds,
                }
                for s in self.pipeline
            ],
            "rows_returned": self.rows_returned,
        }


# ---------------------------------------------------------------------------
# Planning
# ---------------------------------------------------------------------------


def _as_anchor_equality(expr: Expr, var: str) -> Optional[Tuple[str, Any]]:
    """``var.key = literal`` (either side), usable as an index seek.

    ``= null`` conjuncts are excluded: the naive engine's ``==`` treats a
    *missing* property as null, but indexes only cover present values.
    """
    if expr[0] != "cmp" or expr[1] != "=":
        return None
    left, right = expr[2], expr[3]
    if left[0] == "prop" and left[1] == var and right[0] == "lit":
        return (left[2], right[1]) if right[1] is not None else None
    if right[0] == "prop" and right[1] == var and left[0] == "lit":
        return (right[2], left[1]) if left[1] is not None else None
    return None


def _score_anchor(
    graph: PropertyGraph,
    pat: NodePattern,
    bound_vars: Set[str],
    conjuncts: List[Expr],
) -> Anchor:
    """Estimate the cheapest way to seed matching from this node pattern."""
    if pat.var is not None and pat.var in bound_vars:
        return Anchor(pat.var, "bound", None, None, None, 1)
    pairs = list(pat.props.items())
    if pat.var is not None:
        for c in conjuncts:
            if expr_variables(c) == {pat.var}:
                kv = _as_anchor_equality(c, pat.var)
                if kv is not None:
                    pairs.append(kv)
    best: Optional[Anchor] = None
    for label in pat.labels:
        for key, value in pairs:
            n = graph.indexes.count(label, key, value)
            if n is not None and (best is None or n < best.estimate):
                best = Anchor(pat.var, "index", label, key, value, n)
    if best is not None:
        return best
    if pat.labels:
        label = min(pat.labels, key=graph.indexes.label_count)
        return Anchor(pat.var, "label", label, None, None,
                      graph.indexes.label_count(label))
    return Anchor(pat.var, "scan", None, None, None, graph.node_count)


def _reverse_pattern(pattern: PatternPath) -> PatternPath:
    flipped = {"out": "in", "in": "out", "both": "both"}
    nodes = list(reversed(pattern.nodes))
    rels = [
        RelPattern(rel.var, rel.types, flipped[rel.direction],
                   rel.min_hops, rel.max_hops)
        for rel in reversed(pattern.rels)
    ]
    return PatternPath(nodes, rels)


def _expand_fan(graph: PropertyGraph, rel: RelPattern) -> float:
    """Expected neighbours per hop: typed edge count over node count,
    doubled for undirected hops (the type buckets are consulted in both
    directions)."""
    counts = graph.relationship_type_counts()
    if rel.types:
        total = sum(counts.get(t, 0) for t in dict.fromkeys(rel.types))
    else:
        total = graph.relationship_count
    fan = total / graph.node_count if graph.node_count else 0.0
    return fan * 2 if rel.direction == "both" else fan


def build_plan(graph: PropertyGraph, query: Query, source: str = "") -> QueryPlan:
    """Compile a parsed query into an executable :class:`QueryPlan`."""
    conjuncts = split_conjuncts(query.where)
    remaining = list(enumerate(conjuncts))
    bound: Set[str] = set()
    plans: List[PatternPlan] = []
    for pattern in query.patterns:
        forward = _score_anchor(graph, pattern.nodes[0], bound, conjuncts)
        if len(pattern.nodes) > 1:
            backward = _score_anchor(graph, pattern.nodes[-1], bound, conjuncts)
        else:
            backward = forward
        if backward is not forward and backward.estimate < forward.estimate:
            oriented, reversed_, anchor = _reverse_pattern(pattern), True, backward
        else:
            oriented, reversed_, anchor = pattern, False, forward

        # variable availability at each oriented position
        avail = set(bound)
        position_sets: List[Set[str]] = []
        for i, npat in enumerate(oriented.nodes):
            if i > 0 and oriented.rels[i - 1].var is not None:
                avail.add(oriented.rels[i - 1].var)
            if npat.var is not None:
                avail.add(npat.var)
            position_sets.append(set(avail))

        position_filters: List[List[Expr]] = [[] for _ in oriented.nodes]
        still_remaining = []
        for idx, c in remaining:
            needed = expr_variables(c)
            for p, have in enumerate(position_sets):
                if needed <= have:
                    position_filters[p].append(c)
                    break
            else:
                still_remaining.append((idx, c))
        remaining = still_remaining
        bound = position_sets[-1] if position_sets else bound

        fans = [_expand_fan(graph, rel) for rel in oriented.rels]
        plans.append(
            PatternPlan(
                pattern, oriented, reversed_, anchor, position_filters,
                forward.estimate, backward.estimate, fans,
            )
        )
    residual = [c for _, c in remaining]
    return QueryPlan(query, source, plans, residual, graph.node_count)


# ---------------------------------------------------------------------------
# Execution
# ---------------------------------------------------------------------------


def _anchor_candidates(
    graph: PropertyGraph, anchor: Anchor
) -> Optional[List[Node]]:
    """Binding-independent candidate list, or None for 'bound' anchors."""
    if anchor.strategy == "bound":
        return None
    if anchor.strategy == "index":
        ids = graph.indexes.lookup(anchor.label, anchor.key, anchor.value)
        return [graph.node(i) for i in sorted(ids or ())]
    if anchor.strategy == "label":
        return [graph.node(i) for i in sorted(graph.indexes.nodes_with_label(anchor.label))]
    return list(graph.nodes())


def _match_oriented(
    graph: PropertyGraph,
    pplan: PatternPlan,
    binding: Binding,
    candidates: Optional[List[Node]],
) -> Iterator[Binding]:
    """The planner's matcher: oriented pattern, pushed filters."""
    pattern = pplan.oriented
    filters = pplan.position_filters
    expand_rows = pplan.expand_rows
    filter_drops = pplan.filter_drops

    def passes(p: int, b: Binding) -> bool:
        for f in filters[p]:
            if not _eval_predicate(f, b):
                filter_drops[p] += 1
                return False
        return True

    def rec(b: Binding, node: Node, index: int) -> Iterator[Binding]:
        if index == len(pattern.rels):
            pplan.rows_out += 1
            yield b
            return
        rel_pat = pattern.rels[index]
        next_pat = pattern.nodes[index + 1]
        if not rel_pat.is_var_length:
            for rel, nxt in _step(graph, node, rel_pat):
                b2 = _bind_rel(b, rel_pat, rel)
                if b2 is None:
                    continue
                b3 = _bind_node(b2, next_pat, nxt)
                if b3 is None:
                    continue
                expand_rows[index] += 1
                if not passes(index + 1, b3):
                    continue
                yield from rec(b3, nxt, index + 1)
            return
        max_hops = (
            rel_pat.max_hops if rel_pat.max_hops is not None else graph.node_count
        )
        stack: List[Path] = [Path.single(node)]
        while stack:
            path = stack.pop()
            if path.length >= rel_pat.min_hops:
                b2 = b
                if rel_pat.var is not None:
                    rel_list = list(path.relationships)
                    if pplan.reversed:
                        # bindings must reflect the pattern as written
                        rel_list.reverse()
                    b2 = dict(b2)
                    b2[rel_pat.var] = rel_list
                b3 = _bind_node(b2, next_pat, path.end_node)
                if b3 is not None:
                    expand_rows[index] += 1
                    if passes(index + 1, b3):
                        yield from rec(b3, path.end_node, index + 1)
            if path.length >= max_hops:
                continue
            for rel, nxt in _step(graph, path.end_node, rel_pat):
                if path.contains_node(nxt):
                    continue
                stack.append(path.extend(rel, nxt))

    if candidates is None:  # 'bound' anchor: seeded from the binding
        value = binding.get(pplan.anchor.var)
        candidates = [value] if isinstance(value, Node) else []
    first = pattern.nodes[0]
    for node in candidates:
        pplan.anchor_checked += 1
        b0 = _bind_node(binding, first, node)
        if b0 is None:
            continue
        if not passes(0, b0):
            continue
        pplan.anchor_rows += 1
        yield from rec(b0, node, 0)


def _timed(it: Iterator, holder, timer) -> Iterator:
    """Attribute the time spent pulling each item to ``holder.seconds``
    (cumulative through this operator; render() subtracts upstream)."""
    while True:
        t0 = timer()
        try:
            item = next(it)
        except StopIteration:
            holder.seconds += timer() - t0
            return
        holder.seconds += timer() - t0
        yield item


def _binding_stream(
    graph: PropertyGraph, plan: QueryPlan, timer
) -> Iterator[Binding]:
    stream: Iterator[Binding] = iter(({},))
    for pplan in plan.patterns:
        candidates = _anchor_candidates(graph, pplan.anchor)

        def stage(
            upstream: Iterator[Binding],
            pplan: PatternPlan = pplan,
            candidates: Optional[List[Node]] = candidates,
        ) -> Iterator[Binding]:
            for b in upstream:
                pplan.rows_in += 1
                yield from _match_oriented(graph, pplan, b, candidates)

        stream = stage(stream)
        if timer is not None:
            stream = _timed(stream, pplan, timer)
    if plan.residual:

        def residual_stage(upstream: Iterator[Binding]) -> Iterator[Binding]:
            for b in upstream:
                ok = True
                for c in plan.residual:
                    if not _eval_predicate(c, b):
                        plan.residual_drops += 1
                        ok = False
                        break
                if ok:
                    yield b

        stream = residual_stage(stream)
    return stream


def execute_planned(
    graph: PropertyGraph,
    query: Query,
    source: str = "",
    *,
    explain: bool = False,
    profile: bool = False,
) -> QueryResult:
    """Build the plan and (unless ``explain``) run the optimized engine."""
    plan = build_plan(graph, query, source)
    columns = [item.alias for item in query.items]
    has_aggregate = any(item.is_aggregate for item in query.items)
    skip, limit = query.skip, query.limit

    # pipeline stage descriptors (shown by EXPLAIN even before a run)
    if has_aggregate:
        produce = StageStats("aggregate", "group + count()")
    else:
        produce = StageStats(
            "project", ", ".join(expr_text(i.expr) + " AS " + i.alias
                                 for i in query.items)
        )
    plan.pipeline.append(produce)
    distinct_stage = None
    if query.distinct:
        distinct_stage = StageStats("distinct", "streaming first-occurrence")
        plan.pipeline.append(distinct_stage)
    order_stage = None
    if query.order_by:
        if limit is not None:
            order_stage = StageStats(
                "order+limit",
                f"bounded stable heap, k={skip + limit} (skip {skip} + "
                f"limit {limit})",
            )
        else:
            order_stage = StageStats("order", "full stable sort")
        plan.pipeline.append(order_stage)
    elif limit is not None or skip:
        window = f"skip {skip}" + (f", limit {limit}" if limit is not None else "")
        order_stage = StageStats(
            "limit", f"short-circuit binding pull ({window})"
        )
        plan.pipeline.append(order_stage)

    if explain:
        return QueryResult(columns, [], plan=plan)

    timer = time.perf_counter if profile else None
    plan.profiled = profile
    bindings = _binding_stream(graph, plan, timer)

    rows_iter: Iterable[Dict[str, Any]]
    if has_aggregate:
        t0 = timer() if timer else 0.0
        agg_rows = _aggregate_rows(query, bindings)
        if timer:
            produce.seconds = timer() - t0
        produce.rows = len(agg_rows)
        rows_iter = iter(agg_rows)
    else:

        def projected() -> Iterator[Dict[str, Any]]:
            for b in bindings:
                produce.rows += 1
                yield _project_row(query, b)

        rows_iter = projected()
        if timer is not None:
            rows_iter = _timed(rows_iter, produce, timer)

    if distinct_stage is not None:

        def deduped(
            upstream: Iterable[Dict[str, Any]] = rows_iter,
        ) -> Iterator[Dict[str, Any]]:
            for row in _distinct_rows(columns, upstream):
                distinct_stage.rows += 1
                yield row

        rows_iter = deduped()
        if timer is not None:
            rows_iter = _timed(rows_iter, distinct_stage, timer)

    t0 = timer() if timer else 0.0
    if query.order_by:
        sort_key = _make_sort_key(query)
        if limit is not None:
            # nsmallest is stable and equivalent to sorted()[:k]
            rows = heapq.nsmallest(skip + limit, rows_iter, key=sort_key)[skip:]
        else:
            rows = sorted(rows_iter, key=sort_key)
            if skip:
                rows = rows[skip:]
    elif limit is not None:
        rows = list(islice(rows_iter, skip, skip + limit))
    elif skip:
        rows = list(islice(rows_iter, skip, None))
    else:
        rows = list(rows_iter)
    if order_stage is not None:
        if timer:
            order_stage.seconds = timer() - t0
        order_stage.rows = len(rows)
    plan.rows_returned = len(rows)
    return QueryResult(columns, rows, plan=plan)

"""Write-ahead log for the MVCC graph core.

Every committed write transaction is journalled *before* it becomes
the published version: a crash at any point loses at most the
uncommitted transaction, never a committed one, and ``replay()``
recovers the graph to the last durable commit.

On-disk layout (record framing mirrors the v2 snapshot's checksummed
sections — CRC32 over the payload, little-endian fixed-width frame):

``header``
    ``TABBYWAL`` magic + ``<H`` format version + ``<H`` reserved.

``record``
    ``<BIQ`` (kind, crc32(payload), payload length) followed by the
    payload, a compact UTF-8 JSON document.

Two record kinds:

* ``BASE`` (always first) — points at a v3 snapshot file holding the
  compaction base, plus everything a dense v3 snapshot cannot carry:
  the real (possibly sparse) node/relationship ids, the id counters,
  the declared relationship-property presence indexes, and a
  fingerprint digest of the base graph for end-to-end verification.
* ``TXN`` — one committed transaction: its version number and the
  ordered list of mutation ops (see :func:`apply_ops`).

Corruption semantics match the snapshot codecs: a *torn tail* (short
frame, short payload, or a bad CRC on the final record — all
indistinguishable from a crash mid-append) recovers cleanly to the
last good record and truncates; a corrupt record *followed by intact
data* cannot be a torn write and raises a structured
:class:`~repro.errors.StorageError`.

Compaction (:meth:`WriteAheadLog.compact`) folds the journal into a
fresh v3 base snapshot plus a truncated log, using write-to-temp +
``os.replace`` so a crash mid-compaction leaves either the old or the
new base/log pair, never a blend.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Iterable, List, Sequence, Tuple

from repro.errors import StorageError
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.snapshot import fingerprint_digest
from repro.graphdb.storage import load_graph, save_graph

__all__ = [
    "WAL_MAGIC",
    "WAL_VERSION",
    "WriteAheadLog",
    "ReplayResult",
    "apply_ops",
]

WAL_MAGIC = b"TABBYWAL"
WAL_VERSION = 1

_HEADER = struct.Struct("<8sHH")  # magic, format version, reserved
_FRAME = struct.Struct("<BIQ")  # kind, crc32(payload), payload length

_KIND_BASE = 1
_KIND_TXN = 2

#: refuse absurd frames outright instead of attempting a 2**63-byte read
_MAX_PAYLOAD = 1 << 40


# ---------------------------------------------------------------------------
# mutation ops
# ---------------------------------------------------------------------------
#
# One op is one public-mutator call, encoded as a JSON array whose head
# names the mutator.  Ids are recorded so replay can *assert* that the
# deterministic id assignment reproduced them — any drift means the
# journal and the graph diverged and recovery must not continue.


def apply_ops(graph: PropertyGraph, ops: Iterable[Sequence[Any]]) -> None:
    """Replay journalled mutation ops through the public mutators.

    Raises :class:`StorageError` on an unknown op kind or when a
    created entity comes back with an id other than the recorded one
    (the journal is only valid against the exact base it was written
    over).
    """
    for op in ops:
        kind = op[0]
        if kind == "n+":
            _, node_id, labels, props = op
            if graph._next_node_id != node_id:
                raise StorageError(
                    f"WAL replay id drift: expected node {node_id}, "
                    f"graph would assign {graph._next_node_id}"
                )
            graph.create_node(labels, props or None)
        elif kind == "r+":
            _, rel_id, rel_type, start, end, props = op
            if graph._next_rel_id != rel_id:
                raise StorageError(
                    f"WAL replay id drift: expected relationship {rel_id}, "
                    f"graph would assign {graph._next_rel_id}"
                )
            graph.create_relationship(rel_type, start, end, props or None)
        elif kind == "r-":
            graph.delete_relationship(op[1])
        elif kind == "n-":
            graph.delete_node(op[1])
        elif kind == "np":
            _, node_id, key, value = op
            graph.set_node_property(node_id, key, value)
        elif kind == "rp":
            _, rel_id, key, value = op
            graph.set_relationship_property(rel_id, key, value)
        elif kind == "ix":
            graph.create_index(op[1], op[2])
        elif kind == "rix":
            graph.create_relationship_index(op[1])
        else:
            raise StorageError(f"WAL replay: unknown op kind {kind!r}")


def _remap_graph_ids(
    graph: PropertyGraph,
    node_ids: Sequence[int],
    rel_ids: Sequence[int],
) -> None:
    """Restore the real (sparse) ids over a densely-loaded snapshot.

    v3 snapshots renumber entities densely in id order; a live graph
    that has seen deletions has holes.  The BASE record stores the real
    ids in dense position order, and this helper rewrites every id-
    bearing structure in place — sound because the graph was loaded
    moments ago and shares nothing.
    """
    node_map = dict(enumerate(node_ids))
    rel_map = dict(enumerate(rel_ids))
    if len(node_map) != len(graph._nodes) or len(rel_map) != len(graph._rels):
        raise StorageError(
            "WAL base id lists do not match the base snapshot "
            f"({len(node_map)}/{len(graph._nodes)} nodes, "
            f"{len(rel_map)}/{len(graph._rels)} relationships)"
        )
    for dense, node in graph._nodes.items():
        node.id = node_map[dense]
    for dense, rel in graph._rels.items():
        rel.id = rel_map[dense]
        rel.start_id = node_map[rel.start_id]
        rel.end_id = node_map[rel.end_id]
    graph._nodes = {node.id: node for node in graph._nodes.values()}
    graph._rels = {rel.id: rel for rel in graph._rels.values()}
    graph._out = {
        node_map[nid]: [rel_map[r] for r in ids] for nid, ids in graph._out.items()
    }
    graph._in = {
        node_map[nid]: [rel_map[r] for r in ids] for nid, ids in graph._in.items()
    }
    graph._out_by_type = {
        node_map[nid]: {t: [rel_map[r] for r in b] for t, b in buckets.items()}
        for nid, buckets in graph._out_by_type.items()
    }
    graph._in_by_type = {
        node_map[nid]: {t: [rel_map[r] for r in b] for t, b in buckets.items()}
        for nid, buckets in graph._in_by_type.items()
    }
    graph._rel_prop_indexes = {
        key: {rel_map[r] for r in ids}
        for key, ids in graph._rel_prop_indexes.items()
    }
    indexes = graph.indexes
    indexes._by_label = {
        label: {node_map[n] for n in ids}
        for label, ids in indexes._by_label.items()
    }
    indexes._property_indexes = {
        pair: {value: {node_map[n] for n in ids} for value, ids in table.items()}
        for pair, table in indexes._property_indexes.items()
    }


# ---------------------------------------------------------------------------
# the log
# ---------------------------------------------------------------------------


@dataclass
class ReplayResult:
    """Outcome of :meth:`WriteAheadLog.replay`."""

    graph: PropertyGraph
    version: int
    txns_applied: int = 0
    #: bytes of torn tail discarded (0 = the log ended cleanly)
    truncated_bytes: int = 0


class WriteAheadLog:
    """A CRC-framed append-only journal of graph mutations.

    Use :meth:`create` for a fresh log (writes the base snapshot and
    the BASE record) and :meth:`attach` to adopt an existing one; the
    plain constructor does not touch the filesystem.
    """

    def __init__(self, path: str, *, fsync: bool = True) -> None:
        self.path = path
        self.fsync = fsync

    # -- construction ---------------------------------------------------

    @classmethod
    def create(
        cls,
        path: str,
        graph: PropertyGraph,
        version: int = 0,
        *,
        fsync: bool = True,
    ) -> "WriteAheadLog":
        """Start a fresh log whose base is ``graph`` at ``version``."""
        wal = cls(path, fsync=fsync)
        wal.compact(graph, version)
        return wal

    @classmethod
    def attach(cls, path: str, *, fsync: bool = True) -> "WriteAheadLog":
        if not os.path.exists(path):
            raise StorageError(f"write-ahead log not found: {path}")
        return cls(path, fsync=fsync)

    # -- framing --------------------------------------------------------

    @staticmethod
    def _frame(kind: int, payload: bytes) -> bytes:
        return _FRAME.pack(kind, zlib.crc32(payload), len(payload)) + payload

    def _base_name(self, version: int) -> str:
        return f"{os.path.basename(self.path)}.base.{version}"

    def _sync(self, fh) -> None:
        fh.flush()
        if self.fsync:
            os.fsync(fh.fileno())

    # -- appending ------------------------------------------------------

    def append_txn(self, version: int, ops: Sequence[Sequence[Any]]) -> None:
        """Journal one committed transaction, durably (write + fsync)
        before the caller publishes the new version."""
        payload = json.dumps(
            {"version": version, "ops": [list(op) for op in ops]},
            separators=(",", ":"),
        ).encode("utf-8")
        try:
            with open(self.path, "ab") as fh:
                fh.write(self._frame(_KIND_TXN, payload))
                self._sync(fh)
        except OSError as exc:
            raise StorageError(f"cannot append to WAL {self.path}: {exc}") from exc

    # -- compaction -----------------------------------------------------

    def compact(self, graph: PropertyGraph, version: int) -> None:
        """Fold the journal into a fresh v3 base + truncated log.

        Crash-safe by ordering: the new base snapshot lands first
        (under a version-suffixed name, so the old base stays intact),
        then the new log replaces the old one atomically, then stale
        bases are garbage-collected.  A crash between any two steps
        leaves a fully consistent old or new state.
        """
        node_ids = list(graph._nodes)
        rel_ids = list(graph._rels)
        dense = (
            node_ids == list(range(len(node_ids)))
            and graph._next_node_id == len(node_ids)
            and rel_ids == list(range(len(rel_ids)))
            and graph._next_rel_id == len(rel_ids)
        )
        base_name = self._base_name(version)
        base_path = os.path.join(os.path.dirname(self.path) or ".", base_name)
        try:
            save_graph(graph, base_path + ".tmp", format="v3")
            os.replace(base_path + ".tmp", base_path)
        except OSError as exc:
            raise StorageError(
                f"cannot write WAL base snapshot {base_path}: {exc}"
            ) from exc
        payload = json.dumps(
            {
                "base": base_name,
                "version": version,
                "digest": fingerprint_digest(graph),
                "next_node_id": graph._next_node_id,
                "next_rel_id": graph._next_rel_id,
                "node_ids": None if dense else node_ids,
                "rel_ids": None if dense else rel_ids,
                "rel_prop_indexes": list(graph._rel_prop_indexes),
            },
            separators=(",", ":"),
        ).encode("utf-8")
        tmp = self.path + ".tmp"
        try:
            with open(tmp, "wb") as fh:
                fh.write(_HEADER.pack(WAL_MAGIC, WAL_VERSION, 0))
                fh.write(self._frame(_KIND_BASE, payload))
                self._sync(fh)
            os.replace(tmp, self.path)
        except OSError as exc:
            raise StorageError(f"cannot compact WAL {self.path}: {exc}") from exc
        self._collect_stale_bases(keep=base_name)

    def _collect_stale_bases(self, keep: str) -> None:
        directory = os.path.dirname(self.path) or "."
        prefix = os.path.basename(self.path) + ".base."
        try:
            for name in os.listdir(directory):
                if name.startswith(prefix) and name != keep:
                    os.unlink(os.path.join(directory, name))
        except OSError:
            pass  # stale bases are harmless; never fail a commit over GC

    # -- replay ---------------------------------------------------------

    def _read_records(self) -> Tuple[List[Tuple[int, bytes]], int, int]:
        """Parse the log into (kind, payload) records.

        Returns ``(records, good_end, total_size)`` where ``good_end``
        is the offset just past the last intact record.  Torn tails
        stop the scan; mid-log corruption raises.
        """
        try:
            with open(self.path, "rb") as fh:
                data = fh.read()
        except OSError as exc:
            raise StorageError(f"cannot read WAL {self.path}: {exc}") from exc
        if len(data) < _HEADER.size:
            raise StorageError(f"WAL {self.path}: truncated header")
        magic, fmt, _reserved = _HEADER.unpack_from(data, 0)
        if magic != WAL_MAGIC:
            raise StorageError(f"WAL {self.path}: bad magic {magic!r}")
        if fmt != WAL_VERSION:
            raise StorageError(f"WAL {self.path}: unsupported format {fmt}")
        records: List[Tuple[int, bytes]] = []
        pos = _HEADER.size
        size = len(data)
        while pos < size:
            if pos + _FRAME.size > size:
                break  # torn frame at EOF
            kind, crc, length = _FRAME.unpack_from(data, pos)
            body_start = pos + _FRAME.size
            if length > _MAX_PAYLOAD:
                raise StorageError(
                    f"WAL {self.path}: record at offset {pos} declares an "
                    f"implausible {length}-byte payload"
                )
            if body_start + length > size:
                break  # torn payload at EOF
            payload = data[body_start : body_start + length]
            if zlib.crc32(payload) != crc:
                if body_start + length == size:
                    break  # bad CRC on the final record == torn write
                raise StorageError(
                    f"WAL {self.path}: CRC mismatch at offset {pos} with "
                    "intact data after it — mid-log corruption, not a torn "
                    "write; refusing to recover past it"
                )
            records.append((kind, payload))
            pos = body_start + length
        return records, pos, size

    def replay(self, *, recover: bool = True) -> ReplayResult:
        """Rebuild the graph state of the last durable commit.

        With ``recover=True`` (the default) a torn tail is truncated
        away so subsequent appends start from the last good record.
        """
        records, good_end, size = self._read_records()
        if not records or records[0][0] != _KIND_BASE:
            raise StorageError(f"WAL {self.path}: missing BASE record")
        try:
            base = json.loads(records[0][1].decode("utf-8"))
            base_name = base["base"]
            version = base["version"]
        except (ValueError, KeyError) as exc:
            raise StorageError(
                f"WAL {self.path}: malformed BASE record: {exc}"
            ) from exc
        base_path = os.path.join(os.path.dirname(self.path) or ".", base_name)
        graph = load_graph(base_path)
        if base.get("node_ids") is not None:
            _remap_graph_ids(graph, base["node_ids"], base["rel_ids"])
        graph._next_node_id = base["next_node_id"]
        graph._next_rel_id = base["next_rel_id"]
        for key in base.get("rel_prop_indexes", ()):
            graph.create_relationship_index(key)
        digest = base.get("digest")
        if digest is not None and fingerprint_digest(graph) != digest:
            raise StorageError(
                f"WAL {self.path}: base snapshot fingerprint mismatch — "
                "the base file does not match the BASE record"
            )
        txns = 0
        for kind, raw in records[1:]:
            if kind == _KIND_BASE:
                raise StorageError(
                    f"WAL {self.path}: unexpected second BASE record"
                )
            if kind != _KIND_TXN:
                raise StorageError(f"WAL {self.path}: unknown record kind {kind}")
            try:
                txn = json.loads(raw.decode("utf-8"))
                txn_version = txn["version"]
                ops = txn["ops"]
            except (ValueError, KeyError) as exc:
                raise StorageError(
                    f"WAL {self.path}: malformed TXN record: {exc}"
                ) from exc
            if txn_version != version + 1:
                raise StorageError(
                    f"WAL {self.path}: TXN version {txn_version} does not "
                    f"follow {version}"
                )
            apply_ops(graph, ops)
            version = txn_version
            txns += 1
        truncated = size - good_end
        if truncated and recover:
            try:
                with open(self.path, "r+b") as fh:
                    fh.truncate(good_end)
                    self._sync(fh)
            except OSError as exc:
                raise StorageError(
                    f"cannot truncate torn WAL tail in {self.path}: {exc}"
                ) from exc
        return ReplayResult(
            graph=graph,
            version=version,
            txns_applied=txns,
            truncated_bytes=truncated,
        )

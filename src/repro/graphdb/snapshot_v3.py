"""Page-structured zero-copy graph snapshots (format v3).

Format v2 (:mod:`repro.graphdb.snapshot`) made *decoding* fast; every
open still pays a full decode of every section into a dict-of-objects
graph, and every worker process holds a private copy of the result.
Format v3 makes *opening* fast and the hot data shareable: the file is
laid out so that a reader can ``mmap`` it and traverse in place —

* a fixed-size header (the shared ``TABBYCPG`` magic, version 3) plus a
  section *table* of ``(tag, offset, length)`` entries, protected by a
  CRC32 so a corrupt or mis-versioned file fails structured validation
  instead of mis-slicing;
* every array section is raw little-endian fixed-width integers at an
  8-byte-aligned offset, viewed directly via ``memoryview.cast`` (a
  byte-swapping ``array`` fallback keeps big-endian hosts correct);
* adjacency is precomputed **CSR**: one flat forward and one flat
  reverse index over all relationships plus one forward/reverse pair
  *per relationship type*, so ``in_relationships(node, "CALL")`` — the
  chain search's hot operation — is two indptr reads and a slice;
* strings live in one UTF-8 blob indexed by an offset array and decode
  lazily per id; property maps are stored shape-grouped and columnar
  (the v2 model) but with a random-access *column directory* of
  ``(key, kind, offsets)`` entries, so a column decodes on first touch
  of that property and never before;
* node/relationship property membership is two u32 arrays (shape id,
  row within shape), making ``rel.get("POLLUTED_POSITION")`` an array
  read plus a cached column index.

Opening therefore touches the header, the section table, the directory
pages and nothing else — O(header), not O(graph) — and N processes
opening one snapshot share its pages through the OS page cache instead
of holding N decoded heaps.  Integrity model: the header/table CRC and
exact arithmetic length checks on every fixed-layout section run at
open; variable-payload sections (string blob, property data) are
bounds-checked on first touch and surface :class:`StorageError`, never
``struct.error``/``IndexError``.

``decode_snapshot_v3`` (used by ``load_graph``) materialises through
:meth:`~repro.graphdb.arraygraph.ArrayGraph.materialize`, which funnels
into the same trusted columnar bulk loader as v2 — a materialised v3
load is ``graph_fingerprint``-identical to the v2/v1 loads of the same
graph (asserted in tests and the storage benchmark).
"""

from __future__ import annotations

import mmap
import struct
import sys
import zlib
from array import array
from itertools import accumulate
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import StorageError
from repro.graphdb.arraygraph import Adjacency, ArrayGraph
from repro.graphdb.graph import PropertyGraph
from repro.graphdb.snapshot import (
    SNAPSHOT_MAGIC,
    _BOOLS,
    _HEADER,
    _INTERN_MAX,
    _K_BOOL,
    _K_FLOAT,
    _K_INT,
    _K_INTLIST,
    _K_NESTED,
    _K_NONE,
    _K_STR,
    _K_STRDICT,
    _K_STRLIST,
    _kind_of,
    _make_readers,
    _rows_to_maps,
    _sid,
    _write_value,
)

__all__ = [
    "SNAPSHOT_VERSION_V3",
    "encode_snapshot_v3",
    "decode_snapshot_v3",
    "open_snapshot",
    "view_snapshot",
]

SNAPSHOT_VERSION_V3 = 3

_LITTLE = sys.byteorder == "little"

#: section table entry: tag, reserved, absolute offset, length
_SECTION_V3 = struct.Struct("<IIQQ")
_CRC = struct.Struct("<I")
#: node count, rel count, string count, labelset count, rel-type count,
#: index count
_META = struct.Struct("<QQQQII")
#: per-shape directory header: key count, row count
_DIR_SHAPE = struct.Struct("<II")
#: per-column directory entry: key sid, kind, three data offsets
#: (meaning depends on kind; relative to the PROP_DATA section)
_DIR_ENTRY = struct.Struct("<IIQQQ")

_T_META = 1
_T_STR_OFFS = 2
_T_STR_BLOB = 3
_T_LS_OFFS = 4
_T_LS_MEMBERS = 5
_T_NODE_LS = 6
_T_RELTYPES = 7
_T_REL_TYPEID = 8
_T_REL_START = 9
_T_REL_END = 10
_T_CSR = 11
_T_NODE_SHAPE = 12
_T_NODE_ROW = 13
_T_NODE_PROP_DIR = 14
_T_NODE_PROP_DATA = 15
_T_REL_SHAPE = 16
_T_REL_ROW = 17
_T_REL_PROP_DIR = 18
_T_REL_PROP_DATA = 19
_T_INDEXES = 20

_SECTION_NAMES_V3 = {
    _T_META: "META",
    _T_STR_OFFS: "STR_OFFS",
    _T_STR_BLOB: "STR_BLOB",
    _T_LS_OFFS: "LS_OFFS",
    _T_LS_MEMBERS: "LS_MEMBERS",
    _T_NODE_LS: "NODE_LS",
    _T_RELTYPES: "RELTYPES",
    _T_REL_TYPEID: "REL_TYPEID",
    _T_REL_START: "REL_START",
    _T_REL_END: "REL_END",
    _T_CSR: "CSR",
    _T_NODE_SHAPE: "NODE_SHAPE",
    _T_NODE_ROW: "NODE_ROW",
    _T_NODE_PROP_DIR: "NODE_PROP_DIR",
    _T_NODE_PROP_DATA: "NODE_PROP_DATA",
    _T_REL_SHAPE: "REL_SHAPE",
    _T_REL_ROW: "REL_ROW",
    _T_REL_PROP_DIR: "REL_PROP_DIR",
    _T_REL_PROP_DATA: "REL_PROP_DATA",
    _T_INDEXES: "INDEXES",
}
_REQUIRED_V3 = tuple(_SECTION_NAMES_V3)

_U32_MAX = 1 << 32


# ---------------------------------------------------------------------------
# low-level array helpers
# ---------------------------------------------------------------------------


def _pad8(out: bytearray) -> None:
    out += b"\x00" * (-len(out) % 8)


def _put_array(out: bytearray, code: str, values) -> int:
    """Append a fixed-width little-endian integer/float column at an
    8-aligned offset; returns the offset."""
    _pad8(out)
    offset = len(out)
    column = array(code, values)
    if not _LITTLE:
        column.byteswap()
    out += column.tobytes()
    return offset


def _put_bytes(out: bytearray, blob: bytes) -> int:
    _pad8(out)
    offset = len(out)
    out += blob
    return offset


_ITEM_SIZES = {"B": 1, "I": 4, "q": 8, "d": 8, "Q": 8}


def _cast(view: memoryview, offset: int, count: int, code: str):
    """A ``count``-element fixed-width column at ``offset``, zero-copy on
    little-endian hosts, byte-swapped into an ``array`` otherwise."""
    nbytes = count * _ITEM_SIZES[code]
    chunk = view[offset : offset + nbytes]
    if len(chunk) != nbytes:
        raise StorageError("snapshot data column is truncated")
    if _LITTLE and code != "B":
        return chunk.cast(code)
    if code == "B":
        return chunk  # bytes-like indexing already yields ints
    column = array(code)
    column.frombytes(chunk)
    column.byteswap()
    return column


# ---------------------------------------------------------------------------
# lazy readers
# ---------------------------------------------------------------------------


class _LazyStrings:
    """The deduplicated string table, decoded per id on first touch.
    Strings at most ``_INTERN_MAX`` bytes are ``sys.intern``'d, matching
    the v2 loader's sharing policy."""

    __slots__ = ("_blob", "_offs", "_cache")

    def __init__(self, blob: memoryview, offs) -> None:
        self._blob = blob
        self._offs = offs
        self._cache: List[Optional[str]] = [None] * (len(offs) - 1)

    def __len__(self) -> int:
        return len(self._cache)

    def __getitem__(self, sid: int) -> str:
        try:
            value = self._cache[sid]
        except IndexError:
            raise StorageError(
                f"snapshot references string id {sid} beyond the string table"
            ) from None
        if value is None:
            offs = self._offs
            start, end = offs[sid], offs[sid + 1]
            if end < start:
                raise StorageError("snapshot string table offsets are not monotonic")
            try:
                value = bytes(self._blob[start:end]).decode("utf-8")
            except UnicodeDecodeError as exc:
                raise StorageError(f"snapshot string table is corrupt: {exc}") from exc
            if end - start <= _INTERN_MAX:
                value = sys.intern(value)
            self._cache[sid] = value
        return value

    def decode_all(self) -> None:
        """Bulk-decode the whole table (the materialization path)."""
        cache = self._cache
        blob = bytes(self._blob)
        offsets = list(self._offs)
        if any(b < a for a, b in zip(offsets, offsets[1:])):
            raise StorageError("snapshot string table offsets are not monotonic")
        if blob.isascii():
            # byte offsets == char offsets: decode once, slice the str
            text = blob.decode("utf-8")
            intern = sys.intern
            for sid, (start, end) in enumerate(zip(offsets, offsets[1:])):
                if cache[sid] is None:
                    value = text[start:end]
                    cache[sid] = (
                        intern(value) if end - start <= _INTERN_MAX else value
                    )
        else:
            for sid in range(len(cache)):
                self[sid]


class _LazyLabelsets:
    """Distinct label combinations, one pooled frozenset per id."""

    __slots__ = ("_strings", "_offs", "_members", "_cache")

    def __init__(self, strings: _LazyStrings, offs, members) -> None:
        self._strings = strings
        self._offs = offs
        self._members = members
        self._cache: List[Optional[FrozenSet[str]]] = [None] * (len(offs) - 1)

    def __len__(self) -> int:
        return len(self._cache)

    def __getitem__(self, lsid: int) -> FrozenSet[str]:
        try:
            labelset = self._cache[lsid]
        except IndexError:
            raise StorageError(
                f"snapshot references labelset id {lsid} beyond the labelset table"
            ) from None
        if labelset is None:
            offs = self._offs
            start, end = offs[lsid], offs[lsid + 1]
            if end < start or end > len(self._members):
                raise StorageError("snapshot labelset offsets are out of range")
            labelset = frozenset(
                map(self._strings.__getitem__, self._members[start:end])
            )
            self._cache[lsid] = labelset
        return labelset


class _Column:
    __slots__ = ("kind", "a", "b", "c", "values")

    def __init__(self, kind: int, a: int, b: int, c: int) -> None:
        self.kind = kind
        self.a = a
        self.b = b
        self.c = c
        self.values: Optional[Sequence[Any]] = None


class _Shape:
    __slots__ = ("keys", "rows", "cols")

    def __init__(self, keys: Tuple[str, ...], rows: int, cols: Dict[str, _Column]):
        self.keys = keys
        self.rows = rows
        self.cols = cols


class _PropTable:
    """Shape-grouped property columns with per-column lazy decode.

    ``shape_col[eid]`` names the entity's shape, ``row_col[eid]`` its
    row within that shape; a property read is two array loads, a dict
    probe and (after first touch) a list index.  Decoded columns cache
    on their directory entry, so each column pays its decode exactly
    once per process.
    """

    __slots__ = ("_shapes", "_shape_col", "_row_col", "_data", "_strings", "_count")

    def __init__(self, shapes, shape_col, row_col, data, strings, count) -> None:
        self._shapes = shapes
        self._shape_col = shape_col
        self._row_col = row_col
        self._data = data
        self._strings = strings
        self._count = count
        if sum(shape.rows for shape in shapes) != count:
            raise StorageError("property shape column is inconsistent")

    def get(self, eid: int, key: str, default: Any = None) -> Any:
        try:
            shape = self._shapes[self._shape_col[eid]]
        except IndexError:
            raise StorageError("property shape column is inconsistent") from None
        col = shape.cols.get(key)
        if col is None:
            return default
        values = col.values
        if values is None:
            values = self._decode_column(shape, col)
        try:
            return values[self._row_col[eid]]
        except IndexError:
            raise StorageError("property row column is inconsistent") from None

    def has(self, eid: int, key: str) -> bool:
        try:
            return key in self._shapes[self._shape_col[eid]].cols
        except IndexError:
            raise StorageError("property shape column is inconsistent") from None

    def map(self, eid: int) -> Dict[str, Any]:
        try:
            shape = self._shapes[self._shape_col[eid]]
            row = self._row_col[eid]
        except IndexError:
            raise StorageError("property shape column is inconsistent") from None
        out = {}
        for key in shape.keys:
            col = shape.cols[key]
            values = col.values
            if values is None:
                values = self._decode_column(shape, col)
            try:
                out[key] = values[row]
            except IndexError:
                raise StorageError("property row column is inconsistent") from None
        return out

    def _decode_column(self, shape: _Shape, col: _Column) -> Sequence[Any]:
        try:
            values = self._decode_column_raw(shape.rows, col)
        except StorageError:
            raise
        except (IndexError, ValueError, OverflowError, struct.error) as exc:
            raise StorageError(f"corrupt v3 property column: {exc}") from exc
        col.values = values
        return values

    def _decode_column_raw(self, n: int, col: _Column) -> Sequence[Any]:
        kind = col.kind
        data = self._data
        strings = self._strings
        if kind == _K_STR:
            return list(map(strings.__getitem__, _cast(data, col.a, n, "I")))
        if kind == _K_INT:
            return _cast(data, col.a, n, "q").tolist()
        if kind == _K_BOOL:
            return [_BOOLS[b] for b in _cast(data, col.a, n, "B")]
        if kind == _K_NONE:
            return [None] * n
        if kind == _K_FLOAT:
            return _cast(data, col.a, n, "d").tolist()
        if kind == _K_INTLIST:
            offs = _cast(data, col.a, n + 1, "I")
            flat = _cast(data, col.b, offs[n], "q").tolist()
            return [flat[offs[i] : offs[i + 1]] for i in range(n)]
        if kind == _K_STRLIST:
            offs = _cast(data, col.a, n + 1, "I")
            flat = list(map(strings.__getitem__, _cast(data, col.b, offs[n], "I")))
            return [flat[offs[i] : offs[i + 1]] for i in range(n)]
        if kind == _K_STRDICT:
            offs = _cast(data, col.a, n + 1, "I")
            total = offs[n]
            flat_keys = list(map(strings.__getitem__, _cast(data, col.b, total, "I")))
            flat_values = list(map(strings.__getitem__, _cast(data, col.c, total, "I")))
            return [
                dict(zip(flat_keys[offs[i] : offs[i + 1]], flat_values[offs[i] : offs[i + 1]]))
                for i in range(n)
            ]
        # _K_NESTED — kinds were validated while parsing the directory
        offs = _cast(data, col.a, n + 1, "I")
        blob = data[col.b : col.b + offs[n]]
        if len(blob) != offs[n]:
            raise StorageError("snapshot data column is truncated")
        _, read_value = _make_readers(blob, strings)
        values = []
        append = values.append
        for i in range(n):
            value, _end = read_value(offs[i])
            append(value)
        return values

    def decode_all(self) -> List[Dict[str, Any]]:
        """Every entity's property map, in entity order — the
        materialization path, sharing decoded columns with any prior
        lazy reads."""
        per_shape: List[List[Dict[str, Any]]] = []
        for shape in self._shapes:
            if shape.keys:
                cols = []
                for key in shape.keys:
                    col = shape.cols[key]
                    values = col.values
                    if values is None:
                        values = self._decode_column(shape, col)
                    cols.append(values)
                per_shape.append(_rows_to_maps(shape.keys, cols))
            else:
                per_shape.append([{} for _ in range(shape.rows)])
        cursors = [iter(maps) for maps in per_shape]
        try:
            result = list(map(next, map(cursors.__getitem__, self._shape_col)))
        except IndexError as exc:
            raise StorageError("property shape column is inconsistent") from exc
        if len(result) != self._count:
            raise StorageError("property shape column is inconsistent")
        return result


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------


def _csr(n: int, endpoint_of: List[int], rel_ids: Sequence[int]):
    """Counting-sort ``rel_ids`` into CSR runs keyed by their endpoint
    node.  Iterating ``rel_ids`` in ascending order keeps every run
    ascending — the adjacency-bucket invariant of ``PropertyGraph``."""
    counts = [0] * n
    for rid in rel_ids:
        counts[endpoint_of[rid]] += 1
    indptr = list(accumulate(counts, initial=0))
    ids = [0] * len(rel_ids)
    cursor = indptr[:-1]  # slicing copies
    for rid in rel_ids:
        node = endpoint_of[rid]
        ids[cursor[node]] = rid
        cursor[node] += 1
    return indptr, ids


def _encode_columns(
    all_props: Sequence[Dict[str, Any]],
    strings: Dict[str, int],
    data: bytearray,
) -> Tuple[List[int], List[int], bytearray]:
    """Shape-group ``all_props`` (the v2 model) and write one random-
    access typed column per (shape, key) into ``data``; returns the
    shape/row membership columns and the column directory."""
    shape_ids: Dict[Tuple[Tuple[int, int], ...], int] = {}
    shapes: List[Tuple[Tuple[int, int], ...]] = []
    shape_keys: List[List[str]] = []
    groups: List[List[Dict[str, Any]]] = []
    shape_col: List[int] = []
    row_col: List[int] = []
    for props in all_props:
        sig = tuple(
            (_sid(strings, key), _kind_of(value)) for key, value in props.items()
        )
        sid = shape_ids.get(sig)
        if sid is None:
            sid = len(shapes)
            shape_ids[sig] = sid
            shapes.append(sig)
            shape_keys.append(list(props))
            groups.append([])
        row_col.append(len(groups[sid]))
        groups[sid].append(props)
        shape_col.append(sid)

    directory = bytearray(_CRC.pack(len(shapes)))
    for sig, keys, group in zip(shapes, shape_keys, groups):
        directory += _DIR_SHAPE.pack(len(sig), len(group))
        for key, (key_sid, kind) in zip(keys, sig):
            a = b = c = 0
            if kind == _K_NONE:
                pass
            elif kind == _K_STR:
                a = _put_array(data, "I", [_sid(strings, v[key]) for v in group])
            elif kind == _K_INT:
                a = _put_array(data, "q", [v[key] for v in group])
            elif kind == _K_BOOL:
                a = _put_array(data, "B", [1 if v[key] else 0 for v in group])
            elif kind == _K_FLOAT:
                a = _put_array(data, "d", [v[key] for v in group])
            elif kind == _K_INTLIST:
                column = [v[key] for v in group]
                a = _put_array(
                    data,
                    "I",
                    accumulate((len(v) for v in column), initial=0),
                )
                b = _put_array(data, "q", [x for v in column for x in v])
            elif kind == _K_STRLIST:
                column = [v[key] for v in group]
                a = _put_array(
                    data,
                    "I",
                    accumulate((len(v) for v in column), initial=0),
                )
                b = _put_array(
                    data, "I", [_sid(strings, x) for v in column for x in v]
                )
            elif kind == _K_STRDICT:
                column = [v[key] for v in group]
                a = _put_array(
                    data,
                    "I",
                    accumulate((len(v) for v in column), initial=0),
                )
                b = _put_array(
                    data, "I", [_sid(strings, k) for v in column for k in v]
                )
                c = _put_array(
                    data,
                    "I",
                    [_sid(strings, x) for v in column for x in v.values()],
                )
            else:  # _K_NESTED: tagged fallback blob + byte offsets
                blob = bytearray()
                offs = [0]
                for v in group:
                    _write_value(blob, v[key], strings)
                    offs.append(len(blob))
                a = _put_array(data, "I", offs)
                b = _put_bytes(data, bytes(blob))
            directory += _DIR_ENTRY.pack(key_sid, kind, a, b, c)
    return shape_col, row_col, directory


def encode_snapshot_v3(graph: PropertyGraph) -> bytes:
    """Serialise ``graph`` to v3 mmap-able snapshot bytes."""
    strings: Dict[str, int] = {}

    node_values = list(graph._nodes.values())  # insertion order == id order
    n = len(node_values)
    position = {node_id: i for i, node_id in enumerate(graph._nodes)}

    labelset_ids: Dict[FrozenSet[str], int] = {}
    ls_member_rows: List[List[int]] = []
    node_ls: List[int] = []
    for node in node_values:
        labelset = node.labels
        lsid = labelset_ids.get(labelset)
        if lsid is None:
            lsid = len(ls_member_rows)
            labelset_ids[labelset] = lsid
            ls_member_rows.append([_sid(strings, label) for label in sorted(labelset)])
        node_ls.append(lsid)

    rels = list(graph._rels.values())
    m = len(rels)
    if n >= _U32_MAX or m >= _U32_MAX:
        raise StorageError("graph too large for a v3 snapshot (u32 id overflow)")
    type_ids: Dict[str, int] = {}
    type_sids: List[int] = []
    rel_typeid: List[int] = []
    for rel in rels:
        tid = type_ids.get(rel.type)
        if tid is None:
            tid = len(type_ids)
            type_ids[rel.type] = tid
            type_sids.append(_sid(strings, rel.type))
        rel_typeid.append(tid)
    rel_start = [position[rel.start_id] for rel in rels]
    rel_end = [position[rel.end_id] for rel in rels]
    type_count = len(type_ids)
    type_counts = [0] * type_count
    for tid in rel_typeid:
        type_counts[tid] += 1

    # CSR: flat forward/reverse plus one forward/reverse pair per type
    all_rids = range(m)
    per_type: List[List[int]] = [[] for _ in range(type_count)]
    for rid, tid in enumerate(rel_typeid):
        per_type[tid].append(rid)
    csr = array("I")
    for indptr_or_ids in _csr(n, rel_start, all_rids) + _csr(n, rel_end, all_rids):
        csr.extend(indptr_or_ids)
    for rids in per_type:
        for indptr_or_ids in _csr(n, rel_start, rids) + _csr(n, rel_end, rids):
            csr.extend(indptr_or_ids)
    if not _LITTLE:
        csr.byteswap()

    node_data = bytearray()
    node_shape, node_row, node_dir = _encode_columns(
        [node.properties for node in node_values], strings, node_data
    )
    rel_data = bytearray()
    rel_shape, rel_row, rel_dir = _encode_columns(
        [rel.properties for rel in rels], strings, rel_data
    )

    index_pairs = [
        (_sid(strings, label), _sid(strings, key))
        for label, key in graph.indexes.indexes()
    ]

    # strings last: every earlier stage may have added table entries
    str_blob = bytearray()
    str_offs = [0]
    for value in strings:  # dict preserves first-seen (== id) order
        str_blob += value.encode("utf-8")
        str_offs.append(len(str_blob))

    ls_offs = list(accumulate((len(row) for row in ls_member_rows), initial=0))
    ls_members = [sid for row in ls_member_rows for sid in row]

    def u32(values) -> bytes:
        column = array("I", values)
        if not _LITTLE:
            column.byteswap()
        return column.tobytes()

    def u64(values) -> bytes:
        column = array("Q", values)
        if not _LITTLE:
            column.byteswap()
        return column.tobytes()

    reltype_rows: List[int] = []
    for sid, count in zip(type_sids, type_counts):
        reltype_rows.append(sid)
        reltype_rows.append(count)
    index_rows: List[int] = []
    for label_sid, key_sid in index_pairs:
        index_rows.append(label_sid)
        index_rows.append(key_sid)

    sections: List[Tuple[int, bytes]] = [
        (
            _T_META,
            _META.pack(n, m, len(strings), len(ls_member_rows), type_count, len(index_pairs)),
        ),
        (_T_STR_OFFS, u64(str_offs)),
        (_T_STR_BLOB, bytes(str_blob)),
        (_T_LS_OFFS, u32(ls_offs)),
        (_T_LS_MEMBERS, u32(ls_members)),
        (_T_NODE_LS, u32(node_ls)),
        (_T_RELTYPES, u32(reltype_rows)),
        (_T_REL_TYPEID, u32(rel_typeid)),
        (_T_REL_START, u32(rel_start)),
        (_T_REL_END, u32(rel_end)),
        (_T_CSR, csr.tobytes()),
        (_T_NODE_SHAPE, u32(node_shape)),
        (_T_NODE_ROW, u32(node_row)),
        (_T_NODE_PROP_DIR, bytes(node_dir)),
        (_T_NODE_PROP_DATA, bytes(node_data)),
        (_T_REL_SHAPE, u32(rel_shape)),
        (_T_REL_ROW, u32(rel_row)),
        (_T_REL_PROP_DIR, bytes(rel_dir)),
        (_T_REL_PROP_DATA, bytes(rel_data)),
        (_T_INDEXES, u32(index_rows)),
    ]

    table_size = _HEADER.size + _SECTION_V3.size * len(sections)
    pos = table_size + _CRC.size
    placed: List[Tuple[int, int, int]] = []  # tag, offset, length
    for tag, payload in sections:
        pos = (pos + 7) & ~7  # 8-align every section
        placed.append((tag, pos, len(payload)))
        pos += len(payload)

    out = bytearray(pos)
    out[0 : _HEADER.size] = _HEADER.pack(
        SNAPSHOT_MAGIC, SNAPSHOT_VERSION_V3, 0, len(sections)
    )
    cursor = _HEADER.size
    for tag, offset, length in placed:
        out[cursor : cursor + _SECTION_V3.size] = _SECTION_V3.pack(
            tag, 0, offset, length
        )
        cursor += _SECTION_V3.size
    out[table_size : table_size + _CRC.size] = _CRC.pack(
        zlib.crc32(bytes(out[:table_size])) & 0xFFFFFFFF
    )
    for (_tag, offset, _length), (_tag2, payload) in zip(placed, sections):
        out[offset : offset + len(payload)] = payload
    return bytes(out)


# ---------------------------------------------------------------------------
# opening / decoding
# ---------------------------------------------------------------------------


def _parse(view: memoryview, path: Optional[str], closer) -> ArrayGraph:
    size = len(view)
    if size < _HEADER.size:
        raise StorageError("snapshot is truncated: missing header")
    magic, version, _flags, section_count = _HEADER.unpack_from(view, 0)
    if magic != SNAPSHOT_MAGIC:
        raise StorageError("not a Tabby binary snapshot (bad magic)")
    if version != SNAPSHOT_VERSION_V3:
        raise StorageError(
            f"not a v3 snapshot (format version {version}); "
            f"use load_graph for v1/v2 files"
        )
    table_size = _HEADER.size + _SECTION_V3.size * section_count
    if table_size + _CRC.size > size:
        raise StorageError("snapshot is truncated: incomplete section table")
    (stored_crc,) = _CRC.unpack_from(view, table_size)
    if zlib.crc32(bytes(view[:table_size])) & 0xFFFFFFFF != stored_crc:
        raise StorageError(
            "snapshot header checksum mismatch: the section table is corrupt, "
            "the file is truncated, or a non-v3 body carries a v3 header"
        )
    sections: Dict[int, Tuple[int, int]] = {}
    cursor = _HEADER.size
    for _ in range(section_count):
        tag, _reserved, offset, length = _SECTION_V3.unpack_from(view, cursor)
        cursor += _SECTION_V3.size
        name = _SECTION_NAMES_V3.get(tag, tag)
        if offset + length > size:
            raise StorageError(f"snapshot is truncated inside section {name}")
        if tag in sections:
            raise StorageError(f"snapshot has a duplicate section {name}")
        sections[tag] = (offset, length)
    for tag in _REQUIRED_V3:
        if tag not in sections:
            raise StorageError(
                f"snapshot is missing section {_SECTION_NAMES_V3[tag]}"
            )

    def exact(tag: int, expected: int) -> int:
        offset, length = sections[tag]
        if length != expected:
            raise StorageError(
                f"section {_SECTION_NAMES_V3[tag]} has length {length}, "
                f"expected {expected}: the snapshot is corrupt or truncated"
            )
        return offset

    meta_off = exact(_T_META, _META.size)
    n, m, string_count, labelset_count, type_count, index_count = _META.unpack_from(
        view, meta_off
    )
    if n >= _U32_MAX or m >= _U32_MAX:
        raise StorageError("snapshot META section is corrupt (id overflow)")

    str_offs = _cast(view, exact(_T_STR_OFFS, 8 * (string_count + 1)), string_count + 1, "Q")
    blob_off, blob_len = sections[_T_STR_BLOB]
    if string_count and (str_offs[0] != 0 or str_offs[string_count] != blob_len):
        raise StorageError("snapshot string table does not cover its blob")
    strings = _LazyStrings(view[blob_off : blob_off + blob_len], str_offs)

    ls_offs = _cast(view, exact(_T_LS_OFFS, 4 * (labelset_count + 1)), labelset_count + 1, "I")
    member_off, member_len = sections[_T_LS_MEMBERS]
    if member_len != 4 * ls_offs[labelset_count]:
        raise StorageError("snapshot labelset members do not match their offsets")
    ls_members = _cast(view, member_off, ls_offs[labelset_count], "I")
    labelsets = _LazyLabelsets(strings, ls_offs, ls_members)

    node_ls = _cast(view, exact(_T_NODE_LS, 4 * n), n, "I")

    reltypes = _cast(view, exact(_T_RELTYPES, 8 * type_count), 2 * type_count, "I")
    type_names = [strings[reltypes[2 * t]] for t in range(type_count)]
    type_counts = [reltypes[2 * t + 1] for t in range(type_count)]
    if sum(type_counts) != m:
        raise StorageError(
            "snapshot RELTYPES counts do not sum to the relationship count"
        )
    if len(set(type_names)) != type_count:
        raise StorageError("snapshot RELTYPES section has duplicate types")

    rel_typeid = _cast(view, exact(_T_REL_TYPEID, 4 * m), m, "I")
    rel_start = _cast(view, exact(_T_REL_START, 4 * m), m, "I")
    rel_end = _cast(view, exact(_T_REL_END, 4 * m), m, "I")

    csr_entries = (2 * type_count + 2) * (n + 1) + 4 * m
    csr_off = exact(_T_CSR, 4 * csr_entries)
    cursor = csr_off

    def take(count: int):
        nonlocal cursor
        column = _cast(view, cursor, count, "I")
        cursor += 4 * count
        return column

    flat_out_indptr = take(n + 1)
    flat_out_ids = take(m)
    flat_in_indptr = take(n + 1)
    flat_in_ids = take(m)
    typed_out_indptr, typed_out_ids = [], []
    typed_in_indptr, typed_in_ids = [], []
    for t in range(type_count):
        typed_out_indptr.append(take(n + 1))
        typed_out_ids.append(take(type_counts[t]))
        typed_in_indptr.append(take(n + 1))
        typed_in_ids.append(take(type_counts[t]))
    if m and (flat_out_indptr[n] != m or flat_in_indptr[n] != m):
        raise StorageError("snapshot CSR index does not cover every relationship")
    adjacency = Adjacency(
        flat_out_indptr,
        flat_out_ids,
        flat_in_indptr,
        flat_in_ids,
        typed_out_indptr,
        typed_out_ids,
        typed_in_indptr,
        typed_in_ids,
    )

    def prop_table(dir_tag: int, data_tag: int, shape_tag: int, row_tag: int, count: int):
        dir_off, dir_len = sections[dir_tag]
        data_off, data_len = sections[data_tag]
        shapes = _parse_prop_dir(view[dir_off : dir_off + dir_len], strings)
        return _PropTable(
            shapes,
            _cast(view, exact(shape_tag, 4 * count), count, "I"),
            _cast(view, exact(row_tag, 4 * count), count, "I"),
            view[data_off : data_off + data_len],
            strings,
            count,
        )

    node_props = prop_table(
        _T_NODE_PROP_DIR, _T_NODE_PROP_DATA, _T_NODE_SHAPE, _T_NODE_ROW, n
    )
    rel_props = prop_table(
        _T_REL_PROP_DIR, _T_REL_PROP_DATA, _T_REL_SHAPE, _T_REL_ROW, m
    )

    idx = _cast(view, exact(_T_INDEXES, 8 * index_count), 2 * index_count, "I")
    index_pairs = [
        (strings[idx[2 * i]], strings[idx[2 * i + 1]]) for i in range(index_count)
    ]

    return ArrayGraph(
        path=path,
        strings=strings,
        labelsets=labelsets,
        node_ls=node_ls,
        type_names=type_names,
        type_counts=type_counts,
        rel_typeid=rel_typeid,
        rel_start=rel_start,
        rel_end=rel_end,
        adjacency=adjacency,
        node_props=node_props,
        rel_props=rel_props,
        index_pairs=index_pairs,
        closer=closer,
    )


def _parse_prop_dir(directory: memoryview, strings: _LazyStrings) -> List[_Shape]:
    if len(directory) < _CRC.size:
        raise StorageError("snapshot property directory is truncated")
    (shape_count,) = _CRC.unpack_from(directory, 0)
    cursor = _CRC.size
    shapes: List[_Shape] = []
    for _ in range(shape_count):
        key_count, rows = _DIR_SHAPE.unpack_from(directory, cursor)
        cursor += _DIR_SHAPE.size
        keys: List[str] = []
        cols: Dict[str, _Column] = {}
        for _ in range(key_count):
            key_sid, kind, a, b, c = _DIR_ENTRY.unpack_from(directory, cursor)
            cursor += _DIR_ENTRY.size
            if kind > _K_NESTED:
                raise StorageError(f"unknown property column kind {kind}")
            key = strings[key_sid]
            keys.append(key)
            cols[key] = _Column(kind, a, b, c)
        shapes.append(_Shape(tuple(keys), rows, cols))
    return shapes


def _build_view(view: memoryview, path: Optional[str], closer=None) -> ArrayGraph:
    try:
        return _parse(view, path, closer)
    except StorageError:
        raise
    except (struct.error, IndexError, ValueError, OverflowError) as exc:
        raise StorageError(f"corrupt v3 snapshot: {exc}") from exc


def view_snapshot(data: bytes, path: Optional[str] = None) -> ArrayGraph:
    """An :class:`ArrayGraph` over in-memory v3 snapshot bytes."""
    return _build_view(memoryview(data), path)


def open_snapshot(path: str) -> ArrayGraph:
    """mmap a v3 snapshot file and return the zero-copy view.

    Only the header, section table and column directories are touched;
    everything else pages in on demand, and every process opening the
    same file shares those pages through the OS page cache.  The file
    descriptor is closed immediately after mapping (the mapping keeps
    the pages alive).
    """
    try:
        fh = open(path, "rb")
    except OSError as exc:
        raise StorageError(f"cannot read graph from {path}: {exc}") from exc
    try:
        try:
            mapped = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError):
            # empty or unmappable file: fall back to a plain read, which
            # yields the same structured validation errors
            fh.seek(0)
            return view_snapshot(fh.read(), path=path)
    finally:
        fh.close()
    return _build_view(memoryview(mapped), path, closer=mapped.close)


def decode_snapshot_v3(data: bytes) -> PropertyGraph:
    """Materialise v3 snapshot bytes into a mutable ``PropertyGraph``
    (the ``load_graph`` path) — fingerprint-identical to the v2 decode
    of the same graph."""
    view = view_snapshot(data)
    view._strings.decode_all()  # bulk path; per-id decode would also work
    return view.materialize()

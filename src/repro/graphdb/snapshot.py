"""Binary columnar graph snapshots (format v2).

The legacy v1 snapshot (:mod:`repro.graphdb.storage`) is gzip-JSON: a
row per entity, re-parsed, re-validated and re-indexed one ``add_*``
call at a time on every load.  That made warm starts — the paper's
§IV-F re-queryability workflow, where one persisted CPG serves many
chain searches and Cypher sessions — the dominant cost for large
graphs.  Format v2 stores the same information *columnar*:

``TABBYCPG`` magic + version/flags header, then five sections, each
framed as ``(tag, crc32, raw_len, stored_len)`` with the payload
zlib-compressed whenever that helps (``stored_len == raw_len`` marks an
uncompressed section):

* **STRINGS** — one deduplicated table of every label, relationship
  type, property key and string property value.  Loaded once, interned
  via :func:`sys.intern` (bounded length), and referenced everywhere
  else by integer id, so a loaded graph shares one object per distinct
  string instead of one per occurrence.
* **LABELSETS** — the distinct label *combinations* as sorted string-id
  rows; nodes reference a labelset by id and the loader materialises
  exactly one frozenset per combination (the in-memory pool of
  :class:`~repro.graphdb.graph.PropertyGraph`).
* **NODES** — node count, a struct-packed labelset-id column, then a
  shape-grouped property block.  Node ids are implicit: position == id,
  which is precisely the dense renumbering the v1 loader has always
  performed.
* **RELS** — relationship count, struct-packed type-id / start / end
  columns (start/end are dense node positions, i.e. final node ids),
  then a shape-grouped property block.
* **INDEXES** — the declared ``(label, key)`` property indexes as
  string-id pairs; contents are rebuilt by the batch backfill of the
  trusted bulk loader, which is both faster and impossible to desync.

Property maps are stored *columnar by shape*.  A shape is an entity's
``(property key, value kind)`` signature; CPG graphs have only a
handful (every ``Method`` node looks like every other ``Method`` node),
so grouping entities by shape turns 50k near-identical little maps
into a few dozen homogeneous columns.  Each column holds one key's
values for every entity of one shape and is encoded by kind: bools,
zigzag ints and string-table ids as struct-packed integer columns,
floats as raw little-endian IEEE-754 doubles, int and string lists as
a lengths column plus one flattened column, and anything else (nested
dicts, mixed lists, over-wide ints) as a tagged varint stream — the
compact fallback encoding of the JSON-scalar value model enforced by
``_check_property_value``.  The decoder therefore reassembles property
maps with bulk C-level operations (``array``, ``zip``, ``dict(zip)``)
instead of a per-value interpreter loop, which is where the v2 load
speedup comes from.

Loading goes through :func:`repro.graphdb.graph._bulk_load_columns` —
the columnar variant of the *trusted* bulk loader that skips
per-property re-validation (the writer only ever serialises values
that already passed validation at graph-build time) and restores
adjacency buckets, relationship-type counts and all indexes from the
columns with whole-structure C-level construction.  Section checksums
mean a truncated or corrupted file fails with an actionable
:class:`StorageError` instead of producing a garbage graph.
"""

from __future__ import annotations

import hashlib
import struct
import sys
import zlib
from array import array
from collections import Counter
from itertools import accumulate, repeat
from typing import Any, Dict, FrozenSet, List, Sequence, Tuple

from repro.errors import GraphError, StorageError
from repro.graphdb.graph import PropertyGraph, _bulk_load_columns

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "encode_snapshot",
    "decode_snapshot",
    "graph_fingerprint",
    "fingerprint_digest",
]

SNAPSHOT_MAGIC = b"TABBYCPG"
SNAPSHOT_VERSION = 2

_HEADER = struct.Struct("<8sHHI")  # magic, version, flags, section count
_SECTION = struct.Struct("<BIQQ")  # tag, crc32, raw_len, stored_len
_DOUBLE = struct.Struct("<d")

_TAG_STRINGS = 1
_TAG_LABELSETS = 2
_TAG_NODES = 3
_TAG_RELS = 4
_TAG_INDEXES = 5
_REQUIRED_TAGS = (_TAG_STRINGS, _TAG_LABELSETS, _TAG_NODES, _TAG_RELS, _TAG_INDEXES)
_SECTION_NAMES = {
    _TAG_STRINGS: "STRINGS",
    _TAG_LABELSETS: "LABELSETS",
    _TAG_NODES: "NODES",
    _TAG_RELS: "RELS",
    _TAG_INDEXES: "INDEXES",
}

# value tags of the fallback (nested) property encoding
_V_NONE, _V_TRUE, _V_FALSE, _V_INT, _V_FLOAT, _V_STR, _V_LIST, _V_DICT = range(8)

# column kinds of the shape-grouped property encoding
(
    _K_NONE,
    _K_BOOL,
    _K_INT,
    _K_FLOAT,
    _K_STR,
    _K_INTLIST,
    _K_STRLIST,
    _K_STRDICT,
    _K_NESTED,
) = range(9)

#: zigzag of ints in this range fits a struct-packed (<= 8 byte) column
_I63 = 1 << 63

_BOOLS = (False, True)

#: strings longer than this are deduplicated via the table but not
#: sys.intern'd (interned strings live for the rest of the process)
_INTERN_MAX = 512

_WIDTH_CODES = {1: "B", 2: "H", 4: "I", 8: "Q"}


# ---------------------------------------------------------------------------
# primitives
# ---------------------------------------------------------------------------


def _write_varint(out: bytearray, value: int) -> None:
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def _write_packed(out: bytearray, values: List[int]) -> None:
    """A fixed-width little-endian integer column: width byte + data."""
    top = max(values, default=0)
    width = 1 if top < 1 << 8 else 2 if top < 1 << 16 else 4 if top < 1 << 32 else 8
    out.append(width)
    column = array(_WIDTH_CODES[width], values)
    if sys.byteorder == "big":
        column.byteswap()
    out += column.tobytes()


def _read_packed(buf: bytes, pos: int, count: int) -> Tuple[array, int]:
    width = buf[pos]
    pos += 1
    code = _WIDTH_CODES.get(width)
    if code is None:
        raise StorageError(f"invalid column width {width}")
    nbytes = width * count
    column = array(code)
    column.frombytes(buf[pos : pos + nbytes])
    if len(column) != count:
        raise StorageError("truncated integer column")
    if sys.byteorder == "big":
        column.byteswap()
    return column, pos + nbytes


def _sid(table: Dict[str, int], value: str) -> int:
    sid = table.get(value)
    if sid is None:
        sid = len(table)
        table[value] = sid
    return sid


def _write_value(out: bytearray, value: Any, strings: Dict[str, int]) -> None:
    if value is None:
        out.append(_V_NONE)
    elif isinstance(value, bool):
        out.append(_V_TRUE if value else _V_FALSE)
    elif isinstance(value, int):
        out.append(_V_INT)
        _write_varint(out, value * 2 if value >= 0 else -value * 2 - 1)
    elif isinstance(value, float):
        out.append(_V_FLOAT)
        out += _DOUBLE.pack(value)
    elif isinstance(value, str):
        out.append(_V_STR)
        _write_varint(out, _sid(strings, value))
    elif isinstance(value, (list, tuple)):
        out.append(_V_LIST)
        _write_varint(out, len(value))
        for item in value:
            _write_value(out, item, strings)
    elif isinstance(value, dict):
        out.append(_V_DICT)
        _write_varint(out, len(value))
        for key, item in value.items():
            _write_varint(out, _sid(strings, key))
            _write_value(out, item, strings)
    else:
        raise StorageError(
            f"unsupported property value type for snapshot: {type(value).__name__}"
        )


def _make_readers(buf: bytes, strings: List[str]):
    """Varint / fallback-value readers closed over one buffer."""

    unpack_double = _DOUBLE.unpack_from

    def read_varint(pos: int) -> Tuple[int, int]:
        b = buf[pos]
        pos += 1
        if b < 0x80:
            return b, pos
        result = b & 0x7F
        shift = 7
        while True:
            b = buf[pos]
            pos += 1
            result |= (b & 0x7F) << shift
            if b < 0x80:
                return result, pos
            shift += 7

    def read_value(pos: int) -> Tuple[Any, int]:
        tag = buf[pos]
        pos += 1
        if tag == _V_STR:
            sid, pos = read_varint(pos)
            return strings[sid], pos
        if tag == _V_INT:
            z, pos = read_varint(pos)
            return (z >> 1) ^ -(z & 1), pos
        if tag == _V_NONE:
            return None, pos
        if tag == _V_TRUE:
            return True, pos
        if tag == _V_FALSE:
            return False, pos
        if tag == _V_FLOAT:
            return unpack_double(buf, pos)[0], pos + 8
        if tag == _V_LIST:
            count, pos = read_varint(pos)
            items = []
            append = items.append
            for _ in range(count):
                item, pos = read_value(pos)
                append(item)
            return items, pos
        if tag == _V_DICT:
            count, pos = read_varint(pos)
            nested: Dict[str, Any] = {}
            for _ in range(count):
                sid, pos = read_varint(pos)
                item, pos = read_value(pos)
                nested[strings[sid]] = item
            return nested, pos
        raise StorageError(f"unknown property value tag {tag}")

    return read_varint, read_value


#: property-map builders compiled per column count (see _rows_to_maps)
_ROW_BUILDERS: Dict[int, Any] = {}

#: shapes wider than this fall back to dict(zip(keys, row))
_ROW_BUILDER_MAX_WIDTH = 32


def _rows_to_maps(keys: Tuple[str, ...], cols: List[Sequence[Any]]) -> List[Dict[str, Any]]:
    """One property dict per row of ``zip(*cols)``.

    A dict *display* with the keys bound to locals builds a small dict
    2-4x faster than ``dict(zip(keys, row))``, but needs the column
    count at compile time — so builders are compiled once per width and
    cached (a CPG has a handful of shapes, so a handful of widths).
    """
    width = len(keys)
    if width > _ROW_BUILDER_MAX_WIDTH:
        return [dict(zip(keys, row)) for row in zip(*cols)]
    builder = _ROW_BUILDERS.get(width)
    if builder is None:
        key_args = ", ".join(f"k{i}" for i in range(width))
        values = ", ".join(f"v{i}" for i in range(width))
        items = ", ".join(f"k{i}: v{i}" for i in range(width))
        source = (
            "def _build(k0):\n"
            "    def rows(cols):\n"
            "        return [{k0: v0} for v0 in cols[0]]\n"
            "    return rows\n"
            if width == 1
            else f"def _build({key_args}):\n"
            f"    def rows(cols):\n"
            f"        return [{{{items}}} for ({values},) in zip(*cols)]\n"
            f"    return rows\n"
        )
        namespace: Dict[str, Any] = {}
        exec(source, namespace)
        builder = namespace["_build"]
        _ROW_BUILDERS[width] = builder
    return builder(*keys)(cols)


def _kind_of(value: Any) -> int:
    """The column kind a value belongs to (see the module docstring)."""
    kind = type(value)
    if kind is str:
        return _K_STR
    if kind is bool:
        return _K_BOOL
    if kind is int:
        return _K_INT if -_I63 <= value < _I63 else _K_NESTED
    if kind is float:
        return _K_FLOAT
    if value is None:
        return _K_NONE
    if kind is list or kind is tuple:
        all_int = all_str = True
        for item in value:
            t = type(item)
            if t is int and -_I63 <= item < _I63:
                all_str = False
            elif t is str:
                all_int = False
            else:
                return _K_NESTED
        if all_int:  # including the empty list
            return _K_INTLIST
        return _K_STRLIST if all_str else _K_NESTED
    if kind is dict:
        for k, v in value.items():
            if type(k) is not str or type(v) is not str:
                return _K_NESTED
        return _K_STRDICT
    if isinstance(value, (bool, int, float, str, list, tuple, dict)):
        return _K_NESTED  # exotic subclasses: tagged fallback
    raise StorageError(
        f"unsupported property value type for snapshot: {type(value).__name__}"
    )


def _encode_props_block(
    out: bytearray, all_props: Sequence[Dict[str, Any]], strings: Dict[str, int]
) -> None:
    """Group ``all_props`` by shape and write one typed column per key."""
    shape_ids: Dict[Tuple[Tuple[int, int], ...], int] = {}
    shapes: List[Tuple[Tuple[int, int], ...]] = []
    shape_keys: List[List[str]] = []  # original key strings, column order
    groups: List[List[Dict[str, Any]]] = []
    shape_col: List[int] = []
    for props in all_props:
        sig = tuple(
            (_sid(strings, key), _kind_of(value)) for key, value in props.items()
        )
        sid = shape_ids.get(sig)
        if sid is None:
            sid = len(shapes)
            shape_ids[sig] = sid
            shapes.append(sig)
            shape_keys.append(list(props))
            groups.append([])
        groups[sid].append(props)
        shape_col.append(sid)

    _write_varint(out, len(shapes))
    for sig in shapes:
        _write_varint(out, len(sig))
        for key_sid, kind in sig:
            _write_varint(out, key_sid)
            out.append(kind)
    _write_packed(out, shape_col)
    for sig, keys, group in zip(shapes, shape_keys, groups):
        for key, (_key_sid, kind) in zip(keys, sig):
            if kind == _K_NONE:
                continue
            column = [props[key] for props in group]
            if kind == _K_STR:
                _write_packed(out, [_sid(strings, v) for v in column])
            elif kind == _K_INT:
                _write_packed(out, [v * 2 if v >= 0 else -v * 2 - 1 for v in column])
            elif kind == _K_BOOL:
                _write_packed(out, [1 if v else 0 for v in column])
            elif kind == _K_FLOAT:
                doubles = array("d", column)
                if sys.byteorder == "big":
                    doubles.byteswap()
                out += doubles.tobytes()
            elif kind == _K_INTLIST:
                _write_packed(out, [len(v) for v in column])
                _write_packed(
                    out,
                    [x * 2 if x >= 0 else -x * 2 - 1 for v in column for x in v],
                )
            elif kind == _K_STRLIST:
                _write_packed(out, [len(v) for v in column])
                _write_packed(out, [_sid(strings, x) for v in column for x in v])
            elif kind == _K_STRDICT:
                _write_packed(out, [len(v) for v in column])
                _write_packed(out, [_sid(strings, k) for v in column for k in v])
                _write_packed(
                    out, [_sid(strings, x) for v in column for x in v.values()]
                )
            else:  # _K_NESTED
                for v in column:
                    _write_value(out, v, strings)


def _decode_props_block(
    buf: bytes, pos: int, entity_count: int, strings: List[str]
) -> Tuple[List[Dict[str, Any]], int]:
    """Rebuild per-entity property maps from the shape-grouped columns.

    Per-shape columns decode with bulk C-level primitives; the only
    per-value Python loop left is the tagged fallback for rare values.
    """
    read_varint, read_value = _make_readers(buf, strings)
    shape_count, pos = read_varint(pos)
    shapes: List[List[Tuple[int, int]]] = []
    for _ in range(shape_count):
        key_count, pos = read_varint(pos)
        sig = []
        for _ in range(key_count):
            key_sid, pos = read_varint(pos)
            kind = buf[pos]
            pos += 1
            sig.append((key_sid, kind))
        shapes.append(sig)
    shape_col, pos = _read_packed(buf, pos, entity_count)
    shape_sizes = Counter(shape_col)  # C-level counting

    per_shape_maps: List[List[Dict[str, Any]]] = []
    for sid, sig in enumerate(shapes):
        n = shape_sizes.get(sid, 0)
        cols: List[Sequence[Any]] = []
        for key_sid, kind in sig:
            if kind == _K_STR:
                col, pos = _read_packed(buf, pos, n)
                cols.append(list(map(strings.__getitem__, col)))
            elif kind == _K_INT:
                col, pos = _read_packed(buf, pos, n)
                cols.append([(z >> 1) ^ -(z & 1) for z in col])
            elif kind == _K_BOOL:
                col, pos = _read_packed(buf, pos, n)
                cols.append([_BOOLS[b] for b in col])
            elif kind == _K_NONE:
                cols.append(repeat(None, n))
            elif kind == _K_FLOAT:
                doubles = array("d")
                doubles.frombytes(buf[pos : pos + 8 * n])
                if len(doubles) != n:
                    raise StorageError("truncated float column")
                if sys.byteorder == "big":
                    doubles.byteswap()
                pos += 8 * n
                cols.append(doubles.tolist())
            elif kind == _K_INTLIST or kind == _K_STRLIST:
                lengths, pos = _read_packed(buf, pos, n)
                flat_col, pos = _read_packed(buf, pos, sum(lengths))
                if kind == _K_INTLIST:
                    flat = [(z >> 1) ^ -(z & 1) for z in flat_col]
                else:
                    flat = list(map(strings.__getitem__, flat_col))
                lists = []
                offset = 0
                for length in lengths:
                    lists.append(flat[offset : offset + length])
                    offset += length
                cols.append(lists)
            elif kind == _K_STRDICT:
                lengths, pos = _read_packed(buf, pos, n)
                total = sum(lengths)
                key_col, pos = _read_packed(buf, pos, total)
                value_col, pos = _read_packed(buf, pos, total)
                flat_keys = list(map(strings.__getitem__, key_col))
                flat_values = list(map(strings.__getitem__, value_col))
                dicts = []
                offset = 0
                for length in lengths:
                    end = offset + length
                    dicts.append(
                        dict(zip(flat_keys[offset:end], flat_values[offset:end]))
                    )
                    offset = end
                cols.append(dicts)
            elif kind == _K_NESTED:
                values = []
                append = values.append
                for _ in range(n):
                    value, pos = read_value(pos)
                    append(value)
                cols.append(values)
            else:
                raise StorageError(f"unknown property column kind {kind}")
        if cols:
            keys = tuple(strings[key_sid] for key_sid, _ in sig)
            per_shape_maps.append(_rows_to_maps(keys, cols))
        else:
            per_shape_maps.append([{} for _ in range(n)])

    # scatter back to entity order: two nested C-level maps, no bytecode.
    # A short result means an exhausted cursor (map() swallows the
    # StopIteration), hence the explicit length check.
    cursors = [iter(maps) for maps in per_shape_maps]
    try:
        result = list(map(next, map(cursors.__getitem__, shape_col)))
    except IndexError as exc:
        raise StorageError("property shape column is inconsistent") from exc
    if len(result) != entity_count:
        raise StorageError("property shape column is inconsistent")
    return result, pos


# ---------------------------------------------------------------------------
# encoding
# ---------------------------------------------------------------------------


def _frame_section(tag: int, payload: bytearray) -> bytes:
    raw = bytes(payload)
    compressed = zlib.compress(raw, 6)
    stored = compressed if len(compressed) < len(raw) else raw
    header = _SECTION.pack(tag, zlib.crc32(stored) & 0xFFFFFFFF, len(raw), len(stored))
    return header + stored


def encode_snapshot(graph: PropertyGraph) -> bytes:
    """Serialise ``graph`` to v2 binary snapshot bytes."""
    strings: Dict[str, int] = {}
    labelset_ids: Dict[FrozenSet[str], int] = {}
    labelset_rows: List[List[int]] = []

    node_labelsets: List[int] = []
    for node in graph._nodes.values():  # insertion order == increasing id
        labelset = node.labels
        lsid = labelset_ids.get(labelset)
        if lsid is None:
            lsid = len(labelset_rows)
            labelset_ids[labelset] = lsid
            labelset_rows.append([_sid(strings, label) for label in sorted(labelset)])
        node_labelsets.append(lsid)

    nodes_payload = bytearray()
    _write_varint(nodes_payload, len(node_labelsets))
    _write_packed(nodes_payload, node_labelsets)
    _encode_props_block(
        nodes_payload,
        [node.properties for node in graph._nodes.values()],
        strings,
    )

    position = {node_id: i for i, node_id in enumerate(graph._nodes)}
    rels = list(graph._rels.values())
    rels_payload = bytearray()
    _write_varint(rels_payload, len(rels))
    _write_packed(rels_payload, [_sid(strings, rel.type) for rel in rels])
    _write_packed(rels_payload, [position[rel.start_id] for rel in rels])
    _write_packed(rels_payload, [position[rel.end_id] for rel in rels])
    _encode_props_block(rels_payload, [rel.properties for rel in rels], strings)

    index_pairs = [
        (_sid(strings, label), _sid(strings, key))
        for label, key in graph.indexes.indexes()
    ]

    labelsets_payload = bytearray()
    _write_varint(labelsets_payload, len(labelset_rows))
    for row in labelset_rows:
        _write_varint(labelsets_payload, len(row))
        for sid in row:
            _write_varint(labelsets_payload, sid)

    indexes_payload = bytearray()
    _write_varint(indexes_payload, len(index_pairs))
    for label_sid, key_sid in index_pairs:
        _write_varint(indexes_payload, label_sid)
        _write_varint(indexes_payload, key_sid)

    # char-length column + one UTF-8 blob: the loader decodes the blob
    # once and slices, instead of decoding per string
    strings_payload = bytearray()
    _write_varint(strings_payload, len(strings))
    _write_packed(strings_payload, [len(value) for value in strings])
    for value in strings:  # dict preserves first-seen (== id) order
        strings_payload += value.encode("utf-8")

    sections = (
        _frame_section(_TAG_STRINGS, strings_payload),
        _frame_section(_TAG_LABELSETS, labelsets_payload),
        _frame_section(_TAG_NODES, nodes_payload),
        _frame_section(_TAG_RELS, rels_payload),
        _frame_section(_TAG_INDEXES, indexes_payload),
    )
    header = _HEADER.pack(SNAPSHOT_MAGIC, SNAPSHOT_VERSION, 0, len(sections))
    return header + b"".join(sections)


# ---------------------------------------------------------------------------
# decoding
# ---------------------------------------------------------------------------


def _split_sections(data: bytes) -> Dict[int, bytes]:
    if len(data) < _HEADER.size:
        raise StorageError("snapshot is truncated: missing header")
    magic, version, _flags, section_count = _HEADER.unpack_from(data, 0)
    if magic != SNAPSHOT_MAGIC:
        raise StorageError("not a Tabby binary snapshot (bad magic)")
    if version != SNAPSHOT_VERSION:
        raise StorageError(
            f"unsupported snapshot format version {version} (this build reads "
            f"v3/v{SNAPSHOT_VERSION} binary and v1 JSON); re-export the graph "
            f"with a matching build or with --format json"
        )
    sections: Dict[int, bytes] = {}
    pos = _HEADER.size
    for _ in range(section_count):
        if pos + _SECTION.size > len(data):
            raise StorageError("snapshot is truncated: incomplete section header")
        tag, crc, raw_len, stored_len = _SECTION.unpack_from(data, pos)
        pos += _SECTION.size
        stored = data[pos : pos + stored_len]
        if len(stored) != stored_len:
            raise StorageError(
                f"snapshot is truncated inside section "
                f"{_SECTION_NAMES.get(tag, tag)}"
            )
        pos += stored_len
        if zlib.crc32(stored) & 0xFFFFFFFF != crc:
            raise StorageError(
                f"checksum mismatch in section {_SECTION_NAMES.get(tag, tag)}: "
                f"the snapshot is corrupt or truncated"
            )
        if stored_len != raw_len:
            try:
                stored = zlib.decompress(stored)
            except zlib.error as exc:
                raise StorageError(
                    f"cannot decompress section "
                    f"{_SECTION_NAMES.get(tag, tag)}: {exc}"
                ) from exc
            if len(stored) != raw_len:
                raise StorageError(
                    f"section {_SECTION_NAMES.get(tag, tag)} decompressed to "
                    f"the wrong length"
                )
        sections[tag] = stored
    if pos != len(data):
        raise StorageError("snapshot has trailing bytes after the last section")
    for tag in _REQUIRED_TAGS:
        if tag not in sections:
            raise StorageError(f"snapshot is missing section {_SECTION_NAMES[tag]}")
    return sections


def decode_snapshot(data: bytes) -> PropertyGraph:
    """Rebuild a graph from v2 snapshot bytes via the trusted bulk loader."""
    sections = _split_sections(data)
    try:
        return _decode_sections(sections)
    except StorageError:
        raise
    except (IndexError, ValueError, OverflowError, UnicodeDecodeError,
            struct.error, GraphError) as exc:
        raise StorageError(f"corrupt snapshot payload: {exc}") from exc


def _decode_sections(sections: Dict[int, bytes]) -> PropertyGraph:
    buf = sections[_TAG_STRINGS]
    read_varint, _ = _make_readers(buf, [])
    count, pos = read_varint(0)
    char_lengths, pos = _read_packed(buf, pos, count)
    text = buf[pos:].decode("utf-8")
    if len(text) != sum(char_lengths):
        raise StorageError("truncated string table")
    intern = sys.intern
    offsets = list(accumulate(char_lengths, initial=0))
    if not char_lengths or max(char_lengths) <= _INTERN_MAX:
        # every string is internable: one C pipeline, no bytecode loop
        strings: List[str] = list(
            map(intern, map(text.__getitem__, map(slice, offsets, offsets[1:])))
        )
    else:
        strings = []
        append_string = strings.append
        for offset, end in zip(offsets, offsets[1:]):
            value = text[offset:end]
            append_string(intern(value) if end - offset <= _INTERN_MAX else value)

    buf = sections[_TAG_LABELSETS]
    read_varint, _ = _make_readers(buf, strings)
    count, pos = read_varint(0)
    labelsets: List[FrozenSet[str]] = []
    for _ in range(count):
        size, pos = read_varint(pos)
        labels = []
        for _ in range(size):
            sid, pos = read_varint(pos)
            labels.append(strings[sid])
        labelsets.append(frozenset(labels))

    buf = sections[_TAG_NODES]
    read_varint, _ = _make_readers(buf, strings)
    node_count, pos = read_varint(0)
    node_labelset_col, pos = _read_packed(buf, pos, node_count)
    node_props, pos = _decode_props_block(buf, pos, node_count, strings)

    buf = sections[_TAG_RELS]
    read_varint, _ = _make_readers(buf, strings)
    rel_count, pos = read_varint(0)
    rel_types, pos = _read_packed(buf, pos, rel_count)
    rel_starts, pos = _read_packed(buf, pos, rel_count)
    rel_ends, pos = _read_packed(buf, pos, rel_count)
    if rel_count:
        if max(rel_starts) >= node_count or max(rel_ends) >= node_count:
            raise StorageError(
                "snapshot relationship references a node beyond the node count"
            )
    rel_props, pos = _decode_props_block(buf, pos, rel_count, strings)

    buf = sections[_TAG_INDEXES]
    read_varint, _ = _make_readers(buf, strings)
    count, pos = read_varint(0)
    index_pairs: List[Tuple[str, str]] = []
    for _ in range(count):
        label_sid, pos = read_varint(pos)
        key_sid, pos = read_varint(pos)
        index_pairs.append((strings[label_sid], strings[key_sid]))

    return _bulk_load_columns(
        PropertyGraph(),
        index_pairs,
        labelsets,
        node_labelset_col,
        node_props,
        list(map(strings.__getitem__, rel_types)),
        rel_starts,
        rel_ends,
        rel_props,
    )


# ---------------------------------------------------------------------------
# structural fingerprint (tests / benchmarks)
# ---------------------------------------------------------------------------


def graph_fingerprint(graph: PropertyGraph) -> Dict[str, Any]:
    """The complete observable state of a graph, as plain comparables.

    Covers everything the differential gate cares about: entities with
    labels and property maps, declared indexes *and their contents*,
    the label index, flat and type-bucketed adjacency, relationship-
    type counts, and the id counters.  Two graphs with equal
    fingerprints are interchangeable for every query, traversal and
    chain search.
    """
    indexes = graph.indexes
    return {
        "nodes": [
            (node.id, sorted(node.labels), node.properties)
            for node in graph._nodes.values()
        ],
        "relationships": [
            (rel.id, rel.type, rel.start_id, rel.end_id, rel.properties)
            for rel in graph._rels.values()
        ],
        "next_ids": (graph._next_node_id, graph._next_rel_id),
        "out": {nid: list(ids) for nid, ids in graph._out.items()},
        "in": {nid: list(ids) for nid, ids in graph._in.items()},
        "out_by_type": {
            nid: {t: list(b) for t, b in buckets.items()}
            for nid, buckets in graph._out_by_type.items()
        },
        "in_by_type": {
            nid: {t: list(b) for t, b in buckets.items()}
            for nid, buckets in graph._in_by_type.items()
        },
        "rel_type_counts": dict(graph._rel_type_counts),
        "label_index": {
            label: sorted(ids) for label, ids in indexes._by_label.items() if ids
        },
        "declared_indexes": indexes.indexes(),
        "property_indexes": {
            pair: sorted(
                ((repr(value), sorted(ids)) for value, ids in table.items() if ids),
            )
            for pair, table in indexes._property_indexes.items()
        },
    }


def _canonical(obj: Any) -> str:
    """A deterministic serialization that depends only on value
    equality, not on dict insertion order.

    ``repr`` of two ``==`` dicts can differ (a COW-committed graph and
    its reloaded base snapshot build their dicts in different orders),
    so the digest must sort dict items; sequences keep their order.
    """
    if isinstance(obj, dict):
        items = sorted(obj.items(), key=lambda kv: repr(kv[0]))
        return "{" + ",".join(
            f"{_canonical(k)}:{_canonical(v)}" for k, v in items
        ) + "}"
    if isinstance(obj, tuple):
        return "(" + ",".join(_canonical(x) for x in obj) + ")"
    if isinstance(obj, list):
        return "[" + ",".join(_canonical(x) for x in obj) + "]"
    if isinstance(obj, (set, frozenset)):
        return "{" + ",".join(sorted(_canonical(x) for x in obj)) + "}"
    return repr(obj)


def fingerprint_digest(graph: PropertyGraph) -> str:
    """SHA-256 over the canonical form of :func:`graph_fingerprint`.

    Memoised on *frozen* graphs (committed MVCC versions): a frozen
    graph can never change, so the digest is computed at most once per
    version and "invalidation on commit" falls out of the design — a
    commit publishes a fresh graph object with no cached digest.
    Mutable graphs are never memoised.
    """
    cached = getattr(graph, "_fingerprint_digest", None)
    if cached is not None:
        return cached
    digest = hashlib.sha256(
        _canonical(graph_fingerprint(graph)).encode("utf-8")
    ).hexdigest()
    if getattr(graph, "_frozen", False):
        graph._fingerprint_digest = digest
    return digest

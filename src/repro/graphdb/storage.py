"""Persistence for property graphs.

Three on-disk formats, one read path:

* **v1 (json)** — a gzip/plain JSON document with ``nodes``,
  ``relationships`` and ``indexes`` sections.  Byte-stable: the JSON
  emitted today diffs cleanly against snapshots written by any earlier
  build, which is why ``--format json`` remains available.
* **v2 (binary)** — the columnar snapshot of
  :mod:`repro.graphdb.snapshot`: string-table deduplication,
  struct-packed id columns, checksummed sections, and a trusted bulk
  load that skips per-property re-validation.
* **v3** — the page-structured zero-copy snapshot of
  :mod:`repro.graphdb.snapshot_v3`: fixed-width little-endian columns,
  precomputed CSR adjacency and a column directory, laid out so a
  reader can ``mmap`` the file and traverse in place.  The default for
  new saves; :func:`open_graph` opens it without decoding.

v1 and v2 stay readable forever: :func:`load_graph` auto-detects the
format from content (gzip wrapping included), so every snapshot ever
written keeps loading; callers never pass a format on read.  This is
the analogue of a Neo4j database directory: Tabby builds the CPG once,
persists it, and researchers re-query it across sessions (paper §IV-F
— the re-queryability advantage over GadgetInspector/Serianalyzer).
"""

from __future__ import annotations

import gzip
import json
import os
import struct
import sys
import zlib
from typing import Any, Dict, Optional, Union

from repro.errors import StorageError
from repro.graphdb.arraygraph import ArrayGraph
from repro.graphdb.graph import PropertyGraph, _bulk_load
from repro.graphdb.snapshot import (
    SNAPSHOT_MAGIC,
    decode_snapshot,
    encode_snapshot,
)
from repro.graphdb.snapshot_v3 import (
    SNAPSHOT_VERSION_V3,
    decode_snapshot_v3,
    encode_snapshot_v3,
    open_snapshot,
    view_snapshot,
)

__all__ = [
    "save_graph",
    "load_graph",
    "open_graph",
    "graph_to_dict",
    "graph_from_dict",
]

_FORMAT_VERSION = 1
_GZIP_MAGIC = b"\x1f\x8b"

#: suffixes that keep emitting v1 JSON under the default "auto" format,
#: so existing pipelines that name their snapshots *.json(.gz) stay
#: byte-compatible
_JSON_SUFFIXES = (".json", ".json.gz")


def graph_to_dict(graph: PropertyGraph) -> Dict[str, Any]:
    """Serialise a graph to a JSON-compatible dict (the v1 document)."""
    return {
        "format_version": _FORMAT_VERSION,
        "nodes": [
            {"id": n.id, "labels": sorted(n.labels), "properties": n.properties}
            for n in graph.nodes()
        ],
        "relationships": [
            {
                "id": r.id,
                "type": r.type,
                "start": r.start_id,
                "end": r.end_id,
                "properties": r.properties,
            }
            for r in graph.relationships()
        ],
        "indexes": [list(ix) for ix in graph.indexes.indexes()],
    }


def graph_from_dict(data: Dict[str, Any]) -> PropertyGraph:
    """Rebuild a graph from :func:`graph_to_dict` output.

    Node/relationship ids are remapped densely, preserving order.  The
    document is fed through the same trusted bulk loader as the binary
    format: property values are installed without re-validation (the
    writer only emits values that passed validation when the graph was
    built), and indexes/adjacency are backfilled in batch rather than
    one ``add_*`` call per entity.
    """
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise StorageError(f"unsupported graph format version: {version!r}")
    intern = sys.intern
    try:
        id_map: Dict[int, int] = {}
        node_rows = []
        for position, spec in enumerate(data["nodes"]):
            id_map[spec["id"]] = position
            props = spec.get("properties")
            node_rows.append(
                (
                    spec["labels"],
                    {intern(k): v for k, v in props.items()} if props else {},
                )
            )
        rel_rows = []
        for spec in data["relationships"]:
            props = spec.get("properties")
            rel_rows.append(
                (
                    intern(spec["type"]),
                    id_map[spec["start"]],
                    id_map[spec["end"]],
                    {intern(k): v for k, v in props.items()} if props else {},
                )
            )
        indexes = [(label, key) for label, key in data.get("indexes", ())]
    except (KeyError, TypeError, AttributeError) as exc:
        raise StorageError(f"malformed graph document: missing {exc}") from exc
    return _bulk_load(PropertyGraph(), indexes, node_rows, rel_rows)


def _graph_from_dict_checked(data: Dict[str, Any]) -> PropertyGraph:
    """The legacy v1 loader: one validated ``create_*`` call per entity.

    Kept as the differential baseline for :func:`graph_from_dict` — the
    bulk path must produce a structurally identical graph (asserted in
    the test suite); this function is not used on any hot path.
    """
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise StorageError(f"unsupported graph format version: {version!r}")
    graph = PropertyGraph()
    for label, key in data.get("indexes", ()):
        graph.indexes.create_index(label, key)
    id_map: Dict[int, int] = {}
    try:
        for spec in data["nodes"]:
            node = graph.create_node(spec["labels"], spec.get("properties") or {})
            id_map[spec["id"]] = node.id
        for spec in data["relationships"]:
            graph.create_relationship(
                spec["type"],
                id_map[spec["start"]],
                id_map[spec["end"]],
                spec.get("properties") or {},
            )
    except KeyError as exc:
        raise StorageError(f"malformed graph document: missing {exc}") from exc
    return graph


def _resolve_format(path: str, format: Optional[str]) -> str:
    if format in (None, "auto"):
        return "json" if path.endswith(_JSON_SUFFIXES) else "v3"
    if format in ("binary", "v2"):
        return "binary"
    if format in ("json", "v3"):
        return format
    raise StorageError(
        f"unknown snapshot format {format!r} "
        f"(expected 'json', 'binary'/'v2', 'v3' or 'auto')"
    )


def _is_v3_header(head: bytes) -> bool:
    """True when ``head`` starts a v3 snapshot (magic + LE u16 version)."""
    return (
        len(head) >= 10
        and head[:8] == SNAPSHOT_MAGIC
        and struct.unpack_from("<H", head, 8)[0] == SNAPSHOT_VERSION_V3
    )


def save_graph(graph: PropertyGraph, path: str, format: Optional[str] = None) -> None:
    """Write a graph to ``path``.

    ``format`` is ``"json"`` (the byte-stable v1 document; a ``.gz``
    suffix enables gzip), ``"binary"``/``"v2"`` (the v2 columnar
    snapshot, which compresses its own sections), ``"v3"`` (the
    mmap-able zero-copy layout), or ``"auto"``/``None``: v3 unless the
    path ends in ``.json``/``.json.gz``.  :func:`load_graph` reads any
    format regardless of the file name.
    """
    resolved = _resolve_format(path, format)
    try:
        if resolved == "v3":
            with open(path, "wb") as fh:
                fh.write(encode_snapshot_v3(graph))
            return
        if resolved == "binary":
            with open(path, "wb") as fh:
                fh.write(encode_snapshot(graph))
            return
        data = graph_to_dict(graph)
        if path.endswith(".gz"):
            with gzip.open(path, "wt", encoding="utf-8") as fh:
                json.dump(data, fh)
        else:
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(data, fh)
    except OSError as exc:
        raise StorageError(f"cannot write graph to {path}: {exc}") from exc


def load_graph(path: str) -> PropertyGraph:
    """Read a graph previously written by :func:`save_graph` into a
    mutable :class:`PropertyGraph`.

    The format is detected from content, not the file name: gzip
    wrapping is unpeeled first, then the payload is dispatched on the
    snapshot magic plus version (v3 zero-copy layout or v2 columnar),
    falling back to the v1 JSON document.  For the zero-copy open of a
    v3 file — no materialisation — use :func:`open_graph`.
    """
    if not os.path.exists(path):
        raise StorageError(f"graph file not found: {path}")
    try:
        with open(path, "rb") as fh:
            raw = fh.read()
        if raw[:2] == _GZIP_MAGIC:
            raw = gzip.decompress(raw)
    except (OSError, EOFError, zlib.error) as exc:
        raise StorageError(f"cannot read graph from {path}: {exc}") from exc
    if not raw:
        raise StorageError(f"cannot read graph from {path}: file is empty")
    if raw[: len(SNAPSHOT_MAGIC)] == SNAPSHOT_MAGIC:
        if _is_v3_header(raw[:10]):
            return decode_snapshot_v3(raw)
        return decode_snapshot(raw)
    try:
        data = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StorageError(f"cannot read graph from {path}: {exc}") from exc
    return graph_from_dict(data)


def open_graph(path: str) -> Union[ArrayGraph, PropertyGraph]:
    """Open a snapshot for reading, zero-copy when the format allows.

    A v3 file comes back as a read-only mmap-backed
    :class:`~repro.graphdb.arraygraph.ArrayGraph` — O(header) open, one
    physical copy shared by every process that opens the same path.  A
    gzip-wrapped v3 payload becomes an in-memory ``ArrayGraph`` view
    (decompressed once, still lazily decoded); anything else falls back
    to :func:`load_graph` and returns a decoded ``PropertyGraph``.
    Call ``.materialize()`` on the view when a mutable graph is needed.
    """
    if not os.path.exists(path):
        raise StorageError(f"graph file not found: {path}")
    try:
        with open(path, "rb") as fh:
            head = fh.read(10)
    except OSError as exc:
        raise StorageError(f"cannot read graph from {path}: {exc}") from exc
    if _is_v3_header(head):
        return open_snapshot(path)
    if head[:2] == _GZIP_MAGIC:
        try:
            with open(path, "rb") as fh:
                raw = gzip.decompress(fh.read())
        except (OSError, EOFError, zlib.error) as exc:
            raise StorageError(f"cannot read graph from {path}: {exc}") from exc
        if _is_v3_header(raw[:10]):
            return view_snapshot(raw)
    return load_graph(path)

"""Persistence for property graphs.

A graph is stored as a JSON document with ``nodes``, ``relationships``
and ``indexes`` sections.  This is the analogue of a Neo4j database
directory: Tabby builds the CPG once, persists it, and researchers
re-query it across sessions (paper §IV-F — the re-queryability
advantage over GadgetInspector/Serianalyzer).
"""

from __future__ import annotations

import gzip
import json
import os
from typing import Any, Dict

from repro.errors import StorageError
from repro.graphdb.graph import PropertyGraph

__all__ = ["save_graph", "load_graph", "graph_to_dict", "graph_from_dict"]

_FORMAT_VERSION = 1


def graph_to_dict(graph: PropertyGraph) -> Dict[str, Any]:
    """Serialise a graph to a JSON-compatible dict."""
    return {
        "format_version": _FORMAT_VERSION,
        "nodes": [
            {"id": n.id, "labels": sorted(n.labels), "properties": n.properties}
            for n in graph.nodes()
        ],
        "relationships": [
            {
                "id": r.id,
                "type": r.type,
                "start": r.start_id,
                "end": r.end_id,
                "properties": r.properties,
            }
            for r in graph.relationships()
        ],
        "indexes": [list(ix) for ix in graph.indexes.indexes()],
    }


def graph_from_dict(data: Dict[str, Any]) -> PropertyGraph:
    """Rebuild a graph from :func:`graph_to_dict` output.

    Node/relationship ids are remapped densely, preserving order.
    """
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise StorageError(f"unsupported graph format version: {version!r}")
    graph = PropertyGraph()
    for label, key in data.get("indexes", ()):
        graph.indexes.create_index(label, key)
    id_map: Dict[int, int] = {}
    try:
        for spec in data["nodes"]:
            node = graph.create_node(spec["labels"], spec.get("properties") or {})
            id_map[spec["id"]] = node.id
        for spec in data["relationships"]:
            graph.create_relationship(
                spec["type"],
                id_map[spec["start"]],
                id_map[spec["end"]],
                spec.get("properties") or {},
            )
    except KeyError as exc:
        raise StorageError(f"malformed graph document: missing {exc}") from exc
    return graph


def save_graph(graph: PropertyGraph, path: str) -> None:
    """Write a graph to ``path``; ``.gz`` suffix enables compression."""
    data = graph_to_dict(graph)
    try:
        if path.endswith(".gz"):
            with gzip.open(path, "wt", encoding="utf-8") as fh:
                json.dump(data, fh)
        else:
            with open(path, "w", encoding="utf-8") as fh:
                json.dump(data, fh)
    except OSError as exc:
        raise StorageError(f"cannot write graph to {path}: {exc}") from exc


def load_graph(path: str) -> PropertyGraph:
    """Read a graph previously written by :func:`save_graph`."""
    if not os.path.exists(path):
        raise StorageError(f"graph file not found: {path}")
    try:
        if path.endswith(".gz"):
            with gzip.open(path, "rt", encoding="utf-8") as fh:
                data = json.load(fh)
        else:
            with open(path, "r", encoding="utf-8") as fh:
                data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise StorageError(f"cannot read graph from {path}: {exc}") from exc
    return graph_from_dict(data)

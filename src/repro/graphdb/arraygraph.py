"""Read-only array-backed graph view over a v3 snapshot.

:class:`ArrayGraph` implements the read surface of
:class:`~repro.graphdb.graph.PropertyGraph` — lookup, adjacency,
label/property indexes, statistics — directly on top of the fixed-width
columns of a format-v3 snapshot (:mod:`repro.graphdb.snapshot_v3`),
without materialising ``Node``/``Relationship`` objects or adjacency
dicts.  Opening a snapshot is therefore an ``mmap`` plus header
validation; nodes, relationships, property maps and index tables only
come into existence when something touches them.

Design constraints, in order:

* **Observable equivalence.**  Everything a consumer can read must be
  indistinguishable from the same snapshot decoded into a
  ``PropertyGraph``: same entities, same adjacency order (relationship
  ids ascending — the v3 writer lays CSR runs out in id order), and —
  subtler — the same *set iteration order* for index hits.
  ``find_nodes`` order flows from iterating label/property index sets,
  so :meth:`ArrayGraph.indexes` builds its ``IndexManager`` with
  exactly the algorithm of
  :func:`~repro.graphdb.graph._bulk_load_columns` (same elements
  inserted in the same order produce the same iteration order; int
  hashes are unsalted, so this also holds *across processes*).  The
  chain search and query planner consequently produce bit-identical
  results on either representation — asserted differentially in the
  test suite.
* **Laziness.**  ``__init__`` touches nothing beyond what the caller
  already parsed.  Property columns decode on first access of any
  property of that (shape, key); the string table decodes per string;
  the index manager builds on first ``.indexes`` access.
* **Object protocol compatibility.**  :class:`ArrayNode` and
  :class:`ArrayRelationship` subclass ``Node``/``Relationship`` —
  ``traverse`` type-checks its start node and path equality compares
  via ``isinstance`` — but are flyweights: one graph pointer plus the
  identity fields, with ``labels``/``properties`` served as descriptors
  from the columns.

Mutation raises :class:`~repro.errors.GraphError`; writers call
:meth:`ArrayGraph.materialize` to get a plain ``PropertyGraph`` that is
``graph_fingerprint``-identical to the validated v2 decode of the same
graph.
"""

from __future__ import annotations

from array import array
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import (
    GraphError,
    NodeNotFoundError,
    RelationshipNotFoundError,
    StorageError,
)
from repro.graphdb.graph import Node, PropertyGraph, Relationship, _bulk_load_columns
from repro.graphdb.index import IndexManager, _index_key

__all__ = ["ArrayGraph", "ArrayNode", "ArrayRelationship", "Adjacency"]

_MISS = object()


class Adjacency:
    """The CSR adjacency arrays of one snapshot: flat (all types) and
    per-type, each forward (by start node) and reverse (by end node).
    ``*_indptr[nid] : *_indptr[nid + 1]`` slices the relationship-id
    run of one node; runs are ascending, matching the insertion-order
    buckets of ``PropertyGraph``."""

    __slots__ = (
        "flat_out_indptr",
        "flat_out_ids",
        "flat_in_indptr",
        "flat_in_ids",
        "typed_out_indptr",
        "typed_out_ids",
        "typed_in_indptr",
        "typed_in_ids",
    )

    def __init__(
        self,
        flat_out_indptr,
        flat_out_ids,
        flat_in_indptr,
        flat_in_ids,
        typed_out_indptr,
        typed_out_ids,
        typed_in_indptr,
        typed_in_ids,
    ):
        self.flat_out_indptr = flat_out_indptr
        self.flat_out_ids = flat_out_ids
        self.flat_in_indptr = flat_in_indptr
        self.flat_in_ids = flat_in_ids
        self.typed_out_indptr = typed_out_indptr
        self.typed_out_ids = typed_out_ids
        self.typed_in_indptr = typed_in_indptr
        self.typed_in_ids = typed_in_ids


class ArrayNode(Node):
    """Flyweight node over an :class:`ArrayGraph`: stores only the graph
    pointer and its id; labels and properties resolve through the
    columns on access."""

    __slots__ = ("_g",)

    def __new__(cls, graph: "ArrayGraph", node_id: int) -> "ArrayNode":
        self = object.__new__(cls)
        self._g = graph
        self.id = node_id
        return self

    def __init__(self, *_args: Any, **_kwargs: Any) -> None:
        # identity is fully assigned in __new__; Node.__init__ must not run
        pass

    @property
    def labels(self):
        graph = self._g
        return graph._labelsets[graph._node_ls[self.id]]

    @property
    def properties(self) -> Dict[str, Any]:
        return self._g._node_props.map(self.id)

    def has_label(self, label: str) -> bool:
        return label in self.labels

    def get(self, key: str, default: Any = None) -> Any:
        return self._g._node_props.get(self.id, key, default)

    def __getitem__(self, key: str) -> Any:
        value = self._g._node_props.get(self.id, key, _MISS)
        if value is _MISS:
            raise KeyError(f"{self!r} has no property {key!r}")
        return value

    def __contains__(self, key: str) -> bool:
        return self._g._node_props.has(self.id, key)


class ArrayRelationship(Relationship):
    """Flyweight relationship over an :class:`ArrayGraph`.  Type and
    endpoints are resolved eagerly (they are single array reads and sit
    on every traversal hot path); properties stay columnar."""

    __slots__ = ("_g",)

    def __new__(cls, graph: "ArrayGraph", rel_id: int) -> "ArrayRelationship":
        self = object.__new__(cls)
        self._g = graph
        self.id = rel_id
        self.type = graph._type_names[graph._rel_typeid[rel_id]]
        self.start_id = graph._rel_start[rel_id]
        self.end_id = graph._rel_end[rel_id]
        return self

    def __init__(self, *_args: Any, **_kwargs: Any) -> None:
        pass

    @property
    def properties(self) -> Dict[str, Any]:
        return self._g._rel_props.map(self.id)

    def get(self, key: str, default: Any = None) -> Any:
        return self._g._rel_props.get(self.id, key, default)

    def __getitem__(self, key: str) -> Any:
        value = self._g._rel_props.get(self.id, key, _MISS)
        if value is _MISS:
            raise KeyError(f"{self!r} has no property {key!r}")
        return value

    def __contains__(self, key: str) -> bool:
        return self._g._rel_props.has(self.id, key)


class ArrayGraph:
    """Read-only graph over parsed v3 snapshot columns.

    Constructed by :func:`repro.graphdb.snapshot_v3.open_snapshot` /
    ``view_snapshot``; not meant to be built by hand.  Node and
    relationship ids are dense positions (0..n-1 / 0..m-1) — exactly
    the renumbering every snapshot load has always performed, so ids
    agree with a decoded ``PropertyGraph`` of the same file.
    """

    def __init__(
        self,
        *,
        path: Optional[str],
        strings,
        labelsets,
        node_ls,
        type_names: List[str],
        type_counts: List[int],
        rel_typeid,
        rel_start,
        rel_end,
        adjacency: Adjacency,
        node_props,
        rel_props,
        index_pairs: List[Tuple[str, str]],
        closer=None,
    ) -> None:
        self._path = path
        self._strings = strings
        self._labelsets = labelsets
        self._node_ls = node_ls
        self._n = len(node_ls)
        self._m = len(rel_typeid)
        self._type_names = type_names
        self._type_index = {name: tid for tid, name in enumerate(type_names)}
        self._rel_type_counts = dict(zip(type_names, type_counts))
        self._rel_typeid = rel_typeid
        self._rel_start = rel_start
        self._rel_end = rel_end
        self._adj = adjacency
        self._node_props = node_props
        self._rel_props = rel_props
        self._index_pairs = list(index_pairs)
        self._closer = closer
        self._index_manager: Optional[IndexManager] = None
        #: (rel_type, incoming) -> (indptr, neighbour node ids)
        self._csr_cache: Dict[Tuple[str, bool], Tuple[Any, Any]] = {}

    # -- lifecycle ------------------------------------------------------

    @property
    def path(self) -> Optional[str]:
        """The snapshot file backing this view (None for in-memory
        bytes) — lets multiprocess consumers re-open the same physical
        pages instead of shipping the graph."""
        return self._path

    def close(self) -> None:
        """Drop the references into the backing buffer so the mapping
        can be released.  The graph is unusable afterwards; closing is
        optional (garbage collection releases the mapping too)."""
        self._node_ls = self._rel_typeid = self._rel_start = self._rel_end = ()
        self._n = self._m = 0
        self._adj = None  # type: ignore[assignment]
        self._node_props = self._rel_props = None
        self._strings = self._labelsets = None
        self._csr_cache.clear()
        closer, self._closer = self._closer, None
        if closer is not None:
            try:
                closer()
            except BufferError:
                # a still-live flyweight pins a view into the mapping;
                # garbage collection releases it once they go away
                pass

    # -- mutation: refused ----------------------------------------------

    def _read_only(self, operation: str):
        return GraphError(
            f"{operation}: ArrayGraph is a read-only snapshot view; call "
            f".materialize() for a mutable PropertyGraph"
        )

    def create_node(self, *args: Any, **kwargs: Any) -> None:
        raise self._read_only("create_node")

    def create_relationship(self, *args: Any, **kwargs: Any) -> None:
        raise self._read_only("create_relationship")

    def create_index(self, *args: Any, **kwargs: Any) -> None:
        raise self._read_only("create_index")

    def create_relationship_index(self, *args: Any, **kwargs: Any) -> None:
        raise self._read_only("create_relationship_index")

    def delete_node(self, *args: Any, **kwargs: Any) -> None:
        raise self._read_only("delete_node")

    def delete_relationship(self, *args: Any, **kwargs: Any) -> None:
        raise self._read_only("delete_relationship")

    def set_node_property(self, *args: Any, **kwargs: Any) -> None:
        raise self._read_only("set_node_property")

    def set_relationship_property(self, *args: Any, **kwargs: Any) -> None:
        raise self._read_only("set_relationship_property")

    # -- lookup ---------------------------------------------------------

    def node(self, node_id: int) -> ArrayNode:
        if 0 <= node_id < self._n:
            return ArrayNode(self, node_id)
        raise NodeNotFoundError(f"node {node_id} does not exist")

    def relationship(self, rel_id: int) -> ArrayRelationship:
        if 0 <= rel_id < self._m:
            return ArrayRelationship(self, rel_id)
        raise RelationshipNotFoundError(f"relationship {rel_id} does not exist")

    def has_node(self, node_id: int) -> bool:
        return 0 <= node_id < self._n

    def nodes(self, label: Optional[str] = None) -> Iterator[ArrayNode]:
        if label is None:
            return (ArrayNode(self, nid) for nid in range(self._n))
        return (
            ArrayNode(self, nid) for nid in self.indexes.nodes_with_label(label)
        )

    def relationships(
        self, rel_type: Optional[str] = None
    ) -> Iterator[ArrayRelationship]:
        if rel_type is None:
            return (ArrayRelationship(self, rid) for rid in range(self._m))
        tid = self._type_index.get(rel_type)
        if tid is None:
            return iter(())
        typeids = self._rel_typeid
        return (
            ArrayRelationship(self, rid)
            for rid in range(self._m)
            if typeids[rid] == tid
        )

    def find_nodes(self, label: Optional[str] = None, **props: Any) -> List[ArrayNode]:
        candidates = None
        if label is not None and props:
            for key, value in props.items():
                hit = self.indexes.lookup(label, key, value)
                if hit is not None:
                    candidates = [ArrayNode(self, nid) for nid in hit]
                    break
        if candidates is None:
            candidates = self.nodes(label)
        out = []
        for node in candidates:
            if label is not None and not node.has_label(label):
                continue
            if all(node.get(k) == v for k, v in props.items()):
                out.append(node)
        return out

    def find_node(
        self, label: Optional[str] = None, **props: Any
    ) -> Optional[ArrayNode]:
        found = self.find_nodes(label, **props)
        return found[0] if found else None

    def relationships_with_property(
        self, key: str, rel_type: Optional[str] = None
    ) -> List[ArrayRelationship]:
        has = self._rel_props.has
        tid = None if rel_type is None else self._type_index.get(rel_type)
        if rel_type is not None and tid is None:
            return []
        typeids = self._rel_typeid
        return [
            ArrayRelationship(self, rid)
            for rid in range(self._m)
            if (tid is None or typeids[rid] == tid) and has(rid, key)
        ]

    # -- adjacency ------------------------------------------------------

    def _node_id(self, node: "Node | int") -> int:
        node_id = node.id if isinstance(node, Node) else node
        if not 0 <= node_id < self._n:
            raise NodeNotFoundError(f"node {node_id} does not exist")
        return node_id

    def out_relationships(
        self, node: "Node | int", rel_type: Optional[str] = None
    ) -> List[ArrayRelationship]:
        node_id = self._node_id(node)
        adj = self._adj
        if rel_type is None:
            indptr, ids = adj.flat_out_indptr, adj.flat_out_ids
        else:
            tid = self._type_index.get(rel_type)
            if tid is None:
                return []
            indptr, ids = adj.typed_out_indptr[tid], adj.typed_out_ids[tid]
        return [
            ArrayRelationship(self, rid)
            for rid in ids[indptr[node_id] : indptr[node_id + 1]]
        ]

    def in_relationships(
        self, node: "Node | int", rel_type: Optional[str] = None
    ) -> List[ArrayRelationship]:
        node_id = self._node_id(node)
        adj = self._adj
        if rel_type is None:
            indptr, ids = adj.flat_in_indptr, adj.flat_in_ids
        else:
            tid = self._type_index.get(rel_type)
            if tid is None:
                return []
            indptr, ids = adj.typed_in_indptr[tid], adj.typed_in_ids[tid]
        return [
            ArrayRelationship(self, rid)
            for rid in ids[indptr[node_id] : indptr[node_id + 1]]
        ]

    def out_degree(self, node: "Node | int", rel_type: Optional[str] = None) -> int:
        node_id = self._node_id(node)
        adj = self._adj
        if rel_type is None:
            indptr = adj.flat_out_indptr
        else:
            tid = self._type_index.get(rel_type)
            if tid is None:
                return 0
            indptr = adj.typed_out_indptr[tid]
        return indptr[node_id + 1] - indptr[node_id]

    def in_degree(self, node: "Node | int", rel_type: Optional[str] = None) -> int:
        node_id = self._node_id(node)
        adj = self._adj
        if rel_type is None:
            indptr = adj.flat_in_indptr
        else:
            tid = self._type_index.get(rel_type)
            if tid is None:
                return 0
            indptr = adj.typed_in_indptr[tid]
        return indptr[node_id + 1] - indptr[node_id]

    def relationships_of(
        self, node: "Node | int", rel_type: Optional[str] = None
    ) -> List[ArrayRelationship]:
        return self.out_relationships(node, rel_type) + self.in_relationships(
            node, rel_type
        )

    def degree(self, node: "Node | int") -> int:
        return self.out_degree(node) + self.in_degree(node)

    def csr_neighbors(self, rel_type: str, incoming: bool):
        """``(indptr, neighbour_ids)`` for one relationship type and
        direction: ``neighbour_ids[indptr[nid]:indptr[nid+1]]`` are the
        node ids one hop from ``nid``.  Built (and cached) on first use
        by mapping the typed CSR run through the endpoint column — the
        zero-allocation fast path for whole-graph sweeps such as the
        pathfinder's source-reachability BFS."""
        key = (rel_type, incoming)
        hit = self._csr_cache.get(key)
        if hit is None:
            tid = self._type_index.get(rel_type)
            if tid is None:
                empty = array("I", bytes(4 * (self._n + 1)))
                hit = (empty, array("I"))
            else:
                adj = self._adj
                if incoming:
                    indptr = adj.typed_in_indptr[tid]
                    ids = adj.typed_in_ids[tid]
                    endpoint = self._rel_start
                else:
                    indptr = adj.typed_out_indptr[tid]
                    ids = adj.typed_out_ids[tid]
                    endpoint = self._rel_end
                hit = (indptr, array("I", map(endpoint.__getitem__, ids)))
            self._csr_cache[key] = hit
        return hit

    # -- indexes --------------------------------------------------------

    @property
    def indexes(self) -> IndexManager:
        manager = self._index_manager
        if manager is None:
            try:
                manager = self._build_indexes()
            except IndexError as exc:
                raise StorageError(
                    f"corrupt v3 snapshot: label or index column out of range "
                    f"({exc})"
                ) from exc
            self._index_manager = manager
        return manager

    def _build_indexes(self) -> IndexManager:
        # Mirror _bulk_load_columns exactly: group node ids by labelset,
        # build each label set with one set()/update per (labelset,
        # label) pair, then backfill the declared property indexes by
        # iterating those sets.  Identical construction order gives
        # identical set iteration order, which downstream consumers
        # (find_nodes, the planner's anchor scans) observe.
        manager = IndexManager()
        labelsets = [self._labelsets[i] for i in range(len(self._labelsets))]
        groups: List[List[int]] = [[] for _ in labelsets]
        nid = 0
        for lsid in self._node_ls:
            groups[lsid].append(nid)
            nid += 1
        by_label = manager._by_label
        for labelset, ids in zip(labelsets, groups):
            for label in labelset:
                bucket = by_label.get(label)
                if bucket is None:
                    by_label[label] = set(ids)
                else:
                    bucket.update(ids)
        tables = manager._property_indexes
        for label, key in self._index_pairs:
            tables.setdefault((label, key), {})
        miss = _MISS
        node_get = self._node_props.get
        for (label, key), table in tables.items():
            table_get = table.get
            for node_id in by_label.get(label, ()):
                value = node_get(node_id, key, miss)
                if value is miss:
                    continue
                kind = type(value)
                if kind is list or kind is dict:
                    value = _index_key(value)
                entry = table_get(value)
                if entry is None:
                    table[value] = {node_id}
                else:
                    entry.add(node_id)
        return manager

    # -- statistics -----------------------------------------------------

    @property
    def node_count(self) -> int:
        return self._n

    @property
    def relationship_count(self) -> int:
        return self._m

    def label_counts(self) -> Dict[str, int]:
        return self.indexes.label_counts()

    def relationship_type_counts(self) -> Dict[str, int]:
        return dict(self._rel_type_counts)

    # -- materialization ------------------------------------------------

    def materialize(self) -> PropertyGraph:
        """Decode every column and build a mutable ``PropertyGraph``
        through the trusted columnar bulk loader — the same code path
        as the validated v2 decode, hence ``graph_fingerprint``-
        identical to it."""
        node_props = self._node_props.decode_all()
        rel_props = self._rel_props.decode_all()
        labelsets = [self._labelsets[i] for i in range(len(self._labelsets))]
        rel_starts = self._rel_start
        rel_ends = self._rel_end
        if self._m:
            if max(rel_starts) >= self._n or max(rel_ends) >= self._n:
                raise StorageError(
                    "snapshot relationship references a node beyond the node count"
                )
        try:
            return _bulk_load_columns(
                PropertyGraph(),
                list(self._index_pairs),
                labelsets,
                self._node_ls,
                node_props,
                list(map(self._type_names.__getitem__, self._rel_typeid)),
                rel_starts,
                rel_ends,
                rel_props,
            )
        except IndexError as exc:
            raise StorageError(f"corrupt v3 snapshot: {exc}") from exc

    def __repr__(self) -> str:
        backing = "mmap" if self._path else "bytes"
        return (
            f"<ArrayGraph {self._n} nodes, {self._m} relationships "
            f"({backing})>"
        )

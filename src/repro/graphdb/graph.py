"""Embedded property-graph store (the Neo4j replacement).

The paper stores Tabby's code property graph in Neo4j and queries it
with Cypher plus the *tabby-path-finder* traversal plugin.  This module
provides the storage layer: labelled nodes and typed relationships, both
carrying property maps, with label and property indexes
(:mod:`repro.graphdb.index`), a Cypher-subset query language
(:mod:`repro.graphdb.query`), guided traversal
(:mod:`repro.graphdb.traversal`), and JSON persistence
(:mod:`repro.graphdb.storage`).

Property values are restricted to JSON-representable scalars and flat
lists, matching Neo4j's property model.
"""

from __future__ import annotations

import sys
from collections import Counter
from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.errors import GraphError, NodeNotFoundError, RelationshipNotFoundError
from repro.graphdb.index import IndexManager, _index_key

__all__ = ["Node", "Relationship", "PropertyGraph"]


def _intern_key(key: Any) -> Any:
    """Intern property-key strings so the thousands of ``NAME``/
    ``SIGNATURE``/``POLLUTED_POSITION`` dict keys across a CPG share
    one object (and dict lookups hit the pointer-equality fast path)."""
    return sys.intern(key) if type(key) is str else key

_SCALARS = (str, int, float, bool, type(None))


def _check_property_value(key: str, value: Any) -> Any:
    if isinstance(value, _SCALARS):
        return value
    if isinstance(value, (list, tuple)):
        out = []
        for item in value:
            if not isinstance(item, _SCALARS):
                raise GraphError(
                    f"property {key!r}: list items must be scalars, got {item!r}"
                )
            out.append(item)
        return out
    if isinstance(value, dict):
        out_d = {}
        for k, v in value.items():
            if not isinstance(k, str) or not isinstance(v, _SCALARS + (list,)):
                raise GraphError(
                    f"property {key!r}: nested maps must be str->scalar/list"
                )
            out_d[k] = _check_property_value(f"{key}.{k}", v)
        return out_d
    raise GraphError(f"unsupported property value for {key!r}: {type(value).__name__}")


class _Entity:
    """Shared property-map behaviour of nodes and relationships."""

    __slots__ = ("id", "properties")

    def __init__(self, entity_id: int, properties: Optional[Dict[str, Any]] = None):
        self.id = entity_id
        self.properties: Dict[str, Any] = {}
        if properties:
            for key, value in properties.items():
                self.properties[_intern_key(key)] = _check_property_value(key, value)

    def get(self, key: str, default: Any = None) -> Any:
        return self.properties.get(key, default)

    def __getitem__(self, key: str) -> Any:
        try:
            return self.properties[key]
        except KeyError:
            raise KeyError(f"{self!r} has no property {key!r}") from None

    def __contains__(self, key: str) -> bool:
        return key in self.properties


class Node(_Entity):
    """A graph node with a set of labels and a property map."""

    __slots__ = ("labels",)

    def __init__(
        self,
        entity_id: int,
        labels: Iterable[str] = (),
        properties: Optional[Dict[str, Any]] = None,
    ):
        super().__init__(entity_id, properties)
        self.labels: FrozenSet[str] = frozenset(labels)
        if not all(isinstance(l, str) and l for l in self.labels):
            raise GraphError("labels must be non-empty strings")

    def has_label(self, label: str) -> bool:
        return label in self.labels

    def __repr__(self) -> str:
        labels = ":".join(sorted(self.labels))
        name = self.properties.get("NAME") or self.properties.get("name") or ""
        return f"<Node {self.id} :{labels} {name}>".replace("  ", " ")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Node) and other.id == self.id

    def __hash__(self) -> int:
        return hash(("node", self.id))


class Relationship(_Entity):
    """A directed, typed relationship between two nodes."""

    __slots__ = ("type", "start_id", "end_id")

    def __init__(
        self,
        entity_id: int,
        rel_type: str,
        start_id: int,
        end_id: int,
        properties: Optional[Dict[str, Any]] = None,
    ):
        if not rel_type:
            raise GraphError("relationship type must be non-empty")
        super().__init__(entity_id, properties)
        self.type = rel_type
        self.start_id = start_id
        self.end_id = end_id

    def other_id(self, node_id: int) -> int:
        """The endpoint opposite ``node_id`` (tabby-path-finder's
        ``getOtherNode``)."""
        if node_id == self.start_id:
            return self.end_id
        if node_id == self.end_id:
            return self.start_id
        raise GraphError(f"node {node_id} is not an endpoint of {self!r}")

    def __repr__(self) -> str:
        return f"<Rel {self.id} ({self.start_id})-[:{self.type}]->({self.end_id})>"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Relationship) and other.id == self.id

    def __hash__(self) -> int:
        return hash(("rel", self.id))


class PropertyGraph:
    """An in-memory labelled property graph with adjacency and indexes.

    Adjacency is kept twice: a flat per-node list (all relationships in
    insertion order) and a per-node *type-bucketed* index, so
    ``out_relationships(node, "CALL")`` is a dict hit instead of a
    filtered scan — the hot operation of the gadget-chain search.
    Relationship ids are monotonically increasing and adjacency lists
    only ever append, so every bucket stays sorted by id (== insertion
    order); consumers that merge buckets rely on this invariant.
    """

    #: class-level default so instances built via ``__new__`` (trusted
    #: loaders, unpickling) are mutable without an ``__init__`` call
    _frozen = False

    def __init__(self) -> None:
        self._nodes: Dict[int, Node] = {}
        self._rels: Dict[int, Relationship] = {}
        self._out: Dict[int, List[int]] = {}
        self._in: Dict[int, List[int]] = {}
        #: node id -> rel type -> rel ids, each bucket in insertion order
        self._out_by_type: Dict[int, Dict[str, List[int]]] = {}
        self._in_by_type: Dict[int, Dict[str, List[int]]] = {}
        #: rel type -> live relationship count, maintained incrementally
        #: so the query planner's cost model never scans the edge set
        self._rel_type_counts: Dict[str, int] = {}
        #: canonical frozenset per distinct label combination — a CPG
        #: has millions of nodes but a handful of label sets, so every
        #: node with the same labels shares one frozenset object
        self._labelset_pool: Dict[FrozenSet[str], FrozenSet[str]] = {}
        #: indexed relationship-property key -> ids of live relationships
        #: carrying that key (any value); lets annotation passes such as
        #: RTA edge marking be enumerated without scanning the edge set
        self._rel_prop_indexes: Dict[str, Set[int]] = {}
        self._next_node_id = 0
        self._next_rel_id = 0
        self.indexes = IndexManager()

    def _pooled_labels(self, labels: FrozenSet[str]) -> FrozenSet[str]:
        pooled = self._labelset_pool.get(labels)
        if pooled is None:
            pooled = frozenset(
                sys.intern(l) if type(l) is str else l for l in labels
            )
            self._labelset_pool[pooled] = pooled
        return pooled

    # -- immutability ---------------------------------------------------

    def freeze(self) -> None:
        """Make this graph permanently immutable: every mutator raises
        :class:`GraphError` from now on.  Committed MVCC versions are
        frozen so concurrent readers can rely on never observing a
        mutation (and so fingerprints may be memoised per version)."""
        self._frozen = True

    @property
    def frozen(self) -> bool:
        return self._frozen

    def _writable(self) -> None:
        if self._frozen:
            raise GraphError(
                "graph is frozen (a committed MVCC version is immutable); "
                "open a write_txn() on the VersionedGraph to mutate"
            )

    # -- creation -------------------------------------------------------

    def create_node(
        self, labels: Iterable[str] = (), properties: Optional[Dict[str, Any]] = None
    ) -> Node:
        self._writable()
        node = Node(self._next_node_id, labels, properties)
        node.labels = self._pooled_labels(node.labels)
        self._next_node_id += 1
        self._nodes[node.id] = node
        self._out[node.id] = []
        self._in[node.id] = []
        self._out_by_type[node.id] = {}
        self._in_by_type[node.id] = {}
        self.indexes.index_node(node)
        return node

    def create_relationship(
        self,
        rel_type: str,
        start: "Node | int",
        end: "Node | int",
        properties: Optional[Dict[str, Any]] = None,
    ) -> Relationship:
        self._writable()
        start_id = start.id if isinstance(start, Node) else start
        end_id = end.id if isinstance(end, Node) else end
        if start_id not in self._nodes:
            raise NodeNotFoundError(f"start node {start_id} does not exist")
        if end_id not in self._nodes:
            raise NodeNotFoundError(f"end node {end_id} does not exist")
        rel = Relationship(self._next_rel_id, rel_type, start_id, end_id, properties)
        self._next_rel_id += 1
        self._rels[rel.id] = rel
        self._out[start_id].append(rel.id)
        self._in[end_id].append(rel.id)
        self._out_by_type[start_id].setdefault(rel_type, []).append(rel.id)
        self._in_by_type[end_id].setdefault(rel_type, []).append(rel.id)
        self._rel_type_counts[rel_type] = self._rel_type_counts.get(rel_type, 0) + 1
        if rel.properties:
            for key in self._rel_prop_indexes:
                if key in rel.properties:
                    self._rel_prop_indexes[key].add(rel.id)
        return rel

    # -- indexing -----------------------------------------------------------

    def create_index(self, label: str, key: str) -> None:
        """Declare a (label, property) index and backfill it over the
        nodes already in the graph, so lookups are complete no matter
        when the index is declared.  The query planner routes anchor
        scans through these indexes and assumes completeness."""
        self._writable()
        self.indexes.create_index(label, key, nodes=self.nodes(label))

    def create_relationship_index(self, key: str) -> None:
        """Declare a relationship-property presence index and backfill
        it, so :meth:`relationships_with_property` is a set lookup no
        matter when the index is declared.  Idempotent."""
        self._writable()
        if key in self._rel_prop_indexes:
            return
        self._rel_prop_indexes[_intern_key(key)] = {
            rel.id for rel in self._rels.values() if key in rel.properties
        }

    def relationships_with_property(
        self, key: str, rel_type: Optional[str] = None
    ) -> List[Relationship]:
        """Live relationships carrying property ``key`` (any value), in
        id order; served from the presence index when one exists."""
        indexed = self._rel_prop_indexes.get(key)
        if indexed is not None:
            rels = [self._rels[rel_id] for rel_id in sorted(indexed)]
        else:
            rels = [rel for rel in self._rels.values() if key in rel.properties]
        if rel_type is not None:
            rels = [rel for rel in rels if rel.type == rel_type]
        return rels

    # -- deletion -----------------------------------------------------------

    def delete_relationship(self, rel: "Relationship | int") -> None:
        self._writable()
        rel_id = rel.id if isinstance(rel, Relationship) else rel
        found = self._rels.pop(rel_id, None)
        if found is None:
            raise RelationshipNotFoundError(f"relationship {rel_id} does not exist")
        self._out[found.start_id].remove(rel_id)
        self._in[found.end_id].remove(rel_id)
        out_bucket = self._out_by_type[found.start_id][found.type]
        out_bucket.remove(rel_id)
        if not out_bucket:
            del self._out_by_type[found.start_id][found.type]
        in_bucket = self._in_by_type[found.end_id][found.type]
        in_bucket.remove(rel_id)
        if not in_bucket:
            del self._in_by_type[found.end_id][found.type]
        remaining = self._rel_type_counts[found.type] - 1
        if remaining:
            self._rel_type_counts[found.type] = remaining
        else:
            del self._rel_type_counts[found.type]
        for indexed in self._rel_prop_indexes.values():
            indexed.discard(rel_id)

    def delete_node(self, node: "Node | int", detach: bool = False) -> None:
        self._writable()
        node_id = node.id if isinstance(node, Node) else node
        found = self._nodes.get(node_id)
        if found is None:
            raise NodeNotFoundError(f"node {node_id} does not exist")
        attached = self._out[node_id] + self._in[node_id]
        if attached and not detach:
            raise GraphError(
                f"node {node_id} still has {len(attached)} relationships; "
                "use detach=True"
            )
        for rel_id in list(attached):
            if rel_id in self._rels:
                self.delete_relationship(rel_id)
        self.indexes.unindex_node(found)
        del self._nodes[node_id]
        del self._out[node_id]
        del self._in[node_id]
        del self._out_by_type[node_id]
        del self._in_by_type[node_id]

    # -- property updates ------------------------------------------------------

    def set_node_property(self, node: "Node | int", key: str, value: Any) -> None:
        self._writable()
        found = self.node(node.id if isinstance(node, Node) else node)
        self.indexes.unindex_node(found)
        found.properties[_intern_key(key)] = _check_property_value(key, value)
        self.indexes.index_node(found)

    def set_relationship_property(
        self, rel: "Relationship | int", key: str, value: Any
    ) -> None:
        self._writable()
        found = self.relationship(rel.id if isinstance(rel, Relationship) else rel)
        found.properties[_intern_key(key)] = _check_property_value(key, value)
        indexed = self._rel_prop_indexes.get(key)
        if indexed is not None:
            indexed.add(found.id)

    # -- lookup -----------------------------------------------------------------

    def node(self, node_id: int) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NodeNotFoundError(f"node {node_id} does not exist") from None

    def relationship(self, rel_id: int) -> Relationship:
        try:
            return self._rels[rel_id]
        except KeyError:
            raise RelationshipNotFoundError(
                f"relationship {rel_id} does not exist"
            ) from None

    def has_node(self, node_id: int) -> bool:
        return node_id in self._nodes

    def nodes(self, label: Optional[str] = None) -> Iterator[Node]:
        if label is None:
            yield from self._nodes.values()
            return
        for node_id in self.indexes.nodes_with_label(label):
            yield self._nodes[node_id]

    def relationships(self, rel_type: Optional[str] = None) -> Iterator[Relationship]:
        for rel in self._rels.values():
            if rel_type is None or rel.type == rel_type:
                yield rel

    def find_nodes(self, label: Optional[str] = None, **props: Any) -> List[Node]:
        """Nodes matching a label and exact property values; uses a
        property index when one exists."""
        candidates: Optional[Iterable[Node]] = None
        if label is not None and props:
            for key, value in props.items():
                hit = self.indexes.lookup(label, key, value)
                if hit is not None:
                    candidates = [self._nodes[i] for i in hit]
                    break
        if candidates is None:
            candidates = self.nodes(label)
        out = []
        for node in candidates:
            if label is not None and not node.has_label(label):
                continue
            if all(node.get(k) == v for k, v in props.items()):
                out.append(node)
        return out

    def find_node(self, label: Optional[str] = None, **props: Any) -> Optional[Node]:
        found = self.find_nodes(label, **props)
        return found[0] if found else None

    # -- adjacency ------------------------------------------------------------------

    def out_relationships(
        self, node: "Node | int", rel_type: Optional[str] = None
    ) -> List[Relationship]:
        node_id = node.id if isinstance(node, Node) else node
        if node_id not in self._nodes:
            raise NodeNotFoundError(f"node {node_id} does not exist")
        if rel_type is None:
            return [self._rels[i] for i in self._out[node_id]]
        bucket = self._out_by_type[node_id].get(rel_type)
        return [self._rels[i] for i in bucket] if bucket else []

    def in_relationships(
        self, node: "Node | int", rel_type: Optional[str] = None
    ) -> List[Relationship]:
        node_id = node.id if isinstance(node, Node) else node
        if node_id not in self._nodes:
            raise NodeNotFoundError(f"node {node_id} does not exist")
        if rel_type is None:
            return [self._rels[i] for i in self._in[node_id]]
        bucket = self._in_by_type[node_id].get(rel_type)
        return [self._rels[i] for i in bucket] if bucket else []

    def out_degree(self, node: "Node | int", rel_type: Optional[str] = None) -> int:
        node_id = node.id if isinstance(node, Node) else node
        if rel_type is None:
            return len(self._out[node_id])
        return len(self._out_by_type[node_id].get(rel_type, ()))

    def in_degree(self, node: "Node | int", rel_type: Optional[str] = None) -> int:
        node_id = node.id if isinstance(node, Node) else node
        if rel_type is None:
            return len(self._in[node_id])
        return len(self._in_by_type[node_id].get(rel_type, ()))

    def relationships_of(
        self, node: "Node | int", rel_type: Optional[str] = None
    ) -> List[Relationship]:
        return self.out_relationships(node, rel_type) + self.in_relationships(
            node, rel_type
        )

    def degree(self, node: "Node | int") -> int:
        node_id = node.id if isinstance(node, Node) else node
        return len(self._out[node_id]) + len(self._in[node_id])

    # -- statistics ------------------------------------------------------------------

    @property
    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def relationship_count(self) -> int:
        return len(self._rels)

    def label_counts(self) -> Dict[str, int]:
        return self.indexes.label_counts()

    def relationship_type_counts(self) -> Dict[str, int]:
        return dict(self._rel_type_counts)

    # -- integrity ------------------------------------------------------------------

    def check_integrity(self) -> List[str]:
        """Compare every maintained secondary structure — adjacency
        lists, typed adjacency buckets, relationship-type counters,
        relationship-property presence indexes, and the label/property
        node indexes — against a from-scratch recomputation over
        ``_nodes``/``_rels``.

        Returns a list of human-readable discrepancy descriptions
        (empty = consistent).  Mutating paths (deletion in particular)
        are exercised far less than construction, so the CPG verifier
        runs this after in-place patches to catch counter drift
        immediately instead of as a corrupted query result later.
        """
        problems: List[str] = []

        out_ref: Dict[int, List[int]] = {nid: [] for nid in self._nodes}
        in_ref: Dict[int, List[int]] = {nid: [] for nid in self._nodes}
        out_by_type_ref: Dict[int, Dict[str, List[int]]] = {
            nid: {} for nid in self._nodes
        }
        in_by_type_ref: Dict[int, Dict[str, List[int]]] = {
            nid: {} for nid in self._nodes
        }
        type_counts_ref: Dict[str, int] = {}
        for rel_id, rel in self._rels.items():
            if rel.start_id not in self._nodes or rel.end_id not in self._nodes:
                problems.append(
                    f"relationship {rel_id} references a deleted node"
                )
                continue
            out_ref[rel.start_id].append(rel_id)
            in_ref[rel.end_id].append(rel_id)
            out_by_type_ref[rel.start_id].setdefault(rel.type, []).append(rel_id)
            in_by_type_ref[rel.end_id].setdefault(rel.type, []).append(rel_id)
            type_counts_ref[rel.type] = type_counts_ref.get(rel.type, 0) + 1

        def _diff_adjacency(name: str, actual, reference) -> None:
            if set(actual) != set(reference):
                problems.append(f"{name} covers a different node-id set")
                return
            for nid, ref_list in reference.items():
                if sorted(actual[nid]) != sorted(ref_list):
                    problems.append(f"{name}[{nid}] drifted from the edge set")

        _diff_adjacency("_out", self._out, out_ref)
        _diff_adjacency("_in", self._in, in_ref)
        for name, actual, reference in (
            ("_out_by_type", self._out_by_type, out_by_type_ref),
            ("_in_by_type", self._in_by_type, in_by_type_ref),
        ):
            if set(actual) != set(reference):
                problems.append(f"{name} covers a different node-id set")
                continue
            for nid, ref_buckets in reference.items():
                buckets = actual[nid]
                if set(buckets) != set(ref_buckets):
                    problems.append(
                        f"{name}[{nid}] has stale or missing type buckets"
                    )
                    continue
                for rel_type, ref_ids in ref_buckets.items():
                    if sorted(buckets[rel_type]) != sorted(ref_ids):
                        problems.append(
                            f"{name}[{nid}][{rel_type}] drifted from the edge set"
                        )
        if self._rel_type_counts != type_counts_ref:
            problems.append(
                "relationship-type counters drifted: "
                f"maintained={dict(sorted(self._rel_type_counts.items()))} "
                f"actual={dict(sorted(type_counts_ref.items()))}"
            )
        for key, indexed in self._rel_prop_indexes.items():
            reference = {
                rel_id
                for rel_id, rel in self._rels.items()
                if key in rel.properties
            }
            if indexed != reference:
                problems.append(
                    f"relationship-property presence index {key!r} drifted "
                    f"({len(indexed)} indexed vs {len(reference)} actual)"
                )

        by_label_ref: Dict[str, Set[int]] = {}
        for nid, node in self._nodes.items():
            for label in node.labels:
                by_label_ref.setdefault(label, set()).add(nid)
        if self.indexes._by_label != by_label_ref:
            problems.append(
                "label index drifted: "
                f"maintained counts={self.indexes.label_counts()} "
                f"actual counts={ {l: len(ids) for l, ids in sorted(by_label_ref.items())} }"
            )
        for (label, key), table in self.indexes._property_indexes.items():
            table_ref: Dict[Any, Set[int]] = {}
            for nid in by_label_ref.get(label, ()):
                props = self._nodes[nid].properties
                if key in props:
                    table_ref.setdefault(_index_key(props[key]), set()).add(nid)
            if table != table_ref:
                problems.append(
                    f"property index ({label}, {key}) drifted from the node set"
                )
        return problems

    def __repr__(self) -> str:
        return (
            f"<PropertyGraph {self.node_count} nodes, "
            f"{self.relationship_count} relationships>"
        )


def _bulk_load(
    graph: PropertyGraph,
    indexes: Iterable[Tuple[str, str]],
    nodes: Iterable[Tuple[Iterable[str], Optional[Dict[str, Any]]]],
    rels: Iterable[Tuple[str, int, int, Optional[Dict[str, Any]]]],
) -> PropertyGraph:
    """Trusted bulk loader: populate an **empty** graph from columns.

    This is the warm-start fast path shared by both snapshot formats
    (:mod:`repro.graphdb.storage` / :mod:`repro.graphdb.snapshot`).  It
    is *trusted*: property maps are installed as-is, without re-running
    :func:`_check_property_value` — sound because snapshot writers only
    emit values that passed validation when the graph was first built.
    Compared with replaying ``create_node``/``create_relationship`` per
    entity it skips per-property validation, per-node index maintenance
    (indexes are backfilled in batch below) and constructor plumbing,
    while producing a graph that is structurally identical by
    construction:

    * node/relationship ids are assigned densely in input order
      (exactly the legacy loader's remapping — ``rels`` must reference
      nodes by dense position);
    * label frozensets are pooled and label/key strings interned, so
      the resident graph is also *smaller* than one built naively;
    * ``_rel_type_counts``, flat and type-bucketed adjacency, the label
      index and every declared property index come out as if each
      entity had been added individually.
    """
    if graph._nodes or graph._rels:
        raise GraphError("bulk load requires an empty graph")
    _nodes = graph._nodes
    _out, _in = graph._out, graph._in
    _out_by_type, _in_by_type = graph._out_by_type, graph._in_by_type
    pool = graph._labelset_pool
    pooled = pool.get
    new_node = Node.__new__
    #: labelset -> node ids, for batched label-index construction
    label_groups: Dict[FrozenSet[str], List[int]] = {}
    nid = 0
    for labels, props in nodes:
        key = labels if type(labels) is frozenset else frozenset(labels)
        labelset = pooled(key)
        if labelset is None:
            labelset = graph._pooled_labels(key)
        node = new_node(Node)
        node.id = nid
        node.labels = labelset
        node.properties = props if props is not None else {}
        _nodes[nid] = node
        _out[nid] = []
        _in[nid] = []
        _out_by_type[nid] = {}
        _in_by_type[nid] = {}
        group = label_groups.get(labelset)
        if group is None:
            label_groups[labelset] = [nid]
        else:
            group.append(nid)
        nid += 1
    graph._next_node_id = nid

    # label index: one set.update per (labelset, label) pair instead of
    # one set.add per (node, label) pair
    by_label = graph.indexes._by_label
    for labelset, ids in label_groups.items():
        for label in labelset:
            bucket = by_label.get(label)
            if bucket is None:
                by_label[label] = set(ids)
            else:
                bucket.update(ids)

    # property indexes: batch backfill over the labelled nodes only
    tables = graph.indexes._property_indexes
    for label, key in indexes:
        tables.setdefault((_intern_key(label), _intern_key(key)), {})
    for (label, key), table in tables.items():
        for node_id in by_label.get(label, ()):
            props = _nodes[node_id].properties
            if key in props:
                entry = table.setdefault(_index_key(props[key]), set())
                entry.add(node_id)

    _rels = graph._rels
    counts = graph._rel_type_counts
    new_rel = Relationship.__new__
    rid = 0
    try:
        for rel_type, start, end, props in rels:
            rel = new_rel(Relationship)
            rel.id = rid
            rel.type = rel_type
            rel.start_id = start
            rel.end_id = end
            rel.properties = props if props is not None else {}
            _rels[rid] = rel
            _out[start].append(rid)
            _in[end].append(rid)
            out_buckets = _out_by_type[start]
            bucket = out_buckets.get(rel_type)
            if bucket is None:
                out_buckets[rel_type] = [rid]
            else:
                bucket.append(rid)
            in_buckets = _in_by_type[end]
            bucket = in_buckets.get(rel_type)
            if bucket is None:
                in_buckets[rel_type] = [rid]
            else:
                bucket.append(rid)
            counts[rel_type] = counts.get(rel_type, 0) + 1
            rid += 1
    except KeyError as exc:
        raise NodeNotFoundError(
            f"relationship {rid} references unknown node {exc}"
        ) from exc
    graph._next_rel_id = rid
    return graph


def _bulk_load_columns(
    graph: PropertyGraph,
    indexes: Iterable[Tuple[str, str]],
    labelsets: List[FrozenSet[str]],
    node_labelsets: "array | List[int]",
    node_props: List[Dict[str, Any]],
    rel_types: List[str],
    rel_starts: "array | List[int]",
    rel_ends: "array | List[int]",
    rel_props: List[Dict[str, Any]],
) -> PropertyGraph:
    """Trusted bulk loader over *columns* (the v2 binary decode path).

    Produces a graph :func:`~repro.graphdb.snapshot.graph_fingerprint`-
    identical to :func:`_bulk_load` over the zipped rows, but exploits
    what only columnar input can offer: whole structures built with one
    C-level call each (``dict(enumerate(...))`` entity tables, list/
    dict-display adjacency containers, a :class:`collections.Counter`
    for the relationship-type counts, ``map`` for labelset and string
    lookups) instead of per-entity dict insertions.  The v1 JSON path
    cannot use this loader — its rows interleave per-entity — which is
    why the two trusted paths coexist.

    Node ids are dense positions (``node_labelsets[i]`` describes node
    ``i``); ``rel_starts``/``rel_ends`` must already be validated to be
    ``< len(node_props)`` (the snapshot decoder checks this before
    calling), and every labelset id must be ``< len(labelsets)`` — an
    out-of-range id surfaces as ``IndexError`` for the caller to wrap.
    """
    if graph._nodes or graph._rels:
        raise GraphError("bulk load requires an empty graph")
    n = len(node_props)
    m = len(rel_props)

    pooled_sets = [graph._pooled_labels(labelset) for labelset in labelsets]
    new_node = Node.__new__
    nodes = [new_node(Node) for _ in range(n)]
    node_labels = list(map(pooled_sets.__getitem__, node_labelsets))
    nid = 0
    for node, labels, props in zip(nodes, node_labels, node_props):
        node.id = nid
        node.labels = labels
        node.properties = props
        nid += 1
    graph._nodes = dict(enumerate(nodes))
    graph._next_node_id = n

    # label index: group ids by labelset id, then one set.update per
    # (labelset, label) pair
    labelset_groups: List[List[int]] = [[] for _ in pooled_sets]
    nid = 0
    for lsid in node_labelsets:
        labelset_groups[lsid].append(nid)
        nid += 1
    by_label = graph.indexes._by_label
    for labelset, ids in zip(pooled_sets, labelset_groups):
        for label in labelset:
            bucket = by_label.get(label)
            if bucket is None:
                by_label[label] = set(ids)
            else:
                bucket.update(ids)

    # property indexes: batch backfill.  _index_key is the identity for
    # everything but lists and dicts, so the call is skipped for scalars
    # (the overwhelmingly common case).
    tables = graph.indexes._property_indexes
    for label, key in indexes:
        tables.setdefault((_intern_key(label), _intern_key(key)), {})
    miss = object()
    for (label, key), table in tables.items():
        table_get = table.get
        for node_id in by_label.get(label, ()):
            value = node_props[node_id].get(key, miss)
            if value is miss:
                continue
            kind = type(value)
            if kind is list or kind is dict:
                value = _index_key(value)
            entry = table_get(value)
            if entry is None:
                table[value] = {node_id}
            else:
                entry.add(node_id)

    new_rel = Relationship.__new__
    rel_objs = [new_rel(Relationship) for _ in range(m)]
    graph._rels = dict(enumerate(rel_objs))
    graph._rel_type_counts.update(Counter(rel_types))
    graph._next_rel_id = m
    out_lists: List[List[int]] = [[] for _ in range(n)]
    in_lists: List[List[int]] = [[] for _ in range(n)]
    out_buckets: List[Dict[str, List[int]]] = [{} for _ in range(n)]
    in_buckets: List[Dict[str, List[int]]] = [{} for _ in range(n)]
    rid = 0
    for rel, rel_type, start, end, props in zip(
        rel_objs, rel_types, rel_starts, rel_ends, rel_props
    ):
        rel.id = rid
        rel.type = rel_type
        rel.start_id = start
        rel.end_id = end
        rel.properties = props
        out_lists[start].append(rid)
        in_lists[end].append(rid)
        buckets = out_buckets[start]
        bucket = buckets.get(rel_type)
        if bucket is None:
            buckets[rel_type] = [rid]
        else:
            bucket.append(rid)
        buckets = in_buckets[end]
        bucket = buckets.get(rel_type)
        if bucket is None:
            buckets[rel_type] = [rid]
        else:
            bucket.append(rid)
        rid += 1
    graph._out = dict(enumerate(out_lists))
    graph._in = dict(enumerate(in_lists))
    graph._out_by_type = dict(enumerate(out_buckets))
    graph._in_by_type = dict(enumerate(in_buckets))
    return graph

"""Copy-on-write MVCC over :class:`PropertyGraph`.

``VersionedGraph`` keeps a chain of *frozen* graph versions and a
single writer:

* :meth:`~VersionedGraph.begin_snapshot` returns the last committed
  version — an immutable :class:`PropertyGraph` the reader keeps
  using for as long as it likes.  Beginning a snapshot is one atomic
  attribute read (no lock, no copying), so readers are wait-free: a
  writer can never delay them and they can never observe a partial
  commit, only the exact version they pinned.
* :meth:`~VersionedGraph.write_txn` hands the (serialized) writer a
  :class:`_CowPropertyGraph` staging overlay that structure-shares
  everything with the base version and privatizes only the buckets it
  actually touches — the write cost is O(changed buckets), not
  O(graph).  ``commit()`` freezes the overlay and atomically publishes
  it as the next version; ``abort()`` just drops it.

Durability is optional: attach a
:class:`~repro.graphdb.wal.WriteAheadLog` and every commit is
journalled (or compacted into a fresh base snapshot) *before* it is
published, so :meth:`VersionedGraph.open_durable` recovers the last
committed version after a crash.

Multi-shard graphs are deliberately not handled here, but nothing
forecloses them: a shard would be one ``VersionedGraph`` + WAL pair,
and a cross-shard coordinator only needs the already-exposed
commit/abort split to drive a two-phase protocol.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from repro.errors import GraphError
from repro.graphdb.graph import Node, PropertyGraph, Relationship
from repro.graphdb.index import IndexManager, _index_key
from repro.graphdb.wal import WriteAheadLog

__all__ = ["VersionedGraph", "WriteTransaction", "version_of"]


def version_of(graph: PropertyGraph) -> Optional[int]:
    """The MVCC version id a snapshot is pinned to (None when the
    graph never went through a :class:`VersionedGraph`)."""
    return getattr(graph, "_mvcc_version", None)


# ---------------------------------------------------------------------------
# copy-on-write staging structures
# ---------------------------------------------------------------------------


class _CowIndexManager(IndexManager):
    """IndexManager overlay: top-level tables are copied up front
    (pointer copies), inner sets only when first mutated."""

    def __init__(self, base: IndexManager) -> None:
        self._by_label = dict(base._by_label)
        self._property_indexes = dict(base._property_indexes)
        self._owned_labels: Set[str] = set()
        #: (label, key) -> privatized value-keys of that table; presence
        #: of the pair means the table dict itself is already private
        self._owned_entries: Dict[Tuple[str, str], Set[Any]] = {}

    def _own_label(self, label: str) -> None:
        if label not in self._owned_labels:
            bucket = self._by_label.get(label)
            if bucket is not None:
                self._by_label[label] = set(bucket)
            self._owned_labels.add(label)

    def _own_entry(self, pair: Tuple[str, str], ikey: Any) -> None:
        owned = self._owned_entries.get(pair)
        if owned is None:
            self._property_indexes[pair] = dict(self._property_indexes[pair])
            owned = self._owned_entries[pair] = set()
        if ikey not in owned:
            table = self._property_indexes[pair]
            entry = table.get(ikey)
            if entry is not None:
                table[ikey] = set(entry)
            owned.add(ikey)

    def _own_for(self, node: "Node") -> None:
        for label in node.labels:
            self._own_label(label)
            for pair in self._property_indexes:
                if pair[0] == label and pair[1] in node.properties:
                    self._own_entry(pair, _index_key(node.properties[pair[1]]))

    def index_node(self, node: "Node") -> None:
        self._own_for(node)
        super().index_node(node)

    def unindex_node(self, node: "Node") -> None:
        self._own_for(node)
        super().unindex_node(node)

    def create_index(self, label, key, nodes=()) -> None:
        if not label or not key:
            raise GraphError("index needs a label and a property key")
        if (label, key) in self._property_indexes:
            return  # complete already; never touch the shared table
        super().create_index(label, key, nodes)
        self._owned_entries.setdefault((label, key), set())


class _CowPropertyGraph(PropertyGraph):
    """The writer's staging overlay.

    Top-level containers are pointer-copied from the frozen base (a
    few dict copies, independent of graph size beyond that); every
    mutator privatizes exactly the inner buckets and entity objects it
    is about to touch, then delegates to the inherited implementation
    so the maintenance invariants live in one place.  Mutations are
    additionally journalled as WAL-ready ops while they stay
    expressible through the public mutators.
    """

    def __init__(self, base: PropertyGraph) -> None:
        self._nodes = dict(base._nodes)
        self._rels = dict(base._rels)
        self._out = dict(base._out)
        self._in = dict(base._in)
        self._out_by_type = dict(base._out_by_type)
        self._in_by_type = dict(base._in_by_type)
        self._rel_type_counts = dict(base._rel_type_counts)
        self._labelset_pool = dict(base._labelset_pool)
        self._rel_prop_indexes = dict(base._rel_prop_indexes)
        self._next_node_id = base._next_node_id
        self._next_rel_id = base._next_rel_id
        self.indexes = _CowIndexManager(base.indexes)
        self._ops: List[Tuple[Any, ...]] = []
        #: True while ``_ops`` is a faithful journal of every mutation;
        #: cleared by :meth:`ensure_private_entities` (after which code
        #: like the incremental renumber bypasses the mutators)
        self._journalable = True
        self._owned_nodes: Set[int] = set()
        self._owned_rels: Set[int] = set()
        self._owned_out: Set[int] = set()
        self._owned_in: Set[int] = set()
        self._owned_out_buckets: Dict[int, Set[str]] = {}
        self._owned_in_buckets: Dict[int, Set[str]] = {}
        self._owned_rel_prop: Set[str] = set()

    # -- privatization helpers ------------------------------------------

    def _own_node(self, node_id: int) -> None:
        if node_id not in self._owned_nodes:
            base = self._nodes[node_id]
            clone = Node.__new__(Node)
            clone.id = base.id
            clone.labels = base.labels
            clone.properties = dict(base.properties)
            self._nodes[node_id] = clone
            self._owned_nodes.add(node_id)

    def _own_rel(self, rel_id: int) -> None:
        if rel_id not in self._owned_rels:
            base = self._rels[rel_id]
            clone = Relationship.__new__(Relationship)
            clone.id = base.id
            clone.type = base.type
            clone.start_id = base.start_id
            clone.end_id = base.end_id
            clone.properties = dict(base.properties)
            self._rels[rel_id] = clone
            self._owned_rels.add(rel_id)

    def _own_out_list(self, node_id: int) -> None:
        if node_id not in self._owned_out:
            self._out[node_id] = list(self._out[node_id])
            self._owned_out.add(node_id)

    def _own_in_list(self, node_id: int) -> None:
        if node_id not in self._owned_in:
            self._in[node_id] = list(self._in[node_id])
            self._owned_in.add(node_id)

    def _own_out_bucket(self, node_id: int, rel_type: str) -> None:
        owned = self._owned_out_buckets.get(node_id)
        if owned is None:
            self._out_by_type[node_id] = dict(self._out_by_type[node_id])
            owned = self._owned_out_buckets[node_id] = set()
        if rel_type not in owned:
            buckets = self._out_by_type[node_id]
            bucket = buckets.get(rel_type)
            if bucket is not None:
                buckets[rel_type] = list(bucket)
            owned.add(rel_type)

    def _own_in_bucket(self, node_id: int, rel_type: str) -> None:
        owned = self._owned_in_buckets.get(node_id)
        if owned is None:
            self._in_by_type[node_id] = dict(self._in_by_type[node_id])
            owned = self._owned_in_buckets[node_id] = set()
        if rel_type not in owned:
            buckets = self._in_by_type[node_id]
            bucket = buckets.get(rel_type)
            if bucket is not None:
                buckets[rel_type] = list(bucket)
            owned.add(rel_type)

    def _own_rel_prop_index(self, key: str) -> None:
        if key not in self._owned_rel_prop:
            self._rel_prop_indexes[key] = set(self._rel_prop_indexes[key])
            self._owned_rel_prop.add(key)

    def ensure_private_entities(self) -> None:
        """Clone every still-shared node/relationship object.

        Required before code that mutates entities *directly* (the
        incremental renumber reassigns ``.id`` on every entity and
        swaps the top-level containers wholesale) — without this, that
        code would corrupt the frozen base version readers are pinned
        to.  Marks the transaction non-journalable, forcing a
        checkpoint commit when a WAL is attached.
        """
        for node_id, node in self._nodes.items():
            if node_id not in self._owned_nodes:
                clone = Node.__new__(Node)
                clone.id = node.id
                clone.labels = node.labels
                clone.properties = dict(node.properties)
                self._nodes[node_id] = clone
        self._owned_nodes = set(self._nodes)
        for rel_id, rel in self._rels.items():
            if rel_id not in self._owned_rels:
                clone = Relationship.__new__(Relationship)
                clone.id = rel.id
                clone.type = rel.type
                clone.start_id = rel.start_id
                clone.end_id = rel.end_id
                clone.properties = dict(rel.properties)
                self._rels[rel_id] = clone
        self._owned_rels = set(self._rels)
        self._journalable = False

    def cow_stats(self) -> Dict[str, int]:
        """How much this transaction actually privatized — the
        benchmark's O(changed buckets) evidence."""
        return {
            "owned_nodes": len(self._owned_nodes),
            "owned_rels": len(self._owned_rels),
            "owned_out_lists": len(self._owned_out),
            "owned_in_lists": len(self._owned_in),
            "owned_out_buckets": sum(
                len(s) for s in self._owned_out_buckets.values()
            ),
            "owned_in_buckets": sum(
                len(s) for s in self._owned_in_buckets.values()
            ),
            "ops": len(self._ops),
        }

    # -- journalled mutator overrides -----------------------------------

    def create_node(self, labels=(), properties=None) -> Node:
        node = super().create_node(labels, properties)
        self._owned_nodes.add(node.id)
        self._owned_out.add(node.id)
        self._owned_in.add(node.id)
        self._owned_out_buckets.setdefault(node.id, set())
        self._owned_in_buckets.setdefault(node.id, set())
        self._ops.append(
            ("n+", node.id, sorted(node.labels), dict(node.properties))
        )
        return node

    def create_relationship(
        self, rel_type, start, end, properties=None
    ) -> Relationship:
        start_id = start.id if isinstance(start, Node) else start
        end_id = end.id if isinstance(end, Node) else end
        if start_id in self._nodes:
            self._own_out_list(start_id)
            self._own_out_bucket(start_id, rel_type)
        if end_id in self._nodes:
            self._own_in_list(end_id)
            self._own_in_bucket(end_id, rel_type)
        if properties:
            for key in self._rel_prop_indexes:
                if key in properties:
                    self._own_rel_prop_index(key)
        rel = super().create_relationship(rel_type, start_id, end_id, properties)
        self._owned_rels.add(rel.id)
        self._ops.append(
            ("r+", rel.id, rel.type, rel.start_id, rel.end_id,
             dict(rel.properties))
        )
        return rel

    def delete_relationship(self, rel) -> None:
        rel_id = rel.id if isinstance(rel, Relationship) else rel
        found = self._rels.get(rel_id)
        if found is not None:
            self._own_out_list(found.start_id)
            self._own_in_list(found.end_id)
            self._own_out_bucket(found.start_id, found.type)
            self._own_in_bucket(found.end_id, found.type)
            for key, ids in self._rel_prop_indexes.items():
                if rel_id in ids:
                    self._own_rel_prop_index(key)
        super().delete_relationship(rel_id)
        self._owned_rels.discard(rel_id)
        self._ops.append(("r-", rel_id))

    def delete_node(self, node, detach: bool = False) -> None:
        node_id = node.id if isinstance(node, Node) else node
        super().delete_node(node_id, detach)  # rel deletes journal themselves
        self._owned_nodes.discard(node_id)
        self._owned_out.discard(node_id)
        self._owned_in.discard(node_id)
        self._owned_out_buckets.pop(node_id, None)
        self._owned_in_buckets.pop(node_id, None)
        self._ops.append(("n-", node_id))

    def set_node_property(self, node, key, value) -> None:
        node_id = node.id if isinstance(node, Node) else node
        if node_id in self._nodes:
            self._own_node(node_id)
        super().set_node_property(node_id, key, value)
        self._ops.append(
            ("np", node_id, key, self._nodes[node_id].properties[key])
        )

    def set_relationship_property(self, rel, key, value) -> None:
        rel_id = rel.id if isinstance(rel, Relationship) else rel
        if rel_id in self._rels:
            self._own_rel(rel_id)
            if key in self._rel_prop_indexes:
                self._own_rel_prop_index(key)
        super().set_relationship_property(rel_id, key, value)
        self._ops.append(
            ("rp", rel_id, key, self._rels[rel_id].properties[key])
        )

    def create_index(self, label, key) -> None:
        super().create_index(label, key)
        self._ops.append(("ix", label, key))

    def create_relationship_index(self, key) -> None:
        existed = key in self._rel_prop_indexes
        super().create_relationship_index(key)
        if not existed:
            self._owned_rel_prop.add(key)
        self._ops.append(("rix", key))


# ---------------------------------------------------------------------------
# transactions and the version chain
# ---------------------------------------------------------------------------


class WriteTransaction:
    """Handle for one write transaction; obtained from
    :meth:`VersionedGraph.write_txn`."""

    def __init__(self, owner: "VersionedGraph", graph: _CowPropertyGraph):
        self._owner = owner
        self.graph: PropertyGraph = graph
        self._done = False
        self._aborted = False
        self._checkpoint = False

    @property
    def closed(self) -> bool:
        return self._done

    @property
    def aborted(self) -> bool:
        return self._aborted

    def mark_checkpoint(self) -> None:
        """Declare the op journal unfaithful (something mutated the
        graph outside the public mutators); a WAL-backed commit then
        compacts instead of appending."""
        self._checkpoint = True

    def replace(self, graph: PropertyGraph) -> None:
        """Commit an externally built graph as the next version (the
        cold-rebuild fallback path).  Implies a checkpoint."""
        if self._done:
            raise GraphError("transaction already closed")
        self.graph = graph
        self._checkpoint = True

    def ensure_private_entities(self) -> None:
        graph = self.graph
        if isinstance(graph, _CowPropertyGraph):
            graph.ensure_private_entities()
        self._checkpoint = True

    def cow_stats(self) -> Dict[str, int]:
        graph = self.graph
        if isinstance(graph, _CowPropertyGraph):
            return graph.cow_stats()
        return {}

    def commit(self) -> int:
        return self._owner._commit(self)

    def abort(self) -> None:
        self._owner._abort(self)


class VersionedGraph:
    """A chain of immutable graph versions with one serialized writer.

    ``compact_every=N`` folds the WAL into a fresh base snapshot every
    N journalled commits (0 = only when a commit is non-journalable).
    """

    def __init__(
        self,
        graph: Optional[PropertyGraph] = None,
        *,
        wal: Optional[WriteAheadLog] = None,
        version: int = 0,
        compact_every: int = 0,
    ) -> None:
        base = graph if graph is not None else PropertyGraph()
        base.freeze()
        base._mvcc_version = version
        self._current = base
        self._version = version
        self._wal = wal
        self._compact_every = compact_every
        self._txns_since_compact = 0
        self._write_lock = threading.RLock()

    @classmethod
    def open_durable(
        cls,
        wal_path: str,
        *,
        fsync: bool = True,
        compact_every: int = 64,
    ) -> "VersionedGraph":
        """Open (or initialise) a WAL-backed graph at ``wal_path``,
        recovering to the last durable commit when the log exists."""
        if os.path.exists(wal_path):
            wal = WriteAheadLog.attach(wal_path, fsync=fsync)
            replayed = wal.replay(recover=True)
            return cls(
                replayed.graph,
                wal=wal,
                version=replayed.version,
                compact_every=compact_every,
            )
        directory = os.path.dirname(wal_path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        graph = PropertyGraph()
        wal = WriteAheadLog.create(wal_path, graph, 0, fsync=fsync)
        return cls(graph, wal=wal, version=0, compact_every=compact_every)

    # -- reading --------------------------------------------------------

    @property
    def version(self) -> int:
        return self._version

    @property
    def wal(self) -> Optional[WriteAheadLog]:
        return self._wal

    def begin_snapshot(self) -> PropertyGraph:
        """Pin the last committed version.

        One attribute read — atomic in CPython, no lock taken, never
        blocked by the writer.  The returned graph is frozen; it stays
        valid (and unchanged) for as long as the caller holds it,
        whatever the writer commits afterwards.
        """
        return self._current

    # -- writing --------------------------------------------------------

    @contextmanager
    def write_txn(self) -> Iterator[WriteTransaction]:
        """The single-writer staging overlay as a context manager:
        commits on clean exit (unless already committed/aborted),
        aborts on exception.  Writers are serialized against each
        other; readers are unaffected either way."""
        with self._write_lock:
            txn = WriteTransaction(self, _CowPropertyGraph(self._current))
            try:
                yield txn
            except BaseException:
                if not txn.closed:
                    txn.abort()
                raise
            if not txn.closed:
                txn.commit()

    def _commit(self, txn: WriteTransaction) -> int:
        with self._write_lock:
            if txn.closed:
                raise GraphError("transaction already closed")
            graph = txn.graph
            new_version = self._version + 1
            graph.freeze()
            if self._wal is not None:
                journalable = (
                    not txn._checkpoint
                    and getattr(graph, "_journalable", False)
                )
                due = (
                    self._compact_every
                    and self._txns_since_compact + 1 >= self._compact_every
                )
                if journalable and not due:
                    self._wal.append_txn(new_version, graph._ops)
                    self._txns_since_compact += 1
                else:
                    self._wal.compact(graph, new_version)
                    self._txns_since_compact = 0
            graph._mvcc_version = new_version
            # the publication point: one atomic reference store — after
            # this line every new begin_snapshot() sees the new version
            self._current = graph
            self._version = new_version
            txn._done = True
            return new_version

    def _abort(self, txn: WriteTransaction) -> None:
        txn._done = True
        txn._aborted = True

    def compact(self) -> None:
        """Fold the WAL into a fresh base snapshot now."""
        with self._write_lock:
            if self._wal is None:
                raise GraphError("no write-ahead log attached")
            self._wal.compact(self._current, self._version)
            self._txns_since_compact = 0

    def stats(self) -> Dict[str, Any]:
        current = self._current
        return {
            "version": self._version,
            "nodes": current.node_count,
            "relationships": current.relationship_count,
            "wal": self._wal.path if self._wal is not None else None,
        }

"""Guided graph traversal — the *tabby-path-finder* substrate.

The paper implements gadget-chain search as a Neo4j traversal plugin
built from two callbacks: an **Expander** that decides which
relationships extend the current path (carrying per-path state, the
Trigger_Condition), and an **Evaluator** that decides whether a path is
a result and whether expansion continues (Algorithms 2 and 3).  This
module reproduces that framework over :class:`PropertyGraph`.

An expander is ``expand(graph, path, state) -> iterable of
(relationship, next_node, next_state)``; an evaluator is
``evaluate(graph, path, state) -> Evaluation``.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import GraphError
from repro.graphdb.graph import Node, PropertyGraph, Relationship

__all__ = [
    "Path",
    "Evaluation",
    "Uniqueness",
    "Direction",
    "traverse",
    "type_expander",
]


class Direction(enum.Enum):
    """Traversal direction relative to the current node."""

    OUTGOING = "outgoing"
    INCOMING = "incoming"
    BOTH = "both"


class Path:
    """An immutable alternating node/relationship sequence."""

    __slots__ = ("_nodes", "_rels")

    def __init__(self, nodes: Sequence[Node], rels: Sequence[Relationship] = ()):
        if len(nodes) != len(rels) + 1:
            raise GraphError(
                f"path needs len(nodes) == len(rels)+1, got {len(nodes)}/{len(rels)}"
            )
        self._nodes: Tuple[Node, ...] = tuple(nodes)
        self._rels: Tuple[Relationship, ...] = tuple(rels)

    @classmethod
    def single(cls, node: Node) -> "Path":
        return cls([node])

    @property
    def nodes(self) -> Tuple[Node, ...]:
        return self._nodes

    @property
    def relationships(self) -> Tuple[Relationship, ...]:
        return self._rels

    @property
    def start_node(self) -> Node:
        return self._nodes[0]

    @property
    def end_node(self) -> Node:
        """tabby-path-finder's ``getEndNode``."""
        return self._nodes[-1]

    @property
    def length(self) -> int:
        """Number of relationships (``getdepth`` in Algorithm 3)."""
        return len(self._rels)

    def extend(self, rel: Relationship, node: Node) -> "Path":
        return Path(self._nodes + (node,), self._rels + (rel,))

    def contains_node(self, node: Node) -> bool:
        return any(n.id == node.id for n in self._nodes)

    def contains_relationship(self, rel: Relationship) -> bool:
        return any(r.id == rel.id for r in self._rels)

    @property
    def last_relationship(self) -> Optional[Relationship]:
        return self._rels[-1] if self._rels else None

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        parts = [f"({self._nodes[0].id})"]
        for rel, node in zip(self._rels, self._nodes[1:]):
            parts.append(f"-[:{rel.type}]-({node.id})")
        return "<Path " + "".join(parts) + ">"


class Evaluation(enum.Enum):
    """Neo4j-style evaluator verdicts."""

    INCLUDE_AND_CONTINUE = ("include", "continue")
    INCLUDE_AND_PRUNE = ("include", "prune")
    EXCLUDE_AND_CONTINUE = ("exclude", "continue")
    EXCLUDE_AND_PRUNE = ("exclude", "prune")

    @property
    def includes(self) -> bool:
        return self.value[0] == "include"

    @property
    def continues(self) -> bool:
        return self.value[1] == "continue"


class Uniqueness(enum.Enum):
    """How revisiting nodes is constrained during traversal."""

    #: a node may appear at most once in any single path (cycle guard)
    NODE_PATH = "node_path"
    #: a relationship may appear at most once in any single path; nodes
    #: may repeat (needed for chains that pass through the same
    #: interface-declaration node twice, e.g. ChainedTransformer)
    RELATIONSHIP_PATH = "relationship_path"
    #: a node may be visited at most once in the whole traversal
    #: (GadgetInspector's cost-saving shortcut — loses chains)
    NODE_GLOBAL = "node_global"
    #: no constraint (bounded only by the evaluator's depth check)
    NONE = "none"


Expander = Callable[
    [PropertyGraph, Path, Any], Iterable[Tuple[Relationship, Node, Any]]
]
Evaluator = Callable[[PropertyGraph, Path, Any], Evaluation]


def type_expander(
    types: Optional[Sequence[str]] = None,
    direction: Direction = Direction.OUTGOING,
) -> Expander:
    """A plain expander following relationships of the given types.

    State is passed through unchanged; use a custom expander (like the
    gadget-chain Expander of Algorithm 2) when state must evolve.
    """

    wanted = set(types) if types is not None else None

    def expand(
        graph: PropertyGraph, path: Path, state: Any
    ) -> Iterable[Tuple[Relationship, Node, Any]]:
        node = path.end_node
        rels: List[Relationship] = []
        if direction in (Direction.OUTGOING, Direction.BOTH):
            rels.extend(graph.out_relationships(node))
        if direction in (Direction.INCOMING, Direction.BOTH):
            rels.extend(graph.in_relationships(node))
        for rel in rels:
            if wanted is not None and rel.type not in wanted:
                continue
            yield rel, graph.node(rel.other_id(node.id)), state

    return expand


def traverse(
    graph: PropertyGraph,
    start: "Node | Sequence[Node]",
    expander: Expander,
    evaluator: Evaluator,
    initial_state: Any = None,
    uniqueness: Uniqueness = Uniqueness.NODE_PATH,
    max_results: Optional[int] = None,
) -> Iterator[Tuple[Path, Any]]:
    """Depth-first guided traversal.

    Yields ``(path, state)`` pairs the evaluator marked as included.
    The evaluator is consulted for every visited path (including the
    single-node start paths); the expander is only asked to expand paths
    the evaluator allowed to continue.
    """
    starts: List[Node] = [start] if isinstance(start, Node) else list(start)
    visited_global: Set[int] = set()
    yielded = 0

    stack: List[Tuple[Path, Any]] = []
    for node in reversed(starts):
        stack.append((Path.single(node), initial_state))

    while stack:
        path, state = stack.pop()
        end = path.end_node
        if uniqueness is Uniqueness.NODE_GLOBAL:
            if end.id in visited_global and path.length > 0:
                continue
            visited_global.add(end.id)
        verdict = evaluator(graph, path, state)
        if verdict.includes:
            yield path, state
            yielded += 1
            if max_results is not None and yielded >= max_results:
                return
        if not verdict.continues:
            continue
        expansions = list(expander(graph, path, state))
        for rel, node, next_state in reversed(expansions):
            if uniqueness is Uniqueness.NODE_PATH and path.contains_node(node):
                continue
            if uniqueness is Uniqueness.RELATIONSHIP_PATH and path.contains_relationship(rel):
                continue
            stack.append((path.extend(rel, node), next_state))

"""Guided graph traversal — the *tabby-path-finder* substrate.

The paper implements gadget-chain search as a Neo4j traversal plugin
built from two callbacks: an **Expander** that decides which
relationships extend the current path (carrying per-path state, the
Trigger_Condition), and an **Evaluator** that decides whether a path is
a result and whether expansion continues (Algorithms 2 and 3).  This
module reproduces that framework over :class:`PropertyGraph`.

An expander is ``expand(graph, path, state) -> iterable of
(relationship, next_node, next_state)``; an evaluator is
``evaluate(graph, path, state) -> Evaluation``.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import GraphError
from repro.graphdb.graph import Node, PropertyGraph, Relationship

__all__ = [
    "Path",
    "Evaluation",
    "Uniqueness",
    "Direction",
    "traverse",
    "type_expander",
]


class Direction(enum.Enum):
    """Traversal direction relative to the current node."""

    OUTGOING = "outgoing"
    INCOMING = "incoming"
    BOTH = "both"


class Path:
    """An immutable alternating node/relationship sequence.

    Internally a *persistent* (structurally shared) cons list: each path
    holds its end node, the relationship that reached it, and a parent
    pointer, so :meth:`extend` is O(1) instead of copying both tuples.
    A DFS expanding a frontier of N paths of depth D therefore allocates
    O(N) cells, not O(N·D) tuple entries.  :attr:`nodes` /
    :attr:`relationships` materialise (and cache) the tuples on demand;
    the membership checks walk the parent chain without allocating.
    """

    __slots__ = ("_parent", "_rel", "_end", "_start", "_length", "_seq")

    def __init__(self, nodes: Sequence[Node], rels: Sequence[Relationship] = ()):
        nodes = tuple(nodes)
        rels = tuple(rels)
        if len(nodes) != len(rels) + 1:
            raise GraphError(
                f"path needs len(nodes) == len(rels)+1, got {len(nodes)}/{len(rels)}"
            )
        parent: Optional[Path] = None
        for i, rel in enumerate(rels):
            link = Path.__new__(Path)
            link._parent = parent
            link._rel = rels[i - 1] if i else None
            link._end = nodes[i]
            link._start = nodes[0]
            link._length = i
            link._seq = None
            parent = link
        self._parent = parent
        self._rel = rels[-1] if rels else None
        self._end = nodes[-1]
        self._start = nodes[0]
        self._length = len(rels)
        self._seq: Optional[Tuple[Tuple[Node, ...], Tuple[Relationship, ...]]] = (
            nodes,
            rels,
        )

    @classmethod
    def single(cls, node: Node) -> "Path":
        return cls([node])

    def _materialize(self) -> Tuple[Tuple[Node, ...], Tuple[Relationship, ...]]:
        if self._seq is None:
            nodes: List[Node] = []
            rels: List[Relationship] = []
            link: Optional[Path] = self
            while link is not None:
                nodes.append(link._end)
                if link._rel is not None:
                    rels.append(link._rel)
                link = link._parent
            nodes.reverse()
            rels.reverse()
            self._seq = (tuple(nodes), tuple(rels))
        return self._seq

    @property
    def nodes(self) -> Tuple[Node, ...]:
        return self._materialize()[0]

    @property
    def relationships(self) -> Tuple[Relationship, ...]:
        return self._materialize()[1]

    @property
    def start_node(self) -> Node:
        return self._start

    @property
    def end_node(self) -> Node:
        """tabby-path-finder's ``getEndNode``."""
        return self._end

    @property
    def length(self) -> int:
        """Number of relationships (``getdepth`` in Algorithm 3)."""
        return self._length

    def extend(self, rel: Relationship, node: Node) -> "Path":
        child = Path.__new__(Path)
        child._parent = self
        child._rel = rel
        child._end = node
        child._start = self._start
        child._length = self._length + 1
        child._seq = None
        return child

    def contains_node(self, node: Node) -> bool:
        node_id = node.id
        link: Optional[Path] = self
        while link is not None:
            if link._end.id == node_id:
                return True
            link = link._parent
        return False

    def contains_relationship(self, rel: Relationship) -> bool:
        rel_id = rel.id
        link: Optional[Path] = self
        while link is not None:
            if link._rel is not None and link._rel.id == rel_id:
                return True
            link = link._parent
        return False

    @property
    def last_relationship(self) -> Optional[Relationship]:
        return self._rel

    def __iter__(self) -> Iterator[Node]:
        return iter(self.nodes)

    def __len__(self) -> int:
        return self._length + 1

    def __repr__(self) -> str:
        nodes, rels = self._materialize()
        parts = [f"({nodes[0].id})"]
        for rel, node in zip(rels, nodes[1:]):
            parts.append(f"-[:{rel.type}]-({node.id})")
        return "<Path " + "".join(parts) + ">"


class Evaluation(enum.Enum):
    """Neo4j-style evaluator verdicts."""

    INCLUDE_AND_CONTINUE = ("include", "continue")
    INCLUDE_AND_PRUNE = ("include", "prune")
    EXCLUDE_AND_CONTINUE = ("exclude", "continue")
    EXCLUDE_AND_PRUNE = ("exclude", "prune")

    @property
    def includes(self) -> bool:
        return self.value[0] == "include"

    @property
    def continues(self) -> bool:
        return self.value[1] == "continue"


class Uniqueness(enum.Enum):
    """How revisiting nodes is constrained during traversal."""

    #: a node may appear at most once in any single path (cycle guard)
    NODE_PATH = "node_path"
    #: a relationship may appear at most once in any single path; nodes
    #: may repeat (needed for chains that pass through the same
    #: interface-declaration node twice, e.g. ChainedTransformer)
    RELATIONSHIP_PATH = "relationship_path"
    #: a node may be visited at most once in the whole traversal
    #: (GadgetInspector's cost-saving shortcut — loses chains)
    NODE_GLOBAL = "node_global"
    #: no constraint (bounded only by the evaluator's depth check)
    NONE = "none"


Expander = Callable[
    [PropertyGraph, Path, Any], Iterable[Tuple[Relationship, Node, Any]]
]
Evaluator = Callable[[PropertyGraph, Path, Any], Evaluation]


def type_expander(
    types: Optional[Sequence[str]] = None,
    direction: Direction = Direction.OUTGOING,
) -> Expander:
    """A plain expander following relationships of the given types.

    State is passed through unchanged; use a custom expander (like the
    gadget-chain Expander of Algorithm 2) when state must evolve.

    Wanted types are resolved through the graph's type-bucketed
    adjacency index (a dict hit per type) instead of filtering every
    incident relationship in Python.  Relationship ids increase in
    insertion order, so merging buckets by id reproduces the exact
    order a filtered scan of the flat adjacency list used to yield.
    """

    wanted = list(dict.fromkeys(types)) if types is not None else None

    def typed(getter, node: Node) -> List[Relationship]:
        if wanted is None:
            return getter(node)
        if len(wanted) == 1:
            return getter(node, wanted[0])
        rels: List[Relationship] = []
        for rel_type in wanted:
            rels.extend(getter(node, rel_type))
        rels.sort(key=lambda r: r.id)
        return rels

    def expand(
        graph: PropertyGraph, path: Path, state: Any
    ) -> Iterable[Tuple[Relationship, Node, Any]]:
        node = path.end_node
        rels: List[Relationship] = []
        if direction in (Direction.OUTGOING, Direction.BOTH):
            rels.extend(typed(graph.out_relationships, node))
        if direction in (Direction.INCOMING, Direction.BOTH):
            rels.extend(typed(graph.in_relationships, node))
        for rel in rels:
            yield rel, graph.node(rel.other_id(node.id)), state

    return expand


def traverse(
    graph: PropertyGraph,
    start: "Node | Sequence[Node]",
    expander: Expander,
    evaluator: Evaluator,
    initial_state: Any = None,
    uniqueness: Uniqueness = Uniqueness.NODE_PATH,
    max_results: Optional[int] = None,
) -> Iterator[Tuple[Path, Any]]:
    """Depth-first guided traversal.

    Yields ``(path, state)`` pairs the evaluator marked as included.
    The evaluator is consulted for every visited path (including the
    single-node start paths); the expander is only asked to expand paths
    the evaluator allowed to continue.
    """
    starts: List[Node] = [start] if isinstance(start, Node) else list(start)
    visited_global: Set[int] = set()
    yielded = 0

    stack: List[Tuple[Path, Any]] = []
    for node in reversed(starts):
        stack.append((Path.single(node), initial_state))

    while stack:
        path, state = stack.pop()
        end = path.end_node
        if uniqueness is Uniqueness.NODE_GLOBAL:
            if end.id in visited_global and path.length > 0:
                continue
            visited_global.add(end.id)
        verdict = evaluator(graph, path, state)
        if verdict.includes:
            yield path, state
            yielded += 1
            if max_results is not None and yielded >= max_results:
                return
        if not verdict.continues:
            continue
        expansions = list(expander(graph, path, state))
        for rel, node, next_state in reversed(expansions):
            if uniqueness is Uniqueness.NODE_PATH and path.contains_node(node):
                continue
            if uniqueness is Uniqueness.RELATIONSHIP_PATH and path.contains_relationship(rel):
                continue
            stack.append((path.extend(rel, node), next_state))

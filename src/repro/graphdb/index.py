"""Label and property indexes for the property graph.

Mirrors Neo4j's indexing model at the granularity this project needs:

* every label is indexed automatically (``nodes_with_label``), and
* explicit single-property indexes can be created per label
  (``create_index``), after which exact-match lookups are O(1).

Tabby's gadget-chain queries hinge on fast lookup of method nodes by
``SIGNATURE``/``NAME`` and of sink/source flags, so the CPG builder
creates those indexes up front.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.errors import GraphError

if TYPE_CHECKING:  # pragma: no cover
    from repro.graphdb.graph import Node

__all__ = ["IndexManager"]


def _index_key(value: Any) -> Any:
    """Normalise a property value into something hashable."""
    if isinstance(value, list):
        return tuple(_index_key(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _index_key(v)) for k, v in value.items()))
    return value


class IndexManager:
    """Maintains label and (label, property) indexes over nodes."""

    def __init__(self) -> None:
        self._by_label: Dict[str, Set[int]] = {}
        # (label, key) -> value -> node ids
        self._property_indexes: Dict[Tuple[str, str], Dict[Any, Set[int]]] = {}

    # -- schema -----------------------------------------------------------

    def create_index(
        self, label: str, key: str, nodes: Iterable["Node"] = ()
    ) -> None:
        """Declare a property index; call before or after bulk loading.

        Creating an index that already exists is a no-op.  Nodes indexed
        *before* the declaration are not revisited unless passed via
        ``nodes`` — either declare indexes before loading (as the CPG
        builder does) or use :meth:`PropertyGraph.create_index`, which
        backfills automatically.  The query planner relies on indexes
        being complete for the nodes they cover.
        """
        if not label or not key:
            raise GraphError("index needs a label and a property key")
        table = self._property_indexes.setdefault((label, key), {})
        for node in nodes:
            if label in node.labels and key in node.properties:
                table.setdefault(_index_key(node.properties[key]), set()).add(
                    node.id
                )

    def has_index(self, label: str, key: str) -> bool:
        return (label, key) in self._property_indexes

    def indexes(self) -> List[Tuple[str, str]]:
        return sorted(self._property_indexes)

    # -- maintenance -----------------------------------------------------------

    def index_node(self, node: "Node") -> None:
        for label in node.labels:
            self._by_label.setdefault(label, set()).add(node.id)
            for (ilabel, key), table in self._property_indexes.items():
                if ilabel == label and key in node.properties:
                    table.setdefault(_index_key(node.properties[key]), set()).add(
                        node.id
                    )

    def unindex_node(self, node: "Node") -> None:
        """Remove a node from the label and property indexes.

        Emptied value entries and label buckets are pruned, not left
        behind: :meth:`label_counts` and the drained-entry scans stay
        exact after bulk deletions (the incremental CPG patch deletes
        whole class slices), instead of accumulating ghost zero-count
        labels and empty hit sets.
        """
        for label in node.labels:
            bucket = self._by_label.get(label)
            if bucket is not None:
                bucket.discard(node.id)
                if not bucket:
                    del self._by_label[label]
            for (ilabel, key), table in self._property_indexes.items():
                if ilabel == label and key in node.properties:
                    ikey = _index_key(node.properties[key])
                    entry = table.get(ikey)
                    if entry is not None:
                        entry.discard(node.id)
                        if not entry:
                            del table[ikey]

    # -- queries ------------------------------------------------------------------

    def nodes_with_label(self, label: str) -> Set[int]:
        return set(self._by_label.get(label, ()))

    def lookup(self, label: str, key: str, value: Any) -> Optional[Set[int]]:
        """Node ids for an exact property match, or None when no index
        covers (label, key)."""
        table = self._property_indexes.get((label, key))
        if table is None:
            return None
        return set(table.get(_index_key(value), ()))

    def count(self, label: str, key: str, value: Any) -> Optional[int]:
        """Size of an exact-match hit set without copying it, or None
        when no index covers (label, key) — the planner's cost probe."""
        table = self._property_indexes.get((label, key))
        if table is None:
            return None
        return len(table.get(_index_key(value), ()))

    def label_count(self, label: str) -> int:
        """Number of nodes carrying ``label`` (0 for unknown labels)."""
        return len(self._by_label.get(label, ()))

    def label_counts(self) -> Dict[str, int]:
        return {label: len(ids) for label, ids in self._by_label.items()}

"""Embedded property-graph database (the Neo4j replacement).

* :mod:`repro.graphdb.graph` — nodes, relationships, adjacency
* :mod:`repro.graphdb.index` — label and property indexes
* :mod:`repro.graphdb.query` — Cypher-subset query language
* :mod:`repro.graphdb.plan` — cost-based query planner + optimized
  executor (EXPLAIN/PROFILE)
* :mod:`repro.graphdb.traversal` — expander/evaluator traversal
  framework (the *tabby-path-finder* substrate)
* :mod:`repro.graphdb.storage` — persistence front end (v1 JSON and
  v2 binary, auto-detected on read)
* :mod:`repro.graphdb.snapshot` — the v2 binary columnar snapshot
  codec (string table, packed columns, checksummed sections)
* :mod:`repro.graphdb.mvcc` — copy-on-write MVCC version chain
  (wait-free snapshot reads, single serialized writer)
* :mod:`repro.graphdb.wal` — CRC-framed write-ahead log with crash
  recovery and compaction into v3 base snapshots
"""

from repro.graphdb.graph import Node, PropertyGraph, Relationship
from repro.graphdb.mvcc import VersionedGraph, WriteTransaction, version_of
from repro.graphdb.plan import QueryPlan, build_plan
from repro.graphdb.query import QueryResult, run_query
from repro.graphdb.snapshot import fingerprint_digest, graph_fingerprint
from repro.graphdb.storage import load_graph, save_graph
from repro.graphdb.wal import WriteAheadLog
from repro.graphdb.traversal import (
    Direction,
    Evaluation,
    Path,
    Uniqueness,
    traverse,
    type_expander,
)

__all__ = [
    "PropertyGraph",
    "Node",
    "Relationship",
    "run_query",
    "QueryResult",
    "QueryPlan",
    "build_plan",
    "save_graph",
    "load_graph",
    "graph_fingerprint",
    "fingerprint_digest",
    "VersionedGraph",
    "WriteTransaction",
    "WriteAheadLog",
    "version_of",
    "Path",
    "Evaluation",
    "Uniqueness",
    "Direction",
    "traverse",
    "type_expander",
]

"""Command-line interface (the ``tabby`` entry point).

Subcommands::

    tabby analyze PATH [PATH...]     build a CPG from jars, save it
                                     (--format v3|binary|json, default v3)
    tabby chains PATH [PATH...]      find (and optionally verify) chains
    tabby chains --cpg FILE          ... over a persisted CPG (warm start)
    tabby diff OLD NEW               compare chains across two classpath
                                     versions (appeared / disappeared /
                                     survived, incremental re-analysis)
    tabby lint [PATH...] [--corpus]  dataflow-based IR lint (repro.lint)
    tabby query CPG "MATCH ..."      run a Cypher-subset query on a CPG
    tabby bench {table8,table9,table10,table11}
                                     regenerate an evaluation table
    tabby corpus export DIR          write the synthetic corpus as jars
    tabby corpus list                list components and scenes
    tabby serve                      run the analysis-as-a-service HTTP
                                     API (see repro.serve)

``PATH`` arguments are jasm jar files or directories of them (see
``repro.jvm.jar``); ``tabby corpus export`` produces a ready-made set.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.core import SourceCatalog, Tabby
from repro.errors import ReproError

__all__ = ["main", "build_parser"]


def _workers_arg(value: str) -> int:
    """Worker counts must be >= 1; 'auto' spells one-per-CPU.

    A bare ``0`` used to mean auto, which made ``--workers 0`` silently
    legal everywhere and negative counts fall through to the pools;
    both now fail argument parsing (exit 2) across analyze/chains/
    bench/serve alike.
    """
    if value == "auto":
        return 0
    try:
        count = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid worker count: {value!r}")
    if count < 1:
        raise argparse.ArgumentTypeError(
            "worker count must be >= 1 (or 'auto' for one per CPU)"
        )
    return count


def _port_arg(value: str) -> int:
    try:
        port = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid port: {value!r}")
    if not 0 <= port <= 65535:
        raise argparse.ArgumentTypeError("port must be in [0, 65535]")
    return port


def _positive_float_arg(value: str) -> float:
    try:
        number = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid number: {value!r}")
    if number <= 0:
        raise argparse.ArgumentTypeError("value must be positive")
    return number


def _positive_int_arg(value: str) -> int:
    try:
        number = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid count: {value!r}")
    if number < 1:
        raise argparse.ArgumentTypeError("value must be >= 1")
    return number


def _nonnegative_int_arg(value: str) -> int:
    try:
        number = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid count: {value!r}")
    if number < 0:
        raise argparse.ArgumentTypeError("value must be >= 0")
    return number


def _refine_modes_arg(value: str) -> tuple:
    """Comma-separated subset of the refinement modes (rta,taint)."""
    from repro.analysis.chain_refiner import REFINE_MODES

    modes = tuple(m.strip() for m in value.split(",") if m.strip())
    bad = [m for m in modes if m not in REFINE_MODES]
    if bad or not modes:
        raise argparse.ArgumentTypeError(
            f"invalid refinement mode(s): {value!r} "
            f"(choose from {', '.join(REFINE_MODES)})"
        )
    # canonical order, matching ChainRefiner and the serve cache key
    return tuple(m for m in REFINE_MODES if m in modes)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tabby",
        description="Gadget-chain detection for Java deserialization "
        "vulnerabilities (Tabby reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="build and persist a CPG")
    analyze.add_argument("classpath", nargs="+", help="jar files or directories")
    analyze.add_argument("-o", "--output", default=None,
                         help="output path (default: tabby.cpg for v3/binary, "
                         "tabby.cpg.json.gz for json)")
    analyze.add_argument("--format", choices=("v3", "binary", "json"), default="v3",
                         help="snapshot format: 'v3' is the mmap-able "
                         "zero-copy snapshot (default; opens in O(header) and "
                         "shares one physical copy across processes); "
                         "'binary' is the columnar v2 snapshot; 'json' emits "
                         "the byte-stable v1 document for diffing. Readers "
                         "auto-detect every format.")
    analyze.add_argument("--sources", choices=("native", "extended"), default="extended")
    analyze.add_argument("--validate", action="store_true",
                         help="run Soot-style body/linkage validation first")
    analyze.add_argument("--check-cpg", action="store_true",
                         help="verify CPG structural invariants after the build")
    analyze.add_argument("--refine", type=_refine_modes_arg, default=None,
                         metavar="MODES",
                         help="comma-separated refinement passes to run "
                         "before saving: 'rta' marks type-unreachable "
                         "dispatch edges (persisted in the snapshot), "
                         "'taint' precomputes field-sensitive taint "
                         "summaries (warming --cache-dir when set)")
    _add_build_flags(analyze)

    chains = sub.add_parser("chains", help="find gadget chains")
    chains.add_argument("classpath", nargs="*")
    chains.add_argument("--cpg", default=None, metavar="FILE",
                        help="search a CPG persisted by 'tabby analyze' "
                        "(either format, auto-detected) instead of building "
                        "one from a classpath")
    chains.add_argument("--sources", choices=("native", "extended"), default="extended")
    _add_build_flags(chains)
    chains.add_argument("--max-depth", type=int, default=12)
    chains.add_argument("--source-filter", default=None, metavar="PACKAGE_PREFIX")
    chains.add_argument("--verify", action="store_true", help="run the PoC oracle")
    chains.add_argument("--payload", action="store_true",
                        help="synthesise exploit recipes (§V-C)")
    chains.add_argument("--check-cpg", action="store_true",
                        help="verify CPG structural invariants after the build")
    chains.add_argument("--refine-guards", action="store_true",
                        help="drop chains behind constant-false guards "
                        "(extension, off by default)")
    chains.add_argument("--refine", type=_refine_modes_arg, default=None,
                        metavar="MODES",
                        help="comma-separated verdict-layer passes "
                        "(rta,taint): refute chains via type "
                        "reachability and/or taint summaries; the "
                        "refined list is a verbatim subset of the "
                        "unrefined one (extension, off by default)")
    chains.add_argument("--baseline-search", action="store_true",
                        help="use the unoptimized search engine (no "
                        "reachability pruning / negative caching); the "
                        "chain set is identical either way")
    chains.add_argument("--json", action="store_true", help="machine-readable output")

    diff = sub.add_parser(
        "diff", help="compare gadget chains across two classpath versions"
    )
    diff.add_argument("old", nargs=1, help="old-version jar file or directory")
    diff.add_argument("new", nargs=1, help="new-version jar file or directory")
    diff.add_argument("--sources", choices=("native", "extended"), default="extended")
    _add_build_flags(diff)
    diff.add_argument("--max-depth", type=int, default=12)
    diff.add_argument("--source-filter", default=None, metavar="PACKAGE_PREFIX")
    diff.add_argument("--refine-guards", action="store_true",
                      help="run guard-feasibility refutation over the "
                      "appeared chains")
    diff.add_argument("--refine", type=_refine_modes_arg, default=None,
                      metavar="MODES",
                      help="comma-separated verdict-layer passes (rta,taint) "
                      "over the appeared chains")
    diff.add_argument("--json", action="store_true",
                      help="emit the versioned tabby-diff/v1 document")

    lint = sub.add_parser(
        "lint", help="dataflow-based lint over jasm classes or the corpus"
    )
    lint.add_argument("classpath", nargs="*", help="jar files or directories")
    lint.add_argument("--corpus", action="store_true",
                      help="lint the built-in synthetic corpus instead")
    lint.add_argument("--json", action="store_true", help="machine-readable output")
    lint.add_argument("--fail-on-error", action="store_true",
                      help="exit 1 if any unsuppressed error-severity issue")
    lint.add_argument("--interprocedural", action="store_true",
                      help="also run the whole-program summary-backed "
                      "rules (taint-unreachable-sink, "
                      "alias-never-instantiated); noisy on decoy-rich "
                      "inputs like the corpus")

    query = sub.add_parser("query", help="query a persisted CPG")
    query.add_argument("cpg", help="a CPG file written by 'tabby analyze'")
    query.add_argument("cypher", help="a Cypher-subset query string")
    query.add_argument("--json", action="store_true")
    query.add_argument("--explain", action="store_true",
                       help="print the query plan instead of running it")
    query.add_argument("--profile", action="store_true",
                       help="run the query and print the plan with "
                       "per-operator row/time counters to stderr")
    query.add_argument("--no-planner", action="store_true",
                       help="use the legacy naive interpreter "
                       "(incompatible with --explain/--profile)")

    bench = sub.add_parser("bench", help="regenerate an evaluation table")
    bench.add_argument(
        "table", choices=("table8", "table9", "table10", "table11")
    )
    bench.add_argument("--components", nargs="*", default=None,
                       help="restrict table9 to these components")
    bench.add_argument("--workers", type=_workers_arg, default=1, metavar="N",
                       help="worker processes for table9 CPG builds "
                       "('auto' = one per CPU)")
    bench.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="shared summary cache for table9 CPG builds")
    bench.add_argument("--refine-guards", action="store_true",
                       help="table9: also report FPR with guard-feasibility "
                       "refinement on (baseline columns unchanged)")

    sinks = sub.add_parser("sinks", help="print the 38-entry sink catalog (Table VII)")
    sinks.add_argument("--category", default=None, help="filter by category")

    serve = sub.add_parser(
        "serve", help="run the analysis-as-a-service HTTP job-queue API"
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1)")
    serve.add_argument("--port", type=_port_arg, default=8787, metavar="P",
                       help="bind port, 0 = ephemeral (default 8787)")
    serve.add_argument("--workers", type=_workers_arg, default=2, metavar="N",
                       help="job worker threads ('auto' = one per CPU, "
                       "default 2)")
    serve.add_argument("--cache-dir", default=None, metavar="DIR",
                       help="persistent per-class summary cache shared by "
                       "every job's pipeline")
    serve.add_argument("--rate", type=_positive_float_arg, default=None,
                       metavar="R",
                       help="per-client submissions per second "
                       "(default: unlimited)")
    serve.add_argument("--burst", type=_positive_float_arg, default=None,
                       metavar="B",
                       help="per-client burst allowance (default: R)")
    serve.add_argument("--store-capacity", type=_positive_int_arg, default=256,
                       metavar="N",
                       help="LRU capacity of the content-hash result store")
    serve.add_argument("--max-queue", type=_nonnegative_int_arg, default=0,
                       metavar="N",
                       help="bound the job queue; a full queue answers 503 "
                       "(0 = unbounded)")
    serve.add_argument("--snapshot-dir", default=None, metavar="DIR",
                       help="serve 'snapshot' jobs over persisted CPG files "
                       "in DIR (v3 snapshots are mmap'd and shared across "
                       "concurrent jobs; disabled when unset)")
    serve.add_argument("--live", default=None, metavar="CPG",
                       help="serve 'live' jobs over one shared MVCC-versioned "
                       "CPG loaded from this snapshot file; jobs pin an "
                       "immutable committed version at submission and "
                       "POST /live/refresh commits on-disk updates as new "
                       "versions without blocking readers (disabled when "
                       "unset)")
    serve.add_argument("--no-drain", action="store_true",
                       help="on shutdown, cancel queued jobs instead of "
                       "draining them")

    corpus = sub.add_parser("corpus", help="synthetic corpus utilities")
    corpus_sub = corpus.add_subparsers(dest="corpus_command", required=True)
    export = corpus_sub.add_parser("export", help="write corpus jars to a directory")
    export.add_argument("directory")
    export.add_argument("--component", default=None, help="one Table IX component")
    corpus_sub.add_parser("list", help="list components and scenes")

    return parser


def _add_build_flags(parser: argparse.ArgumentParser) -> None:
    """CPG-build tuning shared by ``analyze`` and ``chains``."""
    parser.add_argument(
        "--workers", type=_workers_arg, default=1, metavar="N",
        help="shard the summary phase — and, for 'chains', the per-sink "
        "search — across N worker processes ('auto' = one per CPU, 1 = "
        "in-process serial); results are bit-identical to serial",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="persistent per-class summary cache; entries are keyed by "
        "content hash, so stale results are impossible",
    )
    parser.add_argument(
        "--cache-max-mb", type=_positive_float_arg, default=None, metavar="MB",
        help="LRU size cap for --cache-dir: when the cache exceeds this "
        "many megabytes, least-recently-used entries are evicted "
        "(default: unbounded)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="print per-phase timings and cache/worker counters",
    )


def _sources(name: str) -> SourceCatalog:
    return SourceCatalog.native() if name == "native" else SourceCatalog.extended()


def _build_tabby(args: argparse.Namespace) -> Tabby:
    return Tabby(
        sources=_sources(args.sources),
        workers=args.workers,
        cache_dir=args.cache_dir,
        cache_max_mb=getattr(args, "cache_max_mb", None),
    ).load_classpath(args.classpath)


def _print_profile(args: argparse.Namespace, tabby: Tabby) -> None:
    # stderr so --profile composes with --json pipelines
    if args.profile:
        for line in tabby.build_cpg().statistics.profile_lines():
            print(line, file=sys.stderr)


def _check_cpg(tabby: Tabby) -> int:
    """Run the structural verifier; returns the number of violations."""
    issues = tabby.check_cpg()
    for issue in issues:
        print(issue, file=sys.stderr)
    if issues:
        print(
            f"error: CPG verification failed ({len(issues)} issue(s))",
            file=sys.stderr,
        )
    else:
        print("CPG verification: all invariants hold", file=sys.stderr)
    return len(issues)


def _cmd_analyze(args: argparse.Namespace) -> int:
    output = args.output
    if output is None:
        output = "tabby.cpg.json.gz" if args.format == "json" else "tabby.cpg"
    tabby = _build_tabby(args)
    if args.validate:
        from repro.jvm.validate import validate_classes

        issues = validate_classes(list(tabby._classes))
        for issue in issues:
            print(issue, file=sys.stderr)
        if any(i.severity == "error" for i in issues):
            print("error: validation failed", file=sys.stderr)
            return 1
        print(f"validation: {len(issues)} warning(s), no errors")
    cpg = tabby.build_cpg()
    if args.check_cpg and _check_cpg(tabby):
        return 1
    if args.refine and "rta" in args.refine:
        rta = tabby.annotate_rta()
        print(
            f"RTA refinement: {rta.dead_edges} dispatch edge(s) marked dead "
            f"({rta.dead_call_edges} CALL, {rta.dead_alias_edges} ALIAS) "
            f"from {rta.instantiated_count} instantiable type(s)"
        )
    if args.refine and "taint" in args.refine:
        from repro.analysis.taint import TaintSummaryEngine

        engine = TaintSummaryEngine(cpg.hierarchy, cache_dir=args.cache_dir)
        engine.compute_all()
        print(
            f"taint summaries: {engine.stats['methods']} method(s) over "
            f"{engine.stats['sccs']} SCC(s)"
            + (f" (cache warmed: {args.cache_dir})" if args.cache_dir else "")
        )
    tabby.save_cpg(output, format=args.format)
    stats = cpg.statistics
    print(
        f"analyzed {tabby.class_count} classes from {stats.jar_count} jar(s): "
        f"{stats.class_node_count} class nodes, {stats.method_node_count} "
        f"method nodes, {stats.relationship_edge_count} edges "
        f"({stats.pruned_call_sites} uncontrollable call sites pruned) "
        f"in {stats.build_seconds:.2f}s"
    )
    _print_profile(args, tabby)
    print(f"CPG written to {output} ({args.format})")
    return 0


def _cmd_chains(args: argparse.Namespace) -> int:
    if args.cpg is None and not args.classpath:
        print("error: provide jar paths or --cpg", file=sys.stderr)
        return 2
    if args.cpg is not None:
        if args.classpath:
            print("error: --cpg is incompatible with classpath arguments",
                  file=sys.stderr)
            return 2
        needs_classes = [
            flag for flag, on in (
                ("--verify", args.verify),
                ("--payload", args.payload),
                ("--refine-guards", args.refine_guards),
                ("--refine", args.refine),
                ("--check-cpg", args.check_cpg),
            ) if on
        ]
        if needs_classes:
            print(f"error: {', '.join(needs_classes)} need the original "
                  "classes; pass a classpath instead of --cpg",
                  file=sys.stderr)
            return 2
        tabby = Tabby.load_cpg(
            args.cpg,
            sources=_sources(args.sources),
            workers=args.workers,
            cache_dir=args.cache_dir,
        )
    else:
        tabby = _build_tabby(args)
    if args.check_cpg and _check_cpg(tabby):
        return 1
    chains = tabby.find_gadget_chains(
        max_depth=args.max_depth,
        source_filter=args.source_filter,
        refine_guards=args.refine_guards,
        refine=args.refine,
        optimize=not args.baseline_search,
    )
    refining = args.refine_guards or args.refine
    if args.refine_guards:
        # stderr so the refinement note composes with --json pipelines
        guard_refuted = sum(
            1 for _, r in tabby.last_refutations if r.kind == "constant-guard"
        )
        print(
            f"guard refinement: {guard_refuted} chain(s) refuted",
            file=sys.stderr,
        )
    if args.refine:
        stats = tabby.last_refine.statistics
        by_kind = ", ".join(
            f"{kind}: {count}"
            for kind, count in sorted(stats["refuted_by_kind"].items())
        ) or "none"
        print(
            f"refinement ({','.join(args.refine)}): {stats['kept']} kept, "
            f"{stats['refuted']} refuted ({by_kind}), "
            f"{stats['unknown']} unknown",
            file=sys.stderr,
        )
    if refining and tabby.last_refutations:
        # the verdict table: which hop died and why, one line per chain
        for chain, reason in tabby.last_refutations:
            print(
                f"  refuted [{reason.kind}] {reason.caller} -> "
                f"{reason.callee} (step {reason.step_index}): {reason.detail}",
                file=sys.stderr,
            )
    _print_profile(args, tabby)
    if args.profile:
        for line in tabby.last_search_stats.profile_lines():
            print(line, file=sys.stderr)
    verifier = None
    synthesizer = None
    classes = list(tabby._classes)
    if args.verify:
        from repro.verify import ChainVerifier

        verifier = ChainVerifier(classes, sources=_sources(args.sources))
    if args.payload:
        from repro.errors import VerificationError
        from repro.verify import PayloadSynthesizer

        synthesizer = PayloadSynthesizer(classes)
    if args.json:
        verdict_of = {}
        if tabby.last_refine is not None:
            verdict_of = {
                chain.key: verdict.status
                for chain, verdict in zip(
                    tabby.last_refine.chains, tabby.last_refine.verdicts
                )
            }
        payload = []
        for chain in chains:
            record = {
                "steps": [s.qualified for s in chain.steps],
                "sink_category": chain.sink_category,
            }
            if chain.key in verdict_of:
                record["verdict"] = verdict_of[chain.key]
            if verifier is not None:
                record["effective"] = verifier.verify(chain).effective
            if synthesizer is not None:
                try:
                    record["payload"] = json.loads(synthesizer.synthesize(chain).to_json())
                except VerificationError as exc:
                    record["payload_error"] = str(exc)
            payload.append(record)
        if refining:
            # refinement runs emit an object so refuted chains travel
            # with their reasons; the plain list shape is unchanged
            # for unrefined runs
            document = {
                "chains": payload,
                "refuted": [
                    {
                        "steps": [s.qualified for s in chain.steps],
                        "sink_category": chain.sink_category,
                        "refutation": reason.as_dict(),
                    }
                    for chain, reason in tabby.last_refutations
                ],
            }
            if tabby.last_refine is not None:
                document["refinement"] = tabby.last_refine.statistics
            print(json.dumps(document, indent=2))
        else:
            print(json.dumps(payload, indent=2))
        return 0
    print(f"{len(chains)} gadget chain(s) found")
    for i, chain in enumerate(chains, start=1):
        print(f"\n--- chain #{i} [{chain.sink_category}] ---")
        print(chain.render())
        if verifier is not None:
            report = verifier.verify(chain)
            verdict = "EFFECTIVE" if report.effective else "fake"
            print(f"verification: {verdict} ({report.reason})")
        if synthesizer is not None:
            try:
                print(synthesizer.synthesize(chain).render())
            except VerificationError as exc:
                print(f"payload synthesis unavailable: {exc}")
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    from repro.core.incremental import diff_to_dict
    from repro.jvm.jar import load_classpath

    def _classes_of(paths):
        classes = []
        for archive in load_classpath(paths):
            classes.extend(archive.classes)
        return classes

    tabby = Tabby(
        sources=_sources(args.sources),
        workers=args.workers,
        cache_dir=args.cache_dir,
        cache_max_mb=args.cache_max_mb,
    )
    diff = tabby.diff_versions(
        _classes_of(args.old),
        _classes_of(args.new),
        max_depth=args.max_depth,
        source_filter=args.source_filter,
        refine_guards=args.refine_guards,
        refine=args.refine,
    )
    document = diff_to_dict(diff)
    if args.json:
        print(json.dumps(document, indent=2))
        return 0
    summary = document["summary"]
    print(
        f"{summary['appeared']} appeared, {summary['disappeared']} "
        f"disappeared, {summary['survived']} survived "
        f"({summary['old_total']} -> {summary['new_total']} chain(s))"
    )
    for index, chain in enumerate(diff.appeared, start=1):
        print(f"\n+++ appeared #{index} [{chain.sink_category}] +++")
        print(chain.render())
        if diff.appeared_verdicts is not None:
            verdict = diff.appeared_verdicts[index - 1]
            if verdict is not None:
                note = verdict["status"]
                if "refutation" in verdict:
                    note += f" ({verdict['refutation']['kind']})"
                print(f"verdict: {note}")
    for index, chain in enumerate(diff.disappeared, start=1):
        steps = " -> ".join(s.qualified for s in chain.steps)
        print(f"--- disappeared #{index} [{chain.sink_category}]: {steps}")
    if args.profile and diff.statistics is not None:
        # stderr so --profile composes with --json pipelines
        for key, value in diff.statistics.as_row().items():
            print(f"diff {key}: {value}", file=sys.stderr)
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import lint_classes

    if not args.corpus and not args.classpath:
        print("error: provide jar paths or --corpus", file=sys.stderr)
        return 2
    issues = []
    if args.corpus:
        from repro.corpus import COMPONENT_NAMES, build_component, build_lang_base

        base = build_lang_base()
        issues.extend(lint_classes(base, interprocedural=args.interprocedural))
        for name in COMPONENT_NAMES:
            spec = build_component(name)
            # components resolve against the shared lang base, but only
            # the component's own classes are reported (the base is
            # linted once, above)
            only = {cls.name for cls in spec.classes}
            issues.extend(lint_classes(
                base + spec.classes,
                only_classes=only,
                interprocedural=args.interprocedural,
            ))
    if args.classpath:
        from repro.jvm.jar import load_classpath

        classes = []
        for archive in load_classpath(args.classpath):
            classes.extend(archive.classes)
        issues.extend(lint_classes(classes, interprocedural=args.interprocedural))

    errors = sum(1 for i in issues if i.severity == "error" and not i.suppressed)
    warnings = sum(1 for i in issues if i.severity == "warning" and not i.suppressed)
    suppressed = sum(1 for i in issues if i.suppressed)
    if args.json:
        print(json.dumps([i.to_dict() for i in issues], indent=2))
    else:
        for issue in issues:
            print(issue)
        print(
            f"lint: {errors} error(s), {warnings} warning(s), "
            f"{suppressed} suppressed"
        )
    if args.fail_on_error and errors:
        return 1
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.graphdb.query import jsonable_row, run_query
    from repro.graphdb.storage import open_graph

    if args.no_planner and (args.explain or args.profile):
        print("query: --no-planner is incompatible with --explain/--profile",
              file=sys.stderr)
        return 2
    graph = open_graph(args.cpg)
    result = run_query(
        graph,
        args.cypher,
        optimize=not args.no_planner,
        explain=args.explain,
        profile=args.profile,
    )
    if args.explain:
        print(result.plan.render())
        return 0
    if args.profile:
        print(result.plan.render(), file=sys.stderr)
    if args.json:
        print(json.dumps([jsonable_row(r) for r in result.rows], indent=2))
        return 0
    print(" | ".join(result.columns))
    for row in result.rows:
        print(" | ".join(str(row[c]) for c in result.columns))
    print(f"({len(result)} row(s))")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro import bench

    if args.table == "table8":
        print(bench.format_table_viii(bench.run_table_viii(repetitions=4)))
    elif args.table == "table9":
        print(bench.format_table_ix(bench.run_table_ix(
            components=args.components,
            workers=args.workers,
            cache_dir=args.cache_dir,
            refine_guards=args.refine_guards,
        )))
    elif args.table == "table10":
        print(bench.format_table_x(bench.run_table_x()))
    else:
        print(bench.format_table_xi(bench.run_table_xi()))
    return 0


def _cmd_sinks(args: argparse.Namespace) -> int:
    from repro.core.sinks import SinkCatalog

    catalog = SinkCatalog()
    entries = (
        catalog.of_category(args.category.upper()) if args.category else list(catalog)
    )
    header = f"{'Method':<64}{'Type':<8}{'TC'}"
    print(header)
    print("-" * len(header))
    for sink in entries:
        print(
            f"{sink.qualified_name + '()':<64}{sink.category:<8}"
            f"{list(sink.trigger_condition)}"
        )
    print(f"({len(entries)} sink method(s))")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.core.parallel import available_cpus
    from repro.serve.app import create_server

    workers = args.workers or available_cpus()
    try:
        server = create_server(
            host=args.host,
            port=args.port,
            workers=workers,
            cache_dir=args.cache_dir,
            rate=args.rate,
            burst=args.burst,
            store_capacity=args.store_capacity,
            max_queue=args.max_queue,
            snapshot_dir=args.snapshot_dir,
            live=args.live,
        )
    except (ValueError, ReproError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    print(
        f"tabby serve listening on {server.url} "
        f"({workers} worker(s), cache-dir={args.cache_dir or 'none'})",
        file=sys.stderr,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        mode = "cancelling queued jobs" if args.no_drain else "draining queued jobs"
        print(f"\nshutting down: {mode}", file=sys.stderr)
    finally:
        server.close(drain=not args.no_drain)
    return 0


def _cmd_corpus(args: argparse.Namespace) -> int:
    from repro.corpus import (
        COMPONENT_NAMES,
        SCENE_BUILDERS,
        build_component,
        build_lang_base,
    )
    from repro.jvm.jar import JarArchive, write_jar

    if args.corpus_command == "list":
        print("components (Table IX):")
        for name in COMPONENT_NAMES:
            print(f"  {name}")
        print("scenes (Table X):")
        for name in SCENE_BUILDERS:
            print(f"  {name}")
        return 0

    os.makedirs(args.directory, exist_ok=True)
    names = [args.component] if args.component else COMPONENT_NAMES
    base = JarArchive("rt-base", build_lang_base())
    write_jar(base, os.path.join(args.directory, "rt-base.jar"))
    count = 1
    for name in names:
        spec = build_component(name)
        safe = "".join(ch if ch.isalnum() or ch in "-._" else "_" for ch in name)
        path = os.path.join(args.directory, f"{safe}.jar")
        write_jar(JarArchive(safe, spec.classes), path)
        count += 1
    print(f"wrote {count} jar(s) to {args.directory}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "analyze": _cmd_analyze,
        "chains": _cmd_chains,
        "diff": _cmd_diff,
        "lint": _cmd_lint,
        "query": _cmd_query,
        "bench": _cmd_bench,
        "sinks": _cmd_sinks,
        "corpus": _cmd_corpus,
        "serve": _cmd_serve,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

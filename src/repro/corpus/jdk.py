"""Synthetic JDK classes.

Two layers:

* :func:`build_lang_base` — the chain-free runtime every component is
  analysed against: ``java.lang.Object`` (with the ``hashCode`` /
  ``equals`` / ``toString`` roots that Alias edges hang off),
  the serialization marker interfaces, ``ObjectInputStream``,
  ``Comparator``/``Map`` interfaces, and the collection classes whose
  ``readObject`` methods are classic chain *prefixes*
  (``HashMap``, ``PriorityQueue``, ``Hashtable``) — prefixes only:
  without a gadget class supplying a dangerous override they reach no
  sink.
* :func:`build_jdk8_extras` — the URLDNS classes (Figure 3):
  ``java.net.URL`` whose ``hashCode`` walks through
  ``URLStreamHandler.getHostAddress`` into the
  ``InetAddress.getByName`` SSRF sink, plus the ``EnumMap`` decoy the
  paper cites (an Alias neighbour whose ``hashCode`` does *not* reach a
  sink).
"""

from __future__ import annotations

from typing import List

from repro.jvm.builder import ProgramBuilder
from repro.jvm.model import EXTERNALIZABLE, SERIALIZABLE, JavaClass

__all__ = ["build_lang_base", "build_jdk8_extras", "URLDNS_SOURCE", "URLDNS_SINK"]

#: ground-truth endpoints of the URLDNS chain (Figure 3)
URLDNS_SOURCE = ("java.util.HashMap", "readObject")
URLDNS_SINK = ("java.net.InetAddress", "getByName")


def build_lang_base() -> List[JavaClass]:
    """Fresh copies of the chain-free runtime classes."""
    pb = ProgramBuilder(jar="rt-base.jar")

    obj = pb.cls("java.lang.Object", extends=None)
    with obj:
        with obj.method("hashCode", returns="int") as m:
            m.ret(0)
        with obj.method("equals", params=["java.lang.Object"], returns="int") as m:
            m.ret(0)
        with obj.method("toString", returns="java.lang.String") as m:
            m.ret("java.lang.Object")

    pb.interface("java.io.Serializable").finish()
    pb.interface("java.io.Externalizable", extends_interfaces=[SERIALIZABLE]).finish()

    with pb.cls("java.lang.String", implements=[SERIALIZABLE]) as c:
        with c.method("length", returns="int") as m:
            m.ret(0)

    with pb.cls("java.io.ObjectInputStream") as c:
        with c.method("defaultReadObject") as m:
            m.ret()
        with c.method("readFields", returns="java.lang.Object") as m:
            m.ret(m.this)
        with c.method("readInt", returns="int") as m:
            m.ret(0)

    comparator = pb.interface("java.util.Comparator")
    comparator.abstract_method(
        "compare", params=["java.lang.Object", "java.lang.Object"], returns="int"
    )
    comparator.finish()

    map_iface = pb.interface("java.util.Map")
    map_iface.abstract_method("get", params=["java.lang.Object"], returns="java.lang.Object")
    map_iface.abstract_method(
        "put", params=["java.lang.Object", "java.lang.Object"], returns="java.lang.Object"
    )
    map_iface.finish()

    entry = pb.interface("java.util.Map$Entry")
    entry.abstract_method("getKey", returns="java.lang.Object")
    entry.abstract_method("getValue", returns="java.lang.Object")
    entry.finish()

    # HashMap: readObject -> hash -> key.hashCode() — the URLDNS prefix
    with pb.cls("java.util.HashMap", implements=["java.util.Map", SERIALIZABLE]) as c:
        c.field("key", "java.lang.Object")
        c.field("value", "java.lang.Object")
        with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
            m.invoke(m.param(1), "java.io.ObjectInputStream", "defaultReadObject")
            key = m.get_field(m.this, "key")
            m.invoke_static("java.util.HashMap", "hash", [key], returns="int")
        with c.method("hash", params=["java.lang.Object"], returns="int", static=True) as m:
            h = m.invoke(m.param(1), "java.lang.Object", "hashCode", returns="int")
            m.ret(h)
        with c.method("get", params=["java.lang.Object"], returns="java.lang.Object") as m:
            v = m.get_field(m.this, "value")
            m.ret(v)
        with c.method(
            "put", params=["java.lang.Object", "java.lang.Object"], returns="java.lang.Object"
        ) as m:
            m.set_field(m.this, "key", m.param(1))
            m.set_field(m.this, "value", m.param(2))
            m.ret(m.param(2))

    # PriorityQueue: readObject -> comparator.compare(e, e) — the
    # CommonsBeanutils prefix
    with pb.cls("java.util.PriorityQueue", implements=[SERIALIZABLE]) as c:
        c.field("comparator", "java.util.Comparator")
        c.field("element", "java.lang.Object")
        with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
            m.invoke(m.param(1), "java.io.ObjectInputStream", "defaultReadObject")
            m.invoke(m.this, "java.util.PriorityQueue", "heapify")
        with c.method("heapify") as m:
            m.invoke(m.this, "java.util.PriorityQueue", "siftDown")
        with c.method("siftDown") as m:
            cmp = m.get_field(m.this, "comparator")
            e = m.get_field(m.this, "element")
            m.invoke_interface(
                cmp, "java.util.Comparator", "compare", [e, e], returns="int"
            )

    # Hashtable: readObject -> reconstitutionPut -> key.equals(...)
    with pb.cls("java.util.Hashtable", implements=["java.util.Map", SERIALIZABLE]) as c:
        c.field("key", "java.lang.Object")
        c.field("value", "java.lang.Object")
        with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
            key = m.get_field(m.this, "key")
            value = m.get_field(m.this, "value")
            m.invoke(
                m.this,
                "java.util.Hashtable",
                "reconstitutionPut",
                [key, value],
            )
        with c.method(
            "reconstitutionPut", params=["java.lang.Object", "java.lang.Object"]
        ) as m:
            m.invoke(m.param(1), "java.lang.Object", "equals", [m.param(2)], returns="int")
        with c.method("get", params=["java.lang.Object"], returns="java.lang.Object") as m:
            v = m.get_field(m.this, "value")
            m.ret(v)
        with c.method(
            "put", params=["java.lang.Object", "java.lang.Object"], returns="java.lang.Object"
        ) as m:
            m.set_field(m.this, "key", m.param(1))
            m.ret(m.param(2))

    return pb.build()


def build_jdk8_extras() -> List[JavaClass]:
    """The URLDNS classes and the EnumMap alias decoy (Figure 3/4)."""
    pb = ProgramBuilder(jar="rt-net.jar")

    with pb.cls("java.net.URLStreamHandler") as c:
        with c.method("hashCode", params=["java.net.URL"], returns="int") as m:
            addr = m.invoke(
                m.this,
                "java.net.URLStreamHandler",
                "getHostAddress",
                [m.param(1)],
                returns="java.lang.Object",
            )
            m.invoke(addr, "java.lang.Object", "hashCode", returns="int")
            m.ret(0)
        with c.method(
            "getHostAddress", params=["java.net.URL"], returns="java.lang.Object"
        ) as m:
            host = m.get_field(m.param(1), "host")
            out = m.invoke_static(
                "java.net.InetAddress", "getByName", [host], returns="java.lang.Object"
            )
            m.ret(out)

    with pb.cls("java.net.URL", implements=[SERIALIZABLE]) as c:
        c.field("host", "java.lang.String")
        c.field("handler", "java.net.URLStreamHandler", transient=True)
        with c.method("hashCode", returns="int") as m:
            handler = m.get_field(m.this, "handler")
            h = m.invoke(
                handler,
                "java.net.URLStreamHandler",
                "hashCode",
                [m.this],
                returns="int",
            )
            m.ret(h)

    # the paper's Alias-edge decoy: EnumMap.hashCode reaches no sink
    with pb.cls("java.util.EnumMap", implements=["java.util.Map", SERIALIZABLE]) as c:
        c.field("value", "java.lang.Object")
        with c.method("hashCode", returns="int") as m:
            h = m.invoke(m.this, "java.util.EnumMap", "entryHashCode", returns="int")
            m.ret(h)
        with c.method("entryHashCode", returns="int") as m:
            m.ret(0)
        with c.method("get", params=["java.lang.Object"], returns="java.lang.Object") as m:
            v = m.get_field(m.this, "value")
            m.ret(v)
        with c.method(
            "put", params=["java.lang.Object", "java.lang.Object"], returns="java.lang.Object"
        ) as m:
            m.set_field(m.this, "value", m.param(2))
            m.ret(m.param(2))

    return pb.build()

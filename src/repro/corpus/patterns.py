"""Gadget-chain pattern generators for the synthetic corpus.

Each generator plants one *shape* of code in a :class:`ProgramBuilder`.
The shapes are chosen so that each real tool behaviour the paper
measures is exercised by construction:

=====================  =====  =====  =====  ==========================
pattern                Tabby  GI     SL     notes
=====================  =====  =====  =====  ==========================
interface chain        finds  MISS   finds* GI lacks interface dispatch
extends chain          finds  finds  finds* GI's extension dispatch works
proxy chain            MISS   MISS   MISS   §V-B: dynamic proxy
guard decoy (direct)   FAKE   FAKE   FAKE*  broken by a concrete guard
guard decoy (iface)    FAKE   MISS   FAKE*  same, hidden from GI
GI bait fan            -      FAKE   FAKE*  constant sink args: Tabby
                                            prunes the all-∞ edge
SL flood tree          -      -      FAKE   name-only "sources" on
                                            non-serializable classes
SL crowders            -      -      hides  exhaust SL's caller cap so
                                            later chains are lost
SL bomb                -      -      ✗      dense call cluster explodes
                                            SL's path enumeration
=====================  =====  =====  =====  ==========================

(*) SL sees a pattern only while its per-callee caller cap is not
exhausted by earlier call sites — that is exactly the lossy pruning the
paper blames for Serianalyzer's false negatives, and the crowder
pattern triggers it deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.corpus.base import KnownChainSpec
from repro.errors import CorpusError
from repro.jvm.builder import MethodBuilder, ProgramBuilder
from repro.jvm.model import SERIALIZABLE

__all__ = [
    "SinkShape",
    "SINK_SHAPES",
    "emit_sink",
    "plant_interface_chain",
    "plant_extends_chain",
    "plant_proxy_chain",
    "plant_guard_decoy",
    "plant_rta_decoy",
    "plant_taint_decoy",
    "plant_gi_bait_fan",
    "plant_sl_flood",
    "plant_sl_crowders",
    "plant_sl_bomb",
]


@dataclass(frozen=True)
class SinkShape:
    """How to emit a call to one catalog sink inside a method body."""

    key: str
    class_name: str
    method_name: str
    kind: str  # "static" | "virtual" | "interface"
    #: trigger condition of the emitted call shape
    tc: Tuple[int, ...]
    #: number of arguments the emitted call passes
    arity: int = 1

    @property
    def endpoint(self) -> Tuple[str, str]:
        return (self.class_name, self.method_name)


SINK_SHAPES = {
    s.key: s
    for s in [
        SinkShape("exec", "java.lang.Runtime", "exec", "virtual", (1,)),
        SinkShape("method_invoke", "java.lang.reflect.Method", "invoke", "virtual", (0, 1), 2),
        SinkShape("context_lookup", "javax.naming.Context", "lookup", "interface", (1,)),
        SinkShape("registry_lookup", "java.rmi.registry.Registry", "lookup", "interface", (1,)),
        SinkShape("get_by_name", "java.net.InetAddress", "getByName", "static", (1,)),
        SinkShape("new_output_stream", "java.nio.file.Files", "newOutputStream", "static", (1,)),
        SinkShape("file_delete", "java.io.File", "delete", "virtual", (0,), 0),
        SinkShape("open_connection", "java.net.URL", "openConnection", "virtual", (0,), 0),
        SinkShape("load_class", "java.lang.ClassLoader", "loadClass", "virtual", (0, 1), 1),
        SinkShape("db_parse", "javax.xml.parsers.DocumentBuilder", "parse", "virtual", (1,)),
        SinkShape("xml_transform", "javax.xml.transform.Transformer", "transform", "virtual", (1,)),
        SinkShape("script_eval", "javax.script.ScriptEngine", "eval", "interface", (1,)),
        SinkShape("get_connection", "java.sql.DriverManager", "getConnection", "static", (1,)),
        SinkShape("process_start", "java.lang.ProcessImpl", "start", "static", (1,)),
    ]
}


def emit_sink(m: MethodBuilder, sink_key: str, payload, controllable: bool = True):
    """Emit a call to the sink inside the body being built.

    ``payload`` flows into every Trigger_Condition position when
    ``controllable`` is True; with ``controllable`` False the call uses
    fresh uncontrollable values everywhere (the GI-bait shape Tabby's
    PCG pruning removes).
    Returns the (class, method) endpoint of the sink.
    """
    shape = SINK_SHAPES.get(sink_key)
    if shape is None:
        raise CorpusError(f"unknown sink shape {sink_key!r}")
    if not controllable:
        payload = m.new(f"{shape.class_name}$Dummy")
    if 0 in shape.tc:
        receiver = payload
    elif shape.kind != "static":
        if shape.key == "exec":
            receiver = m.invoke_static(
                "java.lang.Runtime", "getRuntime", returns="java.lang.Runtime"
            )
        else:
            receiver = m.new(shape.class_name + "Impl")
    else:
        receiver = None
    args = []
    for i in range(1, shape.arity + 1):
        args.append(payload if i in shape.tc else i)
    if shape.kind == "static":
        m.invoke_static(shape.class_name, shape.method_name, args)
    elif shape.kind == "interface":
        m.invoke_interface(receiver, shape.class_name, shape.method_name, args)
    else:
        m.invoke(receiver, shape.class_name, shape.method_name, args)
    return shape.endpoint


# ---------------------------------------------------------------------------
# chains
# ---------------------------------------------------------------------------


def plant_interface_chain(
    pb: ProgramBuilder,
    iface: str,
    impl: str,
    source: str,
    sink_key: str,
    method: str = "transform",
    source_method: str = "readObject",
    payload_field: str = "iMethodName",
) -> KnownChainSpec:
    """source.readObject -> iface.method (interface dispatch) ->
    impl.method -> sink.  Found by Tabby (Alias edge), missed by GI."""
    shape = SINK_SHAPES[sink_key]
    ib = pb.interface(iface)
    ib.abstract_method(method, params=["java.lang.Object"], returns="java.lang.Object")
    ib.finish()
    with pb.cls(impl, implements=[iface, SERIALIZABLE]) as c:
        c.field(payload_field, "java.lang.Object")
        with c.method(method, params=["java.lang.Object"], returns="java.lang.Object") as m:
            payload = m.get_field(m.this, payload_field)
            emit_sink(m, sink_key, payload)
            m.ret(payload)
    with pb.cls(source, implements=[SERIALIZABLE]) as c:
        c.field("delegate", "java.lang.Object")
        params = ["java.io.ObjectInputStream"] if source_method == "readObject" else []
        with c.method(source_method, params=params,
                      returns="void" if source_method == "readObject" else "int") as m:
            d = m.get_field(m.this, "delegate")
            m.invoke_interface(d, iface, method, [d], returns="java.lang.Object")
            if source_method != "readObject":
                m.ret(0)
    return KnownChainSpec(
        source=(source, source_method), sink=shape.endpoint
    )


def plant_extends_chain(
    pb: ProgramBuilder,
    base: str,
    sub: str,
    source: str,
    sink_key: str,
    method: str = "render",
    source_method: str = "readObject",
    payload_field: str = "command",
) -> KnownChainSpec:
    """source.readObject -> base.method (class virtual dispatch) ->
    sub.method -> sink.  Found by Tabby AND by GI (extension-only
    polymorphism suffices)."""
    shape = SINK_SHAPES[sink_key]
    with pb.cls(base) as c:
        with c.method(method, params=["java.lang.Object"]) as m:
            m.ret()
    with pb.cls(sub, extends=base, implements=[SERIALIZABLE]) as c:
        c.field(payload_field, "java.lang.Object")
        with c.method(method, params=["java.lang.Object"]) as m:
            payload = m.get_field(m.this, payload_field)
            emit_sink(m, sink_key, payload)
    with pb.cls(source, implements=[SERIALIZABLE]) as c:
        c.field("target", "java.lang.Object")
        with c.method(source_method, params=["java.io.ObjectInputStream"]) as m:
            t = m.get_field(m.this, "target")
            m.invoke(t, base, method, [t])
    return KnownChainSpec(
        source=(source, source_method), sink=shape.endpoint, gi_findable=True
    )


def plant_proxy_chain(
    pb: ProgramBuilder,
    source: str,
    handler: str,
    sink_key: str,
    handler_method: str = "invokeImpl",
    source_method: str = "readObject",
) -> KnownChainSpec:
    """A chain whose middle hop is a dynamic-proxy/reflection dispatch:
    effective in practice (the verifier confirms it) but invisible to
    every static tool (§V-B)."""
    shape = SINK_SHAPES[sink_key]
    with pb.cls(handler, implements=[SERIALIZABLE]) as c:
        c.field("memberValues", "java.lang.Object")
        with c.method(handler_method, params=["java.lang.Object"], returns="java.lang.Object") as m:
            payload = m.get_field(m.this, "memberValues")
            emit_sink(m, sink_key, payload)
            m.ret(payload)
    with pb.cls(source, implements=[SERIALIZABLE]) as c:
        c.field("h", "java.lang.Object")
        with c.method(source_method, params=["java.io.ObjectInputStream"]) as m:
            h = m.get_field(m.this, "h")
            m.invoke_dynamic(h, handler_method, [h], returns="java.lang.Object")
    return KnownChainSpec(
        source=(source, source_method), sink=shape.endpoint, via_proxy=True
    )


def plant_guard_decoy(
    pb: ProgramBuilder,
    source: str,
    config: str,
    sink_key: str = "exec",
    through_interface: Optional[str] = None,
    source_method: str = "readObject",
) -> Tuple[str, str]:
    """A chain broken by a concrete guard on non-attacker state: static
    analysis reports it (Tabby's ~33% FPR root cause, §IV-E), the PoC
    oracle rejects it.  With ``through_interface`` the guarded hop sits
    behind interface dispatch, hiding the decoy from GI too.
    Returns the decoy's (source class, sink class) endpoints."""
    shape = SINK_SHAPES[sink_key]
    if not pb.has_class(config):
        with pb.cls(config) as c:
            c.field("ENABLED", "int", static=True)

    def guarded_sink(m: MethodBuilder, payload) -> None:
        # The constant-false guard is the whole point of the decoy:
        # suppress the lint rule that (correctly) calls it dead.
        m.lint_ignore("guard-always-false")
        flag = m.get_static(config, "ENABLED")
        m.if_ne(flag, 0, "fire")
        m.goto("done")
        m.label("fire")
        emit_sink(m, sink_key, payload)
        m.label("done")

    if through_interface:
        iface = through_interface
        impl = through_interface + "Impl"
        ib = pb.interface(iface)
        ib.abstract_method("apply", params=["java.lang.Object"], returns="java.lang.Object")
        ib.finish()
        with pb.cls(impl, implements=[iface, SERIALIZABLE]) as c:
            c.field("value", "java.lang.Object")
            with c.method("apply", params=["java.lang.Object"], returns="java.lang.Object") as m:
                payload = m.get_field(m.this, "value")
                guarded_sink(m, payload)
                m.ret(payload)
        with pb.cls(source, implements=[SERIALIZABLE]) as c:
            c.field("delegate", "java.lang.Object")
            with c.method(source_method, params=["java.io.ObjectInputStream"]) as m:
                d = m.get_field(m.this, "delegate")
                m.invoke_interface(d, iface, "apply", [d], returns="java.lang.Object")
    else:
        with pb.cls(source, implements=[SERIALIZABLE]) as c:
            c.field("payload", "java.lang.Object")
            with c.method(source_method, params=["java.io.ObjectInputStream"]) as m:
                payload = m.get_field(m.this, "payload")
                guarded_sink(m, payload)
    return (source, shape.class_name)


def plant_rta_decoy(
    pb: ProgramBuilder,
    iface: str,
    impl: str,
    source: str,
    sink_key: str = "exec",
    method: str = "handle",
    source_method: str = "readObject",
) -> Tuple[str, str]:
    """A chain whose only dispatch target is never instantiated: the
    source calls through an interface whose sole implementation is not
    serializable and is never allocated anywhere in the closure, so no
    execution can produce a receiver of that type.  The CPG keeps the
    Alias edge (soundly) and the search reports the chain; RTA
    type-reachability refinement refutes it (``rta-dead-dispatch``).
    GI misses it outright (interface dispatch).  Returns the decoy's
    (source class, sink class) endpoints."""
    shape = SINK_SHAPES[sink_key]
    ib = pb.interface(iface)
    ib.abstract_method(method, params=["java.lang.Object"], returns="java.lang.Object")
    ib.finish()
    with pb.cls(impl, implements=[iface]) as c:
        # Never instantiated anywhere in the closure — exactly what the
        # interprocedural lint rule flags; the suppression marks intent.
        c.lint_ignore("alias-never-instantiated")
        with c.method(method, params=["java.lang.Object"], returns="java.lang.Object") as m:
            payload = m.param(1)
            emit_sink(m, sink_key, payload)
            m.ret(payload)
    with pb.cls(source, implements=[SERIALIZABLE]) as c:
        c.field("handler", "java.lang.Object")
        c.field("data", "java.lang.Object")
        with c.method(source_method, params=["java.io.ObjectInputStream"]) as m:
            h = m.get_field(m.this, "handler")
            d = m.get_field(m.this, "data")
            m.invoke_interface(h, iface, method, [d], returns="java.lang.Object")
    return (source, shape.class_name)


def plant_taint_decoy(
    pb: ProgramBuilder,
    iface: str,
    impl: str,
    source: str,
    sink_key: str = "exec",
    method: str = "refresh",
    trusted_field: str = "region",
    source_method: str = "readObject",
) -> Tuple[str, str]:
    """A chain whose sink argument only ever carries a *trusted* value:
    the source feeds the dispatch a transient reference field that is
    never stored anywhere in the closure, so deserialization cannot
    plant attacker data in it.  The search (field-insensitive on the
    polluted-position lattice) reports the chain; the taint-summary
    replay refutes it (``untainted-sink``).  The dispatch goes through
    an interface so GI stays blind to it.  Returns the decoy's
    (source class, sink class) endpoints."""
    shape = SINK_SHAPES[sink_key]
    ib = pb.interface(iface)
    ib.abstract_method(method, params=["java.lang.Object"])
    ib.finish()
    with pb.cls(impl, implements=[iface, SERIALIZABLE]) as c:
        with c.method(method, params=["java.lang.Object"]) as m:
            emit_sink(m, sink_key, m.param(1))
    with pb.cls(source, implements=[SERIALIZABLE]) as c:
        c.field("listener", "java.lang.Object")
        c.field(trusted_field, "java.lang.Object", transient=True)
        with c.method(source_method, params=["java.io.ObjectInputStream"]) as m:
            h = m.get_field(m.this, "listener")
            v = m.get_field(m.this, trusted_field)
            m.invoke_interface(h, iface, method, [v])
    return (source, shape.class_name)


def plant_gi_bait_fan(
    pb: ProgramBuilder,
    source: str,
    helper: str,
    leaves: int,
    sink_key: str = "exec",
) -> None:
    """``leaves`` syntactic source-to-sink paths whose sink arguments
    are constants: GadgetInspector reports every one (it checks no
    controllability); Tabby's all-∞ PP pruning drops the sink edges."""
    if leaves < 1:
        return
    with pb.cls(helper) as c:
        for i in range(leaves):
            with c.method(f"fire{i}") as m:
                emit_sink(m, sink_key, None, controllable=False)
    with pb.cls(source, implements=[SERIALIZABLE]) as c:
        with c.method("readObject", params=["java.io.ObjectInputStream"]) as m:
            h = m.new(helper)
            for i in range(leaves):
                m.invoke(h, helper, f"fire{i}")


def plant_sl_flood(
    pb: ProgramBuilder,
    prefix: str,
    count: int,
    sink_key: str = "file_delete",
) -> None:
    """``count`` backward paths from a sink call site to methods that
    merely *look like* deserialization entry points (right names, but
    the classes are not serializable): Serianalyzer reports them all,
    Tabby and GI report none."""
    if count < 1:
        return
    with pb.cls(f"{prefix}.StreamEmitter") as c:
        with c.method("emit") as m:
            emit_sink(m, sink_key, None, controllable=False)

    counter = [0]

    def grow(callee_cls: str, callee_method: str, n: int, depth: int) -> None:
        if n <= 3:
            for _ in range(n):
                counter[0] += 1
                with pb.cls(f"{prefix}.Visitor{counter[0]}") as c:
                    with c.method("toString", returns="java.lang.String") as m:
                        obj = m.new(callee_cls)
                        m.invoke(obj, callee_cls, callee_method)
                        m.ret("x")
            return
        parts = [n // 3 + (1 if i < n % 3 else 0) for i in range(3)]
        for part in parts:
            if part == 0:
                continue
            counter[0] += 1
            relay = f"{prefix}.Relay{counter[0]}"
            with pb.cls(relay) as c:
                with c.method("drain") as m:
                    obj = m.new(callee_cls)
                    m.invoke(obj, callee_cls, callee_method)
            grow(relay, "drain", part, depth + 1)

    grow(f"{prefix}.StreamEmitter", "emit", count, 0)


def plant_sl_crowders(
    pb: ProgramBuilder,
    prefix: str,
    sink_keys: Sequence[str],
    count: int = 3,
) -> None:
    """``count`` innocuous call sites per sink that exhaust
    Serianalyzer's per-callee caller cap: chains planted *after* the
    crowders (insertion order) are silently lost — the lossy
    call-graph pruning the paper observes (§IV-C, §IV-F)."""
    for sink_key in sink_keys:
        for i in range(count):
            with pb.cls(f"{prefix}.Housekeeping{sink_key.title().replace('_','')}{i}") as c:
                with c.method("cleanup") as m:
                    emit_sink(m, sink_key, None, controllable=False)


def plant_sl_bomb(
    pb: ProgramBuilder,
    prefix: str,
    size: int = 30,
    clusters: int = 2,
    sink_key: str = "script_eval",
) -> None:
    """Dense clusters of mutually-calling methods feeding one sink:
    Serianalyzer's backward path enumeration explodes combinatorially
    (the ✗ cells for Clojure/Jython).  Tabby never enters the clusters —
    the sink call's PP is all-∞, so the PCG has no edge into them."""
    for k in range(clusters):
        cluster = f"{prefix}.Dispatcher{k}"
        with pb.cls(cluster) as c:
            c.field("state", "java.lang.Object")
            with c.method("step0", params=["java.lang.Object"]) as m:
                emit_sink(m, sink_key, None, controllable=False)
                for j in range(1, min(size, 4)):
                    m.invoke(m.this, cluster, f"step{j}", [m.param(1)])
            for i in range(1, size):
                with c.method(f"step{i}", params=["java.lang.Object"]) as m:
                    for j in range(size):
                        if j != i:
                            m.invoke(m.this, cluster, f"step{j}", [m.param(1)])

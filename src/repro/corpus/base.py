"""Corpus data model.

A :class:`ComponentSpec` is one analysed unit of Table IX: a named jar
of classes plus its ground truth — the *known* gadget chains the
ysoserial/marshalsec dataset records for that component (with a
``via_proxy`` flag for chains that need dynamic proxy / reflection and
are therefore invisible to every static tool, §V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.chains import GadgetChain
from repro.jvm.model import JavaClass

__all__ = ["KnownChainSpec", "ComponentSpec"]


@dataclass(frozen=True)
class KnownChainSpec:
    """One dataset-recorded gadget chain, identified by its endpoints."""

    source: Tuple[str, str]  # (class, method)
    sink: Tuple[str, str]  # (class, method)
    #: needs dynamic proxy/reflection — static analysis cannot find it
    via_proxy: bool = False
    #: reachable through superclass-extension dispatch only, i.e. also
    #: findable by GadgetInspector's incomplete polymorphism handling
    gi_findable: bool = False

    def matches(self, chain: GadgetChain) -> bool:
        return chain.endpoint_key == (self.source, self.sink)

    def __str__(self) -> str:
        tag = " (proxy)" if self.via_proxy else ""
        return (
            f"{self.source[0]}.{self.source[1]}() -> "
            f"{self.sink[0]}.{self.sink[1]}(){tag}"
        )


@dataclass
class ComponentSpec:
    """One Table IX component: classes plus ground truth."""

    name: str
    classes: List[JavaClass]
    known_chains: List[KnownChainSpec] = field(default_factory=list)
    #: the component's top-level package (the Serianalyzer post-filter)
    package: str = ""
    #: expected to blow up Serianalyzer's path enumeration (✗ cells)
    serianalyzer_bomb: bool = False

    @property
    def known_count(self) -> int:
        return len(self.known_chains)

    def match_known(self, chain: GadgetChain) -> Optional[KnownChainSpec]:
        for spec in self.known_chains:
            if spec.matches(chain):
                return spec
        return None

    def __repr__(self) -> str:
        return (
            f"<ComponentSpec {self.name}: {len(self.classes)} classes, "
            f"{self.known_count} known chains>"
        )

"""Random corpus generation for the CPG-efficiency experiment (RQ1).

Table VIII measures CPG generation over jar sets scaled from 10 MB to
150 MB of code drawn from the top-100 Maven jars.  This generator
produces deterministic synthetic jar sets with the same *structural*
statistics knobs: jar count, class/method counts, inheritance and
interface density, call-site density, and a fraction of serializable
classes with deserialization callbacks.  Sizes scale linearly with the
``target_kb`` knob so the near-linear time/size relationship of the
table can be reproduced and asserted.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.jvm.builder import MethodBuilder, ProgramBuilder
from repro.jvm.jar import JarArchive
from repro.jvm.model import SERIALIZABLE

__all__ = ["generate_corpus", "CorpusShape"]

_PACKAGES = (
    "com.acme.core", "com.acme.net", "com.acme.io", "org.widget.util",
    "org.widget.model", "io.sample.rpc", "io.sample.codec", "net.fixture.web",
)

_METHOD_NAMES = (
    "process", "handle", "resolve", "dispatch", "convert", "accept",
    "visit", "append", "flush", "configure", "register", "render",
)


class CorpusShape:
    """Tunable densities for generated code."""

    classes_per_jar = 14
    methods_per_class = (2, 7)
    fields_per_class = (1, 4)
    statements_per_method = (3, 12)
    interface_fraction = 0.12
    subclass_fraction = 0.45
    serializable_fraction = 0.2
    read_object_fraction = 0.3
    branch_fraction = 0.25
    #: average jasm bytes per class; used to size the corpus
    approx_bytes_per_class = 2000


def generate_corpus(
    target_kb: int, seed: int = 7, shape: Optional[CorpusShape] = None
) -> List[JarArchive]:
    """Generate jars totalling roughly ``target_kb`` KiB of jasm text."""
    shape = shape or CorpusShape()
    rng = random.Random(seed)
    total_classes = max(4, (target_kb * 1024) // shape.approx_bytes_per_class)
    jars: List[JarArchive] = []
    #: (class_name, method_name, arity, is_interface) callable surface
    surface: List[Tuple[str, str, int, bool]] = []
    class_names: List[str] = []
    interfaces: List[str] = []
    serial = 0

    while total_classes > 0:
        jar_index = len(jars)
        count = min(total_classes, shape.classes_per_jar)
        total_classes -= count
        pb = ProgramBuilder(jar=f"lib-{jar_index:03d}.jar")
        for _ in range(count):
            serial += 1
            package = rng.choice(_PACKAGES)
            name = f"{package}.Gen{serial:05d}"
            if rng.random() < shape.interface_fraction:
                ib = pb.interface(name)
                arity = rng.randint(0, 2)
                ib.abstract_method(
                    rng.choice(_METHOD_NAMES),
                    params=["java.lang.Object"] * arity,
                    returns="java.lang.Object",
                )
                ib.finish()
                interfaces.append(name)
                for method in ib._cls.methods.values():  # registered surface
                    surface.append((name, method.name, method.arity, True))
                class_names.append(name)
                continue
            extends = None
            if class_names and rng.random() < shape.subclass_fraction:
                extends = rng.choice(class_names)
            implements = []
            if interfaces and rng.random() < 0.3:
                implements.append(rng.choice(interfaces))
            is_serializable = rng.random() < shape.serializable_fraction
            if is_serializable:
                implements.append(SERIALIZABLE)
            with pb.cls(name, extends=extends or "java.lang.Object", implements=implements) as cb:
                for f in range(rng.randint(*shape.fields_per_class)):
                    cb.field(f"field{f}", "java.lang.Object")
                n_methods = rng.randint(*shape.methods_per_class)
                for mi in range(n_methods):
                    if mi == 0 and is_serializable and rng.random() < shape.read_object_fraction:
                        mname, params, returns = (
                            "readObject",
                            ["java.io.ObjectInputStream"],
                            "void",
                        )
                    else:
                        mname = rng.choice(_METHOD_NAMES) + str(mi)
                        params = ["java.lang.Object"] * rng.randint(0, 2)
                        returns = rng.choice(["void", "java.lang.Object", "int"])
                    with cb.method(mname, params=params, returns=returns) as m:
                        _random_body(m, rng, shape, surface, len(params))
                    surface.append((name, mname, len(params), False))
            class_names.append(name)
        jars.append(JarArchive(pb.jar or f"lib-{jar_index:03d}.jar", pb.build()))
    return jars


def _random_body(
    m: MethodBuilder,
    rng: random.Random,
    shape: CorpusShape,
    surface: Sequence[Tuple[str, str, int, bool]],
    n_params: int,
) -> None:
    locals_pool = [m.param(i) for i in range(1, n_params + 1)]
    if m.this is not None:
        locals_pool.append(m.get_field(m.this, "field0"))
    n_statements = rng.randint(*shape.statements_per_method)
    label_counter = 0
    for _ in range(n_statements):
        choice = rng.random()
        if choice < 0.35 and surface:
            cls, mname, arity, is_iface = rng.choice(surface)
            args = [rng.choice(locals_pool) if locals_pool else 1 for _ in range(arity)]
            base = rng.choice(locals_pool) if locals_pool else m.new(cls)
            if not hasattr(base, "name"):
                base = m.new(cls)
            kind = "interface" if is_iface else "virtual"
            out = m.invoke(base, cls, mname, args, returns="java.lang.Object", kind=kind)
            locals_pool.append(out)
        elif choice < 0.5:
            obj = m.new("java.lang.Object")
            locals_pool.append(obj)
        elif choice < 0.65 and m.this is not None:
            m.set_field(m.this, f"field{rng.randint(0, 3)}",
                        rng.choice(locals_pool) if locals_pool else 1)
        elif choice < 0.8 and locals_pool:
            v = m.get_field(rng.choice([l for l in locals_pool if hasattr(l, "name")] or [m.new("x.Y")]),
                            f"field{rng.randint(0, 3)}")
            locals_pool.append(v)
        elif choice < 0.8 + shape.branch_fraction and locals_pool:
            label_counter += 1
            label = f"L{label_counter}"
            m.if_eq(rng.choice(locals_pool), 0, label)
            m.nop()
            m.label(label)
        else:
            locals_pool.append(m.binop("+", rng.randint(0, 9), rng.randint(0, 9)))
    m.ret() if m._method.return_type.is_void else m.ret(
        rng.choice(locals_pool) if locals_pool else None
    )
